"""Legacy setup shim (the environment's setuptools lacks PEP 660 support)."""

from setuptools import setup

setup()
