PYTHONPATH := src
export PYTHONPATH

PYTEST := python -m pytest

.PHONY: test bench-perf bench-quick bench-full

# Tier-1: the full unit/integration suite.
test:
	$(PYTEST) -x -q

# Engine throughput benchmark only (appends to BENCH_perf.json).
bench-perf:
	REPRO_BENCH_SCALE=quick $(PYTEST) benchmarks/bench_perf_engine.py -q -s

# CI entry: tier-1 tests plus the quick-scale engine benchmark.
bench-quick: test bench-perf

# Paper-scale sweeps for every table/figure (slow).
bench-full:
	REPRO_BENCH_SCALE=full $(PYTEST) benchmarks -q -s
