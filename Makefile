PYTHONPATH := src
export PYTHONPATH

PYTEST := python -m pytest

.PHONY: test test-fast test-slow parity sweep registry-smoke attack-smoke \
	defense-smoke chaos-smoke static-smoke spectre-smoke lint bench-perf \
	bench-gate bench-quick bench-full ci

# Tier-1: the full unit/integration suite.
test:
	$(PYTEST) -x -q

# Fast lane: everything except the slow property/attack/experiment tests.
test-fast:
	$(PYTEST) -x -q -m "not slow"

# Slow lane: the complement of the fast lane (fast + slow = tier-1).
test-slow:
	$(PYTEST) -x -q -m slow

# Golden engine equivalence suites: fast-vs-reference and the
# batched-vs-serial lane parity (every lane of a BatchExecutor must be
# byte-identical to a serial run, reports and observation traces).
parity:
	$(PYTEST) -x -q -m parity

# The evaluation grid as one parallel, store-backed batch (djpeg at
# the paper sizes; pass --w 10 via ARGS for the paper-depth microbench
# sweep, e.g. `make sweep ARGS="--w 10"`).
sweep:
	python -m repro sweep --jobs 4 --progress --cache-stats $(ARGS)

# Victim-workload registry smoke: the matrix lists and its
# registration tests pass (the CI tier-1 lane runs this first).
registry-smoke:
	python -m repro workloads list
	$(PYTEST) -x -q -m "not slow" tests/workloads/test_registry.py

# Statistical-attack smoke: the attacker registry lists, and one
# fast-engine prime+probe campaign recovers memcmp's secret on the
# baseline and lands at chance under SeMPE (exit code checks both).
attack-smoke:
	python -m repro attack list
	python -m repro attack run --workload memcmp --attacker prime-probe \
		--trials 16 --engine fast

# Defense-registry smoke: the scheme matrix lists, and one fast-engine
# prime+probe campaign recovers memcmp's secret on the baseline and
# lands at chance under the way-partitioned caches (exit code checks
# both verdicts).
defense-smoke:
	python -m repro defenses list
	python -m repro attack run --workload memcmp --attacker prime-probe \
		--trials 16 --defense cache-partition --engine fast

# Fault-injection smoke: a seeded chaos sweep faults every cell of a
# tiny grid (raise/hang/kill, hangs killed at the 5s deadline) and must
# fail loudly — exit 1, failures quarantined in the store — then a
# --retry-quarantined rerun clears the poison records and recovers to a
# clean exit with the tables rendered.
chaos-smoke:
	rm -rf .chaos-store
	python -m repro sweep fig10a --w 1 --workloads ones --jobs 2 \
		--store .chaos-store --timeout 5 --chaos 1 --chaos-rate 1.0 \
		--progress; test $$? -eq 1
	python -m repro sweep fig10a --w 1 --workloads ones --jobs 2 \
		--store .chaos-store --retry-quarantined --progress
	rm -rf .chaos-store

# Static-analysis smoke: the transform verifier must pass every
# registered defense × victim pair (including the mutation test that
# proves the lint goes red on a broken transform), and one live
# static-vs-dynamic differential cell must come back sound.
static-smoke:
	$(PYTEST) -x -q tests/analysis/test_verifier.py
	python -m repro verify --workload gcd --defense sempe

# Transient-execution smoke: the mistraining adversary recovers the
# spectre gadget's key on the unprotected machine and lands at chance
# under the fence (one `attack run` checks both via its exit code),
# and one live static-vs-dynamic differential cell with the
# speculation window open comes back sound.
spectre-smoke:
	python -m repro attack run --workload spectre \
		--attacker mistrain-reload --trials 16 --defense fence \
		--engine fast
	python -m repro verify --workload spectre --defense fence \
		--speculation

# Lint lane: ruff over the whole tree, mypy strict on the
# proof-bearing packages (config in pyproject.toml).  The tools ship
# via requirements-ci.txt; when they are absent locally each check is
# skipped with a notice instead of failing the build.
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks; \
	else echo "lint: ruff not installed, skipping (pip install -r requirements-ci.txt)"; fi
	@if command -v mypy >/dev/null 2>&1; then \
		mypy src/repro/analysis src/repro/lang; \
	else echo "lint: mypy not installed, skipping (pip install -r requirements-ci.txt)"; fi

# Engine throughput benchmark only (appends to BENCH_perf.json).
bench-perf:
	REPRO_BENCH_SCALE=quick $(PYTEST) benchmarks/bench_perf_engine.py -q -s

# CI perf-regression gate: fresh quick-scale measurement vs the
# committed BENCH_baseline.json, machine-normalised, red on a >15%
# drop in any gated metric.  Refresh the baseline only via an explicit
# `python benchmarks/bench_gate.py --write-baseline` + reviewed diff.
bench-gate:
	python benchmarks/bench_gate.py

# CI entry: tier-1 tests plus the quick-scale engine benchmark.
bench-quick: test bench-perf

# Paper-scale sweeps for every table/figure (slow).
bench-full:
	REPRO_BENCH_SCALE=full $(PYTEST) benchmarks -q -s

# Mirror of .github/workflows/ci.yml: the lint lane, registry +
# attack + defense + chaos + static + spectre smokes, fast lane then
# slow lane (their union is exactly tier-1), the parity gate (re-run
# deliberately as a named check even though the fast lane includes
# it), the bench smoke (which refreshes BENCH_perf.json), and the
# perf-regression gate.
ci: lint registry-smoke attack-smoke defense-smoke chaos-smoke \
	static-smoke spectre-smoke test-fast test-slow parity bench-perf \
	bench-gate
