#!/usr/bin/env python3
"""The paper's real-world case study: the djpeg image decoder.

libjpeg's decompression branches on each coefficient of the (secret)
image, leaking visual detail through timing and access patterns.  This
example decodes a synthetic image to all three output formats
(PPM / GIF / BMP), on both machines, and reports:

* the execution-time overhead per format (the Fig. 8 experiment);
* cache miss rates baseline vs SeMPE (the Fig. 9 experiment);
* a leak demonstration: a flat gray image and a detailed image are
  distinguishable on the baseline machine and indistinguishable under
  SeMPE.

Run:  python examples/image_decode.py
"""

from repro.core import simulate
from repro.security import collect_observation, distinguishing_channels
from repro.workloads.djpeg import DjpegSpec, compile_djpeg, generate_image

NPIXELS = 512


def main() -> None:
    print(f"=== synthetic djpeg, {NPIXELS}-pixel image "
          f"({NPIXELS // 64} blocks) ===\n")

    print(f"{'format':>6s} {'baseline':>9s} {'SeMPE':>9s} "
          f"{'overhead':>9s}  {'DL1 miss b/s':>14s}")
    for fmt in ("ppm", "gif", "bmp"):
        spec = DjpegSpec(fmt, NPIXELS)
        base = simulate(compile_djpeg(spec, "plain").program,
                        defense="plain")
        sempe = simulate(compile_djpeg(spec, "sempe").program,
                         defense="sempe")
        overhead = sempe.cycles / base.cycles - 1.0
        print(f"{fmt:>6s} {base.cycles:9d} {sempe.cycles:9d} "
              f"{overhead * 100:8.0f}%  "
              f"{base.miss_rates['DL1'] * 100:6.2f}% / "
              f"{sempe.miss_rates['DL1'] * 100:.2f}%")

    print("\nOverheads stay well below 2x because the secure regions are "
          "a fraction of total decode work;\nPPM > GIF > BMP because PPM "
          "has the most secret-dependent decode steps per block.\n")

    # --- leak demonstration -------------------------------------------------
    print("--- can the attacker tell two images apart? ---")
    spec = DjpegSpec("ppm", NPIXELS, fill=False)   # image poked, not filled
    flat_image = [0] * NPIXELS                     # flat gray
    busy_image = generate_image(NPIXELS, seed=4242)  # detailed

    for mode, sempe, label in (("plain", False, "baseline"),
                               ("sempe", True, "SeMPE")):
        compiled = compile_djpeg(spec, mode)
        observations = [
            collect_observation(compiled.program, sempe=sempe,
                                secret_values={"img": image})
            for image in (flat_image, busy_image)
        ]
        channels = distinguishing_channels(*observations)
        verdict = ", ".join(channels) if channels else "indistinguishable"
        print(f"{label:>9s}: {verdict}")

    print("\nUnder SeMPE both decode paths run for every coefficient, so "
          "image content no longer\nshapes the branch, timing, or access "
          "behaviour of the decoder.")


if __name__ == "__main__":
    main()
