#!/usr/bin/env python3
"""Quickstart: compile a secret-branching program and compare machines.

Demonstrates the full pipeline in one page:

1. write a mini-C program with a ``secret`` variable;
2. compile it three ways: ``plain`` (insecure baseline), ``sempe``
   (secure branches + ShadowMemory), ``cte`` (FaCT-style constant-time);
3. run each on the simulated machine and compare cycles;
4. check the side channels with the noninterference reporter.

Run:  python examples/quickstart.py
"""

from repro.lang import compile_source
from repro.core import simulate
from repro.security import noninterference_report

SOURCE = """
secret int key = 0;
int result = 0;

void main() {
  int acc = 0;
  for (int it = 0; it < 10; it = it + 1) {
    if (key) {
      // the expensive path: runs (architecturally) only when key != 0,
      // but the SeMPE machine executes it on every iteration anyway.
      int w = 0;
      for (int i = 0; i < 40; i = i + 1) { w = w + i * i; }
      acc = acc + w;
    } else {
      acc = acc - 3;
    }
  }
  result = acc;
}
"""


def main() -> None:
    print("=== SeMPE quickstart ===\n")

    runs = {}
    for mode, sempe in (("plain", False), ("sempe", True), ("cte", False)):
        compiled = compile_source(SOURCE, mode=mode)
        report = simulate(compiled.program, defense=mode)
        runs[mode] = report
        machine = "SeMPE machine" if sempe else "baseline machine"
        print(f"{mode:6s} on {machine:16s}: "
              f"{report.cycles:6d} cycles, "
              f"{report.instructions:5d} instructions, "
              f"IPC {report.ipc:.2f}")

    base = runs["plain"].cycles
    print(f"\nSeMPE overhead:   {runs['sempe'].cycles / base:.2f}x "
          "(executes BOTH paths of the secret branch)")
    print(f"CTE overhead:     {runs['cte'].cycles / base:.2f}x "
          "(predicated straight-line code)")

    print("\n--- side channels across secret values {0, 1, 9} ---")
    for mode, sempe in (("plain", False), ("sempe", True)):
        compiled = compile_source(SOURCE, mode=mode)
        report = noninterference_report(
            compiled.program, "key", [0, 1, 9], sempe=sempe)
        print(f"\n[{mode} compile, sempe={sempe}]")
        print(report.summary())

    print("\nThe baseline leaks on every behavioural channel; "
          "SeMPE closes all of them.")


if __name__ == "__main__":
    main()
