#!/usr/bin/env python3
"""A miniature Fig. 10 sweep: slowdown vs nesting depth W.

Runs the Fibonacci and Ones microbenchmarks at a few nesting depths on
all three schemes (baseline, SeMPE, FaCT-like CTE), prints the slowdown
table and the normalized-to-ideal row, in a couple of minutes of
simulation.  The full sweep lives in benchmarks/bench_fig10a/b.

Run:  python examples/microbench_sweep.py
"""

from repro.core import simulate
from repro.harness.report import format_table
from repro.workloads.microbench import MicrobenchSpec, compile_microbench

W_SWEEP = (1, 2, 4)
WORKLOADS = ("fibonacci", "ones")
ITERS = 8


def run(spec: MicrobenchSpec, mode: str):
    compiled = compile_microbench(spec, mode)
    return simulate(compiled.program, defense=mode)


def main() -> None:
    print("=== microbenchmark sweep (Fig. 10, reduced) ===\n")
    rows = []
    for workload in WORKLOADS:
        for w in W_SWEEP:
            natural = MicrobenchSpec(workload, w=w, iters=ITERS)
            oblivious = MicrobenchSpec(workload, w=w, iters=ITERS,
                                       variant="oblivious")
            ideal_spec = MicrobenchSpec(workload, w=w, iters=ITERS,
                                        variant="unconditional")
            base = run(natural, "plain")
            sempe = run(natural, "sempe")
            cte = run(oblivious, "cte")
            ideal = run(ideal_spec, "plain")
            rows.append([
                workload, f"W={w}",
                f"{sempe.cycles / base.cycles:.2f}x",
                f"{cte.cycles / base.cycles:.2f}x",
                f"{sempe.cycles / ideal.cycles:.2f}",
                f"{cte.cycles / ideal.cycles:.2f}",
            ])
    print(format_table(
        ["workload", "depth", "SeMPE slowdown", "CTE slowdown",
         "SeMPE/ideal", "CTE/ideal"],
        rows,
    ))
    print("\nSeMPE tracks the executed path count (about W+1) and stays "
          "near the ideal;\nCTE's per-statement condition products make "
          "it grow super-linearly with W.")


if __name__ == "__main__":
    main()
