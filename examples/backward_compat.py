#!/usr/bin/env python3
"""The backward-compatibility story, at the byte level.

The paper encodes sJMP as an ordinary branch with the 0x2e SecPrefix
byte and eosJMP as 0x2e 0x90 (prefix + NOP).  A legacy processor
ignores the prefix and sees a NOP, so one binary serves both machines:

* on a SeMPE processor it runs with both paths executing (secure);
* on a legacy processor it runs one path (fast, compatible, insecure).

This example compiles a secret-branching program once, encodes it to
bytes, decodes those same bytes with both decoders, runs both decodes,
and shows: identical results, different security.

Run:  python examples/backward_compat.py
"""

from repro.arch.executor import Executor
from repro.isa.encoding import decode_program, encode_program
from repro.isa.disassembler import disassemble_binary
from repro.isa.program import Program
from repro.lang import compile_source
from repro.security import noninterference_report

SOURCE = """
secret int key = 1;
int result = 0;

void main() {
  int acc = 0;
  if (key) {
    int w = 0;
    for (int i = 0; i < 15; i = i + 1) { w = w + i; }
    acc = acc + w;
  } else {
    acc = acc - 1;
  }
  result = acc;
}
"""


def main() -> None:
    compiled = compile_source(SOURCE, mode="sempe")
    blob = encode_program(compiled.program)
    print(f"one binary: {len(blob)} bytes "
          f"({compiled.program.count_secure_branches()} sJMP)\n")

    print(disassemble_binary(blob, legacy=False))
    print()
    print(disassemble_binary(blob, legacy=True))

    print("\n--- running the same bytes on both machines ---")
    for legacy in (False, True):
        instructions = decode_program(blob, legacy=legacy)
        program = Program(
            instructions,
            labels=dict(compiled.program.labels),
            data=list(compiled.program.data),
            entry=compiled.program.entry,
            name="decoded",
        )
        executor = Executor(program, sempe=not legacy)
        executor.run_to_completion()
        result = executor.state.memory.load_signed(
            program.symbols["result"])
        machine = "legacy" if legacy else "SeMPE "
        print(f"{machine} machine: result = {result}, "
              f"instructions = {executor.result.instructions}, "
              f"secure regions = {executor.result.secure_regions}")

    print("\n--- but only one of them is secure ---")
    for sempe in (True, False):
        report = noninterference_report(
            compiled.program, "key", [0, 1, 3], sempe=sempe)
        machine = "SeMPE " if sempe else "legacy"
        verdict = ("all channels closed" if report.secure
                   else "leaks via " + ", ".join(report.leaking_channels()))
        print(f"{machine} machine: {verdict}")


if __name__ == "__main__":
    main()
