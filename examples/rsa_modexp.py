#!/usr/bin/env python3
"""The paper's Fig. 1 motivator: RSA square-and-multiply timing channel.

The modular-exponentiation loop multiplies only when the current key
bit is 1, so on a normal machine the execution time reveals the key's
Hamming weight — and the per-iteration branch trace reveals the key
itself.  This example:

1. runs the loop on the baseline machine for several keys and shows
   cycles tracking the Hamming weight (the classic timing attack);
2. runs the same binary on the SeMPE machine and shows the timing is
   flat;
3. verifies every run still computes the right power.

Run:  python examples/rsa_modexp.py
"""

from repro.arch.executor import Executor
from repro.core import simulate
from repro.lang import compile_source
from repro.workloads.crypto import modexp_reference, modexp_source

BITS = 12
BASE = 7
MODULUS = 1000003
KEYS = [0x000, 0x001, 0x00F, 0x0FF, 0x3FF, 0xFFF, 0xA5A]


def run_with_key(compiled, sempe: bool, key: int):
    executor = Executor(compiled.program, sempe=sempe)
    executor.state.memory.store(compiled.program.symbols["ekey"], key)
    trace = executor.run()
    from repro.uarch.pipeline import OutOfOrderPipeline
    pipeline = OutOfOrderPipeline(sempe=sempe)
    stats = pipeline.run(trace)
    result = executor.state.memory.load(compiled.program.symbols["result"])
    return stats.cycles, result


def main() -> None:
    print(f"=== modular exponentiation: {BASE}^key mod {MODULUS}, "
          f"{BITS}-bit keys ===\n")
    source = modexp_source(bits=BITS, base=BASE, modulus=MODULUS, key=0)

    for mode, sempe, label in (
        ("plain", False, "baseline machine (vulnerable)"),
        ("sempe", True, "SeMPE machine (both paths execute)"),
    ):
        compiled = compile_source(source, mode=mode)
        print(f"--- {label} ---")
        print(f"{'key':>6s} {'weight':>6s} {'cycles':>8s} {'result ok':>9s}")
        cycles_seen = set()
        for key in KEYS:
            cycles, result = run_with_key(compiled, sempe, key)
            expected = modexp_reference(BITS, BASE, MODULUS, key)
            ok = "yes" if result == expected else "NO"
            weight = bin(key).count("1")
            print(f"{key:#06x} {weight:6d} {cycles:8d} {ok:>9s}")
            cycles_seen.add(cycles)
        if len(cycles_seen) == 1:
            print("=> constant time: the key is not inferable "
                  "from execution time.\n")
        else:
            spread = max(cycles_seen) - min(cycles_seen)
            print(f"=> timing varies by {spread} cycles with key weight: "
                  "the attacker reads the key.\n")


if __name__ == "__main__":
    main()
