"""Property tests: batched execution is a pure reshaping of trials.

Three invariances pin the :class:`BatchExecutor` contract under random
per-trial secrets:

* a batch of one is byte-identical to a serial fast-engine run;
* lane results are invariant under permutation of the trial order
  (lane identity is data, not schedule);
* one batch of N trials equals two batches of N/2 merged — batch size
  is a throughput knob, never an observable.
"""

import pytest

pytestmark = pytest.mark.slow

np = pytest.importorskip("numpy")

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.batch import BatchExecutor
from repro.arch.fast_executor import FastExecutor
from repro.security.observer import poke_secrets
from repro.workloads.registry import get_workload

_SPEC = get_workload("memcmp")
_SECRET_WIDTH = len(_SPEC.secret_values({})[0])

secret_tuples = st.tuples(
    *[st.integers(min_value=0, max_value=255)] * _SECRET_WIDTH)


def _programs():
    return {mode: _SPEC.compile(mode).program for mode in ("plain", "sempe")}


_PROGRAMS = _programs()


def _run_batch(mode, secrets):
    program = _PROGRAMS[mode]
    executor = BatchExecutor(program, sempe=mode == "sempe",
                             n_lanes=len(secrets))
    for lane, secret in enumerate(secrets):
        poke_secrets(executor.memory.lane_view(lane), program.symbols,
                     {_SPEC.secret: secret})
    executor.run(line_bytes=64)
    return executor


def _lane_fingerprint(executor, lane):
    rows = []
    for chunk in executor.lane_chunks(lane):
        rows.extend(zip(chunk.pc, chunk.addr, chunk.taken))
    return (rows, executor.lane_result(lane), executor.lane_regs(lane))


def _serial_fingerprint(mode, secret):
    program = _PROGRAMS[mode]
    executor = FastExecutor(program, sempe=mode == "sempe")
    poke_secrets(executor.state.memory, program.symbols,
                 {_SPEC.secret: secret})
    rows = []
    for chunk in executor.run_chunks(64):
        rows.extend(zip(chunk.pc, chunk.addr, chunk.taken))
    return (rows, executor.result, executor.state.snapshot_regs())


@settings(max_examples=20, deadline=None)
@given(secret_tuples, st.sampled_from(["plain", "sempe"]))
def test_batch_of_one_equals_serial(secret, mode):
    executor = _run_batch(mode, [secret])
    assert _lane_fingerprint(executor, 0) == _serial_fingerprint(mode, secret)


@settings(max_examples=10, deadline=None)
@given(st.lists(secret_tuples, min_size=2, max_size=6, unique=True),
       st.randoms(use_true_random=False),
       st.sampled_from(["plain", "sempe"]))
def test_lane_results_invariant_under_trial_permutation(secrets, rng, mode):
    permuted = list(secrets)
    rng.shuffle(permuted)
    direct = _run_batch(mode, secrets)
    shuffled = _run_batch(mode, permuted)
    by_secret = {secret: _lane_fingerprint(shuffled, lane)
                 for lane, secret in enumerate(permuted)}
    for lane, secret in enumerate(secrets):
        assert _lane_fingerprint(direct, lane) == by_secret[secret], lane


@settings(max_examples=10, deadline=None)
@given(st.lists(secret_tuples, min_size=2, max_size=8),
       st.sampled_from(["plain", "sempe"]))
def test_batch_split_in_halves_changes_nothing(secrets, mode):
    whole = _run_batch(mode, secrets)
    half = len(secrets) // 2
    first = _run_batch(mode, secrets[:half])
    second = _run_batch(mode, secrets[half:])
    merged = [_lane_fingerprint(first, lane) for lane in range(half)] + \
        [_lane_fingerprint(second, lane) for lane in range(len(secrets) - half)]
    for lane in range(len(secrets)):
        assert _lane_fingerprint(whole, lane) == merged[lane], lane
