"""Property: the IR-level analyzer agrees with the source-level one.

:mod:`repro.lang.taint` decides which source ``if`` statements are
secret-dependent *before* code generation; the IR analyzer
(:mod:`repro.analysis`) rediscovers secret-dependent branches from the
compiled instruction stream alone.  On randomly generated
secret-branching programs, every source-level secret ``if`` line must
reappear as an IR branch site on the same line — the debug map ties the
two views together.  (The IR side may legitimately find *more* tainted
branches than the source walker labels as secret ifs — derived loop
bounds, merged scalars — so the containment is one-directional.)
"""

from __future__ import annotations

import pytest

pytestmark = pytest.mark.slow

from hypothesis import given, settings

from repro.analysis import build_report
from repro.lang.compiler import compile_source

from test_prop_program_gen import secret_programs


def _branch_site_lines(compiled) -> set[int]:
    report = build_report(compiled.program, compiled.secrets)
    return {site.line for site in report.sites_of_kind("branch")}


@settings(max_examples=25, deadline=None)
@given(secret_programs())
def test_source_secret_ifs_are_ir_branch_sites(source):
    compiled = compile_source(source, mode="plain")
    source_lines = compiled.taint.secret_if_lines
    assert source_lines, "the generator always emits a secret if"
    assert source_lines <= _branch_site_lines(compiled)


@settings(max_examples=15, deadline=None)
@given(secret_programs())
def test_sempe_compile_marks_the_same_lines_secure(source):
    """Under the sempe transform every source-level secret if becomes a
    *secure* (or region-protected) IR branch site on its own line."""
    compiled = compile_source(source, mode="sempe")
    report = build_report(compiled.program, compiled.secrets)
    protected_lines = {site.line
                       for site in report.sites_of_kind("branch")
                       if site.secure or site.region_protected}
    assert compiled.taint.secret_if_lines <= protected_lines


@settings(max_examples=15, deadline=None)
@given(secret_programs())
def test_sempe_projection_closes_every_generated_program(source):
    """After projection under the sempe defense no branch site survives
    — the static mirror of the generator's noninterference property."""
    from repro.defenses.registry import get_defense

    compiled = compile_source(source, mode="sempe")
    report = build_report(compiled.program, compiled.secrets,
                          defense=get_defense("sempe"))
    assert report.sites_of_kind("branch") == ()
