"""Property tests: the functional ALU matches Python's 64-bit semantics."""

import pytest

pytestmark = pytest.mark.slow


from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.executor import Executor
from repro.arch.state import MASK64, to_signed
from repro.isa.builder import ProgramBuilder
from repro.isa.opcodes import Op
from repro.isa.registers import A0, A1, A2

values = st.integers(min_value=-(1 << 63), max_value=(1 << 63) - 1)
small = st.integers(min_value=-(1 << 31), max_value=(1 << 31) - 1)


def run_binop(op: Op, a: int, b: int) -> int:
    builder = ProgramBuilder()
    builder.label("main")
    builder.li(A0, a)
    builder.li(A1, b)
    builder.op(op, rd=A2, rs1=A0, rs2=A1)
    builder.halt()
    executor = Executor(builder.build(entry="main"), sempe=False)
    executor.run_to_completion()
    return executor.state.read(A2)


@settings(max_examples=60, deadline=None)
@given(small, small)
def test_add_wraps_like_64bit(a, b):
    assert run_binop(Op.ADD, a, b) == (a + b) & MASK64


@settings(max_examples=60, deadline=None)
@given(small, small)
def test_sub_wraps(a, b):
    assert run_binop(Op.SUB, a, b) == (a - b) & MASK64


@settings(max_examples=40, deadline=None)
@given(small, small)
def test_mul_signed(a, b):
    assert run_binop(Op.MUL, a, b) == (a * b) & MASK64


@settings(max_examples=60, deadline=None)
@given(small, small)
def test_div_truncates_toward_zero(a, b):
    result = to_signed(run_binop(Op.DIV, a, b))
    if b == 0:
        assert result == -1
    else:
        expected = abs(a) // abs(b)
        if (a < 0) != (b < 0):
            expected = -expected
        assert result == expected


@settings(max_examples=60, deadline=None)
@given(small, small)
def test_rem_matches_div(a, b):
    remainder = to_signed(run_binop(Op.REM, a, b))
    if b == 0:
        assert remainder == a
    else:
        quotient = to_signed(run_binop(Op.DIV, a, b))
        assert quotient * b + remainder == a
        assert abs(remainder) < abs(b) or remainder == 0


@settings(max_examples=60, deadline=None)
@given(small, small)
def test_bitwise_ops(a, b):
    assert run_binop(Op.AND, a, b) == (a & b) & MASK64
    assert run_binop(Op.OR, a, b) == (a | b) & MASK64
    assert run_binop(Op.XOR, a, b) == (a ^ b) & MASK64


@settings(max_examples=60, deadline=None)
@given(small, st.integers(min_value=0, max_value=63))
def test_shifts(a, sh):
    assert run_binop(Op.SLL, a, sh) == (a << sh) & MASK64
    assert run_binop(Op.SRL, a, sh) == (a & MASK64) >> sh
    assert to_signed(run_binop(Op.SRA, a, sh)) == a >> sh


@settings(max_examples=60, deadline=None)
@given(small, small)
def test_comparisons(a, b):
    assert run_binop(Op.SLT, a, b) == int(a < b)
    assert run_binop(Op.SLTU, a, b) == int((a & MASK64) < (b & MASK64))
