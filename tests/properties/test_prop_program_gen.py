"""Property tests over randomly generated secret-branching programs.

A small program generator produces mini-C sources with nested secret
``if`` statements over arithmetic on a secret and some public state.
Three invariants are checked across all three compilation modes and
random secrets:

* **mode equivalence** — plain, SeMPE and CTE compute the same result;
* **SeMPE noninterference** — the functional observable trace
  (committed PCs + memory lines) does not depend on the secret;
* **CTE straight-lineness** — the CTE binary commits a
  secret-independent instruction count.
"""

from __future__ import annotations

import pytest

pytestmark = pytest.mark.slow

import hashlib

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.executor import Executor
from repro.arch.state import to_signed
from repro.lang.compiler import compile_source

_OPS = ["+", "-", "*", "&", "|", "^"]


@st.composite
def secret_programs(draw) -> str:
    """A random program with 1-3 (possibly nested) secret ifs."""
    depth = draw(st.integers(min_value=1, max_value=3))
    lines = [
        "secret int key = 0;",
        "int result = 0;",
        "void main() {",
        "int acc = 1;",
        "int pub = 3;",
    ]

    def emit_region(level: int) -> None:
        shift = draw(st.integers(min_value=0, max_value=3))
        op_a = draw(st.sampled_from(_OPS))
        const_a = draw(st.integers(min_value=1, max_value=9))
        lines.append(f"if ((key >> {shift}) & 1) {{")
        lines.append(f"acc = acc {op_a} {const_a};")
        if level + 1 < depth:
            emit_region(level + 1)
        if draw(st.booleans()):
            lines.append("} else {")
            op_b = draw(st.sampled_from(_OPS))
            const_b = draw(st.integers(min_value=1, max_value=9))
            lines.append(f"acc = acc {op_b} {const_b};")
        lines.append("}")

    emit_region(0)
    op_c = draw(st.sampled_from(_OPS))
    lines.append(f"pub = pub {op_c} 2;")
    lines.append("result = acc + pub;")
    lines.append("}")
    return "\n".join(lines)


def run(compiled, sempe: bool, key: int):
    executor = Executor(compiled.program, sempe=sempe)
    executor.state.memory.store(compiled.program.symbols["key"], key)
    trace_hash = hashlib.sha256()
    count = 0
    for record in executor.run():
        if record.kind != "inst":
            continue
        count += 1
        trace_hash.update(record.pc.to_bytes(8, "little"))
        if record.mem_addr is not None:
            trace_hash.update((record.mem_addr // 64).to_bytes(8, "little"))
    result = to_signed(
        executor.state.memory.load(compiled.program.symbols["result"]))
    return result, trace_hash.hexdigest(), count


@settings(max_examples=25, deadline=None)
@given(secret_programs(), st.integers(min_value=0, max_value=15))
def test_modes_agree(source, key):
    plain = compile_source(source, mode="plain")
    sempe = compile_source(source, mode="sempe")
    cte = compile_source(source, mode="cte")
    result_plain, _, _ = run(plain, False, key)
    result_sempe, _, _ = run(sempe, True, key)
    result_cte, _, _ = run(cte, False, key)
    assert result_plain == result_sempe == result_cte


@settings(max_examples=25, deadline=None)
@given(secret_programs(), st.integers(min_value=0, max_value=15),
       st.integers(min_value=0, max_value=15))
def test_sempe_functional_noninterference(source, key_a, key_b):
    compiled = compile_source(source, mode="sempe")
    _, trace_a, count_a = run(compiled, True, key_a)
    _, trace_b, count_b = run(compiled, True, key_b)
    assert count_a == count_b
    assert trace_a == trace_b


@settings(max_examples=15, deadline=None)
@given(secret_programs(), st.integers(min_value=0, max_value=15),
       st.integers(min_value=0, max_value=15))
def test_cte_instruction_count_secret_independent(source, key_a, key_b):
    compiled = compile_source(source, mode="cte")
    _, trace_a, count_a = run(compiled, False, key_a)
    _, trace_b, count_b = run(compiled, False, key_b)
    assert count_a == count_b
    assert trace_a == trace_b


@settings(max_examples=15, deadline=None)
@given(secret_programs())
def test_baseline_leaks_for_some_secret_pair(source):
    """The generated programs have unbalanced paths, so the plain binary
    leaks for at least one pair of secrets (sanity of the generator:
    if even the baseline never leaked, the noninterference tests above
    would be vacuous)."""
    compiled = compile_source(source, mode="plain")
    observations = set()
    for key in range(16):   # covers every condition bit the generator uses
        _, trace, count = run(compiled, False, key)
        observations.add((trace, count))
    assert len(observations) > 1
