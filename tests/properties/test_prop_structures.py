"""Property tests on core data structures: jbTable, caches, encoding."""

import pytest

pytestmark = pytest.mark.slow


from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.jbtable import JbTableError, JumpBackTable
from repro.isa.builder import ProgramBuilder
from repro.isa.encoding import decode_program, encode_program
from repro.isa.opcodes import Op
from repro.isa.registers import A0, A1, ZERO
from repro.mem.cache import Cache, CacheConfig


# --------------------------------------------------------------------------
# jbTable: random well-formed push/jump-back/pop sequences stay LIFO.
# --------------------------------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=1 << 30),
                min_size=1, max_size=20))
def test_jbtable_nested_lifo_roundtrip(targets):
    """Fully nest len(targets) regions and unwind: jump-backs must come
    out in reverse push order."""
    table = JumpBackTable(depth=32)
    for target in targets:
        table.push()
        table.set_valid(target)
    unwound = []
    for _ in targets:
        unwound.append(table.take_jump_back())
        table.pop()
    assert unwound == list(reversed(targets))
    assert len(table) == 0


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=1, max_value=31))
def test_jbtable_occupancy_never_exceeds_depth(depth):
    table = JumpBackTable(depth=depth)
    pushed = 0
    try:
        for index in range(depth + 5):
            table.push()
            table.set_valid(index)
            pushed += 1
    except JbTableError:
        pass
    assert pushed == depth
    assert table.max_occupancy == depth


# --------------------------------------------------------------------------
# Cache: inclusion-style invariants under random access streams.
# --------------------------------------------------------------------------

addresses = st.integers(min_value=0, max_value=1 << 16)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(addresses, st.booleans()), max_size=200))
def test_cache_occupancy_bounded(stream):
    cache = Cache(CacheConfig(name="T", size_bytes=1024, assoc=2,
                              line_bytes=64))
    for address, is_write in stream:
        if not cache.access(address, is_write):
            cache.fill(address, is_write=is_write)
    for occupancy in cache.set_occupancy():
        assert occupancy <= cache.config.assoc
    assert cache.stats.accesses == len(stream)
    assert cache.stats.misses <= cache.stats.accesses


@settings(max_examples=40, deadline=None)
@given(st.lists(addresses, min_size=1, max_size=100))
def test_cache_immediate_rereference_always_hits(stream):
    cache = Cache(CacheConfig(name="T", size_bytes=2048, assoc=4,
                              line_bytes=64))
    for address in stream:
        if not cache.access(address, False):
            cache.fill(address)
        assert cache.access(address, False), address


# --------------------------------------------------------------------------
# Encoding: random instruction sequences survive encode/decode.
# --------------------------------------------------------------------------

@st.composite
def random_programs(draw):
    builder = ProgramBuilder()
    builder.label("main")
    n_instructions = draw(st.integers(min_value=1, max_value=30))
    for _ in range(n_instructions):
        choice = draw(st.integers(min_value=0, max_value=4))
        if choice == 0:
            builder.op(Op.ADDI, rd=A0, rs1=ZERO,
                       imm=draw(st.integers(-1000, 1000)))
        elif choice == 1:
            builder.op(Op.ADD, rd=A0, rs1=A0, rs2=A1)
        elif choice == 2:
            builder.op(Op.LD, rd=A0, rs1=A1,
                       imm=draw(st.integers(0, 64)) * 8)
        elif choice == 3:
            builder.branch(Op.BEQ, A0, ZERO, "main",
                           secure=draw(st.booleans()))
        else:
            builder.eosjmp()
    builder.halt()
    return builder.build(entry="main")


@settings(max_examples=50, deadline=None)
@given(random_programs())
def test_encoding_roundtrip(program):
    decoded = decode_program(encode_program(program))
    assert len(decoded) == len(program)
    for original, copy in zip(program.instructions, decoded):
        assert copy.op is original.op
        assert copy.secure == original.secure


@settings(max_examples=50, deadline=None)
@given(random_programs())
def test_legacy_decode_never_yields_security_ops(program):
    decoded = decode_program(encode_program(program), legacy=True)
    assert not any(inst.secure for inst in decoded)
    assert not any(inst.op is Op.EOSJMP for inst in decoded)
