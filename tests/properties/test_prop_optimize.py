"""Property test: the §IV-E collapse optimization preserves semantics.

Random chain-nested secret programs (the collapsible shape) must
compute the same result with and without the optimization, in every
compilation mode, for every secret value — while the optimized binary
carries at most one sJMP per chain.
"""

from __future__ import annotations

import pytest

pytestmark = pytest.mark.slow

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.executor import Executor
from repro.arch.state import to_signed
from repro.lang.compiler import compile_source

_OPS = ["+", "-", "*", "^"]


@st.composite
def chain_programs(draw) -> str:
    """A collapsible chain: if(b0){ if(b1){ ... { work } } }."""
    depth = draw(st.integers(min_value=2, max_value=4))
    op = draw(st.sampled_from(_OPS))
    constant = draw(st.integers(min_value=1, max_value=9))
    lines = [
        "secret int key = 0;",
        "int result = 0;",
        "void main() {",
        "int acc = 2;",
    ]
    for level in range(depth):
        lines.append(f"if ((key >> {level}) & 1) {{")
    lines.append(f"acc = acc {op} {constant};")
    lines.extend("}" for _ in range(depth))
    lines.append("result = acc;")
    lines.append("}")
    return "\n".join(lines)


def run_result(compiled, sempe: bool, key: int) -> int:
    executor = Executor(compiled.program, sempe=sempe)
    executor.state.memory.store(compiled.program.symbols["key"], key)
    executor.run_to_completion()
    return to_signed(
        executor.state.memory.load(compiled.program.symbols["result"]))


@settings(max_examples=20, deadline=None)
@given(chain_programs(), st.integers(min_value=0, max_value=15))
def test_collapse_preserves_semantics_sempe(source, key):
    plain = compile_source(source, mode="sempe")
    collapsed = compile_source(source, mode="sempe", collapse_ifs=True)
    assert collapsed.program.count_secure_branches() <= 1
    assert run_result(plain, True, key) == run_result(collapsed, True, key)


@settings(max_examples=15, deadline=None)
@given(chain_programs(), st.integers(min_value=0, max_value=15))
def test_collapse_preserves_semantics_cte(source, key):
    plain = compile_source(source, mode="cte")
    collapsed = compile_source(source, mode="cte", collapse_ifs=True)
    assert run_result(plain, False, key) == \
        run_result(collapsed, False, key)


@settings(max_examples=15, deadline=None)
@given(chain_programs(), st.integers(min_value=0, max_value=15),
       st.integers(min_value=0, max_value=15))
def test_collapsed_regions_still_noninterferent(source, key_a, key_b):
    """Collapsing must not reopen the channel: traces stay equal."""
    import hashlib

    compiled = compile_source(source, mode="sempe", collapse_ifs=True)

    def trace_digest(key: int) -> str:
        executor = Executor(compiled.program, sempe=True)
        executor.state.memory.store(compiled.program.symbols["key"], key)
        digest = hashlib.sha256()
        for record in executor.run():
            if record.kind == "inst":
                digest.update(record.pc.to_bytes(8, "little"))
        return digest.hexdigest()

    assert trace_digest(key_a) == trace_digest(key_b)
