"""Deterministic fault injection: plans, specs, seeded chaos."""

import multiprocessing

import pytest

from repro.testing.faults import (
    ACTIONS,
    ALWAYS,
    KILL_EXIT_CODE,
    FaultPlan,
    FaultSpec,
    InjectedFault,
)

FPS = [f"{i:02x}" + "0" * 62 for i in range(16)]


# -- FaultSpec -------------------------------------------------------------

def test_unknown_action_rejected():
    with pytest.raises(ValueError):
        FaultSpec("explode")


def test_fires_gates_on_attempt():
    spec = FaultSpec("raise", times=2)
    assert spec.fires(1, "fast") and spec.fires(2, "fast")
    assert not spec.fires(3, "fast")
    assert FaultSpec("raise").fires(10**9, "fast")   # ALWAYS


def test_fires_gates_on_engine():
    spec = FaultSpec("raise", engines=("fast",))
    assert spec.fires(1, "fast")
    assert not spec.fires(1, "reference")
    assert FaultSpec("raise").fires(1, "reference")  # None = any engine


# -- FaultPlan.apply -------------------------------------------------------

def test_apply_healthy_cell_is_noop():
    plan = FaultPlan({FPS[0]: FaultSpec("raise", engines=("fast",))})
    plan.apply(FPS[1], 1)                        # not in the plan
    plan.apply(FPS[0], 1, engine="reference")    # engine-restricted


def test_apply_raises_injected_fault():
    plan = FaultPlan({FPS[0]: FaultSpec("raise")})
    with pytest.raises(InjectedFault, match=FPS[0][:12]):
        plan.apply(FPS[0], 1)


def test_apply_flaky_fault_exhausts():
    plan = FaultPlan({FPS[0]: FaultSpec("raise", times=1)})
    with pytest.raises(InjectedFault):
        plan.apply(FPS[0], 1)
    plan.apply(FPS[0], 2)                 # second attempt succeeds


def test_apply_elapsed_hang_still_raises():
    plan = FaultPlan({FPS[0]: FaultSpec("hang", hang_seconds=0.01)})
    with pytest.raises(InjectedFault, match="hang"):
        plan.apply(FPS[0], 1)


def test_apply_kill_exits_hard():
    # A kill fault dies via os._exit — exercised in a child process so
    # the test suite survives its own fault injector.
    plan = FaultPlan({FPS[0]: FaultSpec("kill")})
    ctx = multiprocessing.get_context()
    proc = ctx.Process(target=plan.apply, args=(FPS[0], 1))
    proc.start()
    proc.join(timeout=30)
    assert proc.exitcode == KILL_EXIT_CODE


def test_has_hangs():
    assert FaultPlan({FPS[0]: FaultSpec("hang")}).has_hangs()
    assert not FaultPlan({FPS[0]: FaultSpec("raise")}).has_hangs()
    assert not FaultPlan().has_hangs()


# -- FaultPlan.seeded ------------------------------------------------------

def test_seeded_is_deterministic():
    a = FaultPlan.seeded(FPS, seed=7, rate=0.5)
    b = FaultPlan.seeded(FPS, seed=7, rate=0.5)
    assert a.faults == b.faults


def test_seeded_is_order_independent():
    forward = FaultPlan.seeded(FPS, seed=3, rate=0.5)
    backward = FaultPlan.seeded(list(reversed(FPS)), seed=3, rate=0.5)
    assert forward.faults == backward.faults


def test_seeded_respects_rate_extremes():
    assert len(FaultPlan.seeded(FPS, seed=1, rate=0.0)) == 0
    full = FaultPlan.seeded(FPS, seed=1, rate=1.0)
    assert len(full) == len(FPS)
    assert {spec.action for spec in full.faults.values()} <= set(ACTIONS)


def test_seeded_rejects_bad_rate():
    with pytest.raises(ValueError):
        FaultPlan.seeded(FPS, seed=1, rate=1.5)
    with pytest.raises(ValueError):
        FaultPlan.seeded(FPS, seed=1, rate=-0.1)


def test_seeded_propagates_hang_seconds_and_actions():
    plan = FaultPlan.seeded(FPS, seed=2, rate=1.0, hang_seconds=0.25,
                            actions=("raise",))
    assert all(spec.action == "raise" for spec in plan.faults.values())
    assert all(spec.hang_seconds == 0.25 for spec in plan.faults.values())
    assert all(spec.times == ALWAYS for spec in plan.faults.values())


def test_seeded_varies_with_seed():
    plans = {frozenset(FaultPlan.seeded(FPS, seed=s, rate=0.5).faults)
             for s in range(8)}
    assert len(plans) > 1
