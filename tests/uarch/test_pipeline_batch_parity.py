"""Per-lane parity for the batched timing pipeline.

The serial per-lane pipeline (``FastExecutor`` chunks into
``OutOfOrderPipeline.run_chunks``, itself pinned to the reference model
by the golden parity suite) is the oracle: the batched timing path
(:func:`repro.uarch.batch_pipeline.lane_outcomes` — lockstep lane
sharing, Phase-A/Phase-B splitting, digest-keyed memoization) must
reproduce **bit-identical** :class:`PipelineStats` for every lane,
including the ``transient_*`` fields, under every registered defense
with speculation off and on — and the memo must be semantically
transparent (cache on/off, cold/warm: identical observations).
"""

import dataclasses
import random

import pytest

pytestmark = pytest.mark.parity

np = pytest.importorskip("numpy")

from repro.arch.batch import BatchExecutor
from repro.arch.fast_executor import FastExecutor
from repro.core.engine import flush_penalty_cycles, resolve_defense
from repro.defenses import iter_defenses
from repro.security.observer import (
    collect_observation,
    collect_observations_batch,
    poke_secrets,
)
from repro.uarch import batch_pipeline
from repro.uarch.config import MachineConfig
from repro.uarch.pipeline import OutOfOrderPipeline, PipelineStats
from repro.workloads.registry import get_workload

N_LANES = 4

_DEFENSES = [spec.name for spec in iter_defenses()]


@pytest.fixture(autouse=True)
def _cold_memo():
    """Every test starts and ends with a cold pipeline memo."""
    batch_pipeline.clear_memo()
    yield
    batch_pipeline.clear_memo()
    batch_pipeline.set_memo_enabled(True)


def _campaign(mode):
    """memcmp with diverging per-lane secrets (lockstep under SeMPE,
    divergent control flow on the baseline machine)."""
    spec = get_workload("memcmp")
    program = spec.compile(mode).program
    sample = spec.secret_values({})[0]
    secrets = [
        tuple((lane * 29 + index * 7) % 256 for index in range(len(sample)))
        for lane in range(N_LANES)
    ]
    return spec, program, [{spec.secret: secret} for secret in secrets]


def _machine(defense_name, speculate):
    spec = resolve_defense(defense_name)
    config = spec.apply_config(MachineConfig())
    if speculate:
        config.speculation.enabled = True
    return spec, config


def _serial_lane_stats(program, spec, config, secret_values):
    """The oracle: one serial fast-engine run through the serial
    pipeline, with the defense's exit flush applied like simulate()."""
    executor = FastExecutor(program, sempe=spec.sempe_machine,
                            speculation=config.speculation,
                            fence=spec.fence_branches)
    poke_secrets(executor.state.memory, program.symbols, secret_values)
    pipeline = OutOfOrderPipeline(config, sempe=spec.sempe_machine,
                                  fence=spec.fence_branches)
    stats = pipeline.run_chunks(
        executor.run_chunks(line_bytes=config.hierarchy.il1.line_bytes))
    if spec.flush_on_exit:
        stats.cycles += flush_penalty_cycles(config)
        pipeline.flush_transient_state()
    return stats


def _batched_lane_stats(program, spec, config, secret_sets):
    executor = BatchExecutor(program, sempe=spec.sempe_machine,
                             n_lanes=len(secret_sets),
                             speculation=config.speculation,
                             fence=spec.fence_branches)
    for lane, secret_values in enumerate(secret_sets):
        poke_secrets(executor.memory.lane_view(lane), program.symbols,
                     secret_values)
    executor.run(line_bytes=config.hierarchy.il1.line_bytes)
    outcomes = batch_pipeline.lane_outcomes(
        executor, config,
        sempe=spec.sempe_machine,
        fence=spec.fence_branches,
        defense_fingerprint=spec.fingerprint(),
        flush_penalty=flush_penalty_cycles(config)
        if spec.flush_on_exit else 0,
    )
    return [outcome.stats for outcome in outcomes]


@pytest.mark.parametrize("speculate", [False, True],
                         ids=["no-spec", "speculation"])
@pytest.mark.parametrize("defense", _DEFENSES)
def test_lane_stats_bit_identical_to_serial(defense, speculate):
    """Every PipelineStats field — transient_* included — matches the
    serial per-lane pipeline exactly, for every lane."""
    spec, config = _machine(defense, speculate)
    workload, program, secret_sets = _campaign(spec.compile_mode)
    batched = _batched_lane_stats(program, spec, config, secret_sets)
    for lane, secret_values in enumerate(secret_sets):
        serial = _serial_lane_stats(program, spec, config, secret_values)
        assert batched[lane] == serial, (defense, speculate, lane)


@pytest.mark.parametrize("speculate", [False, True],
                         ids=["no-spec", "speculation"])
def test_observations_bit_identical_to_serial(speculate):
    """Full ObservationTrace parity (cycles + every digest channel)
    through collect_observations_batch, per defense."""
    for defense in _DEFENSES:
        spec, config = _machine(defense, speculate)
        workload, program, secret_sets = _campaign(spec.compile_mode)
        batch = collect_observations_batch(
            program, secret_sets, defense=defense, config=config,
            keep_streams=True)
        for lane, secret_values in enumerate(secret_sets):
            serial = collect_observation(
                program, defense=defense, config=config,
                secret_values=secret_values, keep_streams=True,
                engine="fast")
            assert batch[lane] == serial, (defense, speculate, lane)


def test_memoization_is_transparent():
    """Cache on (cold), cache on (warm), and cache off all produce
    identical observations — the memo is invisible semantically."""
    spec, config = _machine("sempe", False)
    workload, program, secret_sets = _campaign(spec.compile_mode)

    cold = collect_observations_batch(program, secret_sets,
                                      defense="sempe", config=config)
    info = batch_pipeline.memo_info()
    assert info["misses"] >= 1
    warm = collect_observations_batch(program, secret_sets,
                                      defense="sempe", config=config)
    warm_info = batch_pipeline.memo_info()
    assert warm_info["hits"] > info["hits"]
    assert warm_info["misses"] == info["misses"]

    batch_pipeline.set_memo_enabled(False)
    batch_pipeline.clear_memo()
    uncached = collect_observations_batch(program, secret_sets,
                                          defense="sempe", config=config)
    off_info = batch_pipeline.memo_info()
    assert off_info["hits"] == 0 and off_info["entries"] == 0
    assert cold == warm == uncached


def test_sempe_campaign_collapses_to_one_pass():
    """SeMPE lanes share one timing digest (secure-branch outcomes are
    pipeline-invisible), so a whole campaign costs one pipeline pass."""
    spec, config = _machine("sempe", False)
    workload, program, secret_sets = _campaign("sempe")
    collect_observations_batch(program, secret_sets, defense="sempe",
                               config=config)
    info = batch_pipeline.memo_info()
    assert info["misses"] == 1
    assert info["hits"] + info["shared"] == N_LANES - 1


def test_divergent_plain_lanes_get_distinct_passes():
    """Baseline lanes with secret-dependent control flow must NOT over-
    share: the number of pipeline passes equals the number of distinct
    serial chunk streams, no fewer."""
    from repro.workloads.memcmp import guess_pattern

    spec, config = _machine("plain", False)
    workload = get_workload("memcmp")
    program = workload.compile("plain").program
    # Matching-prefix lengths 0/3/6/12: four genuinely different
    # early-exit traces on the unprotected machine.
    guess = guess_pattern(12)
    secret_sets = [
        {workload.secret: tuple(guess[:k]) + (255,) * (12 - k)}
        for k in (0, 3, 6, 12)
    ]

    distinct = set()
    for secret_values in secret_sets:
        executor = FastExecutor(program, sempe=False)
        poke_secrets(executor.state.memory, program.symbols, secret_values)
        rows = []
        for chunk in executor.run_chunks(
                line_bytes=config.hierarchy.il1.line_bytes):
            rows.extend(zip(chunk.pc, chunk.addr, chunk.taken))
        distinct.add(tuple(rows))
    assert len(distinct) >= 2  # the campaign really diverges

    collect_observations_batch(program, secret_sets, defense="plain",
                               config=config)
    info = batch_pipeline.memo_info()
    assert info["misses"] == len(distinct)


def test_memo_hits_are_mutation_isolated():
    """A caller mutating a returned outcome must not poison the memo."""
    spec, config = _machine("sempe", False)
    workload, program, secret_sets = _campaign("sempe")

    def outcomes():
        executor = BatchExecutor(program, sempe=True, n_lanes=2,
                                 speculation=config.speculation)
        for lane, secret_values in enumerate(secret_sets[:2]):
            poke_secrets(executor.memory.lane_view(lane), program.symbols,
                         secret_values)
        executor.run(line_bytes=config.hierarchy.il1.line_bytes)
        return batch_pipeline.lane_outcomes(
            executor, config, sempe=True,
            defense_fingerprint=spec.fingerprint())

    first = outcomes()
    pristine = dataclasses.replace(first[0].stats)
    first[0].stats.cycles += 12345
    first[0].miss_rates["poison"] = 1.0
    second = outcomes()
    assert second[0].stats == pristine
    assert "poison" not in second[0].miss_rates
    assert second[0].stats is not second[1].stats  # lanes never alias


# --------------------------------------------------------------------------
# PipelineStats.merge: lane-order independence (satellite property test)
# --------------------------------------------------------------------------

def _random_stats(rng):
    return PipelineStats(**{
        field.name: rng.randrange(0, 1 << 20)
        for field in dataclasses.fields(PipelineStats)
    })


def test_merge_is_lane_order_independent():
    rng = random.Random(1234)
    for trial in range(25):
        lanes = [_random_stats(rng) for _ in range(rng.randrange(0, 9))]
        merged = PipelineStats.merge(lanes)
        shuffled = lanes[:]
        rng.shuffle(shuffled)
        assert PipelineStats.merge(shuffled) == merged
        # Field-wise equality with the plain per-field sum.
        for field in dataclasses.fields(PipelineStats):
            assert getattr(merged, field.name) == sum(
                getattr(entry, field.name) for entry in lanes)


def test_merge_grouping_invariance():
    """merge(a + b) == merge([merge(a), merge(b)]) — any batching of
    lanes lands on the same totals (associativity)."""
    rng = random.Random(99)
    lanes = [_random_stats(rng) for _ in range(7)]
    whole = PipelineStats.merge(lanes)
    split = PipelineStats.merge(
        [PipelineStats.merge(lanes[:3]), PipelineStats.merge(lanes[3:])])
    assert split == whole


def test_merge_empty_is_zero():
    assert PipelineStats.merge([]) == PipelineStats()
