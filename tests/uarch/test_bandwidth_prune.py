"""_BandwidthTable pruning: the floor must advance on every prune."""

from repro.uarch.pipeline import _BandwidthTable


def test_prune_advances_floor_even_when_small():
    table = _BandwidthTable(width=2)
    table.reserve(0)
    table.reserve(0)
    table.prune(100)
    assert table._floor == 100
    # A reserve below the floor is clamped up to it.
    assert table.reserve(0) == 100


def test_prune_never_moves_floor_backwards():
    table = _BandwidthTable(width=1)
    table.prune(50)
    table.prune(10)
    assert table._floor == 50


def test_prune_drops_stale_entries():
    table = _BandwidthTable(width=1)
    for cycle in range(5000):
        table.reserve(cycle)
    assert len(table._used) == 5000
    table.prune(4000)
    assert all(cycle >= 4000 for cycle in table._used)
    # Entries at/above the cutoff survive, so re-reserving skips them.
    assert table.reserve(4000) == 5000


def test_reserve_after_prune_cannot_land_on_pruned_cycle():
    table = _BandwidthTable(width=1)
    for cycle in range(5000):
        table.reserve(cycle)
    table.prune(4500)
    # Cycles < 4500 were dropped from the map; without the floor this
    # reserve would incorrectly see them as free.
    assert table.reserve(0) >= 4500
