"""_BandwidthTable pruning: the floor must advance on every prune."""

from repro.uarch.pipeline import _BandwidthTable


def test_prune_advances_floor_even_when_small():
    table = _BandwidthTable(width=2)
    table.reserve(0)
    table.reserve(0)
    table.prune(100)
    assert table._floor == 100
    # A reserve below the floor is clamped up to it.
    assert table.reserve(0) == 100


def test_prune_never_moves_floor_backwards():
    table = _BandwidthTable(width=1)
    table.prune(50)
    table.prune(10)
    assert table._floor == 50


def test_prune_drops_stale_entries():
    table = _BandwidthTable(width=1)
    for cycle in range(5000):
        table.reserve(cycle)
    assert len(table._used) == 5000
    table.prune(4000)
    assert all(cycle >= 4000 for cycle in table._used)
    # Entries at/above the cutoff survive, so re-reserving skips them.
    assert table.reserve(4000) == 5000


def test_reserve_after_prune_cannot_land_on_pruned_cycle():
    table = _BandwidthTable(width=1)
    for cycle in range(5000):
        table.reserve(cycle)
    table.prune(4500)
    # Cycles < 4500 were dropped from the map; without the floor this
    # reserve would incorrectly see them as free.
    assert table.reserve(0) >= 4500


def test_len_reports_live_entries():
    table = _BandwidthTable(width=1)
    assert len(table) == 0
    for cycle in range(5000):
        table.reserve(cycle)
    assert len(table) == 5000
    table.prune(4000)
    assert len(table) == 1000


# --------------------------------------------------------------------------
# Bounded memory on long chunk streams (the high-water regression)
# --------------------------------------------------------------------------

def test_tables_stay_bounded_on_long_chunk_stream():
    """A long stream touching >16384 distinct store words must not grow
    the issue/load reservation maps or the store-to-load forwarding map
    without bound: the per-checkpoint high-water marks stay within the
    prune thresholds plus one checkpoint interval of growth.
    """
    from repro.arch.fast_executor import FastExecutor
    from repro.lang.compiler import compile_source
    from repro.uarch.config import MachineConfig
    from repro.uarch.pipeline import OutOfOrderPipeline

    # 20000 8-byte words: read-modify-write each once — more distinct
    # store addresses than the 16384 forwarding-map threshold, and a
    # couple hundred thousand rows (dozens of prune checkpoints).
    source = """
int arr[20000];
int out = 0;

void main() {
  int acc = 0;
  for (int i = 0; i < 20000; i = i + 1) {
    arr[i] = arr[i] + 1;
  }
  out = acc;
}
"""
    program = compile_source(source, mode="plain").program
    config = MachineConfig()
    executor = FastExecutor(program, sempe=False)
    pipeline = OutOfOrderPipeline(config, sempe=False)
    stats = pipeline.run_chunks(
        executor.run_chunks(line_bytes=config.hierarchy.il1.line_bytes))

    # Long enough to exercise many checkpoints and the store threshold.
    assert stats.instructions > 100_000

    high_water = pipeline.table_high_water
    assert high_water["issue"] > 0          # checkpoints actually sampled
    checkpoint_growth = 8192                # rows between prune checkpoints
    assert high_water["issue"] <= 4096 + checkpoint_growth + 1024
    assert high_water["load"] <= 4096 + checkpoint_growth + 1024
    assert high_water["store"] <= 16384 + checkpoint_growth + 1024
