"""Speculation-off invariance: the window must be invisible when off.

The transient-execution refactor threads a speculation knob through
the executors, the pipeline, and the observer.  The contract that kept
every pre-existing golden green is pinned here directly: with
``speculation.enabled = False`` (the default), reports, observation
traces, and raw chunk streams are byte-identical to a config that
never mentions speculation at all, the window size is irrelevant, the
transient digest is the constant hash-of-nothing, and the pipeline's
transient counters stay zero.
"""

import hashlib

import pytest

from repro.core.engine import simulate
from repro.security import collect_observation
from repro.security.observer import collect_observations_batch
from repro.uarch.config import MachineConfig, SpeculationConfig
from repro.workloads.microbench import MicrobenchSpec, compile_microbench
from repro.workloads.registry import get_workload

EMPTY_DIGEST = hashlib.sha256().hexdigest()


def _off_config(fast_config, window=32):
    import copy

    config = copy.deepcopy(fast_config)
    config.speculation = SpeculationConfig(enabled=False, window=window)
    return config


def test_default_config_has_speculation_off():
    config = MachineConfig()
    assert config.speculation == SpeculationConfig(enabled=False,
                                                   window=32)


@pytest.mark.parametrize("mode", ["plain", "sempe", "fence"])
def test_reports_identical_with_explicit_off_config(mode, fast_config):
    spec = MicrobenchSpec("fibonacci", w=2, iters=1)
    program = compile_microbench(spec, mode).program
    baseline = simulate(program, defense=mode, config=fast_config,
                        engine="fast")
    explicit = simulate(program, defense=mode,
                        config=_off_config(fast_config), engine="fast")
    assert explicit == baseline


def test_window_size_irrelevant_when_disabled(fast_config):
    spec = MicrobenchSpec("quicksort", w=1, iters=1)
    program = compile_microbench(spec, "plain").program
    reports = [simulate(program, defense="plain",
                        config=_off_config(fast_config, window=window),
                        engine="fast")
               for window in (1, 32, 4096)]
    assert reports[0] == reports[1] == reports[2]


@pytest.mark.parametrize("engine", ["reference", "fast"])
@pytest.mark.parametrize("name", ["gcd", "memcmp"])
def test_traces_identical_and_transient_empty(name, engine, fast_config):
    """The observation stream — the bytes every leak verdict and every
    attack calibration is computed from — does not move, and the
    transient channel observes the constant empty digest."""
    spec = get_workload(name)
    secret = spec.secret_values()[0]
    compiled = spec.compile("plain", **spec.leak_resolve())
    baseline = collect_observation(
        compiled.program, defense="plain",
        secret_values={spec.secret: secret},
        config=fast_config, engine=engine)
    explicit = collect_observation(
        compiled.program, defense="plain",
        secret_values={spec.secret: secret},
        config=_off_config(fast_config), engine=engine)
    assert explicit == baseline
    assert explicit.transient_digest == EMPTY_DIGEST


def test_batch_lanes_identical_and_transient_empty(fast_config):
    """The trial-batched collection path (attack calibration inputs)
    is equally invariant, lane for lane."""
    spec = get_workload("gcd")
    compiled = spec.compile("plain", **spec.leak_resolve())
    secret_sets = [{spec.secret: value}
                   for value in spec.secret_values()[:3]]
    baseline = collect_observations_batch(
        compiled.program, secret_sets, defense="plain",
        config=fast_config)
    explicit = collect_observations_batch(
        compiled.program, secret_sets, defense="plain",
        config=_off_config(fast_config))
    assert explicit == baseline
    assert all(trace.transient_digest == EMPTY_DIGEST
               for trace in explicit)


def test_chunk_streams_byte_identical_when_off(fast_config):
    """Below the observer: the raw TraceChunk columns contain no
    transient rows and do not change shape with the knob present."""
    from repro.arch.fast_executor import FastExecutor

    spec = get_workload("gcd")
    compiled = spec.compile("plain", **spec.leak_resolve())

    def chunks(config):
        executor = FastExecutor(compiled.program, sempe=False,
                                speculation=config.speculation)
        return [(tuple(chunk.pc[:chunk.n]),
                 tuple(chunk.addr[:chunk.n]),
                 tuple(chunk.taken[:chunk.n]))
                for chunk in executor.run_chunks(64)]

    baseline = chunks(fast_config)
    explicit = chunks(_off_config(fast_config))
    assert explicit == baseline
    # No transient rows (pc <= -4) anywhere in the stream.
    assert all(pc > -4 for stream in explicit for pc in stream[0])


def test_pipeline_transient_counters_zero_when_off(fast_config):
    spec = MicrobenchSpec("fibonacci", w=2, iters=1)
    program = compile_microbench(spec, "plain").program
    report = simulate(program, defense="plain",
                      config=_off_config(fast_config), engine="fast")
    assert report.pipeline.transient_instructions == 0
    assert report.pipeline.transient_accesses == 0
