"""TAGE predictor."""

from repro.uarch.branch.tage import Tage


def test_storage_near_paper_budget():
    """Table II: a 31KB TAGE.  Our geometry should be the same order."""
    tage = Tage()
    kilobytes = tage.storage_bits() / 8 / 1024
    assert 8 <= kilobytes <= 64


def test_history_lengths_geometric():
    tage = Tage(n_components=6, min_history=4, max_history=128)
    lengths = tage.history_lengths
    assert lengths[0] == 4
    assert lengths[-1] == 128
    assert all(a < b for a, b in zip(lengths, lengths[1:]))


def test_learns_biased_branch():
    tage = Tage()
    pc = 0x444
    for _ in range(32):
        tage.update(pc, True)
    assert tage.predict(pc) is True


def test_learns_long_period_pattern():
    """A period-8 pattern needs history: TAGE should learn it."""
    tage = Tage()
    pc = 0x80
    pattern = [True, True, False, True, False, False, True, False]
    correct = 0
    total = 0
    for round_index in range(300):
        outcome = pattern[round_index % len(pattern)]
        prediction = tage.predict(pc)
        tage.update(pc, outcome)
        if round_index >= 200:
            total += 1
            correct += int(prediction == outcome)
    assert correct / total > 0.85


def test_beats_bimodal_on_correlated_branches():
    from repro.uarch.branch.bimodal import Bimodal

    tage = Tage()
    bimodal = Bimodal()
    # Branch B outcome equals branch A outcome (global correlation).
    import random
    rng = random.Random(7)
    tage_correct = bimodal_correct = total = 0
    for round_index in range(800):
        outcome_a = rng.random() < 0.5
        for predictor, counter in ((tage, "t"), (bimodal, "b")):
            pass
        # pc_a trains history; pc_b is the correlated branch.
        tage.predict(0x10)
        tage.update(0x10, outcome_a)
        bimodal.predict(0x10)
        bimodal.update(0x10, outcome_a)
        prediction_t = tage.predict(0x20)
        prediction_b = bimodal.predict(0x20)
        tage.update(0x20, outcome_a)
        bimodal.update(0x20, outcome_a)
        if round_index >= 400:
            total += 1
            tage_correct += int(prediction_t == outcome_a)
            bimodal_correct += int(prediction_b == outcome_a)
    assert tage_correct > bimodal_correct
    assert tage_correct / total > 0.9


def test_digest_reflects_state():
    tage = Tage()
    initial = tage.state_digest()
    tage.update(0x40, True)
    assert tage.state_digest() != initial
    tage.reset()
    assert tage.state_digest() == initial


def test_record_counts_mispredicts():
    tage = Tage()
    mispredicted = tage.record(True, False)
    assert mispredicted
    assert tage.stats.lookups == 1
    assert tage.stats.mispredicts == 1
    assert tage.stats.accuracy == 0.0
