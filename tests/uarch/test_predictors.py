"""Branch predictors: bimodal, gshare, BTB, RAS, ITTAGE."""

from repro.uarch.branch import (
    AlwaysNotTaken, AlwaysTaken, Bimodal, BranchTargetBuffer, GShare,
    Ittage, ReturnAddressStack, make_predictor,
)


def test_factory_names():
    for name in ("tage", "gshare", "bimodal", "always-taken",
                 "always-not-taken"):
        predictor = make_predictor(name)
        assert hasattr(predictor, "predict")


def test_static_predictors():
    assert AlwaysTaken().predict(0) is True
    assert AlwaysNotTaken().predict(0) is False


def test_bimodal_learns_bias():
    predictor = Bimodal()
    pc = 0x400
    for _ in range(4):
        predictor.update(pc, True)
    assert predictor.predict(pc) is True
    for _ in range(4):
        predictor.update(pc, False)
    assert predictor.predict(pc) is False


def test_bimodal_hysteresis():
    predictor = Bimodal()
    pc = 0x100
    for _ in range(4):
        predictor.update(pc, True)
    predictor.update(pc, False)   # one not-taken shouldn't flip it
    assert predictor.predict(pc) is True


def test_gshare_learns_alternating_pattern():
    """History-based prediction: T,N,T,N is perfectly predictable."""
    predictor = GShare(table_bits=10, history_bits=8)
    pc = 0x200
    outcomes = [bool(i % 2) for i in range(400)]
    correct = 0
    for outcome in outcomes:
        if predictor.predict(pc) == outcome:
            correct += 1
        predictor.update(pc, outcome)
    # After warmup the pattern is learned.
    assert correct > 300


def test_bimodal_cannot_learn_alternating():
    predictor = Bimodal()
    pc = 0x200
    correct = 0
    for index in range(400):
        outcome = bool(index % 2)
        if predictor.predict(pc) == outcome:
            correct += 1
        predictor.update(pc, outcome)
    assert correct <= 240   # ~50%


def test_state_digest_changes_on_update():
    predictor = GShare()
    before = predictor.state_digest()
    predictor.update(0x40, True)
    assert predictor.state_digest() != before


def test_reset_restores_initial_digest():
    predictor = Bimodal()
    initial = predictor.state_digest()
    predictor.update(0x40, True)
    predictor.reset()
    assert predictor.state_digest() == initial


def test_btb_caches_targets():
    btb = BranchTargetBuffer(entries=16)
    assert btb.predict(0x40) is None
    btb.update(0x40, 0x1000)
    assert btb.predict(0x40) == 0x1000
    assert btb.misses == 1


def test_btb_conflict_eviction():
    btb = BranchTargetBuffer(entries=4)
    btb.update(0, 100)
    btb.update(4, 200)    # same index, different pc
    assert btb.predict(0) is None
    assert btb.predict(4) == 200


def test_ras_lifo():
    ras = ReturnAddressStack(depth=4)
    ras.push(1)
    ras.push(2)
    assert ras.pop() == 2
    assert ras.pop() == 1
    assert ras.pop() is None


def test_ras_depth_overflow_drops_oldest():
    ras = ReturnAddressStack(depth=2)
    for address in (1, 2, 3):
        ras.push(address)
    assert ras.pop() == 3
    assert ras.pop() == 2
    assert ras.pop() is None


def test_ittage_learns_stable_target():
    ittage = Ittage()
    pc = 0x80
    for _ in range(8):
        ittage.update(pc, 0x4000)
    assert ittage.predict(pc) == 0x4000


def test_ittage_history_dependent_targets():
    """Alternating targets keyed by path history become predictable."""
    ittage = Ittage()
    pc = 0x80
    mispredicts_late = 0
    for index in range(600):
        target = 0x1000 if index % 2 == 0 else 0x2000
        ittage.predict(pc)
        mispredicted = ittage.update(pc, target)
        if index >= 500 and mispredicted:
            mispredicts_late += 1
    assert mispredicts_late < 40
