"""Out-of-order pipeline timing model."""

from repro.arch.executor import Executor
from repro.isa.assembler import assemble
from repro.uarch.pipeline import OutOfOrderPipeline


def cycles_of(source, sempe=False, config=None, predictor=None):
    program = assemble(source)
    executor = Executor(program, sempe=sempe)
    pipeline = OutOfOrderPipeline(config, sempe=sempe)
    if predictor is not None:
        pipeline.predictor = predictor
    stats = pipeline.run(executor.run())
    return stats, pipeline


def _looped(body_lines: list[str], iterations: int = 64) -> str:
    """Wrap straight-line code in a warmup-friendly loop."""
    body = "\n".join("    " + line for line in body_lines)
    return (
        f"main:\n    addi s0, zero, {iterations}\nloop:\n{body}\n"
        "    addi s0, s0, -1\n    bne s0, zero, loop\n    halt\n"
    )


def test_dependent_chain_slower_than_independent(fast_config):
    chain = _looped(["addi a0, a0, 1"] * 24)
    parallel = _looped([f"addi a{i % 6}, zero, 1" for i in range(24)])
    chain_stats, _ = cycles_of(chain, config=fast_config)
    parallel_stats, _ = cycles_of(parallel, config=fast_config)
    assert chain_stats.cycles > parallel_stats.cycles
    assert parallel_stats.ipc > 2.0


def test_long_latency_divide_serialises(fast_config):
    source = "main:\n    addi a0, zero, 1000\n    addi a1, zero, 3\n" + \
        "\n".join("    div a0, a0, a1" for _ in range(16)) + "\n    halt\n"
    stats, _ = cycles_of(source, config=fast_config)
    # 16 dependent divides at 20 cycles each dominate.
    assert stats.cycles >= 16 * fast_config.div_latency


def test_load_miss_latency_visible(fast_config):
    source = """
        .data
    buf: .space 512
        .text
    main:
        la a0, buf
        ld a1, 0(a0)
        ld a2, 2048(a0)
        halt
    """
    stats, pipeline = cycles_of(source, config=fast_config)
    assert stats.dl1_misses >= 2
    assert stats.cycles > fast_config.hierarchy.dram_latency


def test_mispredict_penalty_counted(fast_config):
    # A data-dependent unpredictable-ish pattern: alternate taken/not.
    source = """
    main:
        addi a0, zero, 0
        addi a1, zero, 64
    loop:
        andi a2, a0, 1
        beq  a2, zero, even
        addi a3, a3, 1
    even:
        addi a0, a0, 1
        bne  a0, a1, loop
        halt
    """
    stats, pipeline = cycles_of(source, config=fast_config)
    assert stats.branches > 0
    assert stats.mispredicts >= 1       # at least the cold ones


def test_secure_branches_never_mispredict(fast_config):
    """sJMP must not touch the predictor (the branch-predictor channel)."""
    source = """
        .data
    key: .quad 0
        .text
    main:
        la   a0, key
        ld   a1, 0(a0)
        addi a4, zero, 32
    loop:
        sbeq a1, zero, skip
        addi a2, a2, 1
        jmp  skip
    skip:
        eosjmp
        addi a4, a4, -1
        bne  a4, zero, loop
        halt
    """
    stats, pipeline = cycles_of(source, sempe=True, config=fast_config)
    # The loop branch may mispredict, but lookups must not include the
    # 32 sJMP executions.
    assert pipeline.predictor.stats.lookups < 40
    assert stats.drains == 96


def test_drain_cycles_accumulate(fast_config):
    source = """
        .data
    key: .quad 0
        .text
    main:
        la   a0, key
        ld   a1, 0(a0)
        sbeq a1, zero, skip
        addi a2, a2, 1
        jmp  skip
    skip:
        eosjmp
        halt
    """
    stats, _ = cycles_of(source, sempe=True, config=fast_config)
    assert stats.drains == 3
    assert stats.spm_cycles > 0


def test_icache_misses_on_big_code(fast_config):
    body = "\n".join(f"    addi a{i % 6}, zero, {i}" for i in range(2000))
    source = "main:\n" + body + "\n    halt\n"
    stats, _ = cycles_of(source, config=fast_config)
    assert stats.il1_misses > 10


def test_return_address_stack_predicts_returns(fast_config):
    source = """
    main:
        addi a1, zero, 16
    loop:
        jal  ra, callee
        addi a1, a1, -1
        bne  a1, zero, loop
        halt
    callee:
        addi a0, a0, 1
        ret
    """
    stats, _ = cycles_of(source, config=fast_config)
    # Returns should be RAS-predicted: few indirect mispredicts.
    assert stats.indirect_mispredicts <= 2


def test_stats_instruction_count_matches_trace(fast_config):
    source = "main:\n    addi a0, zero, 1\n    halt\n"
    stats, _ = cycles_of(source, config=fast_config)
    assert stats.instructions == 2
