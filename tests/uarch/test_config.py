"""Machine configuration (Table II)."""

from repro.uarch.config import MachineConfig, fast_functional, haswell_like


def test_table2_defaults():
    config = haswell_like()
    assert config.clock_ghz == 2.0
    assert config.fetch_width == 8
    assert config.retire_width == 12
    assert config.rob_entries == 192
    assert config.int_phys_regs == 256
    assert config.int_issue_buffer == 60
    assert config.load_queue == 32 and config.store_queue == 32
    assert config.hierarchy.dl1.size_bytes == 32 * 1024
    assert config.hierarchy.il1.size_bytes == 16 * 1024
    assert config.hierarchy.l2.size_bytes == 256 * 1024
    assert config.hierarchy.dl1.assoc == 2
    assert config.predictor == "tage"
    assert config.spm_slots == 30
    assert config.spm_bytes_per_cycle == 64
    assert config.jbtable_depth == 30


def test_latency_table_covers_all_classes():
    config = MachineConfig()
    from repro.isa.opcodes import OpClass
    for opclass in OpClass:
        assert config.latency_for(opclass.value) >= 1


def test_div_slower_than_mul_slower_than_alu():
    config = MachineConfig()
    assert config.latency_for("alu") < config.latency_for("mul")
    assert config.latency_for("mul") < config.latency_for("div")


def test_fast_functional_is_smaller():
    fast = fast_functional()
    full = haswell_like()
    assert fast.rob_entries < full.rob_entries
    assert fast.hierarchy.dl1.size_bytes < full.hierarchy.dl1.size_bytes
