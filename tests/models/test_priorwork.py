"""Raccoon / GhostRider cost models."""

from repro.core import simulate
from repro.models.priorwork import GhostRiderModel, RaccoonModel
from repro.workloads.microbench import MicrobenchSpec, compile_microbench


def reports(workload="ones", w=2, iters=1):
    spec = MicrobenchSpec(workload, w=w, iters=iters)
    base = simulate(compile_microbench(spec, "plain").program, sempe=False)
    sempe = simulate(compile_microbench(spec, "sempe").program, sempe=True)
    return base, sempe


def test_raccoon_slower_than_sempe():
    base, sempe = reports()
    estimate = RaccoonModel().estimate(sempe, base.cycles)
    assert estimate.slowdown > sempe.cycles / base.cycles
    assert estimate.approach == "Raccoon"


def test_ghostrider_slower_than_raccoon():
    base, sempe = reports()
    raccoon = RaccoonModel().estimate(sempe, base.cycles)
    ghostrider = GhostRiderModel().estimate(sempe, base.cycles)
    assert ghostrider.slowdown > raccoon.slowdown


def test_penalties_scale_models():
    base, sempe = reports()
    cheap = RaccoonModel(txn_penalty=1).estimate(sempe, base.cycles)
    expensive = RaccoonModel(txn_penalty=100).estimate(sempe, base.cycles)
    assert expensive.slowdown > cheap.slowdown


def test_memory_density_drives_oram_cost():
    """The workload whose secure regions are more memory-dense must pay
    a larger ORAM multiplier relative to its SeMPE cost."""
    ghostrider = GhostRiderModel()
    densities = {}
    ratios = {}
    for workload in ("fibonacci", "ones"):
        base, sempe = reports(workload=workload)
        functional = sempe.functional
        mem_ops = functional.secure_loads + functional.secure_stores
        densities[workload] = mem_ops / max(sempe.cycles, 1)
        estimate = ghostrider.estimate(sempe, base.cycles)
        ratios[workload] = estimate.slowdown / (sempe.cycles / base.cycles)
    denser = max(densities, key=densities.get)
    lighter = min(densities, key=densities.get)
    assert ratios[denser] > ratios[lighter]
