"""Command-line interface."""

import pytest

from repro.cli import main

SOURCE = """
secret int key = 1;
int result = 0;

void main() {
  int acc = 0;
  if (key) { acc = acc + 7; } else { acc = acc - 3; }
  result = acc;
}
"""


@pytest.fixture
def source_file(tmp_path):
    path = tmp_path / "victim.mc"
    path.write_text(SOURCE)
    return str(path)


def test_compile_command(source_file, capsys):
    assert main(["compile", source_file, "--mode", "sempe"]) == 0
    out = capsys.readouterr().out
    assert "sJMPs=1" in out
    assert "sbeq" in out or "sbne" in out or "eosjmp" in out


def test_compile_with_collapse(source_file, capsys):
    assert main(["compile", source_file, "--collapse-ifs"]) == 0


def test_run_command(source_file, capsys):
    assert main(["run", source_file, "--mode", "sempe",
                 "--globals", "result"]) == 0
    out = capsys.readouterr().out
    assert "machine:       SeMPE" in out
    assert "result = 7" in out
    assert "secure regions" in out


def test_run_legacy_machine(source_file, capsys):
    assert main(["run", source_file, "--mode", "sempe", "--legacy",
                 "--globals", "result"]) == 0
    out = capsys.readouterr().out
    assert "machine:       baseline" in out
    assert "result = 7" in out


def test_run_engine_flag_bit_identical(source_file, capsys):
    assert main(["run", source_file, "--engine", "fast"]) == 0
    fast_out = capsys.readouterr().out
    assert main(["run", source_file, "--engine", "reference"]) == 0
    reference_out = capsys.readouterr().out
    assert fast_out == reference_out
    assert "cycles:" in fast_out


def test_run_unknown_global(source_file, capsys):
    assert main(["run", source_file, "--globals", "nope"]) == 0
    assert "<no such global>" in capsys.readouterr().out


def test_check_secure(source_file, capsys):
    code = main(["check", source_file, "--mode", "sempe",
                 "--secret", "key", "--values", "0,1,5"])
    out = capsys.readouterr().out
    assert code == 0
    assert "SECURE" in out


def test_check_leaky(source_file, capsys):
    code = main(["check", source_file, "--mode", "plain",
                 "--secret", "key", "--values", "0,1,5"])
    out = capsys.readouterr().out
    assert code == 1
    assert "LEAKS" in out


def test_disasm_shows_both_decodes(source_file, capsys):
    assert main(["disasm", source_file]) == 0
    out = capsys.readouterr().out
    assert "; SeMPE decode" in out
    assert "; legacy decode (SecPrefix ignored)" in out
    assert "eosJMP (join point; NOP on legacy)" in out


def test_experiments_table2(capsys):
    assert main(["experiments", "table2"]) == 0
    assert "2.0 GHz" in capsys.readouterr().out


def test_experiments_unknown(capsys):
    assert main(["experiments", "nope"]) == 2


def test_stdin_input(monkeypatch, capsys):
    import io

    monkeypatch.setattr("sys.stdin", io.StringIO(SOURCE))
    assert main(["compile", "-"]) == 0
    assert "sJMPs=1" in capsys.readouterr().out
