"""Command-line interface."""

import pytest

from repro.cli import main

SOURCE = """
secret int key = 1;
int result = 0;

void main() {
  int acc = 0;
  if (key) { acc = acc + 7; } else { acc = acc - 3; }
  result = acc;
}
"""


@pytest.fixture
def source_file(tmp_path):
    path = tmp_path / "victim.mc"
    path.write_text(SOURCE)
    return str(path)


def test_compile_command(source_file, capsys):
    assert main(["compile", source_file, "--mode", "sempe"]) == 0
    out = capsys.readouterr().out
    assert "sJMPs=1" in out
    assert "sbeq" in out or "sbne" in out or "eosjmp" in out


def test_compile_with_collapse(source_file, capsys):
    assert main(["compile", source_file, "--collapse-ifs"]) == 0


def test_run_command(source_file, capsys):
    assert main(["run", source_file, "--mode", "sempe",
                 "--globals", "result"]) == 0
    out = capsys.readouterr().out
    assert "machine:       SeMPE" in out
    assert "result = 7" in out
    assert "secure regions" in out


def test_run_legacy_machine(source_file, capsys):
    assert main(["run", source_file, "--mode", "sempe", "--legacy",
                 "--globals", "result"]) == 0
    out = capsys.readouterr().out
    assert "machine:       baseline" in out
    assert "result = 7" in out


def test_run_engine_flag_bit_identical(source_file, capsys):
    assert main(["run", source_file, "--engine", "fast"]) == 0
    fast_out = capsys.readouterr().out
    assert main(["run", source_file, "--engine", "reference"]) == 0
    reference_out = capsys.readouterr().out
    assert fast_out == reference_out
    assert "cycles:" in fast_out


def test_run_unknown_global(source_file, capsys):
    assert main(["run", source_file, "--globals", "nope"]) == 0
    assert "<no such global>" in capsys.readouterr().out


def test_check_secure(source_file, capsys):
    code = main(["check", source_file, "--mode", "sempe",
                 "--secret", "key", "--values", "0,1,5"])
    out = capsys.readouterr().out
    assert code == 0
    assert "SECURE" in out


def test_check_leaky(source_file, capsys):
    code = main(["check", source_file, "--mode", "plain",
                 "--secret", "key", "--values", "0,1,5"])
    out = capsys.readouterr().out
    assert code == 1
    assert "LEAKS" in out


def test_disasm_shows_both_decodes(source_file, capsys):
    assert main(["disasm", source_file]) == 0
    out = capsys.readouterr().out
    assert "; SeMPE decode" in out
    assert "; legacy decode (SecPrefix ignored)" in out
    assert "eosJMP (join point; NOP on legacy)" in out


def test_workloads_list(capsys):
    from repro.workloads.registry import workload_names

    assert main(["workloads", "list"]) == 0
    out = capsys.readouterr().out
    for name in ("modexp", "djpeg", "memcmp", "table_lookup", "bsearch",
                 "gcd"):
        assert name in out
    count = len(workload_names())
    assert count >= 6                        # the acceptance floor
    assert f"{count} workloads registered" in out
    # default action is list
    assert main(["workloads"]) == 0
    assert "Victim workload registry" in capsys.readouterr().out


def test_workloads_show(capsys):
    assert main(["workloads", "show", "memcmp", "--params", "n=4"]) == 0
    out = capsys.readouterr().out
    assert "secret int pw[4];" in out
    assert "declared channels:" in out
    assert "derived channels:" in out


def test_workloads_show_flags_undeclared_derived_channels(capsys):
    """modexp declares no memory-address channel, but the static view of
    a secret branch charges it — the mismatch note must be visible."""
    assert main(["workloads", "show", "modexp"]) == 0
    out = capsys.readouterr().out
    assert "statically derived but not declared" in out


def test_workloads_show_requires_name(capsys):
    assert main(["workloads", "show"]) == 2
    assert "requires a workload name" in capsys.readouterr().err


def test_workloads_list_rejects_trailing_name(capsys):
    assert main(["workloads", "list", "gcd"]) == 2
    assert "workloads show gcd" in capsys.readouterr().err


def test_run_workload(capsys):
    assert main(["run", "--workload", "gcd", "--globals", "out"]) == 0
    out = capsys.readouterr().out
    assert "machine:       SeMPE" in out
    assert "out = 40902" in out      # gcd(0, 40902) with the default secret


def test_run_workload_param_override(capsys):
    assert main(["run", "--workload", "gcd", "--params", "other=35",
                 "--globals", "out"]) == 0
    assert "out = 35" in capsys.readouterr().out


def test_run_rejects_file_plus_workload(source_file, capsys):
    assert main(["run", source_file, "--workload", "gcd"]) == 2
    assert "not both" in capsys.readouterr().err


def test_run_unknown_workload_is_usage_error(capsys):
    assert main(["run", "--workload", "nope"]) == 2
    assert "unknown workload" in capsys.readouterr().err


def test_run_bad_params_are_usage_errors(capsys):
    assert main(["run", "--workload", "gcd", "--params", "nope=1"]) == 2
    assert "no parameter" in capsys.readouterr().err
    assert main(["run", "--workload", "gcd", "--params", "bogus"]) == 2
    assert "key=value" in capsys.readouterr().err
    # Builder-level validation surfaces the same way.
    assert main(["run", "--workload", "bsearch",
                 "--params", "entries=10"]) == 2
    assert "power of two" in capsys.readouterr().err


def test_run_workload_collapse_ifs_threads_through(capsys, monkeypatch):
    """--collapse-ifs must reach the workload compiler, not be silently
    dropped on the --workload path."""
    from repro.workloads.registry import get_workload

    spec = get_workload("memcmp")
    seen = {}
    original = spec.compile

    def spying_compile(mode, collapse_ifs=False, **overrides):
        seen["collapse_ifs"] = collapse_ifs
        return original(mode, collapse_ifs=collapse_ifs, **overrides)

    monkeypatch.setattr(type(spec), "compile",
                        lambda self, mode, collapse_ifs=False, **kw:
                        spying_compile(mode, collapse_ifs, **kw))
    assert main(["run", "--workload", "memcmp", "--collapse-ifs"]) == 0
    assert seen["collapse_ifs"] is True
    assert main(["run", "--workload", "memcmp"]) == 0
    assert seen["collapse_ifs"] is False


def test_check_workload_accepts_params(capsys):
    code = main(["check", "--workload", "gcd", "--mode", "sempe",
                 "--params", "bits=8"])
    assert code == 0
    assert "SECURE" in capsys.readouterr().out


def test_check_workload_honours_explicit_values(capsys):
    """--values overrides the spec's representative secrets: a single
    value cannot leak (nothing to distinguish), so plain reports
    SECURE."""
    assert main(["check", "--workload", "gcd", "--mode", "plain",
                 "--values", "7"]) == 0
    assert "SECURE" in capsys.readouterr().out
    assert main(["check", "--workload", "gcd", "--mode", "plain",
                 "--values", "7,40902"]) == 1
    assert "LEAKS" in capsys.readouterr().out


def test_run_requires_file_or_workload(capsys):
    assert main(["run"]) == 2
    assert "required" in capsys.readouterr().err


def test_check_workload_plain_leaks(capsys):
    code = main(["check", "--workload", "gcd", "--mode", "plain"])
    out = capsys.readouterr().out
    assert code == 1
    assert "LEAKS" in out


def test_check_workload_sempe_secure(capsys):
    code = main(["check", "--workload", "gcd", "--mode", "sempe"])
    out = capsys.readouterr().out
    assert code == 0
    assert "SECURE" in out


def test_check_file_requires_secret(source_file, capsys):
    assert main(["check", source_file]) == 2
    assert "--secret is required" in capsys.readouterr().err


def test_check_rejects_contradictory_flags(source_file, capsys):
    assert main(["check", "--workload", "gcd", "--secret", "ekey"]) == 2
    assert "conflicts with --workload" in capsys.readouterr().err
    assert main(["check", source_file, "--secret", "key",
                 "--params", "n=4"]) == 2
    assert "--params only applies" in capsys.readouterr().err
    assert main(["check", "--workload", "gcd", "--values", "7,abc"]) == 2
    assert "invalid --values" in capsys.readouterr().err


def test_run_rejects_params_with_file(source_file, capsys):
    assert main(["run", source_file, "--params", "n=4"]) == 2
    assert "--params only applies" in capsys.readouterr().err


def test_experiments_table2(capsys):
    assert main(["experiments", "table2"]) == 0
    assert "2.0 GHz" in capsys.readouterr().out


def test_experiments_unknown(capsys):
    assert main(["experiments", "nope"]) == 2


def test_stdin_input(monkeypatch, capsys):
    import io

    monkeypatch.setattr("sys.stdin", io.StringIO(SOURCE))
    assert main(["compile", "-"]) == 0
    assert "sJMPs=1" in capsys.readouterr().out


# --------------------------------------------------------------------------
# attack command
# --------------------------------------------------------------------------

ATTACK_ARGS = ["attack", "run", "--workload", "memcmp",
               "--attacker", "prime-probe", "--trials", "16",
               "--engine", "fast"]


@pytest.mark.attack
def test_attack_list(capsys):
    assert main(["attack", "list"]) == 0
    out = capsys.readouterr().out
    for name in ("timing", "prime-probe", "flush-reload",
                 "predictor-probe", "branch-trace", "mistrain-reload"):
        assert name in out
    assert "6 attackers registered" in out


@pytest.mark.attack
@pytest.mark.slow
def test_attack_run_both_machines(capsys):
    assert main(ATTACK_ARGS) == 0
    out = capsys.readouterr().out
    assert "baseline machine:" in out and "SeMPE machine:" in out
    assert "verdict:       recovered" in out
    assert "verdict:       chance" in out
    assert "key recovered on baseline, defeated by SeMPE" in out


@pytest.mark.attack
@pytest.mark.slow
def test_attack_run_single_mode_and_store(tmp_path, capsys):
    from repro.harness import clear_cache, set_store

    clear_cache()
    previous = set_store(None)
    try:
        store_dir = str(tmp_path / "attacks")
        args = ATTACK_ARGS + ["--mode", "plain", "--store", store_dir,
                              "--cache-stats"]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "SeMPE machine:" not in out
        assert f"store [{store_dir}]" in out and "stores=1" in out
        # Second invocation is served from the on-disk store.
        clear_cache()
        assert main(args) == 0
        assert "hits=1" in capsys.readouterr().out
    finally:
        set_store(previous)
        clear_cache()


@pytest.mark.attack
def test_attack_run_requires_workload_and_attacker(capsys):
    assert main(["attack", "run"]) == 2
    assert "requires --workload and --attacker" in capsys.readouterr().err


@pytest.mark.attack
def test_attack_unknown_attacker(capsys):
    assert main(["attack", "run", "--workload", "memcmp",
                 "--attacker", "psychic"]) == 2
    assert "unknown attacker" in capsys.readouterr().err


@pytest.mark.attack
def test_attack_inapplicable_pair(capsys):
    assert main(["attack", "run", "--workload", "modexp",
                 "--attacker", "flush-reload"]) == 2
    err = capsys.readouterr().err
    assert "does not declare" in err and "applicable" in err


@pytest.mark.attack
def test_attack_list_rejects_run_flags(capsys):
    assert main(["attack", "list", "--workload", "memcmp"]) == 2


# --------------------------------------------------------------------------
# sweep command + cache/store statistics
# --------------------------------------------------------------------------

@pytest.fixture
def clean_harness():
    from repro.harness import clear_cache, set_store

    clear_cache()
    previous = set_store(None)
    yield
    set_store(previous)
    clear_cache()


SWEEP_ARGS = ["sweep", "fig10a", "--w", "1", "--workloads", "fibonacci",
              "--jobs", "1", "--cache-stats"]


def test_sweep_smoke(clean_harness, tmp_path, capsys):
    store_dir = str(tmp_path / "store")
    assert main(SWEEP_ARGS + ["--store", store_dir]) == 0
    out = capsys.readouterr().out
    assert "Fig. 10a" in out
    assert "3 cells" in out and "3 computed" in out
    assert "run cache:" in out
    assert f"store [{store_dir}]" in out and "stores=3" in out


def test_sweep_second_invocation_served_from_store(clean_harness, tmp_path,
                                                   capsys):
    from repro.harness import clear_cache

    store_dir = str(tmp_path / "store")
    assert main(SWEEP_ARGS + ["--store", store_dir]) == 0
    first = capsys.readouterr().out
    clear_cache()                       # simulate a fresh process
    assert main(SWEEP_ARGS + ["--store", store_dir]) == 0
    second = capsys.readouterr().out
    assert "3 from store" in second and "0 computed" in second
    # the rendered table is identical either way
    assert first.split("run cache:")[0].split("sweep fig10a:")[0] == \
        second.split("run cache:")[0].split("sweep fig10a:")[0]


def test_sweep_no_store(clean_harness, tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    assert main(SWEEP_ARGS + ["--no-store"]) == 0
    out = capsys.readouterr().out
    assert "store: (none)" in out
    assert not (tmp_path / ".repro-store").exists()


def test_sweep_progress_goes_to_stderr(clean_harness, tmp_path, capsys):
    """`repro sweep --progress | jq`-style piping: the live progress is
    stderr-only and stdout stays byte-identical to a silent sweep."""
    assert main(SWEEP_ARGS + ["--progress", "--no-store"]) == 0
    captured = capsys.readouterr()
    assert "[3/3]" in captured.err            # live cell progress
    assert "\r[" not in captured.out          # no progress in the tables
    assert "[1/3]" not in captured.out
    assert "Fig. 10a" in captured.out

    from repro.harness import clear_cache

    clear_cache()                             # force a recomputation
    assert main(SWEEP_ARGS + ["--no-store"]) == 0
    silent = capsys.readouterr()
    assert silent.err == ""                   # no --progress, no stderr
    assert silent.out == captured.out         # machine-parseable either way


def test_sweep_unknown_experiment(clean_harness, capsys):
    assert main(["sweep", "fig99"]) == 2


def test_run_cache_stats_flag(clean_harness, source_file, capsys):
    assert main(["run", source_file, "--cache-stats"]) == 0
    out = capsys.readouterr().out
    assert "run cache: hits=" in out
    assert "store: (none)" in out


def test_experiments_cache_stats_flag(clean_harness, capsys):
    assert main(["experiments", "table2", "--cache-stats"]) == 0
    out = capsys.readouterr().out
    assert "run cache: hits=" in out


def test_sweep_invalid_workloads_and_sizes(clean_harness, tmp_path, capsys):
    assert main(["sweep", "fig10a", "--workloads", "bogus",
                 "--store", str(tmp_path / "s1")]) == 2
    assert "unknown workloads" in capsys.readouterr().err
    assert not (tmp_path / "s1").exists()     # rejected before store I/O
    assert main(["sweep", "fig8", "--sizes", "12x",
                 "--store", str(tmp_path / "s2")]) == 2
    assert "invalid --sizes" in capsys.readouterr().err
    assert not (tmp_path / "s2").exists()


def test_sweep_no_store_clears_installed_store(clean_harness, tmp_path,
                                               capsys):
    from repro.harness import get_store

    store_dir = str(tmp_path / "store")
    assert main(SWEEP_ARGS + ["--store", store_dir]) == 0
    capsys.readouterr()
    assert get_store() is not None
    assert main(SWEEP_ARGS + ["--no-store"]) == 0
    assert get_store() is None
    assert "store: (none)" in capsys.readouterr().out


# --------------------------------------------------------------------------
# Defense registry commands and the --defense flag
# --------------------------------------------------------------------------


def test_defenses_list(capsys):
    assert main(["defenses", "list"]) == 0
    out = capsys.readouterr().out
    for name in ("plain", "sempe", "cte", "fence", "cache-partition",
                 "cache-randomize", "flush-local"):
        assert name in out
    assert "defenses registered" in out


def test_defenses_show(capsys):
    assert main(["defenses", "show", "cache-partition"]) == 0
    out = capsys.readouterr().out
    assert "protected_ways" in out
    assert "fingerprint:" in out
    assert "cache-state" in out


def test_defenses_show_requires_name(capsys):
    assert main(["defenses", "show"]) == 2
    assert "requires a defense name" in capsys.readouterr().err


def test_defenses_unknown_name(capsys):
    assert main(["defenses", "show", "rot13"]) == 2
    assert "unknown defense" in capsys.readouterr().err


def test_defenses_list_rejects_extra_argument(capsys):
    assert main(["defenses", "list", "fence"]) == 2
    assert "defenses show fence" in capsys.readouterr().err


def test_run_with_defense_flag(capsys):
    assert main(["run", "--workload", "gcd", "--defense", "fence"]) == 0
    out = capsys.readouterr().out
    assert "defense:       fence" in out
    assert "machine:       baseline" in out


def test_run_defense_and_mode_conflict(source_file, capsys):
    assert main(["run", source_file, "--defense", "fence",
                 "--mode", "plain"]) == 2
    assert "not both" in capsys.readouterr().err


def test_run_unknown_defense(source_file, capsys):
    assert main(["run", source_file, "--defense", "rot13"]) == 2
    assert "unknown defense" in capsys.readouterr().err


def test_run_mode_alias_still_selects_machine(source_file, capsys):
    assert main(["run", source_file, "--mode", "plain"]) == 0
    out = capsys.readouterr().out
    assert "defense:       plain" in out
    assert "machine:       baseline" in out


def test_check_with_defense_flag(capsys):
    # fence closes the predictor channel on table_lookup but leaves
    # timing open, so the audit exits 1 (leaks remain) with verdict text.
    code = main(["check", "--workload", "table_lookup",
                 "--defense", "fence"])
    out = capsys.readouterr().out
    assert code == 1
    assert "LEAKS via" in out
    assert "branch-predictor" not in out.splitlines()[-1]


def test_attack_run_with_defense(capsys):
    assert main(["attack", "run", "--workload", "memcmp",
                 "--attacker", "prime-probe", "--trials", "16",
                 "--defense", "cache-partition", "--engine",
                 "fast"]) == 0
    out = capsys.readouterr().out
    assert "cache-partition-protected machine:" in out
    assert "defeated by cache-partition" in out


def test_attack_defense_and_mode_conflict(capsys):
    assert main(["attack", "run", "--workload", "memcmp",
                 "--attacker", "prime-probe", "--defense",
                 "cache-partition", "--mode", "plain"]) == 2
    assert "not both" in capsys.readouterr().err


def test_experiments_defensematrix_listed(capsys):
    from repro.harness import EXPERIMENTS

    assert "defensematrix" in EXPERIMENTS


# --------------------------------------------------------------------------
# verify command: the static-vs-dynamic differential gate
# --------------------------------------------------------------------------

def test_verify_single_pair(clean_harness, capsys):
    assert main(["verify", "--workload", "gcd",
                 "--defense", "sempe"]) == 0
    out = capsys.readouterr().out
    assert "Static-vs-dynamic differential" in out
    assert "1/1 pairs ok" in out


def test_verify_one_workload_all_defenses(clean_harness, capsys):
    from repro.defenses import defense_names

    assert main(["verify", "--workload", "gcd"]) == 0
    out = capsys.readouterr().out
    total = len(defense_names())
    assert f"{total}/{total} pairs ok" in out
    # The explained gap is reported, never flagged.
    assert "UNSOUND" not in out


def test_verify_sites_flag_prints_provenance(clean_harness, capsys):
    assert main(["verify", "--workload", "gcd", "--defense", "plain",
                 "--sites"]) == 0
    out = capsys.readouterr().out
    assert "[branch]" in out
    assert "pc=0x" in out and "line=" in out


def test_verify_store_round_trip(clean_harness, tmp_path, capsys):
    from repro.harness import clear_cache

    store_dir = str(tmp_path / "store")
    args = ["verify", "--workload", "gcd", "--defense", "sempe",
            "--store", store_dir, "--cache-stats"]
    assert main(args) == 0
    first = capsys.readouterr().out
    assert "stores=1" in first
    clear_cache()
    assert main(args) == 0
    second = capsys.readouterr().out
    assert "hits=1" in second.split("store [")[1]
    assert first.split("run cache:")[0] == second.split("run cache:")[0]


def test_verify_rejects_unknown_names(clean_harness, capsys):
    assert main(["verify", "--workload", "nope"]) == 2
    assert main(["verify", "--defense", "nope"]) == 2


# --------------------------------------------------------------------------
# fault tolerance: policy flags, failure summaries, exit codes
# --------------------------------------------------------------------------

FT_ARGS = ["sweep", "fig10a", "--w", "1", "--workloads", "ones",
           "--jobs", "1"]


def test_sweep_chaos_requires_timeout(clean_harness, capsys):
    assert main(FT_ARGS + ["--no-store", "--chaos", "1"]) == 2
    assert "--timeout" in capsys.readouterr().err


def test_sweep_rejects_bad_policy_values(clean_harness, capsys):
    assert main(FT_ARGS + ["--no-store", "--timeout", "0"]) == 2
    assert "--timeout must be positive" in capsys.readouterr().err
    assert main(FT_ARGS + ["--no-store", "--retries", "-1"]) == 2
    assert "--retries must be >= 0" in capsys.readouterr().err
    assert main(FT_ARGS + ["--no-store", "--max-instructions", "0"]) == 2
    assert "--max-instructions must be positive" in capsys.readouterr().err


def test_sweep_failure_lifecycle_exit_codes(clean_harness, tmp_path,
                                            capsys):
    """fuel-fail -> quarantine skip on resume -> --retry-quarantined
    recovers; exit codes 1 / 1 / 0 along the way."""
    from repro.harness import clear_cache

    store_dir = str(tmp_path / "store")
    # every cell exhausts an absurdly small fuel budget: exit 1
    assert main(FT_ARGS + ["--store", store_dir,
                           "--max-instructions", "10"]) == 1
    out = capsys.readouterr().out
    assert "Failed cells (3)" in out
    assert "fuel-exhausted" in out and "quarantined" in out
    assert "tables not rendered" in out
    assert "3 failed" in out

    # resume skips the quarantined cells instead of re-running them
    clear_cache()
    assert main(FT_ARGS + ["--store", store_dir]) == 1
    out = capsys.readouterr().out
    assert "3 quarantined" in out
    assert "--retry-quarantined" in out

    # clearing the quarantine (without the tiny budget) recovers fully
    clear_cache()
    assert main(FT_ARGS + ["--store", store_dir,
                           "--retry-quarantined"]) == 0
    out = capsys.readouterr().out
    assert "Fig. 10a" in out and "3 computed" in out


def test_sweep_abort_exit_code(clean_harness, capsys):
    assert main(FT_ARGS + ["--no-store", "--max-instructions", "10",
                           "--max-failures", "0"]) == 3
    out = capsys.readouterr().out
    assert "ABORTED" in out


def test_sweep_progress_reports_failures(clean_harness, capsys):
    assert main(FT_ARGS + ["--no-store", "--progress",
                           "--max-instructions", "10"]) == 1
    err = capsys.readouterr().err
    assert "[3/3, 3 failed]" in err


def test_sweep_interrupt_exit_code(clean_harness, monkeypatch, capsys):
    from repro.harness import parallel
    from repro.harness.failures import RunOutcome, SweepInterrupted

    def interrupted(cells, jobs=1, progress=None, policy=None):
        raise SweepInterrupted(RunOutcome(total=3, computed=1))

    monkeypatch.setattr(parallel, "run_cells", interrupted)
    assert main(FT_ARGS + ["--no-store"]) == 130
    captured = capsys.readouterr()
    assert "interrupted" in captured.err
    assert "INTERRUPTED" in captured.out


@pytest.mark.slow
def test_sweep_chaos_smoke(clean_harness, tmp_path, capsys):
    """The chaos harness end to end: seeded faults over a real sweep,
    nonzero exit, failure table, deterministic across reruns."""
    store_a = str(tmp_path / "a")
    args = FT_ARGS + ["--timeout", "2", "--chaos", "1",
                      "--chaos-rate", "1.0"]
    assert main(args + ["--store", store_a]) == 1
    captured = capsys.readouterr()
    assert "chaos: injecting 3 faults across 3 cells" in captured.err
    assert "Failed cells (3)" in captured.out

    from repro.harness import clear_cache

    clear_cache()
    store_b = str(tmp_path / "b")
    assert main(args + ["--store", store_b]) == 1
    assert "Failed cells (3)" in capsys.readouterr().out

    def tree(root):
        import os

        snapshot = {}
        for dirpath, _dirnames, filenames in os.walk(root):
            for name in filenames:
                path = os.path.join(dirpath, name)
                with open(path, "rb") as handle:
                    snapshot[os.path.relpath(path, root)] = handle.read()
        return snapshot

    assert tree(store_a) == tree(store_b)
