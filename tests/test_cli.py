"""Command-line interface."""

import pytest

from repro.cli import main

SOURCE = """
secret int key = 1;
int result = 0;

void main() {
  int acc = 0;
  if (key) { acc = acc + 7; } else { acc = acc - 3; }
  result = acc;
}
"""


@pytest.fixture
def source_file(tmp_path):
    path = tmp_path / "victim.mc"
    path.write_text(SOURCE)
    return str(path)


def test_compile_command(source_file, capsys):
    assert main(["compile", source_file, "--mode", "sempe"]) == 0
    out = capsys.readouterr().out
    assert "sJMPs=1" in out
    assert "sbeq" in out or "sbne" in out or "eosjmp" in out


def test_compile_with_collapse(source_file, capsys):
    assert main(["compile", source_file, "--collapse-ifs"]) == 0


def test_run_command(source_file, capsys):
    assert main(["run", source_file, "--mode", "sempe",
                 "--globals", "result"]) == 0
    out = capsys.readouterr().out
    assert "machine:       SeMPE" in out
    assert "result = 7" in out
    assert "secure regions" in out


def test_run_legacy_machine(source_file, capsys):
    assert main(["run", source_file, "--mode", "sempe", "--legacy",
                 "--globals", "result"]) == 0
    out = capsys.readouterr().out
    assert "machine:       baseline" in out
    assert "result = 7" in out


def test_run_engine_flag_bit_identical(source_file, capsys):
    assert main(["run", source_file, "--engine", "fast"]) == 0
    fast_out = capsys.readouterr().out
    assert main(["run", source_file, "--engine", "reference"]) == 0
    reference_out = capsys.readouterr().out
    assert fast_out == reference_out
    assert "cycles:" in fast_out


def test_run_unknown_global(source_file, capsys):
    assert main(["run", source_file, "--globals", "nope"]) == 0
    assert "<no such global>" in capsys.readouterr().out


def test_check_secure(source_file, capsys):
    code = main(["check", source_file, "--mode", "sempe",
                 "--secret", "key", "--values", "0,1,5"])
    out = capsys.readouterr().out
    assert code == 0
    assert "SECURE" in out


def test_check_leaky(source_file, capsys):
    code = main(["check", source_file, "--mode", "plain",
                 "--secret", "key", "--values", "0,1,5"])
    out = capsys.readouterr().out
    assert code == 1
    assert "LEAKS" in out


def test_disasm_shows_both_decodes(source_file, capsys):
    assert main(["disasm", source_file]) == 0
    out = capsys.readouterr().out
    assert "; SeMPE decode" in out
    assert "; legacy decode (SecPrefix ignored)" in out
    assert "eosJMP (join point; NOP on legacy)" in out


def test_experiments_table2(capsys):
    assert main(["experiments", "table2"]) == 0
    assert "2.0 GHz" in capsys.readouterr().out


def test_experiments_unknown(capsys):
    assert main(["experiments", "nope"]) == 2


def test_stdin_input(monkeypatch, capsys):
    import io

    monkeypatch.setattr("sys.stdin", io.StringIO(SOURCE))
    assert main(["compile", "-"]) == 0
    assert "sJMPs=1" in capsys.readouterr().out


# --------------------------------------------------------------------------
# sweep command + cache/store statistics
# --------------------------------------------------------------------------

@pytest.fixture
def clean_harness():
    from repro.harness import clear_cache, set_store

    clear_cache()
    previous = set_store(None)
    yield
    set_store(previous)
    clear_cache()


SWEEP_ARGS = ["sweep", "fig10a", "--w", "1", "--workloads", "fibonacci",
              "--jobs", "1", "--cache-stats"]


def test_sweep_smoke(clean_harness, tmp_path, capsys):
    store_dir = str(tmp_path / "store")
    assert main(SWEEP_ARGS + ["--store", store_dir]) == 0
    out = capsys.readouterr().out
    assert "Fig. 10a" in out
    assert "3 cells" in out and "3 computed" in out
    assert "run cache:" in out
    assert f"store [{store_dir}]" in out and "stores=3" in out


def test_sweep_second_invocation_served_from_store(clean_harness, tmp_path,
                                                   capsys):
    from repro.harness import clear_cache

    store_dir = str(tmp_path / "store")
    assert main(SWEEP_ARGS + ["--store", store_dir]) == 0
    first = capsys.readouterr().out
    clear_cache()                       # simulate a fresh process
    assert main(SWEEP_ARGS + ["--store", store_dir]) == 0
    second = capsys.readouterr().out
    assert "3 from store" in second and "0 computed" in second
    # the rendered table is identical either way
    assert first.split("run cache:")[0].split("sweep fig10a:")[0] == \
        second.split("run cache:")[0].split("sweep fig10a:")[0]


def test_sweep_no_store(clean_harness, tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    assert main(SWEEP_ARGS + ["--no-store"]) == 0
    out = capsys.readouterr().out
    assert "store: (none)" in out
    assert not (tmp_path / ".repro-store").exists()


def test_sweep_unknown_experiment(clean_harness, capsys):
    assert main(["sweep", "fig99"]) == 2


def test_run_cache_stats_flag(clean_harness, source_file, capsys):
    assert main(["run", source_file, "--cache-stats"]) == 0
    out = capsys.readouterr().out
    assert "run cache: hits=" in out
    assert "store: (none)" in out


def test_experiments_cache_stats_flag(clean_harness, capsys):
    assert main(["experiments", "table2", "--cache-stats"]) == 0
    out = capsys.readouterr().out
    assert "run cache: hits=" in out


def test_sweep_invalid_workloads_and_sizes(clean_harness, tmp_path, capsys):
    assert main(["sweep", "fig10a", "--workloads", "bogus",
                 "--store", str(tmp_path / "s1")]) == 2
    assert "unknown workloads" in capsys.readouterr().err
    assert not (tmp_path / "s1").exists()     # rejected before store I/O
    assert main(["sweep", "fig8", "--sizes", "12x",
                 "--store", str(tmp_path / "s2")]) == 2
    assert "invalid --sizes" in capsys.readouterr().err
    assert not (tmp_path / "s2").exists()


def test_sweep_no_store_clears_installed_store(clean_harness, tmp_path,
                                               capsys):
    from repro.harness import get_store

    store_dir = str(tmp_path / "store")
    assert main(SWEEP_ARGS + ["--store", store_dir]) == 0
    capsys.readouterr()
    assert get_store() is not None
    assert main(SWEEP_ARGS + ["--no-store"]) == 0
    assert get_store() is None
    assert "store: (none)" in capsys.readouterr().out
