"""Table rendering."""

from repro.harness.report import format_table


def test_basic_table():
    text = format_table(["a", "bb"], [[1, 2.5], ["xyz", 100.0]])
    lines = text.splitlines()
    assert len(lines) == 4
    assert "a" in lines[0] and "bb" in lines[0]
    assert "-" in lines[1]
    assert "xyz" in lines[3]


def test_title_included():
    text = format_table(["x"], [[1]], title="Table I")
    assert text.splitlines()[0] == "Table I"


def test_float_formatting_tiers():
    text = format_table(["v"], [[1.234], [12.34], [123.4]])
    assert "1.23" in text
    assert "12.3" in text
    assert "123" in text


def test_column_alignment():
    text = format_table(["col"], [["short"], ["a-much-longer-cell"]])
    lines = text.splitlines()
    assert len(lines[1]) == len("a-much-longer-cell")
