"""Schema-v3 migration: pre-speculation store entries become misses.

This PR gave the machine a transient-execution window
(``MachineConfig.speculation``), which changed the store's addressing
twice over: descriptors with a config grew the ``speculation``
sub-dict, and reports themselves can now depend on the window (traces
carry a transient digest, verify cells a speculative site class) even
for cells whose descriptor stayed stable (``config: None``).
``SCHEMA_VERSION`` moved 2 -> 3 so *every* cell is rekeyed: v2 records
live at addresses the v3 code never computes (clean misses), and a
v2-shaped record planted at a v3 address is invalidated by the schema
check, never served.
"""

import json
import os

import pytest

from repro.harness import ResultStore, clear_cache, run_workload, set_store
from repro.harness.runner import cell_descriptor
from repro.harness.store import SCHEMA_VERSION, canonical_json, fingerprint
from repro.uarch.config import fast_functional
from repro.workloads.registry import WorkloadRunSpec


@pytest.fixture
def store(tmp_path):
    clear_cache()
    store = ResultStore(str(tmp_path / "store"))
    previous = set_store(store)
    yield store
    set_store(previous)
    clear_cache()


SPEC = WorkloadRunSpec("gcd", {"bits": 8, "other": 21})


def _v2_descriptor(kind, spec, mode, config, engine):
    """The pre-speculation descriptor shape (schema 2, no speculation)."""
    descriptor = cell_descriptor(kind, spec, mode, config, engine)
    descriptor["schema"] = 2
    if descriptor["config"] is not None:
        del descriptor["config"]["speculation"]
    return descriptor


def test_schema_version_is_3_and_descriptor_carries_speculation():
    assert SCHEMA_VERSION == 3
    descriptor = cell_descriptor("workload", SPEC, "plain",
                                 fast_functional(), "fast")
    assert descriptor["schema"] == 3
    assert descriptor["config"]["speculation"] == {
        "enabled": False, "window": 32}


def test_speculation_knob_readdresses_cells():
    """Enabling the window is a different machine: different address."""
    off = fast_functional()
    on = fast_functional()
    on.speculation.enabled = True
    fp_off = fingerprint(cell_descriptor("workload", SPEC, "plain",
                                         off, "fast"))
    fp_on = fingerprint(cell_descriptor("workload", SPEC, "plain",
                                        on, "fast"))
    assert fp_off != fp_on


def test_v2_records_age_out_as_clean_misses(store):
    """A store full of v2 records: the v3 code never addresses them."""
    config = fast_functional()
    old = _v2_descriptor("workload", SPEC, "plain", config, "fast")
    old_fp = fingerprint(old)
    store.put(old_fp, old, {"cycles": 123, "stale": True})
    store.stats.stores = 0

    new = cell_descriptor("workload", SPEC, "plain", config, "fast")
    new_fp = fingerprint(new)
    assert new_fp != old_fp                  # rekeyed, not aliased
    assert store.get(new_fp, new) is None    # clean miss...
    assert store.stats.misses == 1
    assert store.stats.invalidations == 0    # ...not corruption
    assert store.contains(old_fp)            # old record left untouched


def test_confignone_cells_are_rekeyed_too(store):
    """``config: None`` descriptors did not change shape — only the
    schema bump separates them from pre-speculation records, which is
    exactly why the bump exists."""
    old = cell_descriptor("workload", SPEC, "plain", None, "fast")
    old["schema"] = 2
    assert fingerprint(old) != fingerprint(
        cell_descriptor("workload", SPEC, "plain", None, "fast"))


def test_v2_record_at_v3_address_invalidated_not_served(store):
    """A v2-schema record planted at a v3 fingerprint is dropped."""
    descriptor = cell_descriptor("workload", SPEC, "plain", None, "fast")
    fp = fingerprint(descriptor)
    path = store.path_for(fp)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    stale_key = _v2_descriptor("workload", SPEC, "plain", None, "fast")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(canonical_json({
            "schema": 2,
            "fingerprint": fp,
            "key": stale_key,
            "report": {"cycles": 999},
        }) + "\n")
    assert store.get(fp, descriptor) is None
    assert store.stats.invalidations == 1
    assert not os.path.exists(path)          # removed, will recompute

    # Recompute rewrites a valid v3 record in place.
    run_workload(SPEC, "plain", engine="fast")
    assert os.path.exists(path)
    with open(path, "r", encoding="utf-8") as handle:
        record = json.load(handle)
    assert record["schema"] == SCHEMA_VERSION
    assert record["key"] == descriptor
