"""Run caching."""

from repro.harness.runner import (
    cache_info,
    clear_cache,
    config_fingerprint,
    run_djpeg,
    run_microbench,
)
from repro.uarch.config import MachineConfig
from repro.workloads.djpeg import DjpegSpec
from repro.workloads.microbench import MicrobenchSpec


def setup_function(_function):
    clear_cache()


def test_microbench_run_cached():
    spec = MicrobenchSpec("fibonacci", w=1, iters=1)
    first = run_microbench(spec, "plain")
    second = run_microbench(spec, "plain")
    assert first is second


def test_different_modes_not_conflated():
    spec = MicrobenchSpec("fibonacci", w=1, iters=1)
    base = run_microbench(spec, "plain")
    sempe = run_microbench(spec, "sempe")
    assert base is not sempe
    assert sempe.instructions > base.instructions


def test_djpeg_run_cached():
    spec = DjpegSpec("bmp", 128)
    first = run_djpeg(spec, "plain")
    second = run_djpeg(spec, "plain")
    assert first is second
    assert first.cycles > 0


def test_result_surface():
    spec = MicrobenchSpec("ones", w=1, iters=1)
    result = run_microbench(spec, "sempe")
    assert result.mode == "sempe"
    assert result.cycles == result.report.cycles
    assert set(result.miss_rates) == {"IL1", "DL1", "L2"}


def test_equal_configs_share_cache_entry():
    """The key is structural, not object identity: two equal configs
    built independently must hit the same entry."""
    spec = MicrobenchSpec("fibonacci", w=1, iters=1)
    first = run_microbench(spec, "plain", config=MachineConfig())
    second = run_microbench(spec, "plain", config=MachineConfig())
    assert first is second


def test_different_configs_not_conflated():
    spec = MicrobenchSpec("fibonacci", w=1, iters=1)
    small = MachineConfig()
    small.rob_entries = 32
    default = run_microbench(spec, "plain", config=MachineConfig())
    shrunk = run_microbench(spec, "plain", config=small)
    assert default is not shrunk
    assert config_fingerprint(small) != config_fingerprint(MachineConfig())


def test_engines_cached_separately_but_identical():
    spec = MicrobenchSpec("fibonacci", w=1, iters=1)
    fast = run_microbench(spec, "sempe", engine="fast")
    reference = run_microbench(spec, "sempe", engine="reference")
    assert fast is not reference
    assert fast.cycles == reference.cycles
    assert fast.report.final_regs == reference.report.final_regs


def test_cache_info_counts():
    spec = MicrobenchSpec("fibonacci", w=1, iters=1)
    assert cache_info() == {"hits": 0, "misses": 0, "entries": 0}
    run_microbench(spec, "plain")
    run_microbench(spec, "plain")
    run_microbench(spec, "sempe")
    info = cache_info()
    assert info["hits"] == 1
    assert info["misses"] == 2
    assert info["entries"] == 2
