"""Run caching."""

from repro.harness.runner import clear_cache, run_djpeg, run_microbench
from repro.workloads.djpeg import DjpegSpec
from repro.workloads.microbench import MicrobenchSpec


def setup_function(_function):
    clear_cache()


def test_microbench_run_cached():
    spec = MicrobenchSpec("fibonacci", w=1, iters=1)
    first = run_microbench(spec, "plain")
    second = run_microbench(spec, "plain")
    assert first is second


def test_different_modes_not_conflated():
    spec = MicrobenchSpec("fibonacci", w=1, iters=1)
    base = run_microbench(spec, "plain")
    sempe = run_microbench(spec, "sempe")
    assert base is not sempe
    assert sempe.instructions > base.instructions


def test_djpeg_run_cached():
    spec = DjpegSpec("bmp", 128)
    first = run_djpeg(spec, "plain")
    second = run_djpeg(spec, "plain")
    assert first is second
    assert first.cycles > 0


def test_result_surface():
    spec = MicrobenchSpec("ones", w=1, iters=1)
    result = run_microbench(spec, "sempe")
    assert result.mode == "sempe"
    assert result.cycles == result.report.cycles
    assert set(result.miss_rates) == {"IL1", "DL1", "L2"}
