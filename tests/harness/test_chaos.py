"""Chaos suite: fault-injected sweeps through the tolerant executor.

Drives :mod:`repro.testing.faults` through every failure path —
exception, hang/timeout, worker death, retry-then-succeed, fallback,
quarantine — and checks the acceptance property: the final store state
is byte-identical for ``--jobs 1`` and ``--jobs 8``, faults included.
"""

import multiprocessing.connection
import os

import pytest

from repro.harness import parallel, runner
from repro.harness.experiments import fig10a_cells
from repro.harness.failures import (
    FAILURE_EXCEPTION,
    FAILURE_FUEL,
    FAILURE_TIMEOUT,
    FAILURE_WORKER_DIED,
    ExecutionPolicy,
    SweepInterrupted,
)
from repro.harness.parallel import run_cells
from repro.harness.store import ResultStore
from repro.harness.sweep import SweepCell, SweepSpec, run_sweep
from repro.security.attackers import AttackSpec
from repro.testing.faults import FaultPlan, FaultSpec, KILL_EXIT_CODE


@pytest.fixture(autouse=True)
def clean_runner():
    runner.clear_cache()
    previous = runner.set_store(None)
    yield
    runner.set_store(previous)
    runner.clear_cache()


def _cells():
    return fig10a_cells(w_sweep=(1,), workloads=("ones",))


def _fps(cells):
    return sorted(cell.fingerprint() for cell in cells)


def _tree(root):
    """{relative path: file bytes} for a whole store directory."""
    snapshot = {}
    for dirpath, _dirnames, filenames in os.walk(root):
        for name in filenames:
            path = os.path.join(dirpath, name)
            with open(path, "rb") as handle:
                snapshot[os.path.relpath(path, root)] = handle.read()
    return snapshot


# -- exception isolation ---------------------------------------------------

def test_injected_exception_is_isolated_pooled():
    cells = _cells()
    bad = _fps(cells)[0]
    plan = FaultPlan({bad: FaultSpec("raise")})
    outcome = run_cells(cells, jobs=2,
                        policy=ExecutionPolicy(fault_plan=plan))
    assert outcome.computed == len(cells) - 1
    (failure,) = outcome.failures
    assert failure.fingerprint == bad
    assert failure.failure == FAILURE_EXCEPTION
    assert failure.error_type == "InjectedFault"
    assert "InjectedFault" in failure.traceback
    assert failure.attempts == 1
    # the healthy cells really were installed
    assert runner.cache_info()["entries"] == len(cells) - 1


def test_exception_is_isolated_serial_in_process(monkeypatch):
    cells = _cells()
    real = parallel._simulate_cell

    def flaky(kind, spec, mode, config, engine, max_instructions):
        if mode == "cte":
            raise RuntimeError("natural failure, no injection")
        return real(kind, spec, mode, config, engine, max_instructions)

    monkeypatch.setattr(parallel, "_simulate_cell", flaky)
    outcome = run_cells(cells, jobs=1)      # serial, in-process
    assert outcome.computed == len(cells) - 1
    (failure,) = outcome.failures
    assert failure.mode == "cte"
    assert failure.error_type == "RuntimeError"
    assert "natural failure" in failure.message


# -- retry / backoff -------------------------------------------------------

def test_flaky_cell_retries_then_succeeds():
    cells = _cells()
    bad = _fps(cells)[1]
    plan = FaultPlan({bad: FaultSpec("raise", times=1)})
    outcome = run_cells(cells, jobs=1, policy=ExecutionPolicy(
        retries=2, backoff=0.01, fault_plan=plan))
    assert outcome.ok and outcome.computed == len(cells)


def test_retry_exhaustion_quarantines(tmp_path):
    store = ResultStore(str(tmp_path / "store"))
    runner.set_store(store)
    cells = _cells()
    bad = _fps(cells)[0]
    plan = FaultPlan({bad: FaultSpec("raise")})
    outcome = run_cells(cells, jobs=1, policy=ExecutionPolicy(
        retries=1, backoff=0.01, fault_plan=plan))
    (failure,) = outcome.failures
    assert failure.attempts == 2            # first try + one retry
    assert failure.quarantined
    assert store.contains_failure(bad)
    descriptor = next(c.descriptor() for c in cells
                      if c.fingerprint() == bad)
    record = store.get_failure(bad, descriptor)
    assert record["failure"] == FAILURE_EXCEPTION
    assert record["duration"] == 0.0        # zeroed for determinism
    assert record["quarantined"] is True
    assert store.stats.quarantines == 1


def test_fuel_exhaustion_is_not_retried():
    cells = _cells()
    outcome = run_cells(cells, jobs=1, policy=ExecutionPolicy(
        retries=3, backoff=0.01, max_instructions=10))
    assert outcome.computed == 0
    assert len(outcome.failures) == len(cells)
    for failure in outcome.failures:
        assert failure.failure == FAILURE_FUEL
        assert failure.error_type == "InstructionLimitError"
        assert failure.attempts == 1        # deterministic: no retry


def test_attack_cells_are_exempt_from_fuel():
    cell = SweepCell("attack",
                     AttackSpec("memcmp", "prime-probe", trials=16),
                     "plain")
    outcome = run_cells([cell], jobs=1,
                        policy=ExecutionPolicy(max_instructions=10))
    assert outcome.ok and outcome.computed == 1


# -- worker death ----------------------------------------------------------

def test_killed_worker_is_detected_and_pool_survives():
    cells = _cells()
    bad = _fps(cells)[0]
    plan = FaultPlan({bad: FaultSpec("kill")})
    outcome = run_cells(cells, jobs=2,
                        policy=ExecutionPolicy(fault_plan=plan))
    assert outcome.computed == len(cells) - 1
    (failure,) = outcome.failures
    assert failure.failure == FAILURE_WORKER_DIED
    assert f"exit code {KILL_EXIT_CODE}" in failure.message


def test_worker_death_retry_then_succeeds():
    cells = _cells()
    bad = _fps(cells)[2]
    plan = FaultPlan({bad: FaultSpec("kill", times=1)})
    outcome = run_cells(cells, jobs=2, policy=ExecutionPolicy(
        retries=1, backoff=0.01, fault_plan=plan))
    assert outcome.ok and outcome.computed == len(cells)


# -- hangs / deadlines -----------------------------------------------------

@pytest.mark.slow
def test_hung_cell_is_killed_at_the_deadline():
    cells = _cells()
    bad = _fps(cells)[1]
    plan = FaultPlan({bad: FaultSpec("hang", hang_seconds=60.0)})
    outcome = run_cells(cells, jobs=2, policy=ExecutionPolicy(
        timeout=1.5, fault_plan=plan))
    assert outcome.computed == len(cells) - 1
    (failure,) = outcome.failures
    assert failure.failure == FAILURE_TIMEOUT
    assert "deadline" in failure.message


@pytest.mark.slow
def test_hung_cell_retry_then_succeeds():
    cells = _cells()
    bad = _fps(cells)[1]
    plan = FaultPlan({bad: FaultSpec("hang", times=1, hang_seconds=60.0)})
    outcome = run_cells(cells, jobs=2, policy=ExecutionPolicy(
        timeout=1.5, retries=1, backoff=0.01, fault_plan=plan))
    assert outcome.ok and outcome.computed == len(cells)


# -- reference-engine fallback ---------------------------------------------

def test_fast_engine_failure_falls_back_to_reference(tmp_path):
    cells = _cells()
    bad = _fps(cells)[0]
    bad_cell = next(c for c in cells if c.fingerprint() == bad)

    healthy_store = ResultStore(str(tmp_path / "healthy"))
    runner.set_store(healthy_store)
    assert run_cells(cells, jobs=1).ok
    runner.clear_cache()

    fallback_store = ResultStore(str(tmp_path / "fallback"))
    runner.set_store(fallback_store)
    plan = FaultPlan({bad: FaultSpec("raise", engines=("fast",))})
    outcome = run_cells(cells, jobs=1, policy=ExecutionPolicy(
        fallback_reference=True, fault_plan=plan))
    assert outcome.ok and outcome.computed == len(cells)
    assert outcome.fellback == [bad_cell.spec.name]
    # the oracle's report is byte-identical to the fast engine's, so
    # the stores agree record for record — fallback included
    assert _tree(healthy_store.root) == _tree(fallback_store.root)


def test_attack_cells_never_fall_back():
    # AttackReports seed their RNG per engine, so a reference-engine
    # rerun would install a *different* result under the fast cell's
    # fingerprint; the policy must quarantine instead.
    cell = SweepCell("attack",
                     AttackSpec("memcmp", "prime-probe", trials=16),
                     "plain")
    plan = FaultPlan({cell.fingerprint(): FaultSpec(
        "raise", engines=("fast",))})
    outcome = run_cells([cell], jobs=1, policy=ExecutionPolicy(
        fallback_reference=True, fault_plan=plan))
    assert not outcome.fellback
    (failure,) = outcome.failures
    assert failure.failure == FAILURE_EXCEPTION


# -- failure budget --------------------------------------------------------

def test_failure_budget_aborts_pooled():
    cells = _cells()
    plan = FaultPlan({fp: FaultSpec("raise") for fp in _fps(cells)})
    outcome = run_cells(cells, jobs=2, policy=ExecutionPolicy(
        max_failures=0, fault_plan=plan))
    assert outcome.aborted and not outcome.ok
    assert outcome.failed >= 1


def test_failure_budget_aborts_serial(monkeypatch):
    monkeypatch.setattr(
        parallel, "_simulate_cell",
        lambda *args: (_ for _ in ()).throw(RuntimeError("down")))
    outcome = run_cells(_cells(), jobs=1,
                        policy=ExecutionPolicy(max_failures=0))
    assert outcome.aborted
    assert outcome.failed == 1 and outcome.remaining == 2


# -- quarantine lifecycle through run_sweep --------------------------------

def test_quarantine_skip_and_retry_lifecycle(tmp_path):
    store = ResultStore(str(tmp_path / "store"))
    runner.set_store(store)
    cells = _cells()
    bad = _fps(cells)[0]
    spec = SweepSpec("chaos", cells)

    plan = FaultPlan({bad: FaultSpec("raise")})
    stats = run_sweep(spec, jobs=1,
                      policy=ExecutionPolicy(fault_plan=plan))
    assert stats.failed == 1 and stats.computed == len(cells) - 1
    assert store.failure_count() == 1

    # resume skips the poisoned cell instead of re-running it
    runner.clear_cache()
    resumed = run_sweep(SweepSpec("chaos", _cells()), jobs=1)
    assert resumed.quarantined == 1 and resumed.failed == 1
    assert resumed.computed == 0
    assert resumed.from_store == len(cells) - 1
    assert resumed.failures[0].quarantined
    assert "quarantined" in resumed.summary()

    # --retry-quarantined clears the record and recomputes
    runner.clear_cache()
    retried = run_sweep(SweepSpec("chaos", _cells()), jobs=1,
                        policy=ExecutionPolicy(retry_quarantined=True))
    assert retried.ok and retried.computed == 1
    assert store.failure_count() == 0


def test_success_clears_stale_quarantine(tmp_path):
    store = ResultStore(str(tmp_path / "store"))
    runner.set_store(store)
    cell = _cells()[0]
    fp = cell.fingerprint()
    store.put_failure(fp, cell.descriptor(), {
        "fingerprint": fp, "name": cell.spec.name, "mode": cell.mode,
        "kind": "micro", "failure": FAILURE_EXCEPTION,
        "error_type": "RuntimeError", "message": "stale", "traceback": "",
        "attempts": 1, "duration": 0.0, "engine": "fast",
        "quarantined": True})
    assert run_cells([cell], jobs=1).ok
    assert not store.contains_failure(fp)


# -- progress channel ------------------------------------------------------

def test_progress_reports_failures():
    cells = _cells()
    bad = _fps(cells)[0]
    plan = FaultPlan({bad: FaultSpec("raise")})
    calls = []
    outcome = run_cells(
        cells, jobs=1,
        progress=lambda done, total, name, ok:
            calls.append((done, total, name, ok)),
        policy=ExecutionPolicy(fault_plan=plan))
    assert len(calls) == len(cells)
    assert [done for done, *_ in calls] == [1, 2, 3]
    assert all(total == len(cells) for _, total, *_ in calls)
    assert sum(1 for *_, ok in calls if not ok) == outcome.failed == 1


# -- interrupts ------------------------------------------------------------

def test_serial_interrupt_carries_partial_outcome(monkeypatch):
    cells = _cells()
    real = parallel._simulate_cell
    seen = []

    def interrupting(kind, spec, mode, config, engine, max_instructions):
        if len(seen) == 1:
            raise KeyboardInterrupt
        seen.append(spec)
        return real(kind, spec, mode, config, engine, max_instructions)

    monkeypatch.setattr(parallel, "_simulate_cell", interrupting)
    with pytest.raises(SweepInterrupted) as err:
        run_cells(cells, jobs=1)
    outcome = err.value.outcome
    assert outcome.interrupted and outcome.computed == 1


def test_pooled_interrupt_kills_workers(monkeypatch):
    monkeypatch.setattr(
        multiprocessing.connection, "wait",
        lambda *args, **kwargs: (_ for _ in ()).throw(KeyboardInterrupt))
    with pytest.raises(SweepInterrupted) as err:
        run_cells(_cells(), jobs=2)
    assert err.value.outcome.interrupted
    assert err.value.outcome.computed == 0


def test_run_sweep_attaches_stats_to_interrupt(monkeypatch):
    cells = _cells()
    monkeypatch.setattr(
        parallel, "_simulate_cell",
        lambda *args: (_ for _ in ()).throw(KeyboardInterrupt))
    with pytest.raises(SweepInterrupted) as err:
        run_sweep(SweepSpec("int", cells), jobs=1)
    stats = err.value.stats
    assert stats is not None and stats.interrupted
    assert "INTERRUPTED" in stats.summary()


# -- the acceptance property ----------------------------------------------

@pytest.mark.slow
def test_chaos_store_state_is_jobs_independent(tmp_path):
    """A fault-injected sweep (raise + hang + kill among healthy cells)
    leaves a byte-identical store for --jobs 1 and --jobs 8, and its
    healthy cells are byte-identical to a fault-free run."""
    cells = fig10a_cells(w_sweep=(1,), workloads=("fibonacci", "ones"))
    fps = _fps(cells)
    plan = FaultPlan({
        fps[0]: FaultSpec("raise"),
        fps[2]: FaultSpec("hang", hang_seconds=60.0),
        fps[4]: FaultSpec("kill"),
    })
    policy = ExecutionPolicy(timeout=1.5, fault_plan=plan)

    trees = {}
    for jobs in (1, 8):
        runner.clear_cache()
        store = ResultStore(str(tmp_path / f"jobs{jobs}"))
        runner.set_store(store)
        outcome = run_cells(cells, jobs=jobs, policy=policy)
        assert outcome.computed == len(cells) - 3
        assert sorted(f.failure for f in outcome.failures) == \
            sorted([FAILURE_EXCEPTION, FAILURE_TIMEOUT,
                    FAILURE_WORKER_DIED])
        assert store.failure_count() == 3
        trees[jobs] = _tree(store.root)

    assert trees[1] == trees[8]

    # healthy cells match a fault-free sweep record for record
    runner.clear_cache()
    clean_store = ResultStore(str(tmp_path / "clean"))
    runner.set_store(clean_store)
    assert run_cells(cells, jobs=1).ok
    clean = _tree(clean_store.root)
    for cell in cells:
        if cell.fingerprint() in plan.faults:
            continue
        rel = os.path.relpath(clean_store.path_for(cell.fingerprint()),
                              clean_store.root)
        assert trees[1][rel] == clean[rel]


def test_serial_and_pooled_agree_without_faults(tmp_path):
    """The pooled path is byte-equivalent to the serial in-process path
    even when a policy (isolation) forces jobs=1 through the pool."""
    cells = _cells()
    serial_store = ResultStore(str(tmp_path / "serial"))
    runner.set_store(serial_store)
    assert run_cells(cells, jobs=1).ok          # in-process

    runner.clear_cache()
    pooled_store = ResultStore(str(tmp_path / "pooled"))
    runner.set_store(pooled_store)
    isolated = ExecutionPolicy(fault_plan=FaultPlan())
    assert isolated.needs_isolation()
    assert run_cells(cells, jobs=1, policy=isolated).ok  # pooled
    assert _tree(serial_store.root) == _tree(pooled_store.root)
