"""Failure vocabulary: CellFailure records, policies, outcomes."""

import pytest

from repro.harness.failures import (
    FAILURE_EXCEPTION,
    FAILURE_FUEL,
    FAILURE_KINDS,
    RETRYABLE_FAILURES,
    CellFailure,
    ExecutionPolicy,
    RunOutcome,
    SweepInterrupted,
)


def _failure(**overrides):
    base = dict(fingerprint="ab" * 32, name="ones-W1-I1-natural",
                mode="sempe", kind="micro", failure=FAILURE_EXCEPTION,
                error_type="RuntimeError", message="boom",
                traceback="Traceback ...", attempts=2, duration=0.5,
                engine="fast")
    base.update(overrides)
    return CellFailure(**base)


def test_fuel_is_the_only_non_retryable_failure():
    assert set(FAILURE_KINDS) - set(RETRYABLE_FAILURES) == {FAILURE_FUEL}


def test_cell_failure_round_trips_through_dict():
    failure = _failure(quarantined=True)
    rebuilt = CellFailure.from_dict(failure.to_dict())
    assert rebuilt == failure


def test_cell_failure_from_dict_ignores_unknown_keys():
    data = _failure().to_dict()
    data["added_in_some_future_schema"] = 1
    assert CellFailure.from_dict(data) == _failure()


def test_describe_names_the_cell_and_the_failure():
    text = _failure().describe()
    assert "ones-W1-I1-natural/sempe" in text
    assert "[exception]" in text and "RuntimeError" in text
    assert "attempt 2" in text


def test_default_policy_changes_nothing():
    policy = ExecutionPolicy()
    assert policy.timeout is None and policy.retries == 0
    assert policy.max_failures is None and policy.max_instructions is None
    assert not policy.fallback_reference and not policy.retry_quarantined
    assert policy.fault_plan is None
    assert not policy.needs_isolation()


def test_isolation_forced_by_timeout_or_fault_plan():
    assert ExecutionPolicy(timeout=5.0).needs_isolation()
    assert ExecutionPolicy(fault_plan=object()).needs_isolation()
    assert not ExecutionPolicy(retries=3, max_instructions=10,
                               fallback_reference=True).needs_isolation()


def test_run_outcome_accounting():
    outcome = RunOutcome(total=5, computed=3)
    outcome.failures.append(_failure())
    assert outcome.failed == 1
    assert outcome.resolved == 4
    assert outcome.remaining == 1
    assert not outcome.ok
    assert RunOutcome(total=2, computed=2).ok


def test_interrupt_is_a_keyboard_interrupt_with_the_partial_outcome():
    outcome = RunOutcome(total=4, computed=1)
    stop = SweepInterrupted(outcome)
    assert isinstance(stop, KeyboardInterrupt)
    assert stop.outcome is outcome
    assert outcome.interrupted and not outcome.ok
    assert stop.stats is None

    with pytest.raises(KeyboardInterrupt):
        raise SweepInterrupted(RunOutcome())
