"""Sweep orchestration: grids, worker-pool determinism, cache warming."""

import pytest

from repro.harness import runner
from repro.harness.parallel import cell_seed, run_cells
from repro.harness.store import ResultStore
from repro.harness.sweep import (
    MICRO_ITERS,
    SweepCell,
    SweepSpec,
    ensure_cells,
    run_sweep,
)
from repro.harness.experiments import (
    experiment_cells,
    fig8_cells,
    fig10a_cells,
    fig10b_cells,
    table1_cells,
)
from repro.uarch.config import MachineConfig
from repro.workloads.microbench import MicrobenchSpec


@pytest.fixture(autouse=True)
def clean_runner():
    runner.clear_cache()
    previous = runner.set_store(None)
    yield
    runner.set_store(previous)
    runner.clear_cache()


def _small_cells():
    return fig10a_cells(w_sweep=(1,), workloads=("fibonacci", "ones"))


# -- SweepSpec / grids -----------------------------------------------------

def test_grid_cross_product():
    spec = SweepSpec.grid(
        "g", workloads=("fibonacci", "ones"), w_sweep=(1, 2),
        modes=("plain", "sempe", "cte"))
    assert len(spec) == 2 * 2 * 3


def test_grid_djpeg_and_engines():
    spec = SweepSpec.grid(
        "g", djpeg_formats=("ppm", "bmp"), djpeg_sizes=(128, 256),
        modes=("plain", "sempe"), engines=("fast", "reference"))
    assert len(spec) == 2 * 2 * 2 * 2


def test_grid_rejects_unknown_mode_and_engine():
    with pytest.raises(ValueError):
        SweepSpec.grid("g", workloads=("ones",), w_sweep=(1,),
                       modes=("turbo",))
    with pytest.raises(ValueError):
        SweepSpec.grid("g", workloads=("ones",), w_sweep=(1,),
                       engines=("warp",))
    with pytest.raises(ValueError):
        SweepSpec.grid("g", djpeg_formats=("ppm",), djpeg_sizes=(128,),
                       modes=("cte",))


def test_spec_dedupes_by_fingerprint():
    cells = _small_cells()
    spec = SweepSpec("dup", cells + cells)
    assert len(spec) == len(cells)
    # fig8 and fig9 share their whole grid
    union = SweepSpec("u", fig8_cells(sizes=(128,)))
    before = len(union)
    union.extend(fig8_cells(sizes=(128,)))
    assert len(union) == before


def test_experiment_cells_registry():
    assert len(experiment_cells("table2")) == 0
    assert len(experiment_cells("table1", w=2,
                                workloads=("fibonacci",))) == 3
    assert len(experiment_cells("fig10b", w_sweep=(1,),
                                workloads=("ones",))) == 3
    with pytest.raises(KeyError):
        experiment_cells("fig99")
    # fig10b's ideal variant really is the unconditional compile
    kinds = {cell.spec.variant for cell in fig10b_cells(
        w_sweep=(1,), workloads=("ones",))}
    assert kinds == {"natural", "oblivious", "unconditional"}


def test_cells_use_shared_iteration_table():
    (cell,) = [c for c in table1_cells(w=1, workloads=("quicksort",))
               if c.mode == "plain"]
    assert cell.spec.iters == MICRO_ITERS["quicksort"]


# -- deterministic seeds ---------------------------------------------------

def test_cell_seed_is_stable_and_structural():
    cells = _small_cells()
    seeds = [cell_seed(cell.fingerprint()) for cell in cells]
    assert seeds == [cell_seed(cell.fingerprint()) for cell in cells]
    assert len(set(seeds)) == len(seeds)
    # the seed is a function of the cell, not of sweep composition
    reordered = list(reversed(cells))
    assert [cell_seed(c.fingerprint()) for c in reordered] == \
        list(reversed(seeds))


# -- execution -------------------------------------------------------------

def test_run_sweep_warms_cache_serial():
    cells = _small_cells()
    stats = run_sweep(SweepSpec("warm", cells), jobs=1)
    assert stats.cells == len(cells)
    assert stats.computed == len(cells)
    info = runner.cache_info()
    assert info["entries"] == len(cells)
    # table assembly is now pure hits
    for cell in cells:
        cell.run()
    assert runner.cache_info()["misses"] == info["misses"]


def test_run_sweep_skips_resident_cells():
    cells = _small_cells()
    run_sweep(SweepSpec("a", cells), jobs=1)
    stats = run_sweep(SweepSpec("b", cells), jobs=1)
    assert stats.cached == len(cells)
    assert stats.computed == 0


def test_ensure_cells_is_run_sweep():
    stats = ensure_cells("e", _small_cells())
    assert stats.computed == len(_small_cells())


@pytest.mark.slow
def test_worker_pool_matches_serial_bit_for_bit():
    """--jobs 4 must produce exactly the state --jobs 1 produces."""
    cells = _small_cells()
    run_sweep(SweepSpec("serial", cells), jobs=1)
    serial = {cell.fingerprint(): cell.run().report.to_dict()
              for cell in cells}

    runner.clear_cache()
    stats = run_sweep(SweepSpec("pool", cells), jobs=4)
    assert stats.computed == len(cells)
    parallel_reports = {cell.fingerprint(): cell.run().report.to_dict()
                        for cell in cells}
    assert parallel_reports == serial


@pytest.mark.slow
def test_worker_pool_writes_store_like_serial(tmp_path):
    """The stores left behind by jobs=1 and jobs=4 hold identical
    records."""
    cells = _small_cells()
    serial_store = ResultStore(str(tmp_path / "serial"))
    runner.set_store(serial_store)
    run_sweep(SweepSpec("s", cells), jobs=1)

    runner.clear_cache()
    pool_store = ResultStore(str(tmp_path / "pool"))
    runner.set_store(pool_store)
    run_sweep(SweepSpec("p", cells), jobs=4)

    assert len(serial_store) == len(pool_store) == len(cells)
    for cell in cells:
        descriptor = cell.descriptor()
        fp = cell.fingerprint()
        assert serial_store.get(fp, descriptor) == \
            pool_store.get(fp, descriptor)


def test_run_cells_collapses_duplicates():
    cells = _small_cells()
    outcome = run_cells(cells + cells, jobs=1)
    assert outcome.computed == len(cells)
    assert outcome.ok and not outcome.failures


def test_workload_cells_through_worker_pool(tmp_path):
    """Registry-workload cells run through the process pool, land in the
    store, and a second (serial) sweep is fully served from it."""
    from repro.workloads.registry import WorkloadRunSpec, get_workload

    spec = get_workload("gcd")
    cells = [
        SweepCell("workload", WorkloadRunSpec("gcd", params), mode)
        for params in spec.grid_points()
        for mode in ("plain", "sempe")
    ]
    store = ResultStore(str(tmp_path / "store"))
    runner.set_store(store)
    stats = run_sweep(SweepSpec("victims", cells), jobs=2)
    assert stats.computed == len(cells)
    assert store.stats.stores == len(cells)

    runner.clear_cache()
    again = run_sweep(SweepSpec("victims", cells), jobs=1)
    assert again.computed == 0
    assert again.from_store == len(cells)
    result = runner.run_workload(
        WorkloadRunSpec("gcd", spec.grid_points()[0]), "sempe")
    assert result.cycles > 0


def test_sweep_respects_configs():
    shrunk = MachineConfig()
    shrunk.rob_entries = 32
    spec = MicrobenchSpec("fibonacci", w=1, iters=1)
    cells = [SweepCell("micro", spec, "plain"),
             SweepCell("micro", spec, "plain", config=shrunk)]
    stats = run_sweep(SweepSpec("cfg", cells), jobs=1)
    assert stats.cells == 2 and stats.computed == 2
    default_run, shrunk_run = cells[0].run(), cells[1].run()
    assert default_run is not shrunk_run
