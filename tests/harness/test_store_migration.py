"""Schema-v2 migration: pre-refactor store entries become clean misses.

PR 5 bumped ``SCHEMA_VERSION`` to 2 and rekeyed cell descriptors on the
defense registry (a ``defense`` fingerprint field).  A store written by
the pre-refactor code must neither be misread nor crash the new code:
v1 records live at v1 fingerprints (which v2 descriptors never
address — a plain miss), and a v1-shaped record planted at a v2
address is detected by the schema check and invalidated, not served.
"""

import json
import os

import pytest

from repro.defenses import get_defense
from repro.harness import ResultStore, clear_cache, run_workload, set_store
from repro.harness.runner import cell_descriptor
from repro.harness.store import SCHEMA_VERSION, canonical_json, fingerprint
from repro.workloads.registry import WorkloadRunSpec


@pytest.fixture
def store(tmp_path):
    clear_cache()
    store = ResultStore(str(tmp_path / "store"))
    previous = set_store(store)
    yield store
    set_store(previous)
    clear_cache()


SPEC = WorkloadRunSpec("gcd", {"bits": 8, "other": 21})


def _v1_descriptor(kind, spec, mode, engine):
    """The pre-refactor descriptor shape (no defense field, schema 1)."""
    import dataclasses

    return {
        "kind": kind,
        "spec": dataclasses.asdict(spec),
        "mode": mode,
        "config": None,
        "engine": engine,
        "schema": 1,
    }


def test_schema_version_bumped_and_descriptor_rekeyed():
    # v1 -> v2 introduced the defense field and schema >= 2; later bumps
    # (see test_store_migration_v3) keep both invariants.
    assert SCHEMA_VERSION >= 2
    descriptor = cell_descriptor("workload", SPEC, "plain", None, "fast")
    assert descriptor["schema"] == SCHEMA_VERSION
    assert descriptor["defense"] == get_defense("plain").fingerprint()


def test_v1_records_age_out_as_clean_misses(store):
    """A store full of v1 records: the new code never addresses them."""
    old = _v1_descriptor("workload", SPEC, "plain", "fast")
    old_fp = fingerprint(old)
    store.put(old_fp, old, {"cycles": 123, "stale": True})
    store.stats.stores = 0

    new = cell_descriptor("workload", SPEC, "plain", None, "fast")
    new_fp = fingerprint(new)
    assert new_fp != old_fp                  # rekeyed, not aliased
    assert store.get(new_fp, new) is None    # clean miss...
    assert store.stats.misses == 1
    assert store.stats.invalidations == 0    # ...not corruption
    assert store.contains(old_fp)            # old record left untouched

    # The logical cell recomputes and is served from the store after.
    result = run_workload(SPEC, "plain", engine="fast")
    clear_cache()
    again = run_workload(SPEC, "plain", engine="fast")
    assert again.report.to_dict() == result.report.to_dict()
    assert store.stats.hits >= 1


def test_v1_record_at_v2_address_invalidated_not_served(store):
    """A v1-schema record planted at a v2 fingerprint is dropped."""
    descriptor = cell_descriptor("workload", SPEC, "plain", None, "fast")
    fp = fingerprint(descriptor)
    path = store.path_for(fp)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    stale_key = dict(descriptor, schema=1)
    stale_key.pop("defense")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(canonical_json({
            "schema": 1,
            "fingerprint": fp,
            "key": stale_key,
            "report": {"cycles": 999},
        }) + "\n")
    assert store.get(fp, descriptor) is None
    assert store.stats.invalidations == 1
    assert not os.path.exists(path)          # removed, will recompute

    # Recompute rewrites a valid v2 record in place.
    run_workload(SPEC, "plain", engine="fast")
    assert os.path.exists(path)
    with open(path, "r", encoding="utf-8") as handle:
        record = json.load(handle)
    assert record["schema"] == SCHEMA_VERSION
    assert record["key"]["defense"] == get_defense("plain").fingerprint()


def test_defense_semantics_change_readdresses_cells():
    """Two defenses with identical names but different hooks would
    collide by name; the descriptor's defense *fingerprint* keeps their
    cells apart — and distinct registered defenses never share a key."""
    plain = cell_descriptor("workload", SPEC, "plain", None, "fast")
    fenced = cell_descriptor("workload", SPEC, "fence", None, "fast")
    flushed = cell_descriptor("workload", SPEC, "flush-local", None,
                              "fast")
    prints = {fingerprint(d) for d in (plain, fenced, flushed)}
    assert len(prints) == 3
