"""Attack cells in the sweep/cache/store machinery.

The ``attack`` sweep-cell kind must behave exactly like the simulation
kinds: fingerprinted by content, memoized in L1, persisted in the
store, and schedulable on the multiprocessing pool with
submission-independent results.
"""

import pytest

pytestmark = pytest.mark.attack

from repro.harness import (
    ResultStore,
    SweepSpec,
    cache_info,
    clear_cache,
    run_attack,
    run_sweep,
    set_store,
)
from repro.harness.parallel import run_cells
from repro.harness.runner import cell_descriptor, probe
from repro.harness.sweep import SweepCell
from repro.security.attackers import AttackReport, AttackSpec

SPEC = AttackSpec("memcmp", "prime-probe", trials=16)


@pytest.fixture
def clean_harness():
    clear_cache()
    previous = set_store(None)
    yield
    set_store(previous)
    clear_cache()


def test_run_attack_memoizes(clean_harness):
    first = run_attack(SPEC, "plain", engine="fast")
    before = cache_info()
    second = run_attack(SPEC, "plain", engine="fast")
    after = cache_info()
    assert second is first                      # L1 hit returns the object
    assert after["hits"] == before["hits"] + 1
    assert isinstance(first.report, AttackReport)
    assert first.report.verdict == "recovered"


def test_attack_reports_roundtrip_through_store(clean_harness, tmp_path):
    set_store(ResultStore(str(tmp_path / "store")))
    original = run_attack(SPEC, "plain", engine="fast").report
    clear_cache()                               # drop L1, keep the store
    descriptor = cell_descriptor("attack", SPEC, "plain", None, "fast")
    assert probe(descriptor) == "store"
    reloaded = run_attack(SPEC, "plain", engine="fast").report
    assert reloaded == original


def test_attack_cells_fingerprint_by_content(clean_harness):
    cell = SweepCell("attack", SPEC, "plain", None, "fast")
    same = SweepCell("attack", AttackSpec("memcmp", "prime-probe",
                                          trials=16), "plain", None, "fast")
    assert cell.fingerprint() == same.fingerprint()
    for other in (
        SweepCell("attack", SPEC, "sempe", None, "fast"),
        SweepCell("attack", SPEC, "plain", None, "reference"),
        SweepCell("attack", AttackSpec("memcmp", "prime-probe", trials=32),
                  "plain", None, "fast"),
        SweepCell("attack", AttackSpec("memcmp", "prime-probe", trials=16,
                                       seed=1), "plain", None, "fast"),
        SweepCell("attack", AttackSpec("memcmp", "timing", trials=16),
                  "plain", None, "fast"),
    ):
        assert other.fingerprint() != cell.fingerprint()


def test_attack_cell_runs_through_sweep(clean_harness):
    cells = [SweepCell("attack", SPEC, mode, None, "fast")
             for mode in ("plain", "sempe")]
    stats = run_sweep(SweepSpec("attack-smoke", cells), jobs=1)
    assert stats.computed == 2
    # Everything is now warm: a second sweep computes nothing.
    stats = run_sweep(SweepSpec("attack-smoke", cells), jobs=1)
    assert stats.computed == 0 and stats.cached == 2


def test_pooled_attack_cells_match_serial(clean_harness):
    cells = [SweepCell("attack", AttackSpec("memcmp", attacker, trials=16),
                       mode, None, "fast")
             for attacker in ("prime-probe", "timing")
             for mode in ("plain", "sempe")]
    run_cells(list(cells), jobs=1)
    serial = {cell.fingerprint(): cell.run().report for cell in cells}
    clear_cache()
    run_cells(list(cells), jobs=2)
    pooled = {cell.fingerprint(): cell.run().report for cell in cells}
    assert pooled == serial
