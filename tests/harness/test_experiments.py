"""Experiment regeneration: shapes of every table/figure.

These are the integration tests of the whole reproduction: small
parameterisations of each experiment must reproduce the paper's
qualitative shapes.  The full-size versions live in ``benchmarks/``.
"""

import pytest

from repro.harness.experiments import (
    EXPERIMENTS, experiment_cells, fig8_djpeg_overhead,
    fig9_cache_missrates, fig10a_microbench, fig10b_normalized_to_ideal,
    leakmatrix, table1_comparison, table2_config, victims_overhead,
)
from repro.harness.report import format_table

SMALL_W = (1, 3)
SMALL_SIZES = (256, 512)
SMALL_WORKLOADS = ("fibonacci", "ones")


def test_table2_echoes_paper_parameters():
    result = table2_config()
    text = format_table(result.headers, result.rows)
    assert "2.0 GHz" in text
    assert "192 uops" in text
    assert "32KB, 2-way assoc." in text
    assert "64 B/cycle R/W" in text


@pytest.mark.slow
def test_table1_shape():
    result = table1_comparison(w=3, workloads=SMALL_WORKLOADS)
    series = result.series
    # CTE slower than SeMPE; prior HW/SW schemes slower still.
    assert max(series["CTE"]) > max(series["SeMPE"])
    assert max(series["Raccoon"]) > max(series["SeMPE"])
    assert max(series["GhostRider"]) > max(series["Raccoon"])


def test_fig8_shape():
    result = fig8_djpeg_overhead(sizes=SMALL_SIZES)
    series = result.series
    for fmt in ("ppm", "gif", "bmp"):
        for overhead in series[fmt]:
            # Well under 2x (the paper: 31%..87%).
            assert 0.05 < overhead < 1.5
    # Ordering: PPM > GIF > BMP at every size.
    for index in range(len(SMALL_SIZES)):
        assert series["ppm"][index] > series["gif"][index] > \
            series["bmp"][index]


def test_fig8_flat_across_sizes():
    result = fig8_djpeg_overhead(sizes=(256, 1024))
    for fmt, overheads in result.series.items():
        spread = max(overheads) - min(overheads)
        assert spread < 0.25, (fmt, overheads)


def test_fig9_small_missrate_deltas():
    result = fig9_cache_missrates(sizes=SMALL_SIZES)
    for level in ("IL1", "DL1", "L2"):
        for base_rate, sempe_rate in zip(result.series[level]["base"],
                                         result.series[level]["sempe"]):
            assert abs(sempe_rate - base_rate) < 0.2


def test_fig10a_shape():
    result = fig10a_microbench(w_sweep=SMALL_W, workloads=SMALL_WORKLOADS)
    for workload in SMALL_WORKLOADS:
        sempe = result.series[(workload, "sempe")]
        cte = result.series[(workload, "cte")]
        # Slowdowns grow with W for both schemes.
        assert sempe[-1] > sempe[0]
        assert cte[-1] > cte[0]
        # CTE is slower than SeMPE at the deepest point.
        assert cte[-1] > sempe[-1]
        # SeMPE tracks the number of paths (W+1) loosely.
        assert 0.5 * (SMALL_W[-1] + 1) < sempe[-1] < 1.5 * (SMALL_W[-1] + 1)


def test_fig10b_shape():
    result = fig10b_normalized_to_ideal(w_sweep=SMALL_W,
                                        workloads=SMALL_WORKLOADS)
    for value in result.series["sempe"]:
        # SeMPE is near the ideal (sum of all paths).
        assert 0.6 < value < 1.6
    # CTE normalized cost exceeds SeMPE's and grows with W.
    assert result.series["cte"][-1] > result.series["sempe"][-1]
    assert result.series["cte"][-1] > result.series["cte"][0] * 0.9


def test_experiment_tables_render():
    result = fig8_djpeg_overhead(sizes=(256,))
    text = format_table(result.headers, result.rows, title=result.experiment)
    assert "PPM" in text and "%" in text


def test_registry_experiments_enumerated():
    assert "victims" in EXPERIMENTS
    assert "leakmatrix" in EXPERIMENTS
    assert "attacks" in EXPERIMENTS
    assert "spectre" in EXPERIMENTS


def test_spectre_experiment_cells_shape():
    from repro.harness.experiments import ATTACK_ENGINES, spectre_cells
    from repro.security.attackers import AttackSpec

    cells = spectre_cells(("plain", "fence"))
    attacks = [c for c in cells if c.kind == "attack"]
    verifies = [c for c in cells if c.kind == "verify"]
    assert len(attacks) == 2 * len(ATTACK_ENGINES)
    assert len(verifies) == 2
    assert all(isinstance(c.spec, AttackSpec)
               and c.spec.workload == "spectre"
               and c.spec.attacker == "mistrain-reload"
               for c in attacks)


@pytest.mark.slow
def test_spectre_matrix_expected_shape():
    """The transient acceptance matrix on its two hard-gated corners:
    the baseline leaks and the attacker recovers; the fence closes the
    channel and the attacker lands at chance — engines agreeing and
    the verify differential sound on both.  ``all_expected`` is the
    bit the spectre smoke lane gates CI on."""
    from repro.harness.experiments import spectre_matrix

    result = spectre_matrix(("plain", "fence"))
    per_defense = result.series["defenses"]
    assert per_defense["plain"]["transient_leaks"] is True
    assert per_defense["plain"]["attack_verdict"] == "recovered"
    assert per_defense["fence"]["transient_leaks"] is False
    assert per_defense["fence"]["attack_verdict"] == "chance"
    for mode in ("plain", "fence"):
        assert per_defense[mode]["engines_agree"], mode
        assert per_defense[mode]["verify_ok"], mode
        assert per_defense[mode]["ok"], mode
    assert result.series["all_expected"] is True
    text = format_table(result.headers, result.rows)
    assert "LEAKS" in text and "closed" in text
    cells = experiment_cells("victims")
    from repro.workloads.registry import iter_workloads

    expected = sum(2 * len(spec.grid) for spec in iter_workloads())
    assert len(cells) == expected
    assert all(cell.kind == "workload" for cell in cells)
    assert experiment_cells("leakmatrix") == []


def test_attacks_experiment_cells_shape():
    from repro.harness.experiments import (
        ATTACK_ENGINES,
        DEFAULT_ATTACK_DEFENSES,
    )
    from repro.security.attackers import applicable_attackers
    from repro.workloads.registry import iter_workloads

    cells = experiment_cells("attacks")
    per_pair = len(ATTACK_ENGINES) * len(DEFAULT_ATTACK_DEFENSES)
    expected = sum(per_pair * len(applicable_attackers(spec))
                   for spec in iter_workloads())
    assert len(cells) == expected
    assert all(cell.kind == "attack" for cell in cells)
    assert {cell.resolved_engine() for cell in cells} == set(ATTACK_ENGINES)
    # The acceptance criterion: the sweep grid covers >= 5 defenses.
    assert len(DEFAULT_ATTACK_DEFENSES) >= 5
    assert {cell.mode for cell in cells} == set(DEFAULT_ATTACK_DEFENSES)


@pytest.mark.slow
def test_victim_matrix_shape():
    """Every registered victim slows down under SeMPE but stays within
    an order of magnitude (the paper's low-overhead claim)."""
    result = victims_overhead()
    from repro.workloads.registry import workload_names

    assert set(result.series) == set(workload_names())
    for name, overheads in result.series.items():
        for overhead in overheads:
            # spectre's committed path is secret-independent by design
            # (no secret branch, nothing for SeMPE to dual-path), so
            # its overhead is exactly 1.0; every architectural victim
            # pays a real but bounded cost.
            if name == "spectre":
                assert overhead == 1.0, (name, overhead)
            else:
                assert 1.0 < overhead < 10.0, (name, overhead)


@pytest.mark.slow
def test_leakmatrix_verdicts():
    """The three-axis leak matrix: every victim leaks its declared
    channels on the baseline, is closed under SeMPE, and every other
    scheme's declared-protected channels hold empirically."""
    result = leakmatrix()
    for name, verdict in result.series.items():
        assert verdict["sempe_secure"] is True, name
        assert verdict["baseline_leaks"], name
        for defense, outcome in verdict["defenses"].items():
            assert outcome["ok"], (name, defense, outcome)
    text = format_table(result.headers, result.rows)
    assert "closed" in text and "LEAKS" in text
    assert "CLAIM BROKEN" not in text and "UNDECLARED-TIGHT" not in text
