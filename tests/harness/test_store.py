"""Persistent result store: round-trips, invalidation, runner backing."""

import json
import os

import pytest

from repro.core.engine import SimulationReport
from repro.harness import runner
from repro.harness.store import (
    SCHEMA_VERSION,
    ResultStore,
    canonical_json,
    fingerprint,
)
from repro.uarch.config import MachineConfig
from repro.workloads.microbench import MicrobenchSpec

SPEC = MicrobenchSpec("fibonacci", w=1, iters=1)


@pytest.fixture(autouse=True)
def clean_runner():
    runner.clear_cache()
    previous = runner.set_store(None)
    yield
    runner.set_store(previous)
    runner.clear_cache()


@pytest.fixture
def store(tmp_path):
    return ResultStore(str(tmp_path / "store"))


def _descriptor(engine="fast", config=None, mode="plain"):
    return runner.cell_descriptor("micro", SPEC, mode, config, engine)


def test_report_dict_round_trip():
    result = runner.run_microbench(SPEC, "sempe")
    report = result.report
    rebuilt = SimulationReport.from_dict(report.to_dict())
    assert rebuilt == report
    assert rebuilt.to_dict() == report.to_dict()


def test_store_round_trip(store):
    result = runner.run_microbench(SPEC, "plain")
    descriptor = _descriptor()
    fp = fingerprint(descriptor)
    store.put(fp, descriptor, result.report.to_dict())
    assert store.contains(fp)
    assert len(store) == 1
    loaded = store.get(fp, descriptor)
    assert loaded == result.report.to_dict()
    assert store.stats.hits == 1 and store.stats.stores == 1


def test_fingerprint_is_structural():
    """Equal configs address the same record; any field change
    re-addresses."""
    assert fingerprint(_descriptor(config=MachineConfig())) == \
        fingerprint(_descriptor(config=MachineConfig()))
    shrunk = MachineConfig()
    shrunk.rob_entries = 32
    assert fingerprint(_descriptor(config=MachineConfig())) != \
        fingerprint(_descriptor(config=shrunk))
    assert fingerprint(_descriptor(engine="fast")) != \
        fingerprint(_descriptor(engine="reference"))
    assert fingerprint(_descriptor(mode="plain")) != \
        fingerprint(_descriptor(mode="sempe"))


def test_miss_on_absent_record(store):
    descriptor = _descriptor()
    assert store.get(fingerprint(descriptor), descriptor) is None
    assert store.stats.misses == 1


def test_corrupt_record_invalidated(store):
    result = runner.run_microbench(SPEC, "plain")
    descriptor = _descriptor()
    fp = fingerprint(descriptor)
    store.put(fp, descriptor, result.report.to_dict())
    with open(store.path_for(fp), "w", encoding="utf-8") as handle:
        handle.write("{not json")
    assert store.get(fp, descriptor) is None
    assert store.stats.invalidations == 1
    assert not store.contains(fp)


def test_truncated_record_counts_as_miss_not_raise(store):
    """A record cut off mid-write (crash, full disk) must behave like a
    miss — invalidated and recomputed — never raise into the sweep."""
    result = runner.run_microbench(SPEC, "plain")
    descriptor = _descriptor()
    fp = fingerprint(descriptor)
    store.put(fp, descriptor, result.report.to_dict())
    path = store.path_for(fp)
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text[: len(text) // 2])
    assert store.get(fp, descriptor) is None
    assert store.stats.misses == 1
    assert store.stats.invalidations == 1
    assert not store.contains(fp)
    # The slot is reusable: a re-put round-trips again.
    store.put(fp, descriptor, result.report.to_dict())
    assert store.get(fp, descriptor) == result.report.to_dict()


def test_binary_garbage_record_counts_as_miss(store):
    """Undecodable bytes (UnicodeDecodeError, not JSONDecodeError) are
    an invalidation too."""
    result = runner.run_microbench(SPEC, "plain")
    descriptor = _descriptor()
    fp = fingerprint(descriptor)
    store.put(fp, descriptor, result.report.to_dict())
    with open(store.path_for(fp), "wb") as handle:
        handle.write(b"\x80\x81\xfe\xff\x00garbage")
    assert store.get(fp, descriptor) is None
    assert store.stats.misses == 1
    assert store.stats.invalidations == 1
    assert not store.contains(fp)


def test_non_object_record_counts_as_miss(store):
    """Valid JSON with the wrong top-level type must not crash the
    ``record.get`` probes."""
    result = runner.run_microbench(SPEC, "plain")
    descriptor = _descriptor()
    fp = fingerprint(descriptor)
    store.put(fp, descriptor, result.report.to_dict())
    with open(store.path_for(fp), "w", encoding="utf-8") as handle:
        handle.write("[1, 2, 3]\n")
    assert store.get(fp, descriptor) is None
    assert store.stats.misses == 1
    assert store.stats.invalidations == 1


def test_corrupt_store_degrades_to_recompute(store):
    """End-to-end: a corrupted record behind the runner is recomputed
    and re-stored, bit-identical."""
    runner.set_store(store)
    first = runner.run_microbench(SPEC, "sempe")
    fp_count = len(store)
    for dirpath, _dirnames, filenames in os.walk(store.root):
        for name in filenames:
            if name.endswith(".json"):
                with open(os.path.join(dirpath, name), "w",
                          encoding="utf-8") as handle:
                    handle.write('{"schema":')   # truncated
    runner.clear_cache()
    second = runner.run_microbench(SPEC, "sempe")
    assert second.report == first.report
    assert store.stats.invalidations == fp_count
    assert store.stats.stores == 2 * fp_count   # re-persisted


def test_schema_bump_invalidates(store):
    result = runner.run_microbench(SPEC, "plain")
    descriptor = _descriptor()
    fp = fingerprint(descriptor)
    store.put(fp, descriptor, result.report.to_dict())
    path = store.path_for(fp)
    with open(path, "r", encoding="utf-8") as handle:
        record = json.load(handle)
    record["schema"] = SCHEMA_VERSION + 1
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(canonical_json(record))
    assert store.get(fp, descriptor) is None
    assert store.stats.invalidations == 1


def test_key_mismatch_invalidates(store):
    """A record whose stored descriptor disagrees with the requested one
    (hash collision / hand-edited file) is dropped, not served."""
    result = runner.run_microbench(SPEC, "plain")
    descriptor = _descriptor()
    fp = fingerprint(descriptor)
    store.put(fp, _descriptor(mode="sempe"), result.report.to_dict())
    assert store.get(fp, descriptor) is None
    assert store.stats.invalidations == 1


def test_runner_served_from_store_across_sessions(store):
    """clear_cache() simulates a new process: the second run must come
    from disk, bit-identical, with zero new simulations."""
    runner.set_store(store)
    first = runner.run_microbench(SPEC, "sempe")
    assert store.stats.stores == 1

    runner.clear_cache()          # "new process"
    second = runner.run_microbench(SPEC, "sempe")
    assert store.stats.hits == 1
    assert store.stats.stores == 1          # nothing re-simulated
    assert second is not first
    assert second.report == first.report
    # and it is now an L1 entry: a third call is a pure cache hit
    third = runner.run_microbench(SPEC, "sempe")
    assert third is second


def test_config_change_misses_store(store):
    runner.set_store(store)
    runner.run_microbench(SPEC, "plain", config=MachineConfig())
    shrunk = MachineConfig()
    shrunk.rob_entries = 32
    runner.clear_cache()
    runner.run_microbench(SPEC, "plain", config=shrunk)
    assert store.stats.stores == 2          # distinct records
    assert len(store) == 2


def test_store_survives_reopen(tmp_path):
    root = str(tmp_path / "store")
    runner.set_store(ResultStore(root))
    first = runner.run_microbench(SPEC, "plain")
    runner.clear_cache()
    reopened = ResultStore(root)            # fresh instance, same dir
    runner.set_store(reopened)
    second = runner.run_microbench(SPEC, "plain")
    assert reopened.stats.hits == 1
    assert second.report == first.report


def test_store_layout(store):
    runner.set_store(store)
    runner.run_microbench(SPEC, "plain")
    assert os.path.exists(os.path.join(store.root, "STORE_FORMAT"))
    fp = fingerprint(_descriptor())
    path = store.path_for(fp)
    assert path.endswith(os.path.join(fp[:2], fp + ".json"))
    assert os.path.exists(path)


def test_format_marker_validated(tmp_path):
    root = str(tmp_path / "store")
    ResultStore(root)
    with open(os.path.join(root, "STORE_FORMAT"), "w",
              encoding="utf-8") as handle:
        handle.write("someone-elses-format-v9\n")
    with pytest.raises(ValueError, match="someone-elses-format-v9"):
        ResultStore(root)


# -- quarantine records ----------------------------------------------------

FAILURE = {
    "fingerprint": "", "name": "fibonacci-W1-I1-natural", "mode": "plain",
    "kind": "micro", "failure": "exception", "error_type": "RuntimeError",
    "message": "boom", "traceback": "", "attempts": 2, "duration": 0.0,
    "engine": "fast", "quarantined": True,
}


def _quarantine(store, descriptor=None):
    descriptor = descriptor or _descriptor()
    fp = fingerprint(descriptor)
    store.put_failure(fp, descriptor, dict(FAILURE, fingerprint=fp))
    return fp, descriptor


def test_failure_record_round_trip(store):
    fp, descriptor = _quarantine(store)
    assert store.contains_failure(fp)
    assert store.failure_count() == 1
    record = store.get_failure(fp, descriptor)
    assert record == dict(FAILURE, fingerprint=fp)
    assert store.stats.quarantines == 1
    assert store.stats.quarantine_hits == 1


def test_failure_records_live_outside_the_object_tree(store):
    fp, _ = _quarantine(store)
    assert len(store) == 0                  # no object record
    assert not store.contains(fp)
    path = store.failure_path_for(fp)
    assert os.path.join("quarantine", fp[:2]) in path
    assert os.path.exists(path)


def test_clear_failure(store):
    fp, _ = _quarantine(store)
    assert store.clear_failure(fp) is True
    assert not store.contains_failure(fp)
    assert store.failure_count() == 0
    assert store.clear_failure(fp) is False  # already gone


def test_failure_descriptor_mismatch_self_heals(store):
    fp, _ = _quarantine(store)
    other = _descriptor(mode="sempe")
    assert store.get_failure(fp, other) is None
    # the stale marker was dropped so the cell will be re-run
    assert not store.contains_failure(fp)


def test_corrupt_failure_record_self_heals(store):
    fp, descriptor = _quarantine(store)
    with open(store.failure_path_for(fp), "w", encoding="utf-8") as handle:
        handle.write("{truncated")
    assert store.get_failure(fp, descriptor) is None
    assert not store.contains_failure(fp)


def test_failure_schema_bump_self_heals(store):
    fp, descriptor = _quarantine(store)
    path = store.failure_path_for(fp)
    with open(path, "rb") as handle:
        record = json.loads(handle.read())
    record["schema"] = SCHEMA_VERSION + 1
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(record))
    assert store.get_failure(fp, descriptor) is None
    assert not store.contains_failure(fp)


def test_missing_failure_record_is_none(store):
    assert store.get_failure("ab" * 32, _descriptor()) is None
    assert store.failure_count() == 0


# -- atomic writes ---------------------------------------------------------

def test_interrupted_put_leaves_no_partial_record(store, monkeypatch):
    """A crash between the temp write and the rename must leave the
    store without a (possibly truncated) record under the real name."""
    descriptor = _descriptor()
    fp = fingerprint(descriptor)

    def crash(src, dst):
        raise OSError("simulated crash before rename")

    monkeypatch.setattr(os, "replace", crash)
    with pytest.raises(OSError, match="simulated crash"):
        store.put(fp, descriptor, {"x": 1})
    monkeypatch.undo()
    assert not store.contains(fp)
    assert store.get(fp, descriptor) is None


def test_interrupted_put_preserves_previous_record(store, monkeypatch):
    descriptor = _descriptor()
    fp = fingerprint(descriptor)
    store.put(fp, descriptor, {"x": "original"})

    monkeypatch.setattr(os, "replace",
                        lambda src, dst: (_ for _ in ()).throw(
                            OSError("simulated crash")))
    with pytest.raises(OSError):
        store.put(fp, descriptor, {"x": "replacement"})
    monkeypatch.undo()
    assert store.get(fp, descriptor) == {"x": "original"}
