"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.mem.cache import CacheConfig
from repro.mem.hierarchy import HierarchyConfig
from repro.uarch.config import MachineConfig


@pytest.fixture
def fast_config() -> MachineConfig:
    """A small machine that keeps unit-test simulations quick."""
    config = MachineConfig()
    config.rob_entries = 64
    config.int_issue_buffer = 24
    config.fp_issue_buffer = 24
    config.hierarchy = HierarchyConfig(
        il1=CacheConfig(name="IL1", size_bytes=4 * 1024, assoc=2,
                        hit_latency=1),
        dl1=CacheConfig(name="DL1", size_bytes=8 * 1024, assoc=2,
                        hit_latency=2),
        l2=CacheConfig(name="L2", size_bytes=64 * 1024, assoc=2,
                       hit_latency=12),
    )
    return config


SIMPLE_SECRET_IF = """
secret int key = 1;
int result = 0;

void main() {
  int acc = 0;
  if (key) {
    acc = acc + 7;
  } else {
    acc = acc - 3;
  }
  result = acc;
}
"""


@pytest.fixture
def simple_secret_source() -> str:
    return SIMPLE_SECRET_IF
