"""End-to-end image-content leak: the paper's djpeg scenario.

The secret is the image itself.  Two images with different content must
be indistinguishable to the §III attacker when decoded on the SeMPE
machine, and distinguishable on the baseline.
"""


import pytest

pytestmark = pytest.mark.slow

from repro.security import collect_observation, distinguishing_channels
from repro.workloads.djpeg import DjpegSpec, compile_djpeg, generate_image

NPIXELS = 128


@pytest.fixture(scope="module")
def images():
    flat = [0] * NPIXELS
    busy = generate_image(NPIXELS, seed=77)
    gradient = [(i % 512) - 256 for i in range(NPIXELS)]
    return [flat, busy, gradient]


def observations(fmt, mode, sempe, images, config):
    spec = DjpegSpec(fmt, NPIXELS, fill=False)
    compiled = compile_djpeg(spec, mode)
    return [
        collect_observation(compiled.program, sempe=sempe,
                            secret_values={"img": image}, config=config)
        for image in images
    ]


def test_baseline_distinguishes_images(images, fast_config):
    traces = observations("ppm", "plain", False, images, fast_config)
    assert distinguishing_channels(traces[0], traces[1])
    assert distinguishing_channels(traces[0], traces[2])


@pytest.mark.parametrize("fmt", ["ppm", "gif", "bmp"])
def test_sempe_hides_image_content(fmt, images, fast_config):
    traces = observations(fmt, "sempe", True, images, fast_config)
    for index in range(1, len(traces)):
        channels = distinguishing_channels(traces[0], traces[index])
        assert not channels, (fmt, channels)


def test_decode_results_differ_even_when_trace_equal(images, fast_config):
    """Sanity: SeMPE hides the *behaviour*, not the *output* — different
    images still decode to different checksums."""
    spec = DjpegSpec("ppm", NPIXELS, fill=False)
    compiled = compile_djpeg(spec, "sempe")
    from repro.arch.executor import Executor

    checksums = []
    for image in images[:2]:
        executor = Executor(compiled.program, sempe=True)
        base = compiled.program.symbols["img"]
        for index, value in enumerate(image):
            executor.state.memory.store(base + 8 * index,
                                        value & ((1 << 64) - 1))
        executor.run_to_completion()
        checksums.append(executor.state.memory.load(
            compiled.program.symbols["checksum"]))
    assert checksums[0] != checksums[1]
