"""Mutual-information and channel-report mechanics."""

import math

import pytest

from repro.security.leakage import (
    ChannelReport, mutual_information_bits,
)


def test_mi_zero_for_constant_observation():
    assert mutual_information_bits([5, 5, 5, 5]) == 0.0


def test_mi_full_for_unique_observations():
    assert mutual_information_bits([1, 2, 3, 4]) == pytest.approx(2.0)


def test_mi_partial_for_grouped_observations():
    # Two secrets map to one observation, two to another: 1 bit.
    assert mutual_information_bits([1, 1, 2, 2]) == pytest.approx(1.0)


def test_mi_nonuniform_grouping():
    value = mutual_information_bits([1, 1, 1, 2])
    expected = -(0.75 * math.log2(0.75) + 0.25 * math.log2(0.25))
    assert value == pytest.approx(expected)


def test_mi_empty():
    assert mutual_information_bits([]) == 0.0


def test_mi_handles_unhashable_values():
    assert mutual_information_bits([[1, 2], [1, 2]]) == 0.0
    assert mutual_information_bits([[1], [2]]) == pytest.approx(1.0)


def test_channel_report_leak_detection():
    report = ChannelReport(channel="timing",
                           observations={0: 100, 1: 100})
    assert not report.leaks
    report.observations[2] = 150
    assert report.leaks
    assert report.mutual_information > 0
