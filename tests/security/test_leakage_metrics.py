"""Mutual-information and channel-report mechanics."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.security.leakage import (
    ChannelReport, mutual_information_bits, observation_key,
)


def test_mi_zero_for_constant_observation():
    assert mutual_information_bits([5, 5, 5, 5]) == 0.0


def test_mi_full_for_unique_observations():
    assert mutual_information_bits([1, 2, 3, 4]) == pytest.approx(2.0)


def test_mi_partial_for_grouped_observations():
    # Two secrets map to one observation, two to another: 1 bit.
    assert mutual_information_bits([1, 1, 2, 2]) == pytest.approx(1.0)


def test_mi_nonuniform_grouping():
    value = mutual_information_bits([1, 1, 1, 2])
    expected = -(0.75 * math.log2(0.75) + 0.25 * math.log2(0.25))
    assert value == pytest.approx(expected)


def test_mi_empty():
    assert mutual_information_bits([]) == 0.0


def test_mi_handles_unhashable_values():
    assert mutual_information_bits([[1, 2], [1, 2]]) == 0.0
    assert mutual_information_bits([[1], [2]]) == pytest.approx(1.0)


def test_channel_report_leak_detection():
    report = ChannelReport(channel="timing",
                           observations={0: 100, 1: 100})
    assert not report.leaks
    report.observations[2] = 150
    assert report.leaks
    assert report.mutual_information > 0


# --------------------------------------------------------------------------
# Edge cases: degenerate channels and observation identity
# --------------------------------------------------------------------------

def test_mi_single_observation_is_zero():
    assert mutual_information_bits([object()]) == 0.0
    assert mutual_information_bits([["unhashable"]]) == 0.0


class _ConstantRepr:
    """Two *distinct* observations whose reprs collide."""

    def __init__(self, value):
        self.value = value

    def __repr__(self):
        return "<observation>"

    def __eq__(self, other):
        return isinstance(other, _ConstantRepr) and self.value == other.value

    def __hash__(self):
        return hash(self.value)


def test_leaks_not_masked_by_repr_collisions():
    # The old repr-based dedupe called these equal and reported the
    # channel closed; they are different observations and must leak.
    report = ChannelReport(channel="cache-state",
                           observations={0: _ConstantRepr(1),
                                         1: _ConstantRepr(2)})
    assert report.leaks
    assert report.mutual_information == pytest.approx(1.0)


def test_equal_unhashable_observations_do_not_leak():
    report = ChannelReport(channel="memory-address",
                           observations={0: [1, 2, 3], 1: [1, 2, 3]})
    assert not report.leaks
    assert report.mutual_information == 0.0


def test_observation_key_canonicalizes_containers():
    assert observation_key([1, 2]) == observation_key([1, 2])
    assert observation_key([1, 2]) != observation_key([2, 1])
    assert observation_key({"a": [1]}) == observation_key({"a": [1]})
    assert observation_key({1, 2}) == observation_key({2, 1})
    assert observation_key((1, (2, 3))) == observation_key((1, (2, 3)))


def test_observation_key_set_and_dict_members_not_deduped_by_repr():
    # Distinct members with colliding reprs must keep sets/dicts
    # distinguishable (the container branches dedupe by canonical key,
    # repr is only the sort order).
    assert observation_key({_ConstantRepr(1)}) != observation_key(
        {_ConstantRepr(2)})
    assert observation_key({_ConstantRepr(1): "x"}) != observation_key(
        {_ConstantRepr(2): "x"})
    assert observation_key({_ConstantRepr(1)}) == observation_key(
        {_ConstantRepr(1)})


def test_observation_key_distinguishes_types():
    # 1 == True == 1.0 in Python, but a channel that switches type is
    # observably different behaviour.
    keys = {observation_key(1), observation_key(True),
            observation_key(1.0)}
    assert len(keys) == 3
    assert observation_key([1]) != observation_key((1,))


# --------------------------------------------------------------------------
# Property: MI is bounded by the secret's entropy, log2(n observations)
# --------------------------------------------------------------------------

_observation = st.recursive(
    st.one_of(st.integers(-8, 8), st.booleans(),
              st.floats(allow_nan=False, allow_infinity=False, width=16),
              st.text(max_size=3)),
    lambda children: st.lists(children, max_size=3),
    max_leaves=6,
)


@settings(max_examples=120, deadline=None)
@given(st.lists(_observation, max_size=12))
def test_mi_bounded_by_log2_n_secrets(observations):
    value = mutual_information_bits(observations)
    assert 0.0 <= value
    n = len(observations)
    assert value <= math.log2(n) + 1e-9 if n else value == 0.0


@settings(max_examples=60, deadline=None)
@given(st.lists(_observation, min_size=2, max_size=8))
def test_mi_maximal_iff_all_observations_distinct(observations):
    value = mutual_information_bits(observations)
    keys = {observation_key(o) for o in observations}
    if len(keys) == len(observations):
        assert value == pytest.approx(math.log2(len(observations)))
    else:
        assert value < math.log2(len(observations)) - 1e-9
