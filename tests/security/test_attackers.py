"""The statistical attack engine: registry, reports, and the matrix.

The slow acceptance test at the bottom is the PR's headline: every
applicable (victim, adversary) pair recovers the key on the baseline
machine and sits at chance under SeMPE, on both engines, with the
trials fanned out through the multiprocessing sweep pool.
"""

import dataclasses

import pytest

pytestmark = pytest.mark.attack

from repro.security.attackers import (
    ATTACKERS,
    AttackReport,
    AttackSpec,
    applicable_attackers,
    attacker_names,
    execute_attack,
    get_attacker,
)
from repro.workloads.registry import get_workload, workload_names

SMOKE = AttackSpec("memcmp", "prime-probe", trials=16)


# --------------------------------------------------------------------------
# Registry mechanics (fast)
# --------------------------------------------------------------------------

def test_attacker_registry_contents():
    assert attacker_names() == ["branch-trace", "flush-reload",
                                "mistrain-reload", "predictor-probe",
                                "prime-probe", "timing"]
    for name, attacker in ATTACKERS.items():
        assert attacker.name == name
        assert attacker.channel
        assert attacker.description


def test_unknown_attacker_rejected():
    with pytest.raises(ValueError, match="unknown attacker"):
        get_attacker("psychic")


def test_applicability_follows_declared_channels():
    for workload in workload_names():
        spec = get_workload(workload)
        names = applicable_attackers(spec)
        assert names, workload        # every victim has >= 1 adversary
        for name in names:
            assert ATTACKERS[name].channel in spec.channels


def test_inapplicable_pair_rejected():
    # modexp does not declare memory-address (it has no secret-indexed
    # data accesses), so flush-reload must refuse to run against it.
    assert "memory-address" not in get_workload("modexp").channels
    with pytest.raises(ValueError, match="does not declare"):
        execute_attack(AttackSpec("modexp", "flush-reload"), "plain")


def test_attack_rejects_unknown_defense():
    # Any registered defense is attackable (the three-axis matrix);
    # an unregistered name must fail loudly before any simulation.
    with pytest.raises(ValueError, match="unknown defense"):
        execute_attack(SMOKE, "rot13")


def test_attack_rejects_statistically_meaningless_trials():
    # Below the floor even a fully leaking channel cannot reach ALPHA,
    # so a tiny campaign must fail loudly, not report a false "chance".
    with pytest.raises(ValueError, match="statistical floor"):
        execute_attack(AttackSpec("memcmp", "prime-probe", trials=8),
                       "plain")


def test_attack_spec_names_are_distinct():
    base = AttackSpec("memcmp", "timing")
    assert AttackSpec("memcmp", "timing", trials=64).name != base.name
    assert AttackSpec("memcmp", "timing", seed=1).name != base.name
    assert AttackSpec("memcmp", "prime-probe").name != base.name
    assert AttackSpec("memcmp", "timing",
                      params={"n": 24}).name != base.name


# --------------------------------------------------------------------------
# One attack end to end (the CI smoke scenario)
# --------------------------------------------------------------------------

def test_prime_probe_recovers_memcmp_on_baseline():
    report = execute_attack(SMOKE, "plain", engine="fast")
    assert report.verdict == "recovered"
    assert report.success_rate >= 0.9
    assert report.p_value < 0.01
    assert report.key_bits == 16 and report.bits_total == 16


def test_prime_probe_at_chance_under_sempe():
    report = execute_attack(SMOKE, "sempe", engine="fast")
    assert report.verdict == "chance"
    assert report.p_value >= 0.01
    assert report.success_rate < 0.9
    # Under SeMPE the profiled channel carries no information at all.
    assert report.profiled_mi == 0.0


def test_attack_is_deterministic_per_seed():
    first = execute_attack(SMOKE, "plain", engine="fast")
    second = execute_attack(SMOKE, "plain", engine="fast")
    assert first == second
    reseeded = execute_attack(
        dataclasses.replace(SMOKE, seed=1), "plain", engine="fast")
    assert reseeded.verdict == first.verdict    # conclusions are stable


def test_attack_report_roundtrips_through_dict():
    report = execute_attack(SMOKE, "plain", engine="fast")
    assert AttackReport.from_dict(report.to_dict()) == report


def test_timing_attack_uses_welch_and_survives_jitter():
    spec = AttackSpec("memcmp", "timing", trials=16, jitter=8.0)
    report = execute_attack(spec, "plain", engine="fast")
    assert report.stat_kind == "welch-t"
    assert abs(report.statistic) >= 4.5       # clears the TVLA bar
    assert report.verdict == "recovered"


def test_workload_params_reach_the_victim():
    wide = AttackSpec("memcmp", "timing", trials=16, params={"n": 24})
    narrow = AttackSpec("memcmp", "timing", trials=16)
    wide_report = execute_attack(wide, "plain", engine="fast")
    narrow_report = execute_attack(narrow, "plain", engine="fast")
    assert wide_report.verdict == "recovered"
    # A longer secret means a longer class pair repr, not just a rerun.
    assert wide_report.pair != narrow_report.pair


# --------------------------------------------------------------------------
# The full matrix (the acceptance criterion) — slow lane
# --------------------------------------------------------------------------

@pytest.mark.slow
def test_attack_matrix_full_acceptance():
    """Every victim x applicable adversary x engine: key recovered on
    the baseline, chance under SeMPE — batched through the sweep pool
    and rendered from the warmed cache.  (The legacy two-point axis;
    the new mitigations have their own acceptance suite in
    tests/defenses/test_mitigations.py.)"""
    from repro.harness import attack_matrix, attacks_cells, run_sweep
    from repro.harness.sweep import SweepSpec

    from repro.harness.experiments import ATTACK_ENGINES

    defenses = ("plain", "sempe")
    cells = attacks_cells(defenses)
    # Shape: every mode and every engine for every applicable pair.
    pairs = {(cell.spec.workload, cell.spec.attacker) for cell in cells}
    assert {w for w, _a in pairs} == set(workload_names())
    assert len(cells) == len(defenses) * len(ATTACK_ENGINES) * len(pairs)

    run_sweep(SweepSpec("attack-matrix-test", cells), jobs=4)
    result = attack_matrix(defenses)
    assert result.rows, "matrix must not be empty"
    for (workload, attacker), outcome in result.series.items():
        assert outcome["baseline"] == "recovered", (workload, attacker)
        if attacker == "mistrain-reload":
            # SeMPE's dual-path commit says nothing about the wrong
            # path: the transient channel stays open and the adversary
            # still recovers (the fence row owns closure — see
            # tests/security/test_transient_attack.py).
            assert outcome["sempe"] == "recovered", (workload, attacker)
        else:
            assert outcome["sempe"] == "chance", (workload, attacker)
        assert outcome["engines_agree"], (workload, attacker)
