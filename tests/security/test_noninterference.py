"""The core security claim: SeMPE closes the SDBCB channels.

These tests exercise the paper's §IV-A argument end-to-end: the
baseline machine leaks the secret through timing, control flow, memory
addresses and predictor state; the SeMPE machine (and the CTE baseline)
produce identical observations for every secret value.
"""


from repro.lang.compiler import compile_source
from repro.security import (
    collect_observation, distinguishing_channels, noninterference_report,
)

UNBALANCED = """
secret int key = 1;
int result = 0;

void main() {
  int acc = 0;
  if (key) {
    int w = 0;
    for (int i = 0; i < 25; i = i + 1) { w = w + i * i; }
    acc = acc + w;
  } else {
    acc = acc - 3;
  }
  result = acc;
}
"""

SECRETS = [0, 1, 7]


def report_for(mode, sempe, source=UNBALANCED, secrets=SECRETS,
               config=None):
    compiled = compile_source(source, mode=mode)
    return noninterference_report(
        compiled.program, "key", secrets, sempe=sempe, config=config,
    )


def test_baseline_leaks_timing_and_control_flow(fast_config):
    report = report_for("plain", sempe=False, config=fast_config)
    assert not report.secure
    leaking = set(report.leaking_channels())
    assert "timing" in leaking
    assert "control-flow" in leaking
    assert "instruction-count" in leaking


def test_baseline_leaks_branch_predictor(fast_config):
    report = report_for("plain", sempe=False, config=fast_config)
    assert "branch-predictor" in report.leaking_channels()


def test_sempe_closes_all_channels(fast_config):
    report = report_for("sempe", sempe=True, config=fast_config)
    assert report.secure, report.leaking_channels()


def test_cte_closes_all_channels(fast_config):
    report = report_for("cte", sempe=False, config=fast_config)
    assert report.secure, report.leaking_channels()


def test_sempe_binary_on_legacy_machine_leaks(fast_config):
    """Backward compatibility has a price: the SeMPE binary run on a
    non-SeMPE processor is functional but unprotected (§I)."""
    compiled = compile_source(UNBALANCED, mode="sempe")
    report = noninterference_report(
        compiled.program, "key", SECRETS, sempe=False, config=fast_config,
    )
    assert not report.secure


def test_necessity_skipping_a_path_is_observable(fast_config):
    """§IV-A necessity direction: executing only one path (the baseline)
    is distinguishable from executing both (SeMPE)."""
    compiled = compile_source(UNBALANCED, mode="sempe")
    both = collect_observation(compiled.program, sempe=True,
                               secret_values={"key": 1}, config=fast_config)
    one = collect_observation(compiled.program, sempe=False,
                              secret_values={"key": 1}, config=fast_config)
    assert distinguishing_channels(both, one)


def test_mutual_information_quantifies_leak(fast_config):
    leaky = report_for("plain", sempe=False, config=fast_config)
    timing = leaky.channels["timing"]
    assert timing.mutual_information > 0.5
    closed = report_for("sempe", sempe=True, config=fast_config)
    assert closed.channels["timing"].mutual_information == 0.0


def test_nested_secrets_closed(fast_config):
    source = """
    secret int key = 0;
    int result = 0;
    void main() {
      int acc = 0;
      int bit0 = key & 1;
      int bit1 = (key >> 1) & 1;
      if (bit0) {
        acc = acc + 5;
        if (bit1) { acc = acc * 3; }
      } else {
        acc = acc - 1;
      }
      result = acc;
    }
    """
    compiled = compile_source(source, mode="sempe")
    report = noninterference_report(
        compiled.program, "key", [0, 1, 2, 3], sempe=True,
        config=fast_config,
    )
    assert report.secure, report.leaking_channels()


def test_summary_renders(fast_config):
    report = report_for("sempe", sempe=True, config=fast_config)
    text = report.summary()
    assert "timing" in text and "closed" in text
