"""Leak suites for the four new victims, on both engines.

The acceptance contract of the workload registry: for every new victim,
the unprotected baseline leaks (at least) its declared channels, and
the SeMPE machine produces observations indistinguishable across all
representative secret values — with identical verdicts from the
reference and the fast engine.
"""

import pytest

pytestmark = pytest.mark.slow

from repro.security import collect_observation, victim_report
from repro.workloads.registry import get_workload

NEW_VICTIMS = ("memcmp", "table_lookup", "bsearch", "gcd")
ENGINES = ("reference", "fast")


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("name", NEW_VICTIMS)
def test_baseline_leaks_declared_channels(name, engine, fast_config):
    spec = get_workload(name)
    report = victim_report(spec, "plain", config=fast_config, engine=engine)
    assert not report.secure
    leaking = set(report.leaking_channels())
    missing = set(spec.channels) - leaking
    assert not missing, (name, engine, missing)
    # And the leak is quantifiable: at least one full bit somewhere.
    assert max(report.channels[c].mutual_information
               for c in spec.channels) >= 1.0


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("name", NEW_VICTIMS)
def test_sempe_indistinguishable(name, engine, fast_config):
    spec = get_workload(name)
    report = victim_report(spec, "sempe", config=fast_config, engine=engine)
    assert report.secure, (name, engine, report.leaking_channels())
    for channel in report.channels.values():
        assert channel.mutual_information == 0.0


@pytest.mark.parametrize("name", NEW_VICTIMS)
def test_cte_also_closes_channels(name, fast_config):
    """The FaCT-style rewrite is the software baseline; it must be
    secure too (at much higher cost, per the overhead experiments)."""
    spec = get_workload(name)
    report = victim_report(spec, "cte", config=fast_config)
    assert report.secure, (name, report.leaking_channels())


@pytest.mark.parametrize("name", NEW_VICTIMS)
def test_observations_identical_across_engines(name, fast_config):
    """Engine parity extends to the attacker's view: every digest and
    counter of the observation trace matches between engines, so leak
    verdicts can never depend on --engine."""
    spec = get_workload(name)
    params = spec.leak_resolve()
    secret = spec.secret_values()[0]
    for mode, sempe in (("plain", False), ("sempe", True)):
        compiled = spec.compile(mode, **params)
        traces = [
            collect_observation(compiled.program, sempe=sempe,
                                secret_values={spec.secret: secret},
                                config=fast_config, engine=engine)
            for engine in ENGINES
        ]
        assert traces[0] == traces[1], (name, mode)
