"""The statistical distinguisher toolkit (pure math, no simulation)."""

import math
import random

import pytest

pytestmark = pytest.mark.attack

from repro.security.stats import (
    TTestResult,
    majority_vote,
    majority_vote_bits,
    mean,
    paired_mutual_information_bits,
    permutation_test,
    regularized_incomplete_beta,
    student_t_sf,
    variance,
    welch_t_test,
)


# --------------------------------------------------------------------------
# Student's t machinery
# --------------------------------------------------------------------------

def test_incomplete_beta_edges():
    assert regularized_incomplete_beta(2.0, 3.0, 0.0) == 0.0
    assert regularized_incomplete_beta(2.0, 3.0, 1.0) == 1.0


def test_incomplete_beta_uniform_case():
    # I_x(1, 1) is the uniform CDF.
    for x in (0.1, 0.5, 0.9):
        assert regularized_incomplete_beta(1.0, 1.0, x) == pytest.approx(x)


def test_student_t_sf_known_quantiles():
    # Two-sided 5% critical values from standard t tables.
    assert student_t_sf(2.228, 10) == pytest.approx(0.05, abs=1e-3)
    assert student_t_sf(1.96, 1e6) == pytest.approx(0.05, abs=1e-3)
    assert student_t_sf(0.0, 10) == pytest.approx(1.0)
    assert student_t_sf(math.inf, 10) == 0.0


def test_student_t_sf_symmetric():
    assert student_t_sf(-3.0, 7) == pytest.approx(student_t_sf(3.0, 7))


# --------------------------------------------------------------------------
# Welch's t-test
# --------------------------------------------------------------------------

def test_welch_separated_samples_reject():
    rng = random.Random(7)
    a = [100.0 + rng.gauss(0, 2) for _ in range(20)]
    b = [200.0 + rng.gauss(0, 2) for _ in range(20)]
    result = welch_t_test(a, b)
    assert abs(result.statistic) > 50
    assert result.p_value < 1e-10
    assert result.significant()


def test_welch_identical_distributions_do_not_reject():
    rng = random.Random(11)
    a = [50.0 + rng.gauss(0, 3) for _ in range(30)]
    b = [50.0 + rng.gauss(0, 3) for _ in range(30)]
    result = welch_t_test(a, b)
    assert result.p_value > 0.01


def test_welch_degenerate_sizes():
    assert welch_t_test([], []).p_value == 1.0
    assert welch_t_test([1.0], [2.0, 3.0]).p_value == 1.0


def test_welch_zero_variance_cases():
    same = welch_t_test([5.0, 5.0], [5.0, 5.0])
    assert same.p_value == 1.0 and same.statistic == 0.0
    different = welch_t_test([5.0, 5.0], [9.0, 9.0])
    assert different.p_value == 0.0
    assert math.isinf(different.statistic)


def test_welch_result_is_dataclass_with_counts():
    result = welch_t_test([1.0, 2.0, 3.0], [1.0, 2.0])
    assert isinstance(result, TTestResult)
    assert (result.n_a, result.n_b) == (3, 2)


def test_mean_and_variance_basics():
    assert mean([]) == 0.0
    assert mean([2.0, 4.0]) == 3.0
    assert variance([3.0]) == 0.0
    assert variance([1.0, 3.0]) == pytest.approx(2.0)


# --------------------------------------------------------------------------
# Paired mutual information + permutation test
# --------------------------------------------------------------------------

def test_paired_mi_perfect_binary_channel():
    pairs = [(0, "a"), (0, "a"), (1, "b"), (1, "b")] * 4
    assert paired_mutual_information_bits(pairs) == pytest.approx(1.0)


def test_paired_mi_independent_channel():
    pairs = [(0, "x"), (1, "x")] * 8
    assert paired_mutual_information_bits(pairs) == 0.0


def test_paired_mi_never_negative_and_bounded():
    rng = random.Random(3)
    pairs = [(rng.randrange(2), rng.randrange(3)) for _ in range(40)]
    value = paired_mutual_information_bits(pairs)
    assert 0.0 <= value <= 1.0 + 1e-12    # bounded by H(label) = 1 bit


def test_paired_mi_degenerate():
    assert paired_mutual_information_bits([]) == 0.0
    assert paired_mutual_information_bits([(0, "a")]) == 0.0


def test_permutation_test_detects_aligned_labels():
    pairs = ([(0, "a") for _ in range(8)] + [(1, "b") for _ in range(8)])
    observed, p = permutation_test(pairs, random.Random(0))
    assert observed == pytest.approx(1.0)
    assert p < 0.01


def test_permutation_test_null_on_constant_observations():
    pairs = ([(0, "same") for _ in range(8)]
             + [(1, "same") for _ in range(8)])
    observed, p = permutation_test(pairs, random.Random(0))
    assert observed == 0.0
    assert p == 1.0


def test_permutation_test_deterministic_per_seed():
    pairs = [(i % 2, i % 3) for i in range(20)]
    first = permutation_test(pairs, random.Random(42))
    second = permutation_test(pairs, random.Random(42))
    assert first == second


# --------------------------------------------------------------------------
# Majority vote
# --------------------------------------------------------------------------

def test_majority_vote_basics():
    assert majority_vote([1, 1, 0]) == 1
    assert majority_vote([0, 0, 1]) == 0
    with pytest.raises(ValueError):
        majority_vote([])


def test_majority_vote_tie_breaking():
    assert majority_vote([0, 1]) == 0                 # default: 0
    rng = random.Random(5)
    seen = {majority_vote([0, 1], rng) for _ in range(32)}
    assert seen == {0, 1}                             # rng ties are coin flips


def test_majority_vote_bits_rows():
    rows = [[1, 0, 1], [1, 1, 1], [1, 0, 0]]
    assert majority_vote_bits(rows) == [1, 0, 1]
    assert majority_vote_bits([]) == []


def test_majority_vote_bits_ragged_rows():
    # Shorter rows simply do not vote on the trailing positions.
    rows = [[1, 0], [1, 1, 1], [1]]
    assert majority_vote_bits(rows) == [1, 0, 1]


def test_majority_vote_corrects_noise():
    rng = random.Random(9)
    truth = [rng.randrange(2) for _ in range(64)]
    rows = []
    for _ in range(15):
        rows.append([bit ^ (1 if rng.random() < 0.2 else 0)
                     for bit in truth])
    assert majority_vote_bits(rows, rng) == truth
