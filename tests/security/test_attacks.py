"""Concrete key-recovery attacks (Fig. 1 scenario)."""


import pytest

pytestmark = pytest.mark.slow

from repro.lang.compiler import compile_source
from repro.security.attacks import BranchTraceAttack, TimingAttack
from repro.workloads.crypto import modexp_source

BITS = 8
KEYS = [0x00, 0x01, 0x5A, 0xF0, 0xFF]


@pytest.fixture(scope="module")
def victims():
    source = modexp_source(bits=BITS, key=0)
    return {
        "plain": compile_source(source, mode="plain"),
        "sempe": compile_source(source, mode="sempe"),
    }


def secure_branch_pc(program):
    for index, inst in enumerate(program.instructions):
        if inst.is_secure_branch:
            return index
    raise AssertionError("no secure branch found")


def secret_branch_pc_plain(program, compiled_sempe):
    """The plain binary's key-bit branch: find the conditional branch
    executed exactly BITS times (the per-bit guard)."""
    from repro.arch.executor import Executor

    executor = Executor(program, sempe=False)
    counts = {}
    for record in executor.run():
        if record.kind == "inst" and record.taken is not None:
            counts[record.pc] = counts.get(record.pc, 0) + 1
    candidates = [
        pc for pc, count in counts.items()
        if count == BITS and program.instructions[pc].is_cond_branch
    ]
    assert candidates
    return candidates[0]


@pytest.mark.parametrize("key", KEYS)
def test_branch_trace_attack_recovers_key_on_baseline(victims, key):
    program = victims["plain"].program
    attack = BranchTraceAttack(program, sempe=False)
    branch_pc = secret_branch_pc_plain(program, victims["sempe"])
    result = attack.recover_key("ekey", key, BITS, branch_pc)
    assert result.as_int() == key


@pytest.mark.parametrize("key", KEYS)
def test_branch_trace_attack_defeated_by_sempe(victims, key):
    program = victims["sempe"].program
    attack = BranchTraceAttack(program, sempe=True)
    branch_pc = secure_branch_pc(program)
    directions = attack.observed_directions({"ekey": key}, branch_pc)
    # The observable fetch direction is constant regardless of the key.
    assert set(directions) <= {0}
    # And identical across keys.
    other = attack.observed_directions({"ekey": (~key) & 0xFF}, branch_pc)
    assert directions == other


def test_timing_attack_reads_hamming_weight_on_baseline(victims,
                                                        fast_config):
    attack = TimingAttack(victims["plain"].program, sempe=False,
                          secret_name="ekey", bits=BITS,
                          config=fast_config)
    for key in (0x0F, 0xFF, 0x01):
        estimate, actual = attack.estimate_weight(key)
        assert estimate is not None
        assert abs(estimate - actual) <= 1    # near-exact weight recovery


def test_timing_attack_defeated_by_sempe(victims, fast_config):
    attack = TimingAttack(victims["sempe"].program, sempe=True,
                          secret_name="ekey", bits=BITS,
                          config=fast_config)
    estimate, _actual = attack.estimate_weight(0x5A)
    assert estimate is None      # flat timing: no signal to invert
