"""Concrete key-recovery attacks (Fig. 1 scenario)."""


import pytest

pytestmark = [pytest.mark.slow, pytest.mark.attack]

from repro.lang.compiler import compile_source
from repro.security.attacks import (
    AttackResult,
    BranchTraceAttack,
    NoisyBranchTraceAttack,
    TimingAttack,
)
from repro.workloads.crypto import modexp_source

BITS = 8
KEYS = [0x00, 0x01, 0x5A, 0xF0, 0xFF]


@pytest.fixture(scope="module")
def victims():
    source = modexp_source(bits=BITS, key=0)
    return {
        "plain": compile_source(source, mode="plain"),
        "sempe": compile_source(source, mode="sempe"),
    }


def secure_branch_pc(program):
    for index, inst in enumerate(program.instructions):
        if inst.is_secure_branch:
            return index
    raise AssertionError("no secure branch found")


def secret_branch_pc_plain(program, compiled_sempe):
    """The plain binary's key-bit branch: find the conditional branch
    executed exactly BITS times (the per-bit guard)."""
    from repro.arch.executor import Executor

    executor = Executor(program, sempe=False)
    counts = {}
    for record in executor.run():
        if record.kind == "inst" and record.taken is not None:
            counts[record.pc] = counts.get(record.pc, 0) + 1
    candidates = [
        pc for pc, count in counts.items()
        if count == BITS and program.instructions[pc].is_cond_branch
    ]
    assert candidates
    return candidates[0]


@pytest.mark.parametrize("key", KEYS)
def test_branch_trace_attack_recovers_key_on_baseline(victims, key):
    program = victims["plain"].program
    attack = BranchTraceAttack(program, sempe=False)
    branch_pc = secret_branch_pc_plain(program, victims["sempe"])
    result = attack.recover_key("ekey", key, BITS, branch_pc)
    assert result.as_int() == key


@pytest.mark.parametrize("key", KEYS)
def test_branch_trace_attack_defeated_by_sempe(victims, key):
    program = victims["sempe"].program
    attack = BranchTraceAttack(program, sempe=True)
    branch_pc = secure_branch_pc(program)
    directions = attack.observed_directions({"ekey": key}, branch_pc)
    # The observable fetch direction is constant regardless of the key.
    assert set(directions) <= {0}
    # And identical across keys.
    other = attack.observed_directions({"ekey": (~key) & 0xFF}, branch_pc)
    assert directions == other


def test_timing_attack_reads_hamming_weight_on_baseline(victims,
                                                        fast_config):
    attack = TimingAttack(victims["plain"].program, sempe=False,
                          secret_name="ekey", bits=BITS,
                          config=fast_config)
    for key in (0x0F, 0xFF, 0x01):
        estimate, actual = attack.estimate_weight(key)
        assert estimate is not None
        assert abs(estimate - actual) <= 1    # near-exact weight recovery


def test_timing_attack_defeated_by_sempe(victims, fast_config):
    attack = TimingAttack(victims["sempe"].program, sempe=True,
                          secret_name="ekey", bits=BITS,
                          config=fast_config)
    estimate, _actual = attack.estimate_weight(0x5A)
    assert estimate is None      # flat timing: no signal to invert


# --------------------------------------------------------------------------
# Regression: observations are driven off the record stream, and secrets
# are poked through the shared word-sized encoding (not raw stores).
# --------------------------------------------------------------------------

def test_branch_trace_succeeds_with_word_sized_secret(victims):
    """The secret symbol is an 8-byte word; poking a value that fills
    the whole word (garbage above the attacked bits, high word bit set)
    must still recover the low key bits exactly."""
    program = victims["plain"].program
    attack = BranchTraceAttack(program, sempe=False)
    branch_pc = secret_branch_pc_plain(program, victims["sempe"])
    full_word = (1 << 63) | (0xABCD << 16) | 0x5A
    directions = attack.observed_directions({"ekey": full_word}, branch_pc)
    bits_seen = [1 - d for d in directions[:BITS]]
    assert AttackResult(bits_seen, "exact").as_int() == 0x5A


def test_branch_trace_confidence_comes_from_calibration(victims):
    """``exact`` on the baseline (calibration keys separate), ``none``
    under SeMPE (identical streams) — observed behaviour, not a flag."""
    plain = BranchTraceAttack(victims["plain"].program, sempe=False)
    plain_pc = secret_branch_pc_plain(victims["plain"].program,
                                      victims["sempe"])
    assert plain.recover_key("ekey", 0x5A, BITS,
                             plain_pc).confidence == "exact"
    sempe = BranchTraceAttack(victims["sempe"].program, sempe=True)
    sempe_pc = secure_branch_pc(victims["sempe"].program)
    assert sempe.recover_key("ekey", 0x5A, BITS,
                             sempe_pc).confidence == "none"


def test_sempe_directions_are_stream_derived_not_flagged(victims):
    """On the SeMPE machine the committed stream after the sJMP really
    does continue on the fall-through path: the observed direction is
    constant because of the machine, and the attack reads it off the
    records rather than assuming it."""
    program = victims["sempe"].program
    attack = BranchTraceAttack(program, sempe=True)
    branch_pc = secure_branch_pc(program)
    target = program.instructions[branch_pc].target
    assert target != branch_pc + 1    # directions are distinguishable
    for key in (0x00, 0xFF):
        directions = attack.observed_directions({"ekey": key}, branch_pc)
        assert len(directions) == BITS
        assert set(directions) == {0}


def test_noisy_branch_trace_majority_vote_recovers_key(victims):
    program = victims["plain"].program
    branch_pc = secret_branch_pc_plain(program, victims["sempe"])
    attack = NoisyBranchTraceAttack(program, sempe=False,
                                    flip=0.2, trials=15, seed=3)
    result = attack.recover_key("ekey", 0xA7, BITS, branch_pc)
    assert result.as_int() == 0xA7
    assert result.confidence == "exact"


def test_noisy_branch_trace_still_defeated_by_sempe(victims):
    program = victims["sempe"].program
    attack = NoisyBranchTraceAttack(program, sempe=True,
                                    flip=0.2, trials=15, seed=3)
    result = attack.recover_key("ekey", 0xA7, BITS,
                                secure_branch_pc(program))
    assert result.confidence == "none"


def test_noisy_branch_trace_rejects_bad_flip(victims):
    with pytest.raises(ValueError, match="flip"):
        NoisyBranchTraceAttack(victims["plain"].program, sempe=False,
                               flip=0.5)


# --------------------------------------------------------------------------
# Adversarial bit-ordering tests for AttackResult / recover_key
# --------------------------------------------------------------------------

def test_as_int_lsb_first_ordering():
    assert AttackResult([], "exact").as_int() == 0
    assert AttackResult([1], "exact").as_int() == 1
    assert AttackResult([0, 1], "exact").as_int() == 2
    assert AttackResult([1, 0, 1, 1], "exact").as_int() == 0b1101


def test_as_int_high_bit_set():
    bits = [0] * 7 + [1]
    assert AttackResult(bits, "exact").as_int() == 0x80
    assert AttackResult([1] * 8, "exact").as_int() == 0xFF


def test_as_int_masks_non_binary_votes():
    # Defensive: vote values are used modulo 2, never shifted raw.
    assert AttackResult([2, 3], "exact").as_int() == 0b10


def test_recover_key_high_bit_keys(victims):
    program = victims["plain"].program
    attack = BranchTraceAttack(program, sempe=False)
    branch_pc = secret_branch_pc_plain(program, victims["sempe"])
    for key in (0x80, 0xC3, 0xFF):
        result = attack.recover_key("ekey", key, BITS, branch_pc)
        assert result.as_int() == key, hex(key)


def test_recover_key_zero_key(victims):
    program = victims["plain"].program
    attack = BranchTraceAttack(program, sempe=False)
    branch_pc = secret_branch_pc_plain(program, victims["sempe"])
    result = attack.recover_key("ekey", 0, BITS, branch_pc)
    assert result.as_int() == 0
    assert result.confidence == "exact"


def test_recover_key_more_bits_than_branch_executions(victims):
    """Asking for more bits than the loop tests must not fabricate
    them: the recovered list stays at the observed length and the
    reassembled integer covers exactly those bits."""
    program = victims["plain"].program
    attack = BranchTraceAttack(program, sempe=False)
    branch_pc = secret_branch_pc_plain(program, victims["sempe"])
    result = attack.recover_key("ekey", 0xA7, BITS + 4, branch_pc)
    assert len(result.recovered_bits) == BITS
    assert result.as_int() == 0xA7
