"""The mistraining + flush-reload adversary on the spectre gadget.

The attack engine's statistical machinery is channel-agnostic; this
suite pins the transient instantiation: the ``mistrain-reload``
attacker observes the wrong-path line-stream digest, recovers the key
on every architectural machine (plain, SeMPE, CTE — the window is
open under all of them), lands at chance under the fence (the only
scheme that kills the window), and gets identical verdicts from all
three engines.  ``execute_attack`` must open the window itself when
handed a transient attacker and a speculation-off config.
"""

import pytest

pytestmark = [pytest.mark.slow, pytest.mark.attack]

from repro.security.attackers import (
    ATTACKERS,
    AttackSpec,
    execute_attack,
    expected_verdict,
    get_attacker,
)

TRIALS = 24
SPEC = AttackSpec("spectre", "mistrain-reload", trials=TRIALS)


def test_attacker_registered():
    attacker = get_attacker("mistrain-reload")
    assert attacker.channel == "transient-memory"
    assert not attacker.scalar
    assert "mistrain-reload" in ATTACKERS


def test_expected_verdicts():
    assert expected_verdict("mistrain-reload", "plain") == "recovered"
    # fence declares the transient channel protected -> hard gate.
    assert expected_verdict("mistrain-reload", "fence") == "chance"
    # Architectural schemes make no claim about the wrong path.
    assert expected_verdict("mistrain-reload", "sempe") is None
    assert expected_verdict("mistrain-reload", "cte") is None


@pytest.mark.parametrize("mode", ["plain", "sempe", "cte"])
def test_recovers_under_architectural_machines(mode):
    report = execute_attack(SPEC, mode, engine="fast")
    assert report.verdict == "recovered", (mode, report)


def test_chance_under_fence():
    report = execute_attack(SPEC, "fence", engine="fast")
    assert report.verdict == "chance", report


def test_verdicts_identical_across_engines():
    reports = {engine: execute_attack(SPEC, "plain", engine=engine)
               for engine in ("reference", "fast", "batch")}
    verdicts = {engine: r.verdict for engine, r in reports.items()}
    assert set(verdicts.values()) == {"recovered"}, verdicts


def test_auto_enables_speculation_without_mutating_config():
    """A caller's speculation-off config must still see the attack —
    on a private copy, never by mutating the caller's object."""
    from repro.security.attackers import attack_config

    config = attack_config()
    assert not config.speculation.enabled
    report = execute_attack(SPEC, "plain", config=config, engine="fast")
    assert report.verdict == "recovered"
    assert not config.speculation.enabled   # caller's object untouched
