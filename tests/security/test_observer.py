"""Observation collection plumbing."""

import hashlib

import pytest

from repro.lang.compiler import compile_source
from repro.security.observer import (
    TraceObserver,
    collect_observation,
    poke_secrets,
)

SOURCE = """
secret int key = 1;
int result = 0;
void main() {
  int buf[8];
  for (int i = 0; i < 8; i = i + 1) { buf[i] = i; }
  result = buf[3];
}
"""


def test_collect_observation_fields(fast_config):
    compiled = compile_source(SOURCE, mode="plain")
    trace = collect_observation(compiled.program, sempe=False,
                                config=fast_config)
    assert trace.cycles > 0
    assert trace.instruction_count > 0
    assert len(trace.pc_digest) == 64
    assert len(trace.mem_digest) == 64
    channels = trace.channels()
    assert set(channels) == {
        "timing", "instruction-count", "control-flow", "memory-address",
        "cache-state", "branch-predictor", "transient-memory",
    }
    # Speculation is off by default, so the transient observable is the
    # constant empty-stream digest.
    assert channels["transient-memory"] == hashlib.sha256().hexdigest()


def test_keep_streams_records_sequences(fast_config):
    compiled = compile_source(SOURCE, mode="plain")
    trace = collect_observation(compiled.program, sempe=False,
                                config=fast_config, keep_streams=True)
    assert len(trace.pc_sequence) == trace.instruction_count
    assert trace.mem_addresses      # the array writes


def test_digest_matches_streams(fast_config):
    compiled = compile_source(SOURCE, mode="plain")
    first = collect_observation(compiled.program, sempe=False,
                                config=fast_config, keep_streams=True)
    second = collect_observation(compiled.program, sempe=False,
                                 config=fast_config, keep_streams=False)
    assert first.pc_digest == second.pc_digest
    assert first.mem_digest == second.mem_digest


def test_observer_granularity_is_cache_lines():
    observer = TraceObserver(line_bytes=64, keep_streams=True)

    class FakeRecord:
        kind = "inst"
        pc = 0
        mem_addr = 0

    record_a = FakeRecord()
    record_a.mem_addr = 0
    record_b = FakeRecord()
    record_b.mem_addr = 63
    observer.observe(record_a)
    observer.observe(record_b)
    assert observer.mem_addresses == [0, 0]   # same line


def test_secret_poke_changes_functional_result(fast_config):
    compiled = compile_source("""
    secret int key = 1;
    int result = 0;
    void main() { result = key * 2; }
    """, mode="plain")
    trace_a = collect_observation(compiled.program, sempe=False,
                                  secret_values={"key": 3},
                                  config=fast_config)
    trace_b = collect_observation(compiled.program, sempe=False,
                                  secret_values={"key": 4},
                                  config=fast_config)
    # Straight-line data flow: no observable difference...
    assert trace_a.cycles == trace_b.cycles
    assert trace_a.pc_digest == trace_b.pc_digest


# --------------------------------------------------------------------------
# Hermeticity: every trial gets a fresh machine.  Residue from one run
# (trained prefetcher tables, predictor state, resident cache lines)
# must never reach the next — the multi-trial attack engine's bedrock.
# --------------------------------------------------------------------------

@pytest.mark.parametrize("engine", ("reference", "fast"))
@pytest.mark.parametrize("mode,sempe", (("plain", False), ("sempe", True)))
def test_observation_trials_are_hermetic(engine, mode, sempe, fast_config):
    """The same (program, secret) twice back-to-back yields identical
    observations — every digest, counter, and occupancy vector."""
    from repro.workloads.registry import get_workload

    spec = get_workload("memcmp")
    compiled = spec.compile(mode, **spec.leak_resolve())
    secret = tuple(spec.secret_values()[0])
    first = collect_observation(compiled.program, sempe=sempe,
                                secret_values={spec.secret: secret},
                                config=fast_config, engine=engine)
    second = collect_observation(compiled.program, sempe=sempe,
                                 secret_values={spec.secret: secret},
                                 config=fast_config, engine=engine)
    assert first == second


@pytest.mark.parametrize("engine", ("reference", "fast"))
def test_interleaved_secrets_leave_no_residue(engine, fast_config):
    """A different secret in between must not perturb a repeated run:
    trained StridePrefetcher/TAGE state from trial N-1 cannot show up
    in trial N's observation."""
    from repro.workloads.registry import get_workload

    spec = get_workload("memcmp")
    compiled = spec.compile("plain", **spec.leak_resolve())
    values = [tuple(v) for v in spec.secret_values()]
    baseline = collect_observation(compiled.program, sempe=False,
                                   secret_values={spec.secret: values[0]},
                                   config=fast_config, engine=engine)
    collect_observation(compiled.program, sempe=False,
                        secret_values={spec.secret: values[-1]},
                        config=fast_config, engine=engine)
    repeated = collect_observation(compiled.program, sempe=False,
                                   secret_values={spec.secret: values[0]},
                                   config=fast_config, engine=engine)
    assert repeated == baseline


def test_cache_occupancy_recorded_and_engine_independent(fast_config):
    compiled = compile_source(SOURCE, mode="plain")
    traces = [collect_observation(compiled.program, sempe=False,
                                  config=fast_config, engine=engine)
              for engine in ("reference", "fast")]
    assert traces[0].cache_occupancy == traces[1].cache_occupancy
    il1, dl1, l2 = traces[0].cache_occupancy
    assert sum(il1) > 0 and sum(dl1) > 0 and sum(l2) > 0
    assert len(dl1) == fast_config.hierarchy.dl1.n_sets


def test_poke_secrets_word_encoding():
    """Scalars are masked to one 8-byte word; arrays fill consecutive
    words — the single encoding both attacker and victim use."""
    from repro.mem.memory import FlatMemory

    memory = FlatMemory()
    symbols = {"k": 0x100, "arr": 0x200}
    poke_secrets(memory, symbols, {"k": -1, "arr": (1, -2, 3)})
    assert memory.load(0x100, 8) == (1 << 64) - 1
    assert memory.load(0x200, 8) == 1
    assert memory.load(0x208, 8) == (1 << 64) - 2
    assert memory.load(0x210, 8) == 3
    assert memory.load(0x218, 8) == 0        # nothing past the array
