"""Observation collection plumbing."""

from repro.lang.compiler import compile_source
from repro.security.observer import TraceObserver, collect_observation

SOURCE = """
secret int key = 1;
int result = 0;
void main() {
  int buf[8];
  for (int i = 0; i < 8; i = i + 1) { buf[i] = i; }
  result = buf[3];
}
"""


def test_collect_observation_fields(fast_config):
    compiled = compile_source(SOURCE, mode="plain")
    trace = collect_observation(compiled.program, sempe=False,
                                config=fast_config)
    assert trace.cycles > 0
    assert trace.instruction_count > 0
    assert len(trace.pc_digest) == 64
    assert len(trace.mem_digest) == 64
    channels = trace.channels()
    assert set(channels) == {
        "timing", "instruction-count", "control-flow", "memory-address",
        "cache-state", "branch-predictor",
    }


def test_keep_streams_records_sequences(fast_config):
    compiled = compile_source(SOURCE, mode="plain")
    trace = collect_observation(compiled.program, sempe=False,
                                config=fast_config, keep_streams=True)
    assert len(trace.pc_sequence) == trace.instruction_count
    assert trace.mem_addresses      # the array writes


def test_digest_matches_streams(fast_config):
    compiled = compile_source(SOURCE, mode="plain")
    first = collect_observation(compiled.program, sempe=False,
                                config=fast_config, keep_streams=True)
    second = collect_observation(compiled.program, sempe=False,
                                 config=fast_config, keep_streams=False)
    assert first.pc_digest == second.pc_digest
    assert first.mem_digest == second.mem_digest


def test_observer_granularity_is_cache_lines():
    observer = TraceObserver(line_bytes=64, keep_streams=True)

    class FakeRecord:
        kind = "inst"
        pc = 0
        mem_addr = 0

    record_a = FakeRecord()
    record_a.mem_addr = 0
    record_b = FakeRecord()
    record_b.mem_addr = 63
    observer.observe(record_a)
    observer.observe(record_b)
    assert observer.mem_addresses == [0, 0]   # same line


def test_secret_poke_changes_functional_result(fast_config):
    compiled = compile_source("""
    secret int key = 1;
    int result = 0;
    void main() { result = key * 2; }
    """, mode="plain")
    trace_a = collect_observation(compiled.program, sempe=False,
                                  secret_values={"key": 3},
                                  config=fast_config)
    trace_b = collect_observation(compiled.program, sempe=False,
                                  secret_values={"key": 4},
                                  config=fast_config)
    # Straight-line data flow: no observable difference...
    assert trace_a.cycles == trace_b.cycles
    assert trace_a.pc_digest == trace_b.pc_digest
