"""Functional executor: SeMPE multi-path semantics."""

import pytest

from repro.arch.executor import Executor
from repro.arch.trace import DrainEvent, DynInstr
from repro.isa.assembler import assemble


def run_asm(source, sempe=True, trace=False):
    executor = Executor(assemble(source), sempe=sempe)
    records = list(executor.run()) if trace else None
    if not trace:
        executor.run_to_completion()
    return executor, executor.result, records


TWO_PATH = """
    .data
key: .quad {key}
    .text
main:
    la   a0, key
    ld   a1, 0(a0)
    addi a2, zero, 0
    sbeq a1, zero, else1
    addi a2, a2, 11
    jmp  join1
else1:
    addi a2, a2, 100
join1:
    eosjmp
    addi a3, a2, 0
    halt
"""


def test_both_paths_execute_and_commit():
    executor, result, records = run_asm(TWO_PATH.format(key=1), trace=True)
    program = assemble(TWO_PATH.format(key=1))
    pcs = [r.pc for r in records if isinstance(r, DynInstr)]
    # Both the +11 (NT path) and +100 (T path) instructions ran...
    assert program.labels["else1"] in pcs
    assert (program.labels["join1"] - 2) in pcs
    # ...but the architectural result reflects only the true (NT) path.
    assert executor.state.read(12) == 11
    assert executor.state.read(13) == 11


def test_wrong_path_result_discarded_when_taken():
    executor, _, _ = run_asm(TWO_PATH.format(key=0))
    # key == 0: the branch is taken, the else path (the T path) is correct.
    assert executor.state.read(12) == 100


def test_three_drains_per_region():
    _, result, _ = run_asm(TWO_PATH.format(key=1))
    assert result.secure_regions == 1
    assert result.drains == 3


def test_drain_reasons_in_order():
    _, _, records = run_asm(TWO_PATH.format(key=1), trace=True)
    reasons = [r.reason for r in records if isinstance(r, DrainEvent)]
    assert reasons == ["secblock-entry", "nt-path-end", "secblock-exit"]


def test_trace_is_secret_independent():
    """The committed PC sequence must be identical for either secret."""
    _, _, trace_key1 = run_asm(TWO_PATH.format(key=1), trace=True)
    _, _, trace_key0 = run_asm(TWO_PATH.format(key=0), trace=True)
    pcs_1 = [r.pc for r in trace_key1 if isinstance(r, DynInstr)]
    pcs_0 = [r.pc for r in trace_key0 if isinstance(r, DynInstr)]
    assert pcs_1 == pcs_0


def test_nt_path_always_first():
    _, _, records = run_asm(TWO_PATH.format(key=0), trace=True)
    pcs = [r.pc for r in records if isinstance(r, DynInstr)]
    program = assemble(TWO_PATH.format(key=0))
    nt_pc = program.labels["join1"] - 2     # the +11 instruction
    t_pc = program.labels["else1"]          # the +100 instruction
    assert pcs.index(nt_pc) < pcs.index(t_pc)


NESTED = """
    .data
k1: .quad {k1}
k2: .quad {k2}
    .text
main:
    la   a0, k1
    ld   a1, 0(a0)
    la   a0, k2
    ld   a2, 0(a0)
    addi a3, zero, 0
    sbeq a1, zero, else_outer
    addi a3, a3, 1
    sbeq a2, zero, else_inner
    addi a3, a3, 10
    jmp  join_inner
else_inner:
    addi a3, a3, 20
join_inner:
    eosjmp
    jmp  join_outer
else_outer:
    addi a3, a3, 100
join_outer:
    eosjmp
    halt
"""


@pytest.mark.parametrize("k1,k2,expected", [
    (1, 1, 11),    # outer NT, inner NT
    (1, 0, 21),    # outer NT, inner T
    (0, 1, 100),   # outer T
    (0, 0, 100),
])
def test_nested_regions_compute_correctly(k1, k2, expected):
    executor, result, _ = run_asm(NESTED.format(k1=k1, k2=k2))
    assert executor.state.read(13) == expected
    assert result.secure_regions == 2
    assert result.max_nesting == 2


def test_nested_trace_secret_independent():
    traces = []
    for k1, k2 in [(0, 0), (0, 1), (1, 0), (1, 1)]:
        _, _, records = run_asm(NESTED.format(k1=k1, k2=k2), trace=True)
        traces.append([r.pc for r in records if isinstance(r, DynInstr)])
    assert all(t == traces[0] for t in traces)


def test_registers_restored_between_paths():
    """The T path must start from the pre-region register state."""
    executor, _, _ = run_asm("""
        .data
    key: .quad 1
        .text
    main:
        la   a0, key
        ld   a1, 0(a0)
        addi a4, zero, 5
        sbeq a1, zero, else1
        addi a4, a4, 1000
        jmp  join1
    else1:
        addi a5, a4, 0
    join1:
        eosjmp
        halt
    """)
    # key=1: NT path correct -> a4 = 1005.  The else path copied a4 into
    # a5 *after the NT path ran*; if state were not rewound, a5 would be
    # 1005.  It must be 5 (pre-region value), then discarded -> final a5
    # keeps the NT-path value of a5, which is the entry value 0.
    assert executor.state.read(14) == 1005
    assert executor.state.read(15) == 0


def test_memory_not_rewound_between_paths():
    """Stores in the NT path are visible to the T path (the paper's
    phantom memory dependences: ShadowMemory is the compiler's job).
    Register writes of the wrong path are discarded at the merge, so the
    evidence must flow through memory: the T path copies what it loaded
    into a second cell, and stores are never rolled back."""
    executor, _, _ = run_asm("""
        .data
    key:   .quad 1
    cell:  .quad 3
    cell2: .quad 0
        .text
    main:
        la   a0, key
        ld   a1, 0(a0)
        la   a2, cell
        sbeq a1, zero, else1
        addi a3, zero, 42
        st   a3, 0(a2)
        jmp  join1
    else1:
        ld   a4, 0(a2)
        la   a5, cell2
        st   a4, 0(a5)
    join1:
        eosjmp
        halt
    """)
    program = executor.program
    assert executor.state.memory.load(program.symbols["cell2"]) == 42


def test_wrong_path_register_writes_discarded():
    """Registers written only in the wrong (T) path revert to their
    pre-region values at the merge."""
    executor, _, _ = run_asm("""
        .data
    key: .quad 1
        .text
    main:
        la   a0, key
        ld   a1, 0(a0)
        addi a4, zero, 77
        sbeq a1, zero, else1
        addi a5, zero, 1
        jmp  join1
    else1:
        addi a4, zero, 999
    join1:
        eosjmp
        halt
    """)
    assert executor.state.read(14) == 77


def test_eosjmp_is_nop_outside_regions():
    executor, result, _ = run_asm("""
    main:
        eosjmp
        addi a0, zero, 3
        halt
    """)
    assert executor.state.read(10) == 3
    assert result.drains == 0


def test_secure_region_instruction_counters():
    _, result, _ = run_asm(TWO_PATH.format(key=1))
    assert result.secure_instructions > 0
    assert result.secure_instructions < result.instructions


def test_empty_t_path_region():
    """if (secret) {work} with no else: branch target == join point."""
    executor, result, _ = run_asm("""
        .data
    key: .quad 0
        .text
    main:
        la   a0, key
        ld   a1, 0(a0)
        addi a2, zero, 1
        sbeq a1, zero, join1
        addi a2, a2, 5
        jmp  join1
    join1:
        eosjmp
        halt
    """)
    # key=0 -> branch taken -> T (empty) path correct -> a2 stays 1,
    # but the NT path (the +5) still executed.
    assert executor.state.read(12) == 1
    assert result.secure_regions == 1
    assert result.drains == 3


def test_loop_of_secure_regions_reuses_jbtable():
    executor, result, _ = run_asm("""
        .data
    key: .quad 0
        .text
    main:
        la   a0, key
        ld   a1, 0(a0)
        addi a2, zero, 0
        addi a3, zero, 4
    loop:
        sbeq a1, zero, join1
        addi a2, a2, 1
        jmp  join1
    join1:
        eosjmp
        addi a3, a3, -1
        bne  a3, zero, loop
        halt
    """)
    assert result.secure_regions == 4
    assert result.max_nesting == 1
    assert executor.state.read(12) == 0   # increments all discarded
