"""Nested SecBlock regression tests for the O(1) modified-register
tracking in ``Executor._write_reg``.

A register written inside a nested region must be visible in every
enclosing region's modified set, otherwise the enclosing constant-time
restore leaves wrong-path values in the registers.  The strongest
architectural check: a SeMPE run of a sempe-compiled binary must end in
exactly the same architectural state as a legacy run of the same binary
(backward compatibility), for every secret assignment.
"""

import itertools

import pytest

from repro.arch.executor import Executor
from repro.lang.compiler import compile_source

NESTED = """
secret int s1 = {s1};
secret int s2 = {s2};
secret int s3 = {s3};
int result = 0;

void main() {{
  int x = 10;
  int y = 20;
  if (s1) {{
    x = x + 100;
    if (s2) {{
      x = x + 1000;
      if (s3) {{ y = y + 7; }}
      y = y + 1;
    }}
    y = y + 2;
  }} else {{
    x = x + 5;
    if (s2) {{ x = x + 3; }}
  }}
  result = x * 1000 + y;
}}
"""


def _expected(s1, s2, s3):
    x, y = 10, 20
    if s1:
        x += 100
        if s2:
            x += 1000
            if s3:
                y += 7
            y += 1
        y += 2
    else:
        x += 5
        if s2:
            x += 3
    return x * 1000 + y


def _run(source, sempe):
    program = compile_source(source, mode="sempe").program
    executor = Executor(program, sempe=sempe)
    executor.run_to_completion()
    result = executor.state.memory.load_signed(program.symbols["result"])
    return executor, result


@pytest.mark.parametrize("s1,s2,s3",
                         list(itertools.product((0, 1), repeat=3)))
def test_nested_regions_restore_correctly(s1, s2, s3):
    """Program-visible results must match the source semantics and the
    legacy machine for every secret assignment.  (Raw register files are
    *not* compared: the compiler privatizes SecBlock variables into
    per-path stack slots merged by CMOV, and that privatized memory is
    deliberately not rolled back, so dead temporaries may differ.)"""
    source = NESTED.format(s1=s1, s2=s2, s3=s3)
    secure, secure_result = _run(source, sempe=True)
    legacy, legacy_result = _run(source, sempe=False)
    assert secure_result == _expected(s1, s2, s3)
    assert legacy_result == secure_result
    # Both paths of every secure branch actually executed.
    assert secure.result.instructions > legacy.result.instructions
    assert secure.result.max_nesting >= 2


def test_inner_writes_propagate_to_outer_restore():
    """The precise failure mode of per-write region iteration gone
    wrong: s1=0 makes the outer NT (else) path correct, so registers
    the *taken* path modified — including those written only inside the
    nested region — must be rolled back at the outer merge."""
    source = NESTED.format(s1=0, s2=1, s3=1)
    _, result = _run(source, sempe=True)
    # x: 10 + 5 + 3 = 18; y stays 20 (the y writes happened on the
    # discarded taken path, two levels deep).
    assert result == 18 * 1000 + 20


def test_modified_sets_fold_into_parent():
    """White-box check: after a nested region exits, the registers it
    wrote appear in the still-open parent region's accumulating set."""
    source = NESTED.format(s1=1, s2=1, s3=0)
    program = compile_source(source, mode="sempe").program
    executor = Executor(program, sempe=True)
    max_outer_set = 0
    for _record in executor.run():
        if len(executor._regions) == 1:
            max_outer_set = max(max_outer_set,
                                len(executor._modified_stack[0]))
    # The outer region's set ends up holding more registers than any
    # single straight-line segment writes, because nested unions fold in.
    assert max_outer_set >= 2
