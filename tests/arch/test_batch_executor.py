"""Unit tests for the trial-batched functional engine.

Parity with the serial engines lives in
``tests/core/test_batch_parity.py`` (the golden suite); this file pins
the mechanics: BatchMemory promotion, lane isolation, group splitting
on divergent control flow, per-lane faults, and the API guards
(single-use, lane validation, the numpy gate).
"""

import pytest

np = pytest.importorskip("numpy")

from repro.arch import batch as batch_module
from repro.arch.batch import BatchExecutor, BatchMemory
from repro.arch.executor import InstructionLimitError, SimulationError
from repro.isa.assembler import assemble
from repro.isa.instructions import Instruction
from repro.isa.opcodes import Op
from repro.isa.program import Program


# --------------------------------------------------------------------------
# BatchMemory
# --------------------------------------------------------------------------

def test_memory_starts_uniform_and_promotes_on_divergence():
    memory = BatchMemory(4, {0: 0xAB})
    assert memory._lane_word(0, 0) == 0xAB
    assert isinstance(memory._words[0], int)        # uniform: plain int
    memory.poke(2, 0, 0xCD, width=1)
    assert not isinstance(memory._words[0], int)    # promoted to a column
    assert memory._lane_word(0, 2) == 0xCD
    for lane in (0, 1, 3):
        assert memory._lane_word(0, lane) == 0xAB, lane


def test_memory_poke_same_value_stays_uniform():
    memory = BatchMemory(4, {8: 0x11})
    memory.poke(1, 8, 0x11, width=1)
    assert isinstance(memory._words[8], int)


def test_memory_sub_word_poke_is_read_modify_write():
    memory = BatchMemory(2)
    memory.poke(0, 16, 0xAABBCCDD, width=4)
    memory.poke(0, 20, 0x1122, width=2)
    assert memory._lane_word(16, 0) == 0x1122_AABBCCDD
    assert memory._lane_word(16, 1) == 0


def test_lane_view_writes_one_lane_only():
    memory = BatchMemory(3)
    view = memory.lane_view(1)
    view.store(24, 0xFEED, 8)
    assert memory._lane_word(24, 1) == 0xFEED
    assert memory._lane_word(24, 0) == 0
    assert memory._lane_word(24, 2) == 0


# --------------------------------------------------------------------------
# Constructor guards
# --------------------------------------------------------------------------

HALT_ONLY = Program([Instruction(Op.HALT)], name="halt")


def test_n_lanes_must_be_positive():
    with pytest.raises(ValueError, match="n_lanes"):
        BatchExecutor(HALT_ONLY, sempe=False, n_lanes=0)


def test_run_is_single_use():
    executor = BatchExecutor(HALT_ONLY, sempe=False, n_lanes=2)
    executor.run()
    with pytest.raises(RuntimeError, match="single-use"):
        executor.run()


def test_lane_accessors_require_run():
    executor = BatchExecutor(HALT_ONLY, sempe=False, n_lanes=2)
    with pytest.raises(RuntimeError, match="run\\(\\)"):
        executor.lane_result(0)


def test_numpy_gate_message(monkeypatch):
    monkeypatch.setattr(batch_module, "np", None)
    with pytest.raises(RuntimeError, match="requires numpy"):
        batch_module._require_numpy()


# --------------------------------------------------------------------------
# Group splitting on divergent control flow
# --------------------------------------------------------------------------

DIVERGE = """
    .text
main:
    la   a2, secret
    ld   a1, 0(a2)
    beq  a1, zero, is_zero
    addi a0, a0, 7
    jmp  done
is_zero:
    addi a0, a0, 42
done:
    halt

    .data
    secret: .quad 0
"""


def _diverging_executor(values):
    program = assemble(DIVERGE)
    executor = BatchExecutor(program, sempe=False, n_lanes=len(values))
    address = program.symbols["secret"]
    for lane, value in enumerate(values):
        executor.memory.poke(lane, address, value)
    executor.run()
    return executor


def test_divergent_branch_splits_lanes():
    executor = _diverging_executor([0, 5, 0, 9])
    expected = {0: 42, 1: 7, 2: 42, 3: 7}
    for lane, value in expected.items():
        assert executor.lane_regs(lane)[10] == value, lane
        assert executor.lane_halted(lane), lane
        assert executor.lane_error(lane) is None, lane


def test_divergent_lanes_report_divergent_traces():
    executor = _diverging_executor([0, 5])
    taken = [list(chunk.taken) for chunk in executor.lane_chunks(0)]
    other = [list(chunk.taken) for chunk in executor.lane_chunks(1)]
    assert taken != other


def test_uniform_lanes_never_split():
    executor = _diverging_executor([5, 5, 5])
    results = [executor.lane_result(lane) for lane in range(3)]
    assert results[0] == results[1] == results[2]
    regs = [executor.lane_regs(lane) for lane in range(3)]
    assert regs[0] == regs[1] == regs[2]


# --------------------------------------------------------------------------
# Per-lane faults
# --------------------------------------------------------------------------

def test_fuel_exhaustion_is_per_executor():
    program = assemble("""
    .text
main:
    addi a0, a0, 1
    jmp  main
""")
    executor = BatchExecutor(program, sempe=False, n_lanes=2,
                             max_instructions=10)
    executor.run()
    for lane in range(2):
        error = executor.lane_error(lane)
        assert isinstance(error, InstructionLimitError), lane
        assert error.executed == 10
        assert executor.lane_result(lane).instructions == 10


def test_bad_jalr_target_faults_only_the_guilty_lane():
    program = assemble("""
    .text
main:
    la   a2, target
    ld   a1, 0(a2)
    jalr ra, a1
    halt
ok:
    addi a0, a0, 1
    halt

    .data
    target: .quad 0
""")
    ok_pc = program.labels["ok"]
    executor = BatchExecutor(program, sempe=False, n_lanes=2)
    address = program.symbols["target"]
    executor.memory.poke(0, address, ok_pc)
    executor.memory.poke(1, address, 10_000)     # way past the program
    executor.run()
    assert executor.lane_error(0) is None
    assert executor.lane_regs(0)[10] == 1
    assert isinstance(executor.lane_error(1), SimulationError)


def test_lane_chunks_align_with_lane_results():
    executor = _diverging_executor([0, 5, 0])
    for lane in range(3):
        rows = sum(
            sum(1 for pc in chunk.pc if pc >= 0)
            for chunk in executor.lane_chunks(lane))
        assert rows == executor.lane_result(lane).instructions, lane
