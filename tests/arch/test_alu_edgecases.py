"""Signed/unsigned comparison edge cases for SLT / SLTI / SLTU.

Audit record for the ``Executor._alu`` signed-immediate handling: the
former ``b & MASK64 if op is Op.SLT else b`` masking was redundant —
``to_signed`` masks first — but the behaviour at the edges was never
pinned down.  These tests fix the contract for negative immediates and
large unsigned operands, on both engines.
"""

import pytest

from repro.arch.executor import Executor
from repro.arch.fast_executor import FastExecutor
from repro.isa.instructions import Instruction
from repro.isa.opcodes import Op
from repro.isa.program import Program

MASK64 = (1 << 64) - 1
INT_MIN = 1 << 63          # as an unsigned pattern: most negative value
NEG = lambda v: (-v) & MASK64  # noqa: E731 - two's-complement literal


def alu_result(op, a, b=None, imm=None):
    """Run ``op rd, rs1(, rs2|imm)`` on both engines; assert they agree."""
    inst = Instruction(op, rd=10, rs1=11,
                       rs2=None if b is None else 12, imm=imm)
    program = Program([inst, Instruction(Op.HALT)], name="alu-edge")
    results = []
    for executor_class, drive in (
        (Executor, lambda e: e.run_to_completion()),
        (FastExecutor, lambda e: list(e.run_chunks())),
    ):
        executor = executor_class(program, sempe=False)
        executor.state.regs[11] = a & MASK64
        if b is not None:
            executor.state.regs[12] = b & MASK64
        drive(executor)
        results.append(executor.state.regs[10])
    assert results[0] == results[1], (
        f"engine mismatch for {op}: {results[0]} != {results[1]}"
    )
    return results[0]


@pytest.mark.parametrize("a,imm,expected", [
    (0, -1, 0),            # 0 < -1 is false
    (NEG(2), -1, 1),       # -2 < -1
    (NEG(1), -1, 0),       # -1 < -1 is false
    (INT_MIN, 5, 1),       # most negative < 5
    (INT_MIN, -1, 1),      # most negative < -1
    (MASK64, 0, 1),        # -1 < 0 (large unsigned pattern is negative)
    (5, 5, 0),
    (4, 5, 1),
    (0, 1 << 63, 0),       # oversized imm wraps to the most negative value
])
def test_slti_signed_compare(a, imm, expected):
    assert alu_result(Op.SLTI, a, imm=imm) == expected


@pytest.mark.parametrize("a,b,expected", [
    (1, MASK64, 0),        # 1 < -1 is false signed
    (INT_MIN, 1, 1),       # most negative < 1
    (MASK64, NEG(2), 0),   # -1 < -2 is false
    (NEG(2), MASK64, 1),   # -2 < -1
    (INT_MIN, INT_MIN, 0),
])
def test_slt_signed_compare(a, b, expected):
    assert alu_result(Op.SLT, a, b=b) == expected


@pytest.mark.parametrize("a,b,expected", [
    (1, MASK64, 1),        # unsigned: 1 < 2^64-1
    (MASK64, 1, 0),
    (INT_MIN, 1, 0),       # 2^63 is a big unsigned number
    (1, INT_MIN, 1),
    (0, 0, 0),
])
def test_sltu_unsigned_compare(a, b, expected):
    assert alu_result(Op.SLTU, a, b=b) == expected


def test_slti_branchless_abs_idiom():
    """The motivating use: sign tests in branchless code must treat a
    large unsigned register as negative."""
    pattern = NEG(123456789)
    assert alu_result(Op.SLTI, pattern, imm=0) == 1
    assert alu_result(Op.SLT, pattern, b=0) == 1
