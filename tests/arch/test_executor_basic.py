"""Functional executor: plain (non-SeMPE) semantics."""

import pytest

from repro.arch.executor import (
    Executor, InstructionLimitError, SimulationError, run_program,
)
from repro.arch.state import to_signed
from repro.isa.assembler import assemble


def run_asm(source, sempe=False, **kwargs):
    executor = Executor(assemble(source), sempe=sempe, **kwargs)
    result = executor.run_to_completion()
    return executor, result


def test_arithmetic():
    executor, _ = run_asm("""
    main:
        addi a0, zero, 6
        addi a1, zero, 7
        mul  a2, a0, a1
        sub  a3, a2, a0
        halt
    """)
    assert executor.state.read(12) == 42
    assert executor.state.read(13) == 36


def test_negative_values_wrap_to_64bit():
    executor, _ = run_asm("""
    main:
        addi a0, zero, -1
        addi a1, a0, -4
        halt
    """)
    assert to_signed(executor.state.read(10)) == -1
    assert to_signed(executor.state.read(11)) == -5


def test_signed_vs_unsigned_comparison():
    executor, _ = run_asm("""
    main:
        addi a0, zero, -1
        addi a1, zero, 1
        slt  a2, a0, a1
        sltu a3, a0, a1
        halt
    """)
    assert executor.state.read(12) == 1   # -1 < 1 signed
    assert executor.state.read(13) == 0   # 2^64-1 > 1 unsigned


def test_shifts():
    executor, _ = run_asm("""
    main:
        addi a0, zero, -8
        srai a1, a0, 1
        srli a2, a0, 60
        slli a3, a0, 1
        halt
    """)
    assert to_signed(executor.state.read(11)) == -4
    assert executor.state.read(12) == 15
    assert to_signed(executor.state.read(13)) == -16


def test_division_semantics():
    executor, _ = run_asm("""
    main:
        addi a0, zero, -7
        addi a1, zero, 2
        div  a2, a0, a1
        rem  a3, a0, a1
        halt
    """)
    assert to_signed(executor.state.read(12)) == -3   # truncate toward zero
    assert to_signed(executor.state.read(13)) == -1


def test_division_by_zero_riscv_convention():
    executor, _ = run_asm("""
    main:
        addi a0, zero, 9
        div  a1, a0, zero
        rem  a2, a0, zero
        halt
    """)
    assert to_signed(executor.state.read(11)) == -1
    assert executor.state.read(12) == 9


def test_division_by_zero_strict_mode():
    with pytest.raises(SimulationError):
        run_asm("""
        main:
            addi a0, zero, 9
            div  a1, a0, zero
            halt
        """, strict=True)


def test_memory_load_store():
    executor, result = run_asm("""
        .data
    cell: .quad 0
        .text
    main:
        la   a0, cell
        addi a1, zero, 99
        st   a1, 0(a0)
        ld   a2, 0(a0)
        sb   a1, 9(a0)
        lb   a3, 9(a0)
        halt
    """)
    assert executor.state.read(12) == 99
    assert executor.state.read(13) == 99
    assert result.loads == 2 and result.stores == 2


def test_branches_and_loop():
    executor, result = run_asm("""
    main:
        addi a0, zero, 0
        addi a1, zero, 5
    loop:
        addi a0, a0, 1
        bne  a0, a1, loop
        halt
    """)
    assert executor.state.read(10) == 5
    assert result.branches == 5
    assert result.taken_branches == 4


def test_call_and_return():
    executor, _ = run_asm("""
    main:
        addi a0, zero, 20
        jal  ra, double
        addi a1, a0, 0
        halt
    double:
        add  a0, a0, a0
        ret
    """)
    assert executor.state.read(11) == 40


def test_cmov_both_ways():
    executor, _ = run_asm("""
    main:
        addi a0, zero, 10
        addi a1, zero, 20
        addi a2, zero, 1
        cmov a0, a1, a2
        addi a3, zero, 30
        cmov a1, a3, zero
        halt
    """)
    assert executor.state.read(10) == 20    # condition true: moved
    assert executor.state.read(11) == 20    # condition false: kept


def test_writes_to_x0_discarded():
    executor, _ = run_asm("""
    main:
        addi zero, zero, 77
        add  a0, zero, zero
        halt
    """)
    assert executor.state.read(10) == 0


def test_secure_branch_behaves_normally_without_sempe():
    executor, result = run_asm("""
    main:
        addi a0, zero, 1
        sbeq a0, zero, skip
        addi a1, zero, 5
    skip:
        eosjmp
        halt
    """, sempe=False)
    assert executor.state.read(11) == 5
    assert result.secure_branches == 0
    assert result.drains == 0


def test_instruction_limit():
    with pytest.raises(InstructionLimitError):
        run_asm("""
        main:
            jmp main
        """, max_instructions=100)


def test_pc_out_of_range():
    with pytest.raises(SimulationError):
        run_asm("""
        main:
            addi a0, zero, 1
        """)  # falls off the end without halt


def test_run_program_helper():
    executor, result = run_program(assemble("main:\n halt\n"), sempe=False)
    assert result.halted
    assert result.instructions == 1


def test_op_counts_recorded():
    _, result = run_asm("""
    main:
        addi a0, zero, 1
        addi a0, a0, 1
        halt
    """)
    assert result.op_counts["addi"] == 2
    assert result.op_counts["halt"] == 1
