"""Executor resource limits: jbTable depth, SPM capacity, strict mode."""

import pytest

from repro.arch.executor import Executor, SimulationError
from repro.core.jbtable import JbTableError, JumpBackTable
from repro.lang.compiler import compile_source
from repro.mem.scratchpad import ScratchpadMemory, SPMOverflowError


def deep_nest_source(depth: int) -> str:
    lines = ["int sink = 0;"]
    for level in range(depth):
        lines.append(f"secret int s{level} = 1;")
    lines.append("void main() {")
    for level in range(depth):
        lines.append(f"if (s{level}) {{")
    lines.append("sink = sink + 1;")
    lines.extend("}" for _ in range(depth))
    lines.append("}")
    return "\n".join(lines)


def test_nesting_within_table_depth_works():
    compiled = compile_source(deep_nest_source(5), mode="sempe")
    executor = Executor(compiled.program, sempe=True,
                        jbtable=JumpBackTable(depth=5),
                        spm=ScratchpadMemory(n_slots=5, n_arch_regs=32))
    executor.run_to_completion()
    assert executor.result.max_nesting == 5


def test_jbtable_overflow_at_runtime():
    """Nesting deeper than the jbTable raises, per §IV-E (the run-time
    exception option for exceeding the supported nesting)."""
    compiled = compile_source(deep_nest_source(4), mode="sempe")
    executor = Executor(compiled.program, sempe=True,
                        jbtable=JumpBackTable(depth=3),
                        spm=ScratchpadMemory(n_slots=10, n_arch_regs=32))
    with pytest.raises(JbTableError, match="overflow"):
        executor.run_to_completion()


def test_spm_overflow_at_runtime():
    compiled = compile_source(deep_nest_source(4), mode="sempe")
    executor = Executor(compiled.program, sempe=True,
                        jbtable=JumpBackTable(depth=10),
                        spm=ScratchpadMemory(n_slots=3, n_arch_regs=32))
    with pytest.raises(SPMOverflowError):
        executor.run_to_completion()


def test_default_capacity_handles_paper_depths():
    """Table II sizes the SPM for 30 snapshots; a 12-deep program (the
    paper: 'likely much less than a dozen' for crypto) fits easily."""
    compiled = compile_source(deep_nest_source(12), mode="sempe")
    executor = Executor(compiled.program, sempe=True)
    executor.run_to_completion()
    assert executor.result.max_nesting == 12


def test_wrong_path_division_by_zero_is_survivable():
    """§III: a false path may divide by zero; the deterministic RISC-V
    convention keeps the program alive and the result correct."""
    source = """
    secret int key = 0;
    int result = 0;
    void main() {
      int d = 0;
      int out = 5;
      if (key) {
        out = 100 / d;
      }
      result = out;
    }
    """
    compiled = compile_source(source, mode="sempe")
    executor = Executor(compiled.program, sempe=True)
    executor.run_to_completion()
    # key == 0: the divide ran (wrong path) but its result was discarded.
    assert executor.state.memory.load_signed(
        compiled.program.symbols["result"]) == 5


def test_wrong_path_division_strict_mode_raises():
    """The compiler/user may instead reject such code; strict mode
    models the reject-at-run-time option."""
    source = """
    secret int key = 0;
    int result = 0;
    void main() {
      int d = 0;
      if (key) {
        result = 100 / d;
      }
    }
    """
    compiled = compile_source(source, mode="sempe")
    executor = Executor(compiled.program, sempe=True, strict=True)
    with pytest.raises(SimulationError, match="zero"):
        executor.run_to_completion()
