"""Columnar trace chunks and their record-materializing adapter.

The fast executor's chunk stream, flattened back through
``TraceChunk.records()``, must reproduce the reference executor's
object stream field for field — that is what lets security observers
and trace-level tests consume either engine.
"""

from repro.arch.executor import Executor
from repro.arch.fast_executor import FastExecutor
from repro.arch.trace import CHUNK_RECORDS, DRAIN_REASONS, chunk_records
from repro.isa.assembler import assemble
from repro.workloads.microbench import MicrobenchSpec, compile_microbench

DYN_FIELDS = ("seq", "pc", "op", "opclass", "srcs", "dst", "mem_addr",
              "mem_width", "is_store", "taken", "target", "secure")
DRAIN_FIELDS = ("seq", "reason", "spm_cycles", "level")


def assert_streams_identical(program, sempe):
    reference = list(Executor(program, sempe=sempe).run())
    chunks = list(FastExecutor(program, sempe=sempe).run_chunks())
    materialized = list(chunk_records(chunks))
    assert len(reference) == len(materialized)
    for ref, fast in zip(reference, materialized):
        assert ref.kind == fast.kind
        fields = DYN_FIELDS if ref.kind == "inst" else DRAIN_FIELDS
        for field in fields:
            assert getattr(ref, field) == getattr(fast, field), (
                f"{field} differs at seq {ref.seq}: "
                f"{getattr(ref, field)!r} != {getattr(fast, field)!r}"
            )
    return chunks


def test_records_match_reference_sempe():
    """quicksort has calls (JAL/JALR), loads/stores and secure regions."""
    program = compile_microbench(
        MicrobenchSpec("quicksort", w=1, iters=1), "sempe").program
    chunks = assert_streams_identical(program, sempe=True)
    # Drains are present and correctly tagged.
    reasons = {record.reason for chunk in chunks
               for record in chunk.records() if record.kind == "drain"}
    assert reasons == set(DRAIN_REASONS)


def test_records_match_reference_legacy():
    program = compile_microbench(
        MicrobenchSpec("quicksort", w=1, iters=1), "sempe").program
    assert_streams_identical(program, sempe=False)


def test_chunk_batching_and_seq_continuity():
    program = compile_microbench(
        MicrobenchSpec("quicksort", w=2, iters=2), "sempe").program
    chunks = list(FastExecutor(program, sempe=True).run_chunks())
    assert len(chunks) > 1, "workload too small to exercise batching"
    expected_seq = 0
    for chunk in chunks[:-1]:
        # Drain rows can push a chunk slightly past the nominal size.
        assert CHUNK_RECORDS <= chunk.n <= CHUNK_RECORDS + 3
        assert chunk.seq0 == expected_seq
        expected_seq += chunk.n
    assert chunks[-1].seq0 == expected_seq


def test_run_chunks_is_single_use():
    program = assemble("""
        .text
    main:
        addi a0, a0, 1
        halt
    """)
    executor = FastExecutor(program, sempe=False)
    list(executor.run_chunks())
    try:
        list(executor.run_chunks())
    except RuntimeError:
        pass
    else:
        raise AssertionError("second run_chunks() should be rejected")
