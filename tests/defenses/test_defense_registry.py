"""The protection-scheme registry: registration, lookup, identity."""

import json

import pytest

from repro.defenses import registry
from repro.defenses.registry import (
    LEGACY_MODES,
    DefenseError,
    DefenseSpec,
    defense_names,
    get_defense,
    iter_defenses,
    sempe_machine,
)
from repro.uarch.config import MachineConfig


BUILTINS = ("plain", "sempe", "cte", "fence", "cache-partition",
            "cache-randomize", "flush-local")


def test_builtins_registered():
    names = defense_names()
    for name in BUILTINS:
        assert name in names
    # The legacy mode axis is a strict subset of the defense axis.
    for mode in LEGACY_MODES:
        assert mode in names


def test_unknown_defense_rejected():
    with pytest.raises(DefenseError, match="unknown defense"):
        get_defense("rot13")


def test_duplicate_name_rejected():
    with pytest.raises(DefenseError, match="already registered"):
        registry.register(DefenseSpec(
            name="plain", title="again", compile_mode="plain"))


def test_unknown_compile_mode_rejected():
    with pytest.raises(DefenseError, match="unknown compile mode"):
        registry.register(DefenseSpec(
            name="dummy-transform", title="x", compile_mode="turbo"))
    assert "dummy-transform" not in defense_names()


def test_unknown_protected_channel_rejected():
    with pytest.raises(DefenseError, match="unknown channels"):
        registry.register(DefenseSpec(
            name="dummy-chan", title="x", compile_mode="plain",
            protects=("psychic",)))
    assert "dummy-chan" not in defense_names()


def test_transient_memory_is_a_claimable_channel():
    """Defense claims validate against ALL_CHANNELS, not just the
    architectural set — the fence claims the transient channel."""
    from repro.security.leakage import ALL_CHANNELS, CHANNELS

    assert "transient-memory" in ALL_CHANNELS
    assert "transient-memory" not in CHANNELS
    assert get_defense("fence").protects_channel("transient-memory")
    # The architectural schemes deliberately do NOT claim it.
    for name in ("sempe", "cte"):
        assert not get_defense(name).protects_channel(
            "transient-memory"), name


def test_sempe_machine_helper():
    # The one helper behind machine selection: only the sempe scheme
    # runs on the dual-path hardware.
    assert sempe_machine("sempe") is True
    for name in defense_names():
        if name != "sempe":
            assert sempe_machine(name) is False, name


def test_legacy_modes_compile_as_themselves():
    for mode in LEGACY_MODES:
        assert get_defense(mode).compile_mode == mode


def test_describe_is_json_safe():
    for spec in iter_defenses():
        described = spec.describe()
        assert json.loads(json.dumps(described)) == described


def test_fingerprints_distinct_and_stable():
    prints = {spec.name: spec.fingerprint() for spec in iter_defenses()}
    assert len(set(prints.values())) == len(prints)
    for spec in iter_defenses():
        assert spec.fingerprint() == prints[spec.name]


def test_unknown_override_path_rejected():
    spec = DefenseSpec(name="x", title="x", compile_mode="plain",
                       config_overrides={"hierarchy.dl9.assoc": 2})
    with pytest.raises(DefenseError, match="unknown config path"):
        spec.apply_config(MachineConfig())


def test_apply_config_reaches_nested_fields():
    spec = get_defense("cache-partition")
    derived = spec.apply_config(MachineConfig())
    assert derived.hierarchy.dl1.protected_ways == 1
    assert derived.hierarchy.il1.protected_ways == 1
    assert derived.hierarchy.l2.protected_ways == 1


def test_apply_config_identity_when_no_overrides():
    config = MachineConfig()
    assert get_defense("sempe").apply_config(config) is config
