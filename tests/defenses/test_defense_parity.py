"""Golden parity: the registry path reproduces the legacy modes
bit-identically, and both engines agree under every defense."""

import warnings

import pytest

from repro.core.engine import simulate
from repro.defenses import defense_names, get_defense
from repro.harness import clear_cache, run_microbench, run_workload
from repro.workloads.microbench import MicrobenchSpec, compile_microbench
from repro.workloads.registry import WorkloadRunSpec, get_workload

pytestmark = pytest.mark.parity

MICRO = MicrobenchSpec("fibonacci", w=2, iters=2)


def _legacy_simulate(program, sempe, engine=None):
    """The pre-registry call, with its deprecation silenced."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        return simulate(program, sempe=sempe, engine=engine)


@pytest.mark.parametrize("mode", ["plain", "sempe", "cte"])
def test_legacy_modes_bit_identical_through_registry(mode):
    """defense=<legacy mode> must reproduce simulate(sempe=...) exactly."""
    variant = "oblivious" if mode == "cte" else "natural"
    spec = MicrobenchSpec("fibonacci", w=2, iters=2, variant=variant)
    program = compile_microbench(spec, mode).program
    legacy = _legacy_simulate(program, sempe=(mode == "sempe"))
    registry = simulate(program, defense=mode)
    assert registry.to_dict() == legacy.to_dict()


@pytest.mark.parametrize("mode", ["plain", "sempe", "cte"])
def test_runner_path_matches_direct_simulation(mode):
    """run_workload through the defense registry = direct simulate."""
    clear_cache()
    workload = get_workload("gcd")
    result = run_workload(WorkloadRunSpec("gcd", workload.resolve()), mode)
    direct = _legacy_simulate(workload.compile(mode).program,
                              sempe=(mode == "sempe"))
    assert result.report.to_dict() == direct.to_dict()
    clear_cache()


@pytest.mark.parametrize("defense", sorted(defense_names()))
def test_engines_bit_identical_under_every_defense(defense):
    """The fast and reference engines agree for all seven schemes."""
    workload = get_workload("memcmp")
    program = workload.compile(get_defense(defense).compile_mode).program
    fast = simulate(program, defense=defense, engine="fast")
    reference = simulate(program, defense=defense, engine="reference")
    assert fast.to_dict() == reference.to_dict()


def test_sempe_kwarg_deprecated_but_working():
    program = compile_microbench(MICRO, "plain").program
    with pytest.warns(DeprecationWarning, match="defense="):
        legacy = simulate(program, sempe=False)
    assert legacy.to_dict() == simulate(program, defense="plain").to_dict()


def test_sempe_and_defense_conflict():
    program = compile_microbench(MICRO, "plain").program
    with pytest.raises(ValueError, match="not both"):
        simulate(program, sempe=True, defense="plain")


def test_default_defense_is_sempe():
    """simulate(program) keeps its historical meaning (SeMPE machine)."""
    program = compile_microbench(MICRO, "sempe").program
    assert simulate(program).to_dict() == \
        simulate(program, defense="sempe").to_dict()


def test_microbench_runner_defense_cells_distinct():
    """Each defense addresses its own cache entry (no aliasing)."""
    clear_cache()
    cycles = {name: run_microbench(MICRO, name).cycles
              for name in ("plain", "fence", "flush-local")}
    assert cycles["fence"] > cycles["plain"]        # serialization cost
    assert cycles["flush-local"] > cycles["plain"]  # flush cost
    clear_cache()
