"""Empirical acceptance for the four new mitigations.

Each scheme must drive its *targeted* attack — an adversary exploiting
a channel the scheme declares protected — to chance, on both engines,
while the same adversary recovers the key on the unprotected baseline.
The noninterference side (the leak matrix's claim check) is covered
per-victim here for the channels each scheme declares.
"""

import pytest

from repro.security.attackers import (
    AttackSpec,
    execute_attack,
    expected_verdict,
)
from repro.security.leakage import victim_report
from repro.uarch.config import fast_functional

pytestmark = pytest.mark.attack

# One targeted campaign per new mitigation: (workload, attacker,
# defense).  The attacker's channel is declared-protected by the
# defense, so the expected verdict is "chance"; on plain the same pair
# must recover the key.
TARGETED = (
    ("table_lookup", "predictor-probe", "fence"),
    ("memcmp", "prime-probe", "cache-partition"),
    ("memcmp", "prime-probe", "cache-randomize"),
    ("memcmp", "prime-probe", "flush-local"),
    ("table_lookup", "predictor-probe", "flush-local"),
)


@pytest.mark.parametrize("workload,attacker,defense", TARGETED)
def test_targeted_attack_at_chance_baseline_recovered(workload, attacker,
                                                      defense):
    spec = AttackSpec(workload, attacker, trials=16)
    assert expected_verdict(attacker, defense) == "chance"
    baseline = execute_attack(spec, "plain", engine="fast")
    assert baseline.verdict == "recovered", baseline.summary()
    protected = execute_attack(spec, defense, engine="fast")
    assert protected.verdict == "chance", protected.summary()
    # A defeated attacker recovers at coin-flip rates, not most bits.
    assert protected.bits_recovered < protected.bits_total


@pytest.mark.slow
@pytest.mark.parametrize("workload,attacker,defense", TARGETED)
def test_targeted_attack_engine_agreement(workload, attacker, defense):
    """The reference engine reaches the same verdicts as the fast one."""
    spec = AttackSpec(workload, attacker, trials=16)
    for mode in ("plain", defense):
        fast = execute_attack(spec, mode, engine="fast")
        reference = execute_attack(spec, mode, engine="reference")
        assert fast.verdict == reference.verdict, (mode, fast.summary())


@pytest.mark.slow
@pytest.mark.parametrize("defense,workload", [
    ("fence", "memcmp"),          # public loops inside the secret path
    ("fence", "modexp"),          # the mulmod block, per key bit
    ("fence", "table_lookup"),
    ("cache-partition", "memcmp"),
    ("cache-partition", "modexp"),
    ("cache-randomize", "memcmp"),
    ("cache-randomize", "modexp"),
    ("flush-local", "memcmp"),
    ("flush-local", "table_lookup"),
])
def test_declared_protected_channels_closed(defense, workload):
    """Every channel a scheme declares protected is empirically closed
    on representative victims — including the ones whose secret paths
    contain public branches (the case a naive per-branch fence fails)."""
    from repro.defenses import get_defense

    spec = get_defense(defense)
    report = victim_report(workload, defense, config=fast_functional())
    leaking = report.leaking_channels()
    broken = [c for c in spec.protects if c in leaking]
    assert not broken, (defense, workload, broken)


@pytest.mark.slow
def test_plain_still_leaks_targeted_channels():
    """The mitigations close channels because they act, not because the
    channels went quiet: the unprotected baseline still leaks them."""
    report = victim_report("memcmp", "plain", config=fast_functional())
    assert "cache-state" in report.leaking_channels()
    report = victim_report("table_lookup", "plain",
                           config=fast_functional())
    assert "branch-predictor" in report.leaking_channels()


def test_defense_overhead_is_real():
    """Each mitigation costs cycles on a victim it protects (there is
    no free lunch — the defense matrix's cost column is non-trivial)."""
    from repro.core.engine import simulate
    from repro.defenses import get_defense
    from repro.workloads.registry import get_workload

    workload = get_workload("memcmp")
    config = fast_functional()
    cycles = {}
    for name in ("plain", "fence", "flush-local", "sempe"):
        program = workload.compile(get_defense(name).compile_mode).program
        cycles[name] = simulate(program, defense=name,
                                config=config).cycles
    assert cycles["fence"] > cycles["plain"]
    assert cycles["flush-local"] > cycles["plain"]
    assert cycles["sempe"] > cycles["plain"]
