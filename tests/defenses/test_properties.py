"""Defense purity properties and JSON round-trips (hypothesis-based).

The contract under test: applying a defense's ``MachineConfig``
overrides never mutates shared defaults — every application is a pure
function of its input — and every spec/report crossing the store
boundary survives a JSON round-trip unchanged.
"""

import dataclasses
import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.engine import SimulationReport, simulate
from repro.defenses import DefenseSpec, get_defense, iter_defenses
from repro.uarch.config import MachineConfig, fast_functional

pytestmark = pytest.mark.slow

# Dotted override paths that exist on every MachineConfig, paired with
# value strategies that keep the config structurally valid.
_OVERRIDE_PATHS = {
    "rob_entries": st.integers(min_value=8, max_value=512),
    "fetch_width": st.integers(min_value=1, max_value=16),
    "mispredict_penalty": st.integers(min_value=1, max_value=40),
    "hierarchy.dl1.protected_ways": st.integers(min_value=0, max_value=2),
    "hierarchy.dl1.index_key": st.integers(min_value=0, max_value=2**32),
    "hierarchy.il1.hit_latency": st.integers(min_value=1, max_value=8),
    "hierarchy.l2.hit_latency": st.integers(min_value=1, max_value=32),
    "hierarchy.dram_latency": st.integers(min_value=20, max_value=400),
}

_overrides = st.lists(
    st.sampled_from(sorted(_OVERRIDE_PATHS)),
    min_size=1, max_size=4, unique=True,
).flatmap(lambda keys: st.fixed_dictionaries(
    {key: _OVERRIDE_PATHS[key] for key in keys}))


def _resolve(config, path):
    target = config
    *heads, leaf = path.split(".")
    for head in heads:
        target = getattr(target, head)
    return getattr(target, leaf)


@settings(max_examples=40, deadline=None)
@given(overrides=_overrides)
def test_apply_config_is_pure(overrides):
    """Overrides land on the copy; the input config never changes."""
    spec = DefenseSpec(name="prop", title="prop", compile_mode="plain",
                       config_overrides=overrides)
    config = fast_functional()
    before = dataclasses.asdict(config)
    derived = spec.apply_config(config)
    assert dataclasses.asdict(config) == before
    for path, value in overrides.items():
        assert _resolve(derived, path) == value
    # Idempotent: a second application from the same input is equal.
    assert dataclasses.asdict(spec.apply_config(config)) \
        == dataclasses.asdict(derived)
    assert dataclasses.asdict(config) == before


def test_builtin_defenses_never_mutate_shared_defaults():
    shared = MachineConfig()
    baseline = dataclasses.asdict(shared)
    for spec in iter_defenses():
        spec.apply_config(shared)
        assert dataclasses.asdict(shared) == baseline, spec.name
    # A freshly-built default is still the default.
    assert dataclasses.asdict(MachineConfig()) == baseline


def test_defense_spec_json_round_trip():
    for spec in iter_defenses():
        described = spec.describe()
        rebuilt = json.loads(json.dumps(described))
        assert rebuilt == described
        # The fingerprint is a pure function of the description.
        assert spec.fingerprint() == DefenseSpec(
            name=spec.name, title=spec.title,
            compile_mode=spec.compile_mode,
            sempe_machine=spec.sempe_machine,
            fence_branches=spec.fence_branches,
            flush_on_exit=spec.flush_on_exit,
            config_overrides=dict(spec.config_overrides),
            protects=tuple(spec.protects),
        ).fingerprint()


@pytest.mark.parametrize("defense", ["fence", "cache-partition",
                                     "cache-randomize", "flush-local"])
def test_simulation_report_round_trips_under_new_defenses(defense):
    from repro.workloads.registry import get_workload

    workload = get_workload("gcd")
    program = workload.compile(get_defense(defense).compile_mode).program
    report = simulate(program, defense=defense, config=fast_functional())
    rebuilt = SimulationReport.from_dict(
        json.loads(json.dumps(report.to_dict())))
    assert rebuilt.to_dict() == report.to_dict()


def test_attack_report_round_trips_under_new_defenses():
    from repro.security.attackers import (
        AttackReport,
        AttackSpec,
        execute_attack,
    )

    report = execute_attack(
        AttackSpec("table_lookup", "predictor-probe", trials=16),
        "fence", engine="fast")
    rebuilt = AttackReport.from_dict(
        json.loads(json.dumps(report.to_dict())))
    assert rebuilt == report
