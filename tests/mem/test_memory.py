"""Flat backing memory."""

from repro.mem.memory import FlatMemory


def test_zero_initialised():
    memory = FlatMemory()
    assert memory.load(0x1234) == 0
    assert memory.load(0x1234, 1) == 0


def test_word_roundtrip():
    memory = FlatMemory()
    memory.store(64, 0xDEADBEEF_CAFEBABE)
    assert memory.load(64) == 0xDEADBEEF_CAFEBABE


def test_byte_roundtrip():
    memory = FlatMemory()
    memory.store(7, 0xAB, width=1)
    assert memory.load(7, 1) == 0xAB


def test_bytes_compose_into_words_little_endian():
    memory = FlatMemory()
    for offset, byte in enumerate([0x11, 0x22, 0x33]):
        memory.store(8 + offset, byte, width=1)
    assert memory.load(8) == 0x332211


def test_unaligned_word_access():
    memory = FlatMemory()
    memory.store(3, 0x0102030405060708)
    assert memory.load(3) == 0x0102030405060708
    # Neighbouring aligned words see the split halves.
    assert memory.load(0) & 0xFF_FFFF_FF00_0000 != 0 or memory.load(8) != 0


def test_store_masks_to_width():
    memory = FlatMemory()
    memory.store(0, 0x1FF, width=1)
    assert memory.load(0, 1) == 0xFF


def test_load_signed():
    memory = FlatMemory()
    memory.store(0, (1 << 64) - 5)
    assert memory.load_signed(0) == -5
    memory.store(8, 0x80, width=1)
    assert memory.load_signed(8, 1) == -128


def test_quad_helpers():
    memory = FlatMemory()
    memory.store_quads(100 * 8, [1, 2, 3])
    assert memory.load_quads(100 * 8, 3) == [1, 2, 3]


def test_copy_is_independent():
    memory = FlatMemory()
    memory.store(0, 1)
    clone = memory.copy()
    clone.store(0, 2)
    assert memory.load(0) == 1
    assert clone.load(0) == 2


def test_image_constructor():
    memory = FlatMemory({0: 0xAA, 1: 0xBB})
    assert memory.load(0, 1) == 0xAA
    assert memory.load(1, 1) == 0xBB
