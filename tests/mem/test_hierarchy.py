"""Multi-level hierarchy latencies and prefetch interaction."""

from repro.mem.cache import CacheConfig
from repro.mem.hierarchy import HierarchyConfig, MemoryHierarchy


def make_hierarchy(l1_prefetch=False, l2_prefetch=False):
    config = HierarchyConfig(
        il1=CacheConfig(name="IL1", size_bytes=1024, assoc=2, hit_latency=1),
        dl1=CacheConfig(name="DL1", size_bytes=1024, assoc=2, hit_latency=2),
        l2=CacheConfig(name="L2", size_bytes=8192, assoc=2, hit_latency=12),
        dram_latency=100,
        enable_l1_prefetcher=l1_prefetch,
        enable_l2_prefetcher=l2_prefetch,
    )
    return MemoryHierarchy(config)


def test_cold_data_access_goes_to_dram():
    hierarchy = make_hierarchy()
    result = hierarchy.access_data(0, 0x1000, False)
    assert not result.l1_hit and not result.l2_hit
    assert result.latency == 2 + 12 + 100
    assert hierarchy.dram_accesses == 1


def test_l1_hit_after_fill():
    hierarchy = make_hierarchy()
    hierarchy.access_data(0, 0x1000, False)
    result = hierarchy.access_data(0, 0x1000, False)
    assert result.l1_hit
    assert result.latency == 2


def test_l2_hit_after_l1_eviction():
    hierarchy = make_hierarchy()
    hierarchy.access_data(0, 0x1000, False)
    # Evict 0x1000 from the tiny DL1 by filling its set.
    for way in range(1, 20):
        hierarchy.access_data(0, 0x1000 + way * 1024, False)
    result = hierarchy.access_data(0, 0x1000, False)
    assert not result.l1_hit
    # Might or might not still be in the 8KB L2; at minimum latencies add.
    assert result.latency >= 2 + 12


def test_instruction_path_uses_il1():
    hierarchy = make_hierarchy()
    miss = hierarchy.access_instruction(0)
    hit = hierarchy.access_instruction(0)
    assert not miss.l1_hit and hit.l1_hit
    assert hierarchy.il1.stats.accesses == 2
    assert hierarchy.dl1.stats.accesses == 0


def test_stride_prefetcher_hides_future_misses():
    with_prefetch = make_hierarchy(l1_prefetch=True)
    without = make_hierarchy(l1_prefetch=False)
    pc = 0x44
    stride = 64
    for index in range(32):
        with_prefetch.access_data(pc, 0x8000 + index * stride, False)
        without.access_data(pc, 0x8000 + index * stride, False)
    assert (with_prefetch.dl1.stats.misses < without.dl1.stats.misses)


def test_miss_rates_reporting():
    hierarchy = make_hierarchy()
    hierarchy.access_data(0, 0, False)
    rates = hierarchy.miss_rates()
    assert set(rates) == {"IL1", "DL1", "L2"}
    assert rates["DL1"] == 1.0


def test_reset_stats():
    hierarchy = make_hierarchy()
    hierarchy.access_data(0, 0, False)
    hierarchy.reset_stats()
    assert hierarchy.dl1.stats.accesses == 0
    assert hierarchy.dram_accesses == 0


def test_reset_stats_starts_a_clean_prefetch_epoch():
    """Warmup-then-measure: a line prefetched before reset_stats() must
    not count as a prefetch hit in the new epoch (whose fill count is
    zero), so the epoch invariants hold on a healthy cache."""
    hierarchy = make_hierarchy()
    hierarchy.dl1.fill(0x4000, prefetched=True)
    hierarchy.reset_stats()
    result = hierarchy.access_data(0, 0x4000, False)
    assert result.l1_hit                    # the line is still resident
    stats = hierarchy.dl1.stats
    assert stats.prefetch_hits == 0
    assert stats.prefetch_fills == 0
    stats.validate()                        # must not raise


def test_invariants_hold_under_heavy_prefetch_traffic():
    """Both prefetchers on, strided and irregular traffic: every level's
    demand/prefetch accounting stays disjoint and non-negative."""
    hierarchy = make_hierarchy(l1_prefetch=True, l2_prefetch=True)
    for index in range(64):
        hierarchy.access_data(0x44, 0x8000 + index * 64, False)
        hierarchy.access_data(0x48, 0x20000 + (index * 7919) % 4096,
                              index % 2 == 0)
        hierarchy.access_instruction(index * 4 % 512)
    for cache in (hierarchy.il1, hierarchy.dl1, hierarchy.l2):
        cache.stats.validate()
        assert cache.stats.hits >= 0
        assert (cache.stats.hits + cache.stats.demand_misses
                == cache.stats.demand_accesses)
    # Prefetch fills happened and were never booked as demand misses.
    assert hierarchy.dl1.stats.prefetch_fills > 0
    assert hierarchy.l2.stats.prefetch_fills > 0


def test_full_simulation_cache_accounting_validates(fast_config):
    """End-to-end: a real workload through the whole machine leaves
    every cache level with coherent demand/prefetch counters."""
    from repro.core.engine import simulate
    from repro.uarch.pipeline import OutOfOrderPipeline
    from repro.workloads.microbench import MicrobenchSpec, compile_microbench

    program = compile_microbench(
        MicrobenchSpec("ones", w=2, iters=2), "sempe").program
    report = simulate(program, sempe=True, config=fast_config)
    assert report.pipeline.dl1_accesses >= report.pipeline.dl1_misses
    pipeline = OutOfOrderPipeline(fast_config, sempe=True)
    from repro.arch.executor import Executor

    executor = Executor(program, sempe=True)
    pipeline.run(executor.run())
    for cache in (pipeline.hierarchy.il1, pipeline.hierarchy.dl1,
                  pipeline.hierarchy.l2):
        cache.stats.validate()
