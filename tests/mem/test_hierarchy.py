"""Multi-level hierarchy latencies and prefetch interaction."""

from repro.mem.cache import CacheConfig
from repro.mem.hierarchy import HierarchyConfig, MemoryHierarchy


def make_hierarchy(l1_prefetch=False, l2_prefetch=False):
    config = HierarchyConfig(
        il1=CacheConfig(name="IL1", size_bytes=1024, assoc=2, hit_latency=1),
        dl1=CacheConfig(name="DL1", size_bytes=1024, assoc=2, hit_latency=2),
        l2=CacheConfig(name="L2", size_bytes=8192, assoc=2, hit_latency=12),
        dram_latency=100,
        enable_l1_prefetcher=l1_prefetch,
        enable_l2_prefetcher=l2_prefetch,
    )
    return MemoryHierarchy(config)


def test_cold_data_access_goes_to_dram():
    hierarchy = make_hierarchy()
    result = hierarchy.access_data(0, 0x1000, False)
    assert not result.l1_hit and not result.l2_hit
    assert result.latency == 2 + 12 + 100
    assert hierarchy.dram_accesses == 1


def test_l1_hit_after_fill():
    hierarchy = make_hierarchy()
    hierarchy.access_data(0, 0x1000, False)
    result = hierarchy.access_data(0, 0x1000, False)
    assert result.l1_hit
    assert result.latency == 2


def test_l2_hit_after_l1_eviction():
    hierarchy = make_hierarchy()
    hierarchy.access_data(0, 0x1000, False)
    # Evict 0x1000 from the tiny DL1 by filling its set.
    for way in range(1, 20):
        hierarchy.access_data(0, 0x1000 + way * 1024, False)
    result = hierarchy.access_data(0, 0x1000, False)
    assert not result.l1_hit
    # Might or might not still be in the 8KB L2; at minimum latencies add.
    assert result.latency >= 2 + 12


def test_instruction_path_uses_il1():
    hierarchy = make_hierarchy()
    miss = hierarchy.access_instruction(0)
    hit = hierarchy.access_instruction(0)
    assert not miss.l1_hit and hit.l1_hit
    assert hierarchy.il1.stats.accesses == 2
    assert hierarchy.dl1.stats.accesses == 0


def test_stride_prefetcher_hides_future_misses():
    with_prefetch = make_hierarchy(l1_prefetch=True)
    without = make_hierarchy(l1_prefetch=False)
    pc = 0x44
    stride = 64
    for index in range(32):
        with_prefetch.access_data(pc, 0x8000 + index * stride, False)
        without.access_data(pc, 0x8000 + index * stride, False)
    assert (with_prefetch.dl1.stats.misses < without.dl1.stats.misses)


def test_miss_rates_reporting():
    hierarchy = make_hierarchy()
    hierarchy.access_data(0, 0, False)
    rates = hierarchy.miss_rates()
    assert set(rates) == {"IL1", "DL1", "L2"}
    assert rates["DL1"] == 1.0


def test_reset_stats():
    hierarchy = make_hierarchy()
    hierarchy.access_data(0, 0, False)
    hierarchy.reset_stats()
    assert hierarchy.dl1.stats.accesses == 0
    assert hierarchy.dram_accesses == 0
