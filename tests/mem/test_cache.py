"""Set-associative cache behaviour."""

import pytest

from repro.mem.cache import Cache, CacheConfig


def make_cache(size=1024, assoc=2, line=64):
    return Cache(CacheConfig(name="T", size_bytes=size, assoc=assoc,
                             line_bytes=line))


def test_geometry():
    cache = make_cache(size=1024, assoc=2, line=64)
    assert cache.config.n_sets == 8


def test_bad_line_size_rejected():
    with pytest.raises(ValueError):
        Cache(CacheConfig(name="T", size_bytes=1024, assoc=2, line_bytes=48))


def test_cold_miss_then_hit():
    cache = make_cache()
    assert cache.access(0, False) is False
    cache.fill(0)
    assert cache.access(0, False) is True
    assert cache.stats.accesses == 2
    assert cache.stats.misses == 1


def test_same_line_hits():
    cache = make_cache(line=64)
    cache.fill(0)
    assert cache.access(63, False) is True
    assert cache.access(64, False) is False


def test_lru_eviction_order():
    cache = make_cache(size=128, assoc=2, line=64)  # 1 set, 2 ways
    cache.fill(0)          # line 0
    cache.fill(64)         # line 1
    cache.access(0, False)         # touch line 0 -> line 1 becomes LRU
    cache.fill(128)        # evicts line 1
    assert cache.contains(0)
    assert not cache.contains(64)
    assert cache.contains(128)


def test_dirty_eviction_reports_writeback():
    cache = make_cache(size=128, assoc=2, line=64)
    cache.fill(0, is_write=True)
    cache.fill(64)
    victim = cache.fill(128)
    assert victim == 0
    assert cache.stats.writebacks == 1


def test_clean_eviction_no_writeback():
    cache = make_cache(size=128, assoc=2, line=64)
    cache.fill(0)
    cache.fill(64)
    victim = cache.fill(128)
    assert victim is None
    assert cache.stats.writebacks == 0


def test_write_hit_marks_dirty():
    cache = make_cache(size=128, assoc=2, line=64)
    cache.fill(0)
    cache.access(0, is_write=True)
    cache.fill(64)
    assert cache.fill(128) == 0   # dirty writeback


def test_prefetch_accounting():
    cache = make_cache()
    cache.fill(0, prefetched=True)
    assert cache.stats.prefetches == 1
    cache.access(0, False)
    assert cache.stats.prefetch_hits == 1
    # Second demand hit no longer counts as a prefetch hit.
    cache.access(0, False)
    assert cache.stats.prefetch_hits == 1


def test_miss_rate():
    cache = make_cache()
    assert cache.stats.miss_rate == 0.0
    cache.access(0, False)
    cache.fill(0)
    cache.access(0, False)
    assert cache.stats.miss_rate == pytest.approx(0.5)


def test_set_occupancy_and_residency():
    cache = make_cache(size=256, assoc=2, line=64)  # 2 sets
    cache.fill(0)
    cache.fill(64)
    occupancy = cache.set_occupancy()
    assert sum(occupancy) == 2
    assert cache.resident_lines() == {0, 1}


def test_invalidate_all():
    cache = make_cache()
    cache.fill(0)
    cache.invalidate_all()
    assert not cache.contains(0)
