"""Set-associative cache behaviour."""

import pytest

from repro.mem.cache import Cache, CacheConfig, CacheStats


def make_cache(size=1024, assoc=2, line=64):
    return Cache(CacheConfig(name="T", size_bytes=size, assoc=assoc,
                             line_bytes=line))


def test_geometry():
    cache = make_cache(size=1024, assoc=2, line=64)
    assert cache.config.n_sets == 8


def test_bad_line_size_rejected():
    with pytest.raises(ValueError):
        Cache(CacheConfig(name="T", size_bytes=1024, assoc=2, line_bytes=48))


def test_cold_miss_then_hit():
    cache = make_cache()
    assert cache.access(0, False) is False
    cache.fill(0)
    assert cache.access(0, False) is True
    assert cache.stats.accesses == 2
    assert cache.stats.misses == 1


def test_same_line_hits():
    cache = make_cache(line=64)
    cache.fill(0)
    assert cache.access(63, False) is True
    assert cache.access(64, False) is False


def test_lru_eviction_order():
    cache = make_cache(size=128, assoc=2, line=64)  # 1 set, 2 ways
    cache.fill(0)          # line 0
    cache.fill(64)         # line 1
    cache.access(0, False)         # touch line 0 -> line 1 becomes LRU
    cache.fill(128)        # evicts line 1
    assert cache.contains(0)
    assert not cache.contains(64)
    assert cache.contains(128)


def test_dirty_eviction_reports_writeback():
    cache = make_cache(size=128, assoc=2, line=64)
    cache.fill(0, is_write=True)
    cache.fill(64)
    victim = cache.fill(128)
    assert victim == 0
    assert cache.stats.writebacks == 1


def test_clean_eviction_no_writeback():
    cache = make_cache(size=128, assoc=2, line=64)
    cache.fill(0)
    cache.fill(64)
    victim = cache.fill(128)
    assert victim is None
    assert cache.stats.writebacks == 0


def test_write_hit_marks_dirty():
    cache = make_cache(size=128, assoc=2, line=64)
    cache.fill(0)
    cache.access(0, is_write=True)
    cache.fill(64)
    assert cache.fill(128) == 0   # dirty writeback


def test_prefetch_accounting():
    cache = make_cache()
    cache.fill(0, prefetched=True)
    assert cache.stats.prefetches == 1
    cache.access(0, False)
    assert cache.stats.prefetch_hits == 1
    # Second demand hit no longer counts as a prefetch hit.
    cache.access(0, False)
    assert cache.stats.prefetch_hits == 1


def test_miss_rate():
    cache = make_cache()
    assert cache.stats.miss_rate == 0.0
    cache.access(0, False)
    cache.fill(0)
    cache.access(0, False)
    assert cache.stats.miss_rate == pytest.approx(0.5)


def test_set_occupancy_and_residency():
    cache = make_cache(size=256, assoc=2, line=64)  # 2 sets
    cache.fill(0)
    cache.fill(64)
    occupancy = cache.set_occupancy()
    assert sum(occupancy) == 2
    assert cache.resident_lines() == {0, 1}


def test_invalidate_all():
    cache = make_cache()
    cache.fill(0)
    cache.invalidate_all()
    assert not cache.contains(0)


# --------------------------------------------------------------------------
# Demand vs prefetch accounting invariants
# --------------------------------------------------------------------------


def test_prefetch_fills_never_count_as_demand_misses():
    """The regression the split fixes: a burst of prefetch fills with no
    matching demand accesses must leave the demand counters untouched,
    so ``hits`` stays well-defined (it used to be able to go negative if
    any fill path was ever counted as a miss)."""
    cache = make_cache()
    for index in range(8):
        cache.fill(index * 64, prefetched=True)
    assert cache.stats.prefetch_fills == 8
    assert cache.stats.demand_accesses == 0
    assert cache.stats.demand_misses == 0
    assert cache.stats.hits == 0
    cache.stats.validate()


def test_hits_raises_on_corrupt_accounting():
    stats = CacheStats(demand_accesses=1, demand_misses=3)
    with pytest.raises(ValueError, match="demand misses exceed"):
        _ = stats.hits
    with pytest.raises(ValueError, match="more demand misses"):
        stats.validate()


def test_validate_rejects_impossible_prefetch_hits():
    stats = CacheStats(demand_accesses=5, demand_misses=0,
                       prefetch_fills=1, prefetch_hits=2)
    with pytest.raises(ValueError, match="prefetch hits than prefetch"):
        stats.validate()
    stats = CacheStats(demand_accesses=1, demand_misses=0,
                       prefetch_fills=9, prefetch_hits=2)
    with pytest.raises(ValueError, match="prefetch hits than demand"):
        stats.validate()
    with pytest.raises(ValueError, match="negative"):
        CacheStats(demand_accesses=-1).validate()


def test_legacy_aliases_read_through():
    cache = make_cache()
    cache.access(0, False)
    cache.fill(0)
    cache.fill(64, prefetched=True)
    cache.access(0, False)
    assert cache.stats.accesses == cache.stats.demand_accesses == 2
    assert cache.stats.misses == cache.stats.demand_misses == 1
    assert cache.stats.prefetches == cache.stats.prefetch_fills == 1
    assert cache.stats.hits == 1
    cache.stats.validate()


def test_mixed_demand_prefetch_stream_invariants_hold():
    """A randomized-ish interleaving keeps every invariant intact and
    the populations disjoint: demand + prefetch never double-count."""
    cache = make_cache(size=256, assoc=2, line=64)
    addresses = [0, 64, 128, 192, 0, 256, 64, 320, 128, 0]
    for step, address in enumerate(addresses):
        if step % 3 == 2:
            cache.fill(address, prefetched=True)
        else:
            if not cache.access(address, is_write=(step % 2 == 0)):
                cache.fill(address, is_write=(step % 2 == 0))
        cache.stats.validate()
    stats = cache.stats
    assert stats.demand_accesses == 7   # 10 steps minus 3 prefetch fills
    assert stats.hits + stats.demand_misses == stats.demand_accesses
