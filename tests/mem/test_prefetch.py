"""Stride and stream prefetchers."""

from repro.mem.prefetch import StridePrefetcher, StreamPrefetcher


def test_stride_trains_after_two_consistent_strides():
    prefetcher = StridePrefetcher(degree=2)
    pc = 0x40
    assert prefetcher.observe(pc, 1000) == []
    assert prefetcher.observe(pc, 1064) == []      # learning stride
    assert prefetcher.observe(pc, 1128) == []      # confidence 1
    out = prefetcher.observe(pc, 1192)             # confidence 2 -> fire
    assert out == [1256, 1320]


def test_stride_resets_on_stride_change():
    prefetcher = StridePrefetcher()
    pc = 0x40
    for addr in (0, 64, 128, 192):
        prefetcher.observe(pc, addr)
    assert prefetcher.observe(pc, 1000) == []   # stride broken


def test_stride_per_pc_independent():
    prefetcher = StridePrefetcher()
    for addr in (0, 8, 16, 24):
        prefetcher.observe(0x10, addr)
    # A different PC has no training.
    assert prefetcher.observe(0x20, 4096) == []


def test_stride_zero_never_fires():
    prefetcher = StridePrefetcher()
    for _ in range(10):
        assert prefetcher.observe(0x10, 500) == []


def test_stream_detects_sequential_misses():
    prefetcher = StreamPrefetcher(degree=2)
    assert prefetcher.observe_miss(0) == []
    assert prefetcher.observe_miss(64) == []     # confidence 1
    out = prefetcher.observe_miss(128)           # confidence 2 -> fire
    assert out == [192, 256]


def test_stream_descending_direction():
    prefetcher = StreamPrefetcher(degree=1)
    prefetcher.observe_miss(10 * 64)
    prefetcher.observe_miss(9 * 64)
    out = prefetcher.observe_miss(8 * 64)
    assert out == [7 * 64]


def test_stream_bounded_stream_table():
    prefetcher = StreamPrefetcher(n_streams=2)
    for base in range(10):
        prefetcher.observe_miss(base * 1_000_000)
    assert len(prefetcher._streams) <= 2


def test_reset_clears_state():
    stride = StridePrefetcher()
    for addr in (0, 8, 16, 24):
        stride.observe(1, addr)
    stride.reset()
    assert stride.observe(1, 32) == []
    stream = StreamPrefetcher()
    stream.observe_miss(0)
    stream.reset()
    assert stream._streams == []
