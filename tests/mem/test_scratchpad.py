"""ScratchPad Memory snapshot storage and timing."""

import pytest

from repro.mem.scratchpad import ScratchpadMemory, SPMOverflowError


def test_snapshot_sizes():
    spm = ScratchpadMemory(n_slots=30, n_arch_regs=48, reg_bytes=8)
    assert spm.regstate_bytes == 384
    assert spm.bitvector_bytes == 6
    assert spm.snapshot_bytes == 2 * 384 + 2 * 6
    assert spm.total_bytes == 30 * spm.snapshot_bytes


def test_save_entry_cycles_at_throughput():
    spm = ScratchpadMemory(n_arch_regs=48, bytes_per_cycle=64)
    cycles = spm.save_entry_state(0, [0] * 48)
    # 384 + 6 bytes at 64 B/cycle -> ceil(390/64) = 7
    assert cycles == 7


def test_save_nt_state_scales_with_modified():
    spm = ScratchpadMemory(n_arch_regs=48, bytes_per_cycle=64)
    spm.save_entry_state(0, [0] * 48)
    few = spm.save_nt_state(0, [0] * 48, {1, 2})
    spm.save_entry_state(1, [0] * 48)
    many = spm.save_nt_state(1, [0] * 48, set(range(40)))
    assert few < many


def test_restore_reads_union_constant_time():
    """Restore traffic depends only on the union of modified sets."""
    spm = ScratchpadMemory(n_arch_regs=32)
    spm.save_entry_state(0, list(range(32)))
    slot = spm.slot(0)
    slot.nt_modified = {1, 2, 3}
    slot.t_modified = {3, 4}
    cycles_a = spm.restore_cycles_for(0)
    slot.nt_modified = {1, 2, 3, 4}
    slot.t_modified = set()
    cycles_b = spm.restore_cycles_for(0)
    assert cycles_a == cycles_b   # same union size -> same traffic


def test_nesting_overflow_raises():
    spm = ScratchpadMemory(n_slots=2)
    spm.save_entry_state(0, [0] * 32)
    spm.save_entry_state(1, [0] * 32)
    with pytest.raises(SPMOverflowError):
        spm.save_entry_state(2, [0] * 32)


def test_slot_reuse_after_release():
    spm = ScratchpadMemory(n_slots=1, n_arch_regs=32)
    spm.save_entry_state(0, [7] * 32)
    spm.release(0)
    spm.save_entry_state(0, [9] * 32)
    assert spm.slot(0).entry_regs == [9] * 32


def test_entry_state_preserved_until_release():
    spm = ScratchpadMemory(n_arch_regs=4)
    spm.save_entry_state(0, [10, 11, 12, 13])
    spm.save_nt_state(0, [20, 21, 22, 23], {1})
    slot = spm.slot(0)
    assert slot.entry_regs == [10, 11, 12, 13]
    assert slot.nt_regs == [20, 21, 22, 23]
    assert slot.nt_modified == {1}


def test_reset_clears_everything():
    spm = ScratchpadMemory(n_arch_regs=4)
    spm.save_entry_state(0, [1, 2, 3, 4])
    spm.reset()
    assert spm.save_ops == 0
    assert spm.slot(0).entry_regs is None


def test_minimum_one_cycle():
    spm = ScratchpadMemory(n_arch_regs=4, bytes_per_cycle=4096)
    assert spm.save_entry_state(0, [0] * 4) == 1
