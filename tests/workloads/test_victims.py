"""Functional correctness of every registered victim, on both engines.

For each workload, each declared compiler mode, and each representative
secret value, the simulated result global must equal the spec's Python
reference — on the reference executor and the fast executor alike.
"""

import pytest

from repro.arch.executor import Executor
from repro.arch.fast_executor import FastExecutor
from repro.workloads.registry import get_workload, workload_names
from repro.workloads.bsearch import bsearch_reference, search_table
from repro.workloads.gcd import gcd_reference, worst_case_rounds
from repro.workloads.memcmp import guess_pattern, memcmp_reference
from repro.workloads.table_lookup import sbox_table, table_lookup_reference

MASK64 = (1 << 64) - 1

NEW_VICTIMS = ("memcmp", "table_lookup", "bsearch", "gcd")


def run_victim(spec, mode, secret_value, engine, **overrides):
    """Compile at the leak parameters, poke the secret, run, read result."""
    params = spec.leak_resolve(overrides)
    compiled = spec.compile(mode, **params)
    sempe = mode == "sempe"
    executor_cls = FastExecutor if engine == "fast" else Executor
    executor = executor_cls(compiled.program, sempe=sempe)
    base = compiled.program.symbols[spec.secret]
    values = (secret_value if isinstance(secret_value, (list, tuple))
              else [secret_value])
    for index, element in enumerate(values):
        executor.state.memory.store(base + 8 * index, element & MASK64, 8)
    if engine == "fast":
        for _chunk in executor.run_chunks():
            pass
    else:
        executor.run_to_completion()
    return executor.state.memory.load(compiled.program.symbols[spec.result])


@pytest.mark.parametrize("engine", ["reference", "fast"])
@pytest.mark.parametrize("mode", ["plain", "sempe", "cte"])
@pytest.mark.parametrize("name", NEW_VICTIMS)
def test_new_victims_match_reference(name, mode, engine):
    spec = get_workload(name)
    params = spec.leak_resolve()
    for secret in spec.secret_values():
        expected = spec.reference(params, secret) & MASK64
        assert run_victim(spec, mode, secret, engine) == expected, (
            name, mode, engine, secret)


@pytest.mark.parametrize("name", sorted(workload_names()))
def test_every_registered_reference_agrees_on_sempe(name):
    """All six victims (including the ported modexp and djpeg) produce
    the reference result under the SeMPE transform."""
    spec = get_workload(name)
    params = spec.leak_resolve()
    secret = spec.secret_values()[-1]
    expected = spec.reference(params, secret) & MASK64
    assert run_victim(spec, "sempe", secret, "fast") == expected


# --------------------------------------------------------------------------
# Reference-model spot checks (the references themselves)
# --------------------------------------------------------------------------


def test_memcmp_reference_semantics():
    guess = guess_pattern(8)
    assert memcmp_reference(guess, n=8) == 1
    assert memcmp_reference(guess[:-1] + [7], n=8) == 0
    assert memcmp_reference([0] * 8, n=8) == 0


def test_gcd_reference_equals_math_gcd():
    import math

    for u in (0, 1, 12, 35, 40902, 65535, 46368):
        assert gcd_reference(u, bits=16, other=40902) == \
            math.gcd(u & 0xFFFF, 40902)
    assert worst_case_rounds(16) >= 24   # covers the Fibonacci worst case


def test_bsearch_reference_prefix_behaviour():
    table = search_table(16)
    # Keys below the first element converge to position 0.
    assert bsearch_reference(0, entries=16) == 0
    # Keys above the last element walk off the right edge.
    assert bsearch_reference(table[-1] + 10, entries=16) == 16
    # A present key lands just past its slot (lo = index + 1).
    assert bsearch_reference(table[5], entries=16) == 6


def test_table_lookup_reference_chains():
    table = sbox_table(16, 40503)
    first = table_lookup_reference(0, entries=16, rounds=1)
    assert first >= table[0] * 3      # at least the first hop happened
    # Different start indices give different chains.
    assert table_lookup_reference(3, entries=16) != \
        table_lookup_reference(11, entries=16)
