"""The spectre victim: registration, layout contract, and leak shape.

The gadget's whole trick is the data layout — ``table[n]`` *is* the
secret — plus an in-program training schedule that mistrains exactly
one static branch.  These tests pin the contract pieces separately:
parameter validation, the committed result's key-independence (the
reference model and the machine agree for every key), the channel
declaration, and the leak verdicts per defense (transient-memory
leaks under every architectural scheme, dies only under the fence).
"""

import pytest

from repro.security import victim_report
from repro.workloads.registry import get_workload
from repro.workloads.spectre import (
    spectre_reference,
    spectre_source,
    spectre_tables,
)


def test_registered_with_transient_channel_only():
    spec = get_workload("spectre")
    assert spec.channels == ("transient-memory",)
    assert spec.secret == "key"
    assert spec.resolve() == {"n": 8, "train": 16, "stride": 8,
                              "mask": 7}


@pytest.mark.parametrize("kwargs", [
    {"n": 7},                 # not a power of two
    {"n": 0},
    {"train": 12},            # not a multiple of n=8
    {"train": 0},
    {"mask": 6},              # not 2^k - 1
])
def test_bad_parameters_rejected(kwargs):
    with pytest.raises(ValueError):
        spectre_source(**kwargs)


def test_reference_is_key_independent():
    """Committed execution never takes the out-of-bounds body, so the
    architectural result must not move with the secret."""
    values = {spectre_reference(key) for key in (0, 1, 3, 6, 255)}
    assert len(values) == 1


@pytest.mark.parametrize("params", [{}, {"n": 16, "mask": 15}])
def test_machine_matches_reference_model(params, fast_config):
    """The mini-C gadget and the Python model compute the same ``out``
    for every representative key — on the grid variant too."""
    from repro.core.engine import simulate
    from repro.security.observer import poke_secrets

    spec = get_workload("spectre")
    resolved = spec.resolve(params)
    compiled = spec.compile("plain", **resolved)
    expected = spectre_reference(0, **resolved)
    for key in (0, 2, 5):
        from repro.arch.fast_executor import FastExecutor

        executor = FastExecutor(compiled.program, sempe=False)
        poke_secrets(executor.state.memory, compiled.program.symbols,
                     {"key": key})
        for _chunk in executor.run_chunks(64):
            pass
        out = executor.state.memory.load(
            compiled.program.symbols["out"], 8)
        assert out == expected, (params, key)


def test_table_layout_places_secret_at_first_oob_slot():
    """``table[n]`` and ``key`` share an address: the declaration-order
    global layout is what makes the bypass read the secret."""
    spec = get_workload("spectre")
    compiled = spec.compile("plain", **spec.resolve())
    symbols = compiled.program.symbols
    n = spec.resolve()["n"]
    assert symbols["key"] == symbols["table"] + 8 * n


def test_tables_helper_matches_compiled_initialization():
    table, probe = spectre_tables(8, 8, 7)
    assert table == [(i * 11 + 5) & 7 for i in range(8)]
    assert len(probe) == 64
    # One probe line per key value: stride 8 elements x 8 bytes = 64B.
    assert probe[:3] == [0, 3, 6]


@pytest.mark.slow
def test_plain_leaks_transient_memory_only(fast_config):
    """victim_report auto-enables the window for a transient victim;
    the unprotected machine leaks the declared channel and nothing
    architectural."""
    report = victim_report("spectre", "plain", config=fast_config)
    assert report.leaking_channels() == ["transient-memory"]
    assert not report.secure


@pytest.mark.slow
@pytest.mark.parametrize("mode", ["sempe", "cte"])
def test_architectural_defenses_do_not_help(mode, fast_config):
    """Dual-path execution and predication close committed channels —
    the wrong path is not committed execution."""
    report = victim_report("spectre", mode, config=fast_config)
    assert "transient-memory" in report.leaking_channels(), mode


@pytest.mark.slow
def test_fence_closes_the_window(fast_config):
    report = victim_report("spectre", "fence", config=fast_config)
    assert report.secure, report.leaking_channels()
