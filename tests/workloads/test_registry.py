"""The victim-workload registry: registration, compilation, fingerprints."""

import pytest

from repro.harness.experiments import victims_cells
from repro.harness.store import canonical_json, fingerprint
from repro.harness.sweep import SweepSpec
from repro.workloads import registry
from repro.workloads.registry import (
    WorkloadError,
    WorkloadRunSpec,
    WorkloadSpec,
    get_workload,
    iter_workloads,
    workload_names,
)

NEW_VICTIMS = ("memcmp", "table_lookup", "bsearch", "gcd")


def _dummy_spec(name, **overrides):
    fields = dict(
        name=name,
        title="dummy",
        builder=lambda: "int x = 0;\nvoid main() { x = 1; }",
        secret="x",
        params={},
        leak_values=lambda params: [0, 1],
        channels=("timing",),
    )
    fields.update(overrides)
    return WorkloadSpec(**fields)


# --------------------------------------------------------------------------
# Registration rules
# --------------------------------------------------------------------------


def test_registry_has_the_full_victim_matrix():
    names = workload_names()
    assert len(names) >= 6
    assert {"modexp", "djpeg", *NEW_VICTIMS} <= set(names)


def test_duplicate_name_rejected():
    with pytest.raises(WorkloadError, match="already registered"):
        registry.register(_dummy_spec("memcmp"))


def test_unknown_channel_rejected():
    with pytest.raises(WorkloadError, match="unknown channels"):
        registry.register(_dummy_spec("dummy-chan",
                                      channels=("psychic",)))
    assert "dummy-chan" not in workload_names()


def test_transient_channel_is_declarable():
    """Victim channel declarations validate against ALL_CHANNELS: the
    spectre gadget declares only the transient channel."""
    assert "spectre" in workload_names()
    from repro.workloads.registry import get_workload

    assert get_workload("spectre").channels == ("transient-memory",)


def test_unknown_mode_rejected():
    with pytest.raises(WorkloadError, match="unknown mode"):
        registry.register(_dummy_spec("dummy-mode", modes=("turbo",)))


def test_bad_grid_key_rejected_at_registration():
    with pytest.raises(WorkloadError, match="no parameter"):
        registry.register(_dummy_spec("dummy-grid",
                                      grid=({"nope": 1},)))


def test_unknown_workload_lookup():
    with pytest.raises(WorkloadError, match="unknown workload"):
        get_workload("nope")


def test_unknown_param_override_rejected():
    spec = get_workload("gcd")
    with pytest.raises(WorkloadError, match="no parameter"):
        spec.compile("plain", nope=3)


# --------------------------------------------------------------------------
# Every registered workload compiles in every declared mode
# --------------------------------------------------------------------------


@pytest.mark.parametrize("name", sorted(workload_names()))
def test_workload_compiles_in_all_declared_modes(name):
    spec = get_workload(name)
    # The whole matrix must be expressible under both transforms.
    assert "sempe" in spec.modes and "cte" in spec.modes
    for mode in spec.modes:
        compiled = spec.compile(mode)
        assert len(compiled.program) > 0
        assert spec.secret in compiled.program.symbols
        if mode == "sempe":
            if name == "spectre":
                # spectre's secret never reaches a branch — the leak is
                # purely transient — so SeMPE has nothing to dual-path.
                assert compiled.program.count_secure_branches() == 0
            else:
                assert compiled.program.count_secure_branches() > 0
    with pytest.raises(WorkloadError, match="does not support"):
        spec.compile("not-a-mode")


@pytest.mark.parametrize("name", sorted(workload_names()))
def test_grid_points_compile_under_sempe(name):
    spec = get_workload(name)
    for params in spec.grid_points():
        assert len(spec.compile("sempe", **params).program) > 0


def test_leak_params_applied():
    """djpeg's leak configuration must disable the in-program fill so
    poked secret images survive to the decode loop."""
    spec = get_workload("djpeg")
    assert spec.resolve()["fill"] is True
    assert spec.leak_resolve()["fill"] is False
    # ... but an explicit override beats the leak default — the user
    # must never be silently audited at a different parameterization.
    assert spec.leak_resolve({"fill": True})["fill"] is True
    with pytest.raises(WorkloadError, match="no parameter"):
        spec.leak_resolve({"nope": 1})
    for spec in iter_workloads():
        values = spec.secret_values()
        assert len(values) >= 2       # a leak needs at least a pair


# --------------------------------------------------------------------------
# Parameter grids round-trip through SweepSpec fingerprints
# --------------------------------------------------------------------------


def test_run_spec_descriptor_is_json_safe():
    for spec in iter_workloads():
        for params in spec.grid_points():
            run_spec = WorkloadRunSpec(spec.name, params)
            import dataclasses

            descriptor = dataclasses.asdict(run_spec)
            canonical_json(descriptor)    # must not raise
            assert fingerprint(descriptor) == fingerprint(
                dataclasses.asdict(WorkloadRunSpec(spec.name,
                                                   dict(params))))


def test_victims_cells_fingerprints_stable_and_unique():
    first = sorted(cell.fingerprint() for cell in victims_cells())
    second = sorted(cell.fingerprint() for cell in victims_cells())
    assert first == second                      # reproducible
    assert len(set(first)) == len(first)        # every cell distinct


def test_sweep_spec_dedupe_keeps_every_grid_point():
    cells = victims_cells()
    spec = SweepSpec("victims", cells + victims_cells())  # doubled input
    assert len(spec) == len(cells)
    names = {cell.spec.name for cell in spec.cells}
    # Distinct parameter points keep distinct labels too.
    assert len(names) == len(cells) // 2        # plain+sempe share a name


def test_compile_supports_collapse_ifs():
    """The §IV-E nesting-reduction flag works through WorkloadSpec
    (the CLI's `run --workload --collapse-ifs` path)."""
    spec = _dummy_spec("collapsible", builder=lambda: """
secret int a = 0;
secret int b = 0;
int out = 0;
void main() {
  int acc = 1;
  if (a) { if (b) { acc = acc + 5; } }
  out = acc;
}
""")
    nested = spec.compile("sempe").program.count_secure_branches()
    collapsed = spec.compile(
        "sempe", collapse_ifs=True).program.count_secure_branches()
    assert collapsed < nested


def test_param_change_re_addresses_cell():
    spec = get_workload("gcd")
    base = WorkloadRunSpec("gcd", spec.resolve())
    bumped = WorkloadRunSpec("gcd", spec.resolve({"other": 123}))
    from repro.harness.sweep import SweepCell

    assert SweepCell("workload", base, "plain").fingerprint() != \
        SweepCell("workload", bumped, "plain").fingerprint()
