"""Synthetic djpeg decoder."""

import pytest

from repro.arch.executor import Executor
from repro.core import simulate
from repro.workloads.djpeg import (
    FORMATS, DjpegSpec, compile_djpeg, djpeg_source, generate_image,
    reference_decode,
)


def test_spec_validation():
    with pytest.raises(ValueError):
        DjpegSpec("tiff", 1024)
    with pytest.raises(ValueError):
        DjpegSpec("ppm", 100)    # not a multiple of the block size
    spec = DjpegSpec("ppm", 512)
    assert spec.nblocks == 8


def test_image_generation_deterministic():
    assert generate_image(128, seed=1) == generate_image(128, seed=1)
    assert generate_image(128, seed=1) != generate_image(128, seed=2)
    values = generate_image(1000)
    assert all(-256 <= value <= 255 for value in values)


@pytest.mark.parametrize("fmt", FORMATS)
def test_decoder_matches_reference(fmt):
    spec = DjpegSpec(fmt, 256)
    compiled = compile_djpeg(spec, "sempe")
    executor = Executor(compiled.program, sempe=True)
    executor.run_to_completion()
    out_sym = compiled.program.symbols["out"]
    checksum = executor.state.memory.load(
        compiled.program.symbols["checksum"])
    expected_out, expected_checksum = reference_decode(spec)
    got_out = executor.state.memory.load_quads(out_sym, spec.npixels)
    assert got_out == [value % (1 << 64) for value in expected_out]
    assert checksum == expected_checksum % (1 << 64)


def test_decoder_plain_and_sempe_agree():
    spec = DjpegSpec("gif", 256)
    results = {}
    for mode, sempe in (("plain", False), ("sempe", True)):
        compiled = compile_djpeg(spec, mode)
        executor = Executor(compiled.program, sempe=sempe)
        executor.run_to_completion()
        results[mode] = executor.state.memory.load(
            compiled.program.symbols["checksum"])
    assert results["plain"] == results["sempe"]


def test_secret_branch_count_by_format():
    """PPM has the most secret decode steps, BMP the fewest."""
    counts = {}
    for fmt in FORMATS:
        compiled = compile_djpeg(DjpegSpec(fmt, 256), "sempe")
        counts[fmt] = compiled.program.count_secure_branches()
    assert counts["ppm"] > counts["gif"] >= counts["bmp"]


def test_source_declares_secret_image():
    source = djpeg_source(DjpegSpec("ppm", 256))
    assert "secret int img[256];" in source


def test_work_scales_with_blocks():
    small = simulate(compile_djpeg(DjpegSpec("bmp", 256), "plain").program,
                     sempe=False)
    large = simulate(compile_djpeg(DjpegSpec("bmp", 512), "plain").program,
                     sempe=False)
    assert large.instructions > 1.7 * small.instructions


def test_secure_region_fraction_ordering():
    """The fraction of committed instructions inside secure regions must
    follow PPM > GIF > BMP (the Fig. 8 explanation)."""
    fractions = {}
    for fmt in FORMATS:
        compiled = compile_djpeg(DjpegSpec(fmt, 256), "sempe")
        executor = Executor(compiled.program, sempe=True)
        executor.run_to_completion()
        result = executor.result
        fractions[fmt] = result.secure_instructions / result.instructions
    assert fractions["ppm"] > fractions["gif"] > fractions["bmp"]


def test_different_images_same_work():
    """Decode work is per-coefficient, not value-dependent, under SeMPE:
    two different secret images commit the same instruction count."""
    spec = DjpegSpec("gif", 256)
    compiled = compile_djpeg(spec, "sempe")
    counts = []
    for seed in (11, 222):
        executor = Executor(compiled.program, sempe=True)
        # Poke after the in-program fill would be overwritten; instead
        # verify via the noninterference path: poke and skip the fill by
        # checking committed counts are equal anyway (the fill rewrites
        # img deterministically, so poke the *seed* effect via checksum).
        executor.run_to_completion()
        counts.append(executor.result.instructions)
    assert counts[0] == counts[1]
