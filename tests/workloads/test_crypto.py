"""Modular exponentiation workload (Fig. 1)."""

import pytest

from repro.arch.executor import Executor
from repro.lang.compiler import compile_source
from repro.security import noninterference_report
from repro.workloads.crypto import modexp_reference, modexp_source


def run_modexp(mode, sempe, key, bits=8, base=7, modulus=1009):
    source = modexp_source(bits=bits, base=base, modulus=modulus, key=key)
    compiled = compile_source(source, mode=mode)
    executor = Executor(compiled.program, sempe=sempe)
    executor.run_to_completion()
    return executor.state.memory.load(compiled.program.symbols["result"])


@pytest.mark.parametrize("key", [0, 1, 0x55, 0xFF, 0xA3])
def test_modexp_correct_all_modes(key):
    expected = modexp_reference(8, 7, 1009, key)
    assert run_modexp("plain", False, key) == expected
    assert run_modexp("sempe", True, key) == expected
    assert run_modexp("cte", False, key) == expected


def test_reference_agrees_with_pow():
    for key in (0, 3, 77, 255):
        assert modexp_reference(8, 7, 1009, key) == pow(7, key, 1009)


def test_modexp_baseline_leaks_key_hamming_weight(fast_config):
    """The classic RSA timing channel: more set bits -> more multiplies."""
    source = modexp_source(bits=8, key=0)
    compiled = compile_source(source, mode="plain")
    report = noninterference_report(
        compiled.program, "ekey", [0x00, 0x0F, 0xFF], sempe=False,
        config=fast_config,
    )
    assert "timing" in report.leaking_channels()


def test_modexp_sempe_closes_channel(fast_config):
    source = modexp_source(bits=8, key=0)
    compiled = compile_source(source, mode="sempe")
    report = noninterference_report(
        compiled.program, "ekey", [0x00, 0x0F, 0xFF, 0x5A], sempe=True,
        config=fast_config,
    )
    assert report.secure, report.leaking_channels()


def test_key_masked_to_bit_width():
    assert "65535" not in modexp_source(bits=4, key=0xFFFF)
