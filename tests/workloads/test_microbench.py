"""Fig. 7 microbenchmark generator."""

import pytest

from repro.arch.executor import Executor
from repro.arch.state import to_signed
from repro.core import simulate
from repro.workloads.microbench import (
    WORKLOADS, MicrobenchSpec, compile_microbench, microbench_source,
)


def sink_value(compiled, sempe):
    executor = Executor(compiled.program, sempe=sempe)
    executor.run_to_completion()
    return to_signed(
        executor.state.memory.load(compiled.program.symbols["sink"]))


def test_spec_validation():
    with pytest.raises(ValueError):
        MicrobenchSpec("nope", w=1)
    with pytest.raises(ValueError):
        MicrobenchSpec("fibonacci", w=-1)
    with pytest.raises(ValueError):
        MicrobenchSpec("fibonacci", w=1, variant="weird")


def test_source_structure_w3():
    spec = MicrobenchSpec("fibonacci", w=3, iters=2)
    source = microbench_source(spec)
    assert source.count("secret int s") == 3
    assert source.count("if (s") == 3


def test_static_sjmp_count_matches_w():
    """The paper: W sJMPs per iteration, W-1 nested."""
    for w in (1, 3, 5):
        spec = MicrobenchSpec("ones", w=w)
        compiled = compile_microbench(spec, "sempe")
        assert compiled.program.count_secure_branches() == w


def test_nesting_depth_is_w():
    spec = MicrobenchSpec("fibonacci", w=4, iters=1)
    compiled = compile_microbench(spec, "sempe")
    executor = Executor(compiled.program, sempe=True)
    executor.run_to_completion()
    assert executor.result.max_nesting == 4
    assert executor.result.secure_regions == 4


@pytest.mark.parametrize("workload", WORKLOADS)
def test_all_modes_agree_on_sink(workload):
    """baseline / SeMPE / CTE(oblivious) / ideal all compute the same
    architectural result (secrets are 0: workloads 1..W discarded)."""
    natural = MicrobenchSpec(workload, w=2, iters=1)
    oblivious = MicrobenchSpec(workload, w=2, iters=1, variant="oblivious")
    ideal = MicrobenchSpec(workload, w=2, iters=1, variant="unconditional")
    base_sink = sink_value(compile_microbench(natural, "plain"), False)
    sempe_sink = sink_value(compile_microbench(natural, "sempe"), True)
    cte_sink = sink_value(compile_microbench(oblivious, "cte"), False)
    assert base_sink == sempe_sink == cte_sink
    # The ideal variant *does* run all workloads (different sink), but
    # must at least run without error.
    sink_value(compile_microbench(ideal, "plain"), False)


def test_oblivious_quicksort_actually_sorts():
    """The odd-even network must produce the same result as quicksort."""
    natural = MicrobenchSpec("quicksort", w=1, iters=1,
                             variant="unconditional")
    oblivious_spec = MicrobenchSpec("quicksort", w=1, iters=1,
                                    variant="oblivious")
    # Compare via the unconditional (all bodies run) sinks: compile the
    # oblivious variant in plain mode so everything executes.
    natural_sink = sink_value(compile_microbench(natural, "plain"), False)
    # For the oblivious variant, poke the secret to 1 so the body runs.
    compiled = compile_microbench(oblivious_spec, "plain")
    executor = Executor(compiled.program, sempe=False)
    executor.state.memory.store(compiled.program.symbols["s1"], 1)
    executor.run_to_completion()
    oblivious_sink = to_signed(
        executor.state.memory.load(compiled.program.symbols["sink"]))
    # natural unconditional sink = body1 + body2 sums; oblivious with
    # s1=1 runs body1 + body2 as well (W=1: nested body + tail body).
    assert oblivious_sink == natural_sink


def test_queens_counts_solutions():
    """4-queens has exactly 2 solutions; both variants must find them."""
    for variant in ("natural", "oblivious"):
        spec = MicrobenchSpec("queens", w=1, iters=1, variant=variant,
                              size=4)
        compiled = compile_microbench(spec, "plain")
        executor = Executor(compiled.program, sempe=False)
        executor.state.memory.store(compiled.program.symbols["s1"], 1)
        executor.run_to_completion()
        sink = to_signed(
            executor.state.memory.load(compiled.program.symbols["sink"]))
        # sink = solutions(body1) + solutions(tail body) = 2 + 2.
        assert sink == 4, variant


def test_fibonacci_value():
    spec = MicrobenchSpec("fibonacci", w=0, iters=1, size=10)
    compiled = compile_microbench(spec, "plain")
    assert sink_value(compiled, False) == 55


def test_sempe_instruction_ratio_near_w_plus_1():
    spec = MicrobenchSpec("ones", w=4, iters=2)
    base = simulate(compile_microbench(spec, "plain").program, sempe=False)
    sempe = simulate(compile_microbench(spec, "sempe").program, sempe=True)
    ratio = sempe.instructions / base.instructions
    assert 4.0 < ratio < 6.0


def test_iterations_scale_work():
    small = MicrobenchSpec("fibonacci", w=1, iters=1)
    large = MicrobenchSpec("fibonacci", w=1, iters=4)
    base_small = simulate(compile_microbench(small, "plain").program,
                          sempe=False)
    base_large = simulate(compile_microbench(large, "plain").program,
                          sempe=False)
    assert base_large.instructions > 3 * base_small.instructions


def test_w_zero_has_no_secure_branches():
    spec = MicrobenchSpec("fibonacci", w=0, iters=1)
    compiled = compile_microbench(spec, "sempe")
    assert compiled.program.count_secure_branches() == 0
