"""Defense-transform invariants, including deliberate-breakage tests."""

import copy

import pytest

from repro.analysis import (
    TransformVerificationError,
    analyze_workload,
    check_defense_transform,
    claims_statically_checkable,
    verify_defense_transform,
)
from repro.analysis.report import build_report
from repro.defenses.registry import get_defense, iter_defenses
from repro.isa.opcodes import is_cond_branch
from repro.workloads.registry import get_workload, iter_workloads


def test_every_registered_pair_verifies_clean():
    """The static-smoke core: all defenses × all victims, no violations."""
    for defense in iter_defenses():
        for workload in iter_workloads():
            report = analyze_workload(workload, defense.name)
            assert verify_defense_transform(defense, report) == [], \
                f"{workload.name} under {defense.name}"


def test_claims_exemption_is_structural():
    exempt = {d.name for d in iter_defenses()
              if not claims_statically_checkable(d)}
    # Exactly the config-only statistical schemes are exempt — by
    # structure (plain compile + overrides + no hooks), not by name.
    assert exempt == {"cache-partition", "cache-randomize"}


def _mutated_sempe_report(workload_name):
    """Compile under sempe, then strip the SecPrefix off one secure
    branch — the classic broken-transform bug the verifier must catch."""
    workload = get_workload(workload_name)
    defense = get_defense("sempe")
    compiled = workload.compile(defense.compile_mode,
                                **workload.leak_resolve({}))
    program = copy.deepcopy(compiled.program)
    secure = [inst for inst in program.instructions
              if is_cond_branch(inst.op) and inst.secure]
    assert secure, "sempe compile must contain a secure branch"
    secure[0].secure = False
    return defense, build_report(program, compiled.secrets,
                                 defense=defense)


def test_broken_sempe_transform_turns_the_verifier_red():
    defense, report = _mutated_sempe_report("table_lookup")
    violations = verify_defense_transform(defense, report)
    assert violations
    assert any(v.invariant == "sempe-branch-unprotected"
               for v in violations)
    with pytest.raises(TransformVerificationError) as error:
        check_defense_transform(defense, report)
    assert error.value.violations == violations


def test_broken_fence_transform_turns_the_verifier_red():
    workload = get_workload("gcd")
    defense = get_defense("fence")
    compiled = workload.compile(defense.compile_mode,
                                **workload.leak_resolve({}))
    program = copy.deepcopy(compiled.program)
    flow_report = build_report(program, compiled.secrets, defense=defense)
    secure_sites = [s for s in flow_report.sites
                    if s.kind == "branch" and s.secure]
    assert secure_sites, "fence compile must mark the secret branch"
    program.instructions[secure_sites[0].index].secure = False
    report = build_report(program, compiled.secrets, defense=defense)
    violations = verify_defense_transform(defense, report)
    assert any(v.invariant == "fence-unmarked-branch"
               for v in violations)


def test_violations_round_trip_and_point_at_source():
    defense, report = _mutated_sempe_report("table_lookup")
    for violation in verify_defense_transform(defense, report):
        rebuilt = type(violation).from_dict(violation.to_dict())
        assert rebuilt == violation
        assert violation.defense == "sempe"
        if violation.index >= 0:
            # The debug map ties the violation back to a source line.
            assert violation.line > 0


def test_claims_lint_fires_on_an_overclaiming_defense():
    """A structural scheme that declares a channel its compiled output
    still leaks must be flagged by the claims lint."""
    import dataclasses

    fence = get_defense("fence")
    overclaiming = dataclasses.replace(
        fence, name="fence-overclaim",
        protects=("branch-predictor", "timing"))
    report = analyze_workload("gcd", overclaiming)
    violations = verify_defense_transform(overclaiming, report)
    assert any(v.invariant == "claims-channel-open" for v in violations)
