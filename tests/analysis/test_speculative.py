"""Unit tests for the speculative-taint (double-fetch) static analysis.

The detector's contract: a guarded load whose value feeds another
access's address is a speculative site; programs without such chains
have none — in particular every pre-existing victim, which is what
keeps the speculation-off static goldens byte-identical.  The report
layer turns sites into channels: speculative sites charge
``SPECULATIVE_CHANNELS``, branch/address sites gain
``transient-memory`` when the window is modeled, and only the fence's
projection removes any of it.
"""

from repro.analysis.dataflow import TaintDataflow
from repro.analysis.report import (
    SITE_KINDS,
    SPECULATIVE_CHANNELS,
    build_report,
    classify_sites,
    project_sites,
)
from repro.analysis.speculative import SpeculativeFlow, speculative_sites
from repro.defenses import get_defense
from repro.lang.compiler import compile_source
from repro.workloads.registry import get_workload, iter_workloads


def _flow(source, mode="plain"):
    compiled = compile_source(source, mode=mode)
    return compiled, TaintDataflow(compiled.program, compiled.secrets)


DOUBLE_FETCH = """
int table[8];
secret int key = 0;
int probe[64];
int out = 0;

void main() {
  for (int t = 0; t < 4; t = t + 1) {
    int idx = t % 8;
    if (idx < 8) {
      out = out + probe[table[idx]];
    }
  }
}
"""

SINGLE_FETCH = """
int table[8];
secret int key = 0;
int out = 0;

void main() {
  for (int t = 0; t < 4; t = t + 1) {
    int idx = t % 8;
    if (idx < 8) {
      out = out + table[idx] + 1;
    }
  }
}
"""


def test_double_fetch_chain_detected():
    _compiled, flow = _flow(DOUBLE_FETCH)
    sites = speculative_sites(flow)
    assert sites
    assert any("double fetch" in detail for detail in sites.values())


def test_value_use_alone_is_not_a_site():
    """Loading through a variable index is a *source*; without a
    second dependent access there is no double fetch."""
    _compiled, flow = _flow(SINGLE_FETCH)
    assert speculative_sites(flow) == {}


def test_chain_through_stack_roundtrip_detected():
    """The code generator spills locals to stack slots; the taint must
    survive the store/reload hop (concrete-address memory)."""
    _compiled, flow = _flow("""
    int table[8];
    secret int key = 0;
    int probe[64];
    int out = 0;

    void main() {
      for (int t = 0; t < 4; t = t + 1) {
        int idx = t % 8;
        if (idx < 8) {
          int val = table[idx];
          int scaled = val * 8;
          out = out + probe[scaled];
        }
      }
    }
    """)
    assert speculative_sites(flow)


def test_constant_addresses_are_not_sources():
    """Direct global accesses have compile-time-constant addresses: no
    wrong path can redirect them, so nothing is speculative."""
    _compiled, flow = _flow("""
    secret int key = 0;
    int a = 1;
    int out = 0;

    void main() {
      int x = a + 2;
      out = x * 3;
    }
    """)
    assert speculative_sites(flow) == {}

    # Even a literal double-fetch shape folds away when the index is a
    # compile-time constant: the dataflow proves both addresses.
    _compiled, flow = _flow("""
    int table[8];
    secret int key = 0;
    int probe[64];
    int out = 0;

    void main() {
      int idx = 3;
      if (idx < 8) {
        out = probe[table[idx]];
      }
    }
    """)
    assert speculative_sites(flow) == {}


def test_preexisting_victims_have_no_sites():
    """No registered architectural victim contains a double-fetch
    chain — the invariant that keeps speculation-off static reports
    (and their goldens) unchanged by this analysis."""
    for spec in iter_workloads():
        if spec.name == "spectre":
            continue
        compiled = spec.compile("plain", **spec.resolve())
        flow = TaintDataflow(compiled.program, compiled.secrets)
        assert speculative_sites(flow) == {}, spec.name


def test_spectre_gadget_has_sites():
    spec = get_workload("spectre")
    compiled = spec.compile("plain", **spec.resolve())
    flow = TaintDataflow(compiled.program, compiled.secrets)
    sites = SpeculativeFlow(flow).sites
    assert sites


# -- report layer ----------------------------------------------------------


def test_site_kinds_include_speculative():
    assert "speculative" in SITE_KINDS
    assert SPECULATIVE_CHANNELS == ("timing", "cache-state",
                                    "transient-memory")


def test_classification_off_is_golden():
    """speculation=False (the default) must produce no speculative
    sites and no transient-memory channel anywhere."""
    compiled, flow = _flow(DOUBLE_FETCH)
    sites = classify_sites(flow)
    assert all(site.kind != "speculative" for site in sites)
    assert all("transient-memory" not in site.channels
               for site in sites)


def test_classification_on_adds_speculative_sites_and_channels():
    compiled, flow = _flow(DOUBLE_FETCH)
    sites = classify_sites(flow, speculation=True)
    speculative = [s for s in sites if s.kind == "speculative"]
    assert speculative
    for site in speculative:
        assert site.channels == SPECULATIVE_CHANNELS
    # Branch and address sites now also charge the transient channel:
    # any mispredicted branch replays, any variable-address access
    # can be replayed down a wrong path.
    for site in sites:
        if site.kind in ("branch", "address"):
            assert "transient-memory" in site.channels, site


def test_fence_projection_kills_marked_speculative_sites():
    """Under the fence the double-fetch guard is SecPrefix'ed, the
    window never opens inside it, and the projection drops the site
    and the branch's transient charge."""
    compiled, flow = _flow(DOUBLE_FETCH, mode="fence")
    sites = classify_sites(flow, speculation=True)
    assert any(s.kind == "speculative" for s in sites)
    projected = project_sites(sites, get_defense("fence"))
    assert all(s.kind != "speculative" for s in projected)
    assert all("transient-memory" not in s.channels
               for s in projected if s.kind == "branch" and s.secure)


def test_nonfence_projection_keeps_speculative_sites():
    """SeMPE/CTE are architectural answers: their projections must not
    touch speculative sites."""
    compiled, flow = _flow(DOUBLE_FETCH)
    sites = classify_sites(flow, speculation=True)
    for name in ("sempe", "cte", "flush-local"):
        projected = project_sites(sites, get_defense(name))
        assert any(s.kind == "speculative" for s in projected), name


def test_build_report_spectre_predicts_transient():
    spec = get_workload("spectre")
    compiled = spec.compile("plain", **spec.resolve())
    report = build_report(compiled.program, compiled.secrets,
                          defense=get_defense("plain"),
                          speculation=True)
    assert "transient-memory" in report.predicted_channels()
