"""Structural checks of the machine-level control-flow graph."""

from repro.analysis.cfg import VIRTUAL_EXIT, ControlFlowGraph
from repro.isa.opcodes import Op, is_cond_branch
from repro.lang.compiler import compile_source

BRANCHY = """
secret int key = 0;
int result = 0;
int helper(int v) { return v + 1; }
void main() {
  int x = 0;
  if (key) { x = helper(x); } else { x = 2; }
  result = x;
}
"""


def _cfg(mode="plain"):
    compiled = compile_source(BRANCHY, mode=mode)
    return compiled.program, ControlFlowGraph(compiled.program)


def test_successors_match_opcode_shapes():
    program, cfg = _cfg()
    for index, inst in enumerate(program.instructions):
        succs = cfg.succs[index]
        for target in succs:
            assert 0 <= target < len(program.instructions)
        if inst.op is Op.HALT:
            assert succs == ()
        elif is_cond_branch(inst.op):
            assert 1 <= len(succs) <= 2
            assert inst.target in succs
        elif inst.op in (Op.JMP, Op.JAL):
            assert succs == (inst.target,)


def test_preds_are_the_inverse_of_succs():
    program, cfg = _cfg()
    for index in range(len(program.instructions)):
        for target in cfg.succs[index]:
            assert index in cfg.preds[target]
        for pred in cfg.preds[index]:
            assert index in cfg.succs[pred]


def test_function_ranges_partition_the_program():
    program, cfg = _cfg()
    covered = []
    for entry in cfg.function_entries:
        start, stop = cfg.function_range(entry)
        assert start == entry
        covered.extend(range(start, stop))
    assert sorted(covered) == list(range(len(program.instructions)))
    # helper is called via JAL, so it must be its own function.
    assert len(cfg.function_entries) >= 2


def test_call_edges_and_return_sites():
    program, cfg = _cfg()
    jal = [i for i, inst in enumerate(program.instructions)
           if inst.op is Op.JAL and inst.target is not None]
    assert jal
    for index in jal:
        callee = program.instructions[index].target
        assert index + 1 in cfg.return_sites[callee]
        # Interprocedural: the call flows into the callee; intra: it
        # falls through to its own return site.
        assert cfg.succs[index] == (callee,)
        assert cfg.intra_succs[index] == (index + 1,)


def test_influence_region_bounded_by_join():
    program, cfg = _cfg()
    branches = [i for i, inst in enumerate(program.instructions)
                if is_cond_branch(inst.op)]
    assert branches
    for branch in branches:
        entry = cfg.func_of[branch]
        start, stop = cfg.function_range(entry)
        join = cfg.ipdom(entry).get(branch, VIRTUAL_EXIT)
        region = cfg.influence_region(branch)
        assert join not in region
        assert branch not in region
        assert all(start <= node < stop for node in region)
        # A two-sided secret if has a non-trivial influence region.
        if len(cfg.succs[branch]) == 2:
            assert region


def test_ipdom_of_straight_line_is_next_instruction():
    program, cfg = _cfg()
    entry = cfg.program.entry
    ipdom = cfg.ipdom(cfg.func_of[entry])
    start, stop = cfg.function_range(cfg.func_of[entry])
    for index in range(start, stop):
        inst = program.instructions[index]
        if cfg.intra_succs[index] == (index + 1,) \
                and inst.op is not Op.JAL:
            assert ipdom.get(index) == index + 1
