"""Taint-propagation unit tests for the IR-level dataflow."""

from repro.analysis.dataflow import TAINT_CTL, TAINT_DATA, TaintDataflow
from repro.isa.opcodes import is_cond_branch, is_load, is_store
from repro.lang.compiler import compile_source


def _flow(source, mode="plain"):
    compiled = compile_source(source, mode=mode)
    return compiled.program, TaintDataflow(compiled.program,
                                           compiled.secrets)


def _tainted_branches(program, flow):
    out = []
    for index, inst in enumerate(program.instructions):
        if not is_cond_branch(inst.op) or not flow.reachable(index):
            continue
        rs1, rs2 = flow.operand_taints(index)
        if rs1 | rs2:
            out.append((index, rs1 | rs2))
    return out


def test_secret_branch_carries_data_taint():
    program, flow = _flow("""
    secret int key = 0;
    int result = 0;
    void main() {
      if (key) { result = 1; } else { result = 2; }
    }
    """)
    tainted = _tainted_branches(program, flow)
    assert tainted
    assert any(mask & TAINT_DATA for _, mask in tainted)


def test_public_branch_stays_clean():
    program, flow = _flow("""
    secret int key = 0;
    int result = 0;
    void main() {
      int x = 5;
      if (x) { result = 1; }
      result = result + key;
    }
    """)
    assert _tainted_branches(program, flow) == []


def test_load_at_secret_index_taints_the_address_and_value():
    """Reading a *public* array at a *secret* index is an address leak,
    and the loaded value must be treated as secret-derived."""
    program, flow = _flow("""
    secret int idx = 0;
    int table[8];
    int result = 0;
    void main() {
      for (int i = 0; i < 8; i = i + 1) { table[i] = i; }
      result = table[idx];
      if (result) { result = 9; }
    }
    """)
    loads = [i for i, inst in enumerate(program.instructions)
             if is_load(inst.op) and flow.reachable(i)
             and flow.address_tainted(i) & TAINT_DATA]
    assert loads, "the table[idx] load must have a DATA-tainted address"
    # ... and the taint must flow through the loaded value into the
    # branch on `result`.
    tainted = _tainted_branches(program, flow)
    assert any(mask & TAINT_DATA for _, mask in tainted)


def test_store_at_secret_index_taints_the_address():
    """A write whose *position* encodes the secret (the lang-level
    analyzer used to drop this; the IR cross-check keeps both honest)."""
    program, flow = _flow("""
    secret int idx = 0;
    int table[8];
    void main() {
      table[idx] = 7;
    }
    """)
    stores = [i for i, inst in enumerate(program.instructions)
              if is_store(inst.op) and flow.reachable(i)
              and flow.address_tainted(i) & TAINT_DATA]
    assert stores, "the table[idx] store must have a DATA-tainted address"


def test_implicit_flow_marks_merged_scalar_control_tainted():
    program, flow = _flow("""
    secret int key = 0;
    int result = 0;
    void main() {
      int x = 0;
      if (key) { x = 1; }
      if (x) { result = 1; }
    }
    """)
    tainted = _tainted_branches(program, flow)
    # Both the direct branch on key and the derived branch on x.
    assert len(tainted) >= 2
    masks = [mask for _, mask in tainted]
    assert any(mask & TAINT_DATA for mask in masks)
    # The branch on x is tainted purely through control flow.
    assert any(mask == TAINT_CTL for mask in masks)


def test_taint_flows_through_call_and_return():
    program, flow = _flow("""
    secret int key = 0;
    int result = 0;
    int pick(int v) { return v + 1; }
    void main() {
      int t = pick(key);
      if (t) { result = 1; }
    }
    """)
    tainted = _tainted_branches(program, flow)
    assert any(mask & TAINT_DATA for _, mask in tainted)


def test_public_call_chain_stays_clean():
    program, flow = _flow("""
    secret int key = 0;
    int result = 0;
    int pick(int v) { return v + 1; }
    void main() {
      int t = pick(3);
      if (t) { result = 1; }
      result = result + key;
    }
    """)
    assert _tainted_branches(program, flow) == []


def test_secure_region_depth_tracks_sempe_regions():
    compiled = compile_source("""
    secret int key = 0;
    int result = 0;
    void main() {
      if (key) { result = 1; } else { result = 2; }
    }
    """, mode="sempe")
    program = compiled.program
    flow = TaintDataflow(program, compiled.secrets)
    secure = [i for i, inst in enumerate(program.instructions)
              if is_cond_branch(inst.op) and inst.secure]
    assert secure, "sempe must emit a secure branch for the secret if"
    branch = secure[0]
    # The branch itself sits outside the region; its successors are in.
    assert flow.region_depth(branch) == 0
    assert any(flow.region_depth(s) > 0
               and flow.reachable(s)
               for s in (branch + 1, program.instructions[branch].target))
