"""Golden static-leak reports for every registered victim.

The fixtures pin the analyzer's full output — every site with its pc,
source line, kind, and channels — on the unprotected compile of each
victim, so an analyzer or compiler change that silently shifts a leak
site shows up as a readable JSON diff.  Regenerate a fixture only when
the change is intentional:

    PYTHONPATH=src python -c "
    import json, pathlib
    from repro.analysis import analyze_workload
    name = 'bsearch'
    report = analyze_workload(name, 'plain')
    path = pathlib.Path('tests/analysis/golden') / (name + '.json')
    path.write_text(json.dumps(report.to_dict(), indent=2,
                               sort_keys=True) + chr(10))"
"""

import json
import pathlib

import pytest

from repro.analysis import analyze_workload
from repro.workloads.registry import workload_names

GOLDEN = pathlib.Path(__file__).parent / "golden"


def test_every_victim_has_a_fixture():
    assert sorted(p.stem for p in GOLDEN.glob("*.json")) \
        == sorted(workload_names())


@pytest.mark.parametrize("name", sorted(workload_names()))
def test_static_report_matches_golden(name):
    expected = json.loads((GOLDEN / f"{name}.json").read_text())
    actual = analyze_workload(name, "plain").to_dict()
    assert actual == expected
