"""Leak-site classification, projection, and report serialization."""

import json

from repro.analysis import analyze_workload
from repro.analysis.report import (
    ADDRESS_CHANNELS,
    StaticLeakReport,
)
from repro.security.leakage import CHANNELS


def _channels_in_canonical_order(channels):
    positions = [CHANNELS.index(c) for c in channels]
    return positions == sorted(positions)


def test_plain_bsearch_has_branch_and_address_sites():
    report = analyze_workload("bsearch", "plain")
    assert report.sites_of_kind("branch")
    assert report.sites_of_kind("address")
    assert report.predicted_channels() == CHANNELS


def test_report_round_trips_through_json():
    report = analyze_workload("bsearch", "plain")
    blob = json.dumps(report.to_dict(), sort_keys=True)
    rebuilt = StaticLeakReport.from_dict(json.loads(blob))
    assert rebuilt == report
    # Round-tripping is idempotent at the JSON level too.
    assert json.dumps(rebuilt.to_dict(), sort_keys=True) == blob


def test_channels_are_canonically_ordered():
    for defense in ("plain", "fence", "flush-local"):
        report = analyze_workload("bsearch", defense)
        assert _channels_in_canonical_order(report.predicted_channels())
        for site in report.sites:
            assert _channels_in_canonical_order(site.channels)


def test_sempe_projection_drops_all_charged_sites():
    report = analyze_workload("bsearch", "sempe")
    assert report.sites_of_kind("branch") == ()
    assert report.sites_of_kind("address") == ()
    assert report.predicted_channels() == ()


def test_flush_projection_removes_transient_state_channels():
    report = analyze_workload("bsearch", "flush-local")
    predicted = report.predicted_channels()
    assert predicted
    assert "cache-state" not in predicted
    assert "branch-predictor" not in predicted


def test_fence_projection_removes_predictor_only():
    plain = analyze_workload("bsearch", "plain").predicted_channels()
    fence = analyze_workload("bsearch", "fence").predicted_channels()
    assert "branch-predictor" in plain
    assert "branch-predictor" not in fence
    assert set(fence) == set(plain) - {"branch-predictor"}


def test_config_only_schemes_project_nothing():
    plain = analyze_workload("table_lookup", "plain")
    for scheme in ("cache-partition", "cache-randomize"):
        report = analyze_workload("table_lookup", scheme)
        assert report.predicted_channels() == plain.predicted_channels()


def test_latency_sites_are_advisories_not_channels():
    report = analyze_workload("gcd", "plain")
    advisories = report.advisories()
    assert advisories
    for site in advisories:
        assert site.kind == "latency"
        assert site.channels == ()
        assert site.potential == ("timing",)


def test_address_sites_carry_the_address_channel_class():
    report = analyze_workload("table_lookup", "plain")
    for site in report.sites_of_kind("address"):
        assert set(site.channels) <= set(ADDRESS_CHANNELS)


def test_cte_compile_has_no_charged_sites():
    report = analyze_workload("bsearch", "cte")
    assert report.predicted_channels() == ()
    # Linearization leaves only fixed-latency advisories behind.
    assert all(site.kind == "latency" for site in report.sites)
