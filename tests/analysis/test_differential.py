"""The static-vs-dynamic differential and its harness integration."""

import json

from repro.analysis.differential import (
    VerifyReport,
    VerifySpec,
    execute_verify,
)
from repro.harness import (
    ResultStore,
    SweepCell,
    clear_cache,
    ensure_cells,
    run_verify,
    set_store,
)
from repro.uarch.config import fast_functional


def test_verify_spec_names():
    assert VerifySpec("gcd").name == "verify-gcd"
    assert VerifySpec("bsearch", {"n": 8}).name == "verify-bsearch-n8"


def test_baseline_pair_is_sound_and_leaks():
    report = execute_verify(VerifySpec("gcd"), "plain",
                            config=fast_functional())
    assert report.ok and report.sound
    assert report.dynamic, "the unprotected baseline must leak"
    assert set(report.dynamic) <= set(report.predicted)
    assert report.dynamic_only == ()
    assert report.violations == ()


def test_sempe_pair_closes_both_sides():
    report = execute_verify(VerifySpec("gcd"), "sempe",
                            config=fast_functional())
    assert report.ok
    assert report.predicted == ()
    assert report.dynamic == ()


def test_verify_report_round_trips_through_json():
    report = execute_verify(VerifySpec("gcd"), "plain",
                            config=fast_functional())
    blob = json.dumps(report.to_dict(), sort_keys=True)
    rebuilt = VerifyReport.from_dict(json.loads(blob))
    assert rebuilt == report
    assert rebuilt.ok == report.ok


def test_run_verify_caches_and_persists(tmp_path):
    previous = set_store(ResultStore(tmp_path / "store"))
    try:
        clear_cache()
        spec = VerifySpec("gcd")
        config = fast_functional()
        first = run_verify(spec, "sempe", config=config)
        assert first.name == "verify-gcd"
        assert first.report.ok
        # Second call is an L1 hit: identical object.
        assert run_verify(spec, "sempe", config=config) is first
        # Drop L1; the store must rebuild an equal report.
        clear_cache()
        rebuilt = run_verify(spec, "sempe", config=config)
        assert rebuilt is not first
        assert rebuilt.report == first.report
    finally:
        clear_cache()
        set_store(previous)


def test_verify_sweep_cell_runs_through_the_harness(tmp_path):
    previous = set_store(None)
    try:
        clear_cache()
        config = fast_functional()
        cell = SweepCell("verify", VerifySpec("gcd"), "sempe", config)
        assert cell.descriptor()["kind"] == "verify"
        stats = ensure_cells("verify-test", [cell])
        assert stats.ok
        assert stats.computed == 1
        result = cell.run()
        assert isinstance(result.report, VerifyReport)
        assert result.report.ok
    finally:
        clear_cache()
        set_store(previous)
