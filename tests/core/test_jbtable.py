"""jbTable LIFO protocol (Fig. 5)."""

import pytest

from repro.core.jbtable import JbTableError, JumpBackTable


def test_push_commit_jumpback_pop_cycle():
    table = JumpBackTable()
    table.push()
    assert not table.top().valid
    table.set_valid(0x40)
    assert table.top().valid
    assert table.take_jump_back() == 0x40
    assert table.top().jump_back
    entry = table.pop()
    assert entry.target == 0x40
    assert len(table) == 0


def test_nested_sjmp_requires_valid_previous_entry():
    table = JumpBackTable()
    table.push()
    assert not table.can_issue_sjmp()   # previous entry not yet valid
    with pytest.raises(JbTableError):
        table.push()
    table.set_valid(0x10)
    assert table.can_issue_sjmp()
    table.push()                        # now legal
    assert len(table) == 2


def test_depth_overflow():
    table = JumpBackTable(depth=2)
    for target in (1, 2):
        table.push()
        table.set_valid(target)
    with pytest.raises(JbTableError):
        table.push()


def test_lifo_order():
    table = JumpBackTable()
    table.push()
    table.set_valid(100)
    table.push()
    table.set_valid(200)
    # eosJMP operates on the most recent entry first.
    assert table.take_jump_back() == 200
    table.pop()
    assert table.take_jump_back() == 100
    table.pop()


def test_jump_back_twice_rejected():
    table = JumpBackTable()
    table.push()
    table.set_valid(5)
    table.take_jump_back()
    with pytest.raises(JbTableError):
        table.take_jump_back()


def test_pop_before_jump_back_rejected():
    table = JumpBackTable()
    table.push()
    table.set_valid(5)
    with pytest.raises(JbTableError):
        table.pop()


def test_pop_empty_rejected():
    with pytest.raises(JbTableError):
        JumpBackTable().pop()


def test_jump_back_before_valid_rejected():
    table = JumpBackTable()
    table.push()
    with pytest.raises(JbTableError):
        table.take_jump_back()


def test_squash_youngest_for_misprediction_recovery():
    table = JumpBackTable()
    table.push()
    table.set_valid(1)
    table.push()
    squashed = table.squash_youngest()
    assert squashed is not None
    assert len(table) == 1
    assert table.top().target == 1
    assert table.squash_youngest() is not None
    assert table.squash_youngest() is None


def test_size_bytes_small():
    """Paper: even with 30 entries the jbTable is under 256 bytes."""
    assert JumpBackTable(depth=30).size_bytes() < 256


def test_occupancy_tracking():
    table = JumpBackTable()
    table.push()
    table.set_valid(1)
    table.push()
    table.set_valid(2)
    assert table.max_occupancy == 2
    assert table.occupancy == 2
    assert table.pushes == 2
