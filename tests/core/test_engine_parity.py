"""Golden parity: the fast engine is bit-identical to the reference.

The reference engine is the oracle; every field of the
:class:`SimulationReport` — cycles, IPC, miss rates, final registers,
the full functional counters (including drains and op counts) and the
full pipeline stats — must match exactly for every workload, machine
mode, and snapshot mechanism.
"""


import pytest

pytestmark = pytest.mark.parity

from repro.arch.executor import Executor, InstructionLimitError
from repro.arch.fast_executor import FastExecutor
from repro.core.engine import (
    get_default_engine,
    set_default_engine,
    simulate,
)
from repro.isa.assembler import assemble
from repro.workloads.microbench import (
    MicrobenchSpec,
    WORKLOADS,
    compile_microbench,
)


def assert_identical_reports(reference, fast):
    assert reference.cycles == fast.cycles
    assert reference.ipc == fast.ipc
    assert reference.miss_rates == fast.miss_rates
    assert reference.final_regs == fast.final_regs
    # Full functional counters: instructions, loads/stores, branches,
    # secure-region bookkeeping, drains, SPM cycles, op_counts.
    assert reference.functional == fast.functional
    # Full timing stats: cycles, mispredicts, drain/SPM cycles, cache
    # accesses and misses at every level.
    assert reference.pipeline == fast.pipeline


def both_engines(program, sempe, config):
    reference = simulate(program, sempe=sempe, config=config,
                         engine="reference")
    fast = simulate(program, sempe=sempe, config=config, engine="fast")
    return reference, fast


@pytest.mark.parametrize("mode", ["sempe", "plain"])
@pytest.mark.parametrize("workload", WORKLOADS)
def test_microbench_parity(workload, mode, fast_config):
    spec = MicrobenchSpec(workload, w=2, iters=1)
    program = compile_microbench(spec, mode).program
    reference, fast = both_engines(program, mode == "sempe", fast_config)
    assert_identical_reports(reference, fast)


@pytest.mark.parametrize("mechanism", ["archrs", "phyrs", "lrs"])
@pytest.mark.parametrize("mode", ["sempe", "plain"])
@pytest.mark.parametrize("workload", WORKLOADS)
def test_snapshot_mechanism_parity(workload, mode, mechanism, fast_config):
    """Workloads x modes x snapshot mechanisms, all bit-identical.

    Non-ArchRS mechanisms exercise the drain-scaling path (PhyRS) and
    the per-instruction rename-overhead path (LRS) of both engines.
    """
    fast_config.snapshot_mechanism = mechanism
    spec = MicrobenchSpec(workload, w=1, iters=1)
    program = compile_microbench(spec, mode).program
    reference, fast = both_engines(program, mode == "sempe", fast_config)
    assert_identical_reports(reference, fast)


def test_deep_nesting_parity(fast_config):
    """W=4 nesting exercises stacked snapshot slots and drain chains."""
    spec = MicrobenchSpec("fibonacci", w=4, iters=2)
    program = compile_microbench(spec, "sempe").program
    reference, fast = both_engines(program, True, fast_config)
    assert_identical_reports(reference, fast)


INFINITE_LOOP = """
    .text
main:
    addi a0, a0, 1
    jmp  main
"""


def test_instruction_limit_parity():
    """Both engines hit the budget identically, counters included."""
    program = assemble(INFINITE_LOOP)
    reference = Executor(program, sempe=False, max_instructions=100)
    with pytest.raises(InstructionLimitError):
        for _record in reference.run():
            pass
    fast = FastExecutor(program, sempe=False, max_instructions=100)
    with pytest.raises(InstructionLimitError):
        for _chunk in fast.run_chunks():
            pass
    assert reference.result == fast.result
    assert reference.state.regs == fast.state.regs
    assert reference.state.pc == fast.state.pc


def test_engine_selection_default_and_override():
    import repro.core.engine as engine_module

    previous = engine_module._default_engine
    previous_overridden = engine_module._default_engine_overridden
    try:
        assert get_default_engine() in ("fast", "reference")
        set_default_engine("reference")
        assert get_default_engine() == "reference"
        with pytest.raises(ValueError):
            set_default_engine("warp")
    finally:
        engine_module._default_engine = previous
        engine_module._default_engine_overridden = previous_overridden


def test_explicit_default_beats_environment(monkeypatch):
    """`experiments --engine X` (set_default_engine) must win over a
    stray REPRO_ENGINE in the environment."""
    import repro.core.engine as engine_module

    previous = engine_module._default_engine
    previous_overridden = engine_module._default_engine_overridden
    monkeypatch.setenv("REPRO_ENGINE", "fast")
    try:
        set_default_engine("reference")
        assert get_default_engine() == "reference"
    finally:
        engine_module._default_engine = previous
        engine_module._default_engine_overridden = previous_overridden


def test_unknown_engine_rejected(fast_config):
    spec = MicrobenchSpec("ones", w=1, iters=1)
    program = compile_microbench(spec, "plain").program
    with pytest.raises(ValueError):
        simulate(program, sempe=False, config=fast_config, engine="turbo")
