"""Golden parity: the fast engine is bit-identical to the reference.

The reference engine is the oracle; every field of the
:class:`SimulationReport` — cycles, IPC, miss rates, final registers,
the full functional counters (including drains and op counts) and the
full pipeline stats — must match exactly for every workload, machine
mode, and snapshot mechanism.
"""


import pytest

pytestmark = pytest.mark.parity

from repro.arch.executor import Executor, InstructionLimitError
from repro.arch.fast_executor import FastExecutor
from repro.core.engine import (
    get_default_engine,
    set_default_engine,
    simulate,
)
from repro.isa.assembler import assemble
from repro.workloads.microbench import (
    MicrobenchSpec,
    WORKLOADS,
    compile_microbench,
)


def assert_identical_reports(reference, fast):
    assert reference.cycles == fast.cycles
    assert reference.ipc == fast.ipc
    assert reference.miss_rates == fast.miss_rates
    assert reference.final_regs == fast.final_regs
    # Full functional counters: instructions, loads/stores, branches,
    # secure-region bookkeeping, drains, SPM cycles, op_counts.
    assert reference.functional == fast.functional
    # Full timing stats: cycles, mispredicts, drain/SPM cycles, cache
    # accesses and misses at every level.
    assert reference.pipeline == fast.pipeline


def both_engines(program, sempe, config):
    reference = simulate(program, sempe=sempe, config=config,
                         engine="reference")
    fast = simulate(program, sempe=sempe, config=config, engine="fast")
    return reference, fast


@pytest.mark.parametrize("mode", ["sempe", "plain"])
@pytest.mark.parametrize("workload", WORKLOADS)
def test_microbench_parity(workload, mode, fast_config):
    spec = MicrobenchSpec(workload, w=2, iters=1)
    program = compile_microbench(spec, mode).program
    reference, fast = both_engines(program, mode == "sempe", fast_config)
    assert_identical_reports(reference, fast)


@pytest.mark.parametrize("mechanism", ["archrs", "phyrs", "lrs"])
@pytest.mark.parametrize("mode", ["sempe", "plain"])
@pytest.mark.parametrize("workload", WORKLOADS)
def test_snapshot_mechanism_parity(workload, mode, mechanism, fast_config):
    """Workloads x modes x snapshot mechanisms, all bit-identical.

    Non-ArchRS mechanisms exercise the drain-scaling path (PhyRS) and
    the per-instruction rename-overhead path (LRS) of both engines.
    """
    fast_config.snapshot_mechanism = mechanism
    spec = MicrobenchSpec(workload, w=1, iters=1)
    program = compile_microbench(spec, mode).program
    reference, fast = both_engines(program, mode == "sempe", fast_config)
    assert_identical_reports(reference, fast)


def test_deep_nesting_parity(fast_config):
    """W=4 nesting exercises stacked snapshot slots and drain chains."""
    spec = MicrobenchSpec("fibonacci", w=4, iters=2)
    program = compile_microbench(spec, "sempe").program
    reference, fast = both_engines(program, True, fast_config)
    assert_identical_reports(reference, fast)


# --------------------------------------------------------------------------
# Adversarial operands (the fast-engine shift/compare/divide audit)
#
# The fast engine reads registers with an explicit & MASK64 so that raw
# out-of-range values poked straight into ``state.regs`` — which
# harnesses and tests legitimately do — normalize exactly like the
# reference engine's to_signed/to_unsigned helpers.  These cases pin
# that contract: shift amounts >= 64 and negative shift counts, sign
# boundaries for SLT/SLTU and the ordered branches, RISC-V div/rem
# conventions (x/0, overflow), and raw negative / >= 2**64 register
# contents.
# --------------------------------------------------------------------------

from itertools import product

from repro.isa.instructions import Instruction
from repro.isa.opcodes import Op
from repro.isa.program import Program

MASK64 = (1 << 64) - 1
INT_MIN = 1 << 63

ADVERSARIAL_VALUES = (
    0, 1, 63, 64, 65, 127,
    INT_MIN - 1, INT_MIN, INT_MIN + 1, MASK64,
    -1, -5, -INT_MIN,             # raw negatives (unmasked pokes)
    1 << 64, (1 << 64) + 9,       # raw values past 64 bits
)

ALU_OPS = (Op.ADD, Op.SUB, Op.MUL, Op.DIV, Op.REM, Op.AND, Op.OR,
           Op.XOR, Op.SLL, Op.SRL, Op.SRA, Op.SLT, Op.SLTU)
BRANCH_OPS = (Op.BEQ, Op.BNE, Op.BLT, Op.BGE, Op.BLTU, Op.BGEU)


def _both_executors(program, a, b):
    """Run *program* on both engines with raw register pokes."""
    states = []
    for executor_cls, drive in (
        (Executor, lambda e: e.run_to_completion()),
        (FastExecutor, lambda e: list(e.run_chunks())),
    ):
        executor = executor_cls(program, sempe=False)
        executor.state.regs[11] = a
        executor.state.regs[12] = b
        drive(executor)
        states.append(executor)
    return states


@pytest.mark.parametrize("op", ALU_OPS)
def test_alu_adversarial_operand_parity(op):
    program = Program([Instruction(op, rd=10, rs1=11, rs2=12),
                       Instruction(Op.HALT)], name="alu-adversarial")
    for a, b in product(ADVERSARIAL_VALUES, ADVERSARIAL_VALUES):
        reference, fast = _both_executors(program, a, b)
        assert reference.state.regs == fast.state.regs, (op, a, b)
        assert reference.result == fast.result, (op, a, b)


@pytest.mark.parametrize("op", BRANCH_OPS)
def test_branch_adversarial_operand_parity(op):
    program = Program([
        Instruction(op, rs1=11, rs2=12, target=3, imm=3),
        Instruction(Op.ADDI, rd=10, rs1=0, imm=1),
        Instruction(Op.HALT),
        Instruction(Op.ADDI, rd=10, rs1=0, imm=2),
        Instruction(Op.HALT),
    ], name="branch-adversarial")
    for a, b in product(ADVERSARIAL_VALUES, ADVERSARIAL_VALUES):
        reference, fast = _both_executors(program, a, b)
        assert reference.state.regs == fast.state.regs, (op, a, b)
        assert reference.state.pc == fast.state.pc, (op, a, b)


@pytest.mark.parametrize("op,imm", [
    (Op.SLLI, 63), (Op.SLLI, -1), (Op.SRLI, 63), (Op.SRLI, 64),
    (Op.SRLI, -1), (Op.SRAI, 63), (Op.SRAI, 64), (Op.SRAI, -64),
    (Op.SLTI, -1), (Op.SLTI, 1 << 63), (Op.ADDI, -(1 << 63)),
])
def test_immediate_adversarial_parity(op, imm):
    """Negative and oversized immediates (masked to a 6-bit shift count
    / wrapped to 64 bits) behave identically on both engines."""
    program = Program([Instruction(op, rd=10, rs1=11, imm=imm),
                       Instruction(Op.HALT)], name="imm-adversarial")
    for a in ADVERSARIAL_VALUES:
        reference, fast = _both_executors(program, a, 0)
        assert reference.state.regs == fast.state.regs, (op, imm, a)


def test_divide_by_zero_convention_parity():
    """x / 0 == -1 and x % 0 == x (RISC-V), and INT_MIN / -1 wraps, on
    both engines — including for raw negative register pokes."""
    for op, expected in ((Op.DIV, MASK64), (Op.REM, 7)):
        program = Program([Instruction(op, rd=10, rs1=11, rs2=12),
                           Instruction(Op.HALT)], name="div0")
        reference, fast = _both_executors(program, 7, 0)
        assert reference.state.regs[10] == expected
        assert fast.state.regs[10] == expected
    program = Program([Instruction(Op.DIV, rd=10, rs1=11, rs2=12),
                       Instruction(Op.HALT)], name="div-overflow")
    reference, fast = _both_executors(program, INT_MIN, MASK64)
    assert reference.state.regs[10] == fast.state.regs[10] == INT_MIN


INFINITE_LOOP = """
    .text
main:
    addi a0, a0, 1
    jmp  main
"""


def test_instruction_limit_parity():
    """Both engines hit the budget identically, counters included."""
    program = assemble(INFINITE_LOOP)
    reference = Executor(program, sempe=False, max_instructions=100)
    with pytest.raises(InstructionLimitError):
        for _record in reference.run():
            pass
    fast = FastExecutor(program, sempe=False, max_instructions=100)
    with pytest.raises(InstructionLimitError):
        for _chunk in fast.run_chunks():
            pass
    assert reference.result == fast.result
    assert reference.state.regs == fast.state.regs
    assert reference.state.pc == fast.state.pc


def test_engine_selection_default_and_override():
    import repro.core.engine as engine_module

    previous = engine_module._default_engine
    previous_overridden = engine_module._default_engine_overridden
    try:
        assert get_default_engine() in ("fast", "reference")
        set_default_engine("reference")
        assert get_default_engine() == "reference"
        with pytest.raises(ValueError):
            set_default_engine("warp")
    finally:
        engine_module._default_engine = previous
        engine_module._default_engine_overridden = previous_overridden


def test_explicit_default_beats_environment(monkeypatch):
    """`experiments --engine X` (set_default_engine) must win over a
    stray REPRO_ENGINE in the environment."""
    import repro.core.engine as engine_module

    previous = engine_module._default_engine
    previous_overridden = engine_module._default_engine_overridden
    monkeypatch.setenv("REPRO_ENGINE", "fast")
    try:
        set_default_engine("reference")
        assert get_default_engine() == "reference"
    finally:
        engine_module._default_engine = previous
        engine_module._default_engine_overridden = previous_overridden


def test_unknown_engine_rejected(fast_config):
    spec = MicrobenchSpec("ones", w=1, iters=1)
    program = compile_microbench(spec, "plain").program
    with pytest.raises(ValueError):
        simulate(program, sempe=False, config=fast_config, engine="turbo")


@pytest.mark.parametrize("budget", [1, 37, 500])
def test_fuel_exhaustion_parity_sempe(budget, fast_config):
    """simulate(max_instructions=...) aborts both engines at the same
    committed instruction, with the count carried on the error."""
    spec = MicrobenchSpec("fibonacci", w=2, iters=1)
    program = compile_microbench(spec, "sempe").program
    errors = []
    for engine in ("reference", "fast"):
        with pytest.raises(InstructionLimitError) as err:
            simulate(program, sempe=True, config=fast_config,
                     max_instructions=budget, engine=engine)
        errors.append(err.value)
    reference, fast = errors
    assert reference.executed == fast.executed == budget
    assert str(reference) == str(fast)


def test_fuel_limit_error_carries_executed_count():
    program = assemble(INFINITE_LOOP)
    reference = Executor(program, sempe=False, max_instructions=25)
    with pytest.raises(InstructionLimitError) as ref_err:
        for _record in reference.run():
            pass
    fast = FastExecutor(program, sempe=False, max_instructions=25)
    with pytest.raises(InstructionLimitError) as fast_err:
        for _chunk in fast.run_chunks():
            pass
    assert ref_err.value.executed == fast_err.value.executed == 25
    # the partial results agree with the advertised count
    assert reference.result.instructions == fast.result.instructions == 25


def test_generous_budget_changes_nothing(fast_config):
    """An explicit budget a healthy run never reaches is a no-op, so
    fuel off-by-default cannot perturb goldens on either engine."""
    spec = MicrobenchSpec("ones", w=1, iters=1)
    program = compile_microbench(spec, "sempe").program
    for engine in ("reference", "fast"):
        unlimited = simulate(program, sempe=True, config=fast_config,
                             engine=engine)
        budgeted = simulate(program, sempe=True, config=fast_config,
                            max_instructions=10**9, engine=engine)
        assert budgeted == unlimited
