"""Golden batch parity: every lane is byte-identical to a serial run.

The serial fast engine (itself pinned bit-exact to the reference by
``test_engine_parity.py``) is the oracle here: a ``BatchExecutor``
running N trials must produce, for **every** lane, the same
:class:`SimulationReport`, the same chunked trace (row for row,
including drain rows), and the same attacker-observable trace — under
every registered defense — as N independent serial runs.
"""

import dataclasses

import pytest

pytestmark = pytest.mark.parity

np = pytest.importorskip("numpy")

from repro.arch.batch import BatchExecutor
from repro.arch.executor import InstructionLimitError
from repro.arch.fast_executor import FastExecutor
from repro.core.engine import simulate
from repro.security.observer import (
    collect_observation,
    collect_observations_batch,
    poke_secrets,
)
from repro.workloads.microbench import (
    MicrobenchSpec,
    WORKLOADS,
    compile_microbench,
)
from repro.workloads.registry import get_workload


# --------------------------------------------------------------------------
# simulate(): engine="batch" end to end through the timing pipeline
# --------------------------------------------------------------------------

@pytest.mark.parametrize("mode", ["sempe", "plain"])
@pytest.mark.parametrize("workload", WORKLOADS)
def test_simulate_batch_equals_fast(workload, mode, fast_config):
    spec = MicrobenchSpec(workload, w=2, iters=1)
    program = compile_microbench(spec, mode).program
    fast = simulate(program, sempe=mode == "sempe", config=fast_config,
                    engine="fast")
    batch = simulate(program, sempe=mode == "sempe", config=fast_config,
                     engine="batch")
    assert batch == fast


@pytest.mark.parametrize("mechanism", ["archrs", "phyrs", "lrs"])
def test_simulate_batch_snapshot_mechanisms(mechanism, fast_config):
    """PhyRS exercises the drain-scaling path, LRS the per-instruction
    rename-overhead path — both must see identical batch chunks."""
    fast_config.snapshot_mechanism = mechanism
    spec = MicrobenchSpec("fibonacci", w=2, iters=1)
    program = compile_microbench(spec, "sempe").program
    fast = simulate(program, sempe=True, config=fast_config, engine="fast")
    batch = simulate(program, sempe=True, config=fast_config,
                     engine="batch")
    assert batch == fast


@pytest.mark.parametrize("budget", [1, 37, 500])
def test_simulate_batch_fuel_parity(budget, fast_config):
    spec = MicrobenchSpec("fibonacci", w=2, iters=1)
    program = compile_microbench(spec, "sempe").program
    errors = []
    for engine in ("fast", "batch"):
        with pytest.raises(InstructionLimitError) as err:
            simulate(program, sempe=True, config=fast_config,
                     max_instructions=budget, engine=engine)
        errors.append(err.value)
    fast, batch = errors
    assert batch.executed == fast.executed == budget
    assert str(batch) == str(fast)


# --------------------------------------------------------------------------
# Lane-exact chunk streams on a diverging campaign
# --------------------------------------------------------------------------

def _campaign(n_lanes, mode="sempe"):
    """memcmp with per-lane secrets: lanes diverge on the baseline
    machine and stay in lockstep under SeMPE."""
    spec = get_workload("memcmp")
    program = spec.compile(mode).program
    sample = spec.secret_values({})[0]
    secrets = [
        tuple((lane * 29 + index * 7) % 256 for index in range(len(sample)))
        for lane in range(n_lanes)
    ]
    return spec, program, secrets


def _serial_chunks(program, sempe, secret, symbols, secret_name):
    executor = FastExecutor(program, sempe=sempe)
    poke_secrets(executor.state.memory, symbols, {secret_name: secret})
    rows = []
    for chunk in executor.run_chunks(64):
        rows.extend(zip(chunk.pc, chunk.addr, chunk.taken))
    return rows, executor


@pytest.mark.parametrize("mode", ["sempe", "plain"])
def test_lane_chunks_match_serial_row_for_row(mode):
    sempe = mode == "sempe"
    spec, program, secrets = _campaign(5, mode)
    executor = BatchExecutor(program, sempe=sempe, n_lanes=len(secrets))
    for lane, secret in enumerate(secrets):
        poke_secrets(executor.memory.lane_view(lane), program.symbols,
                     {spec.secret: secret})
    executor.run(line_bytes=64)

    for lane, secret in enumerate(secrets):
        serial_rows, serial = _serial_chunks(
            program, sempe, secret, program.symbols, spec.secret)
        batch_rows = []
        for chunk in executor.lane_chunks(lane):
            batch_rows.extend(zip(chunk.pc, chunk.addr, chunk.taken))
        assert batch_rows == serial_rows, f"lane {lane} trace diverged"
        assert executor.lane_result(lane) == serial.result, lane
        assert executor.lane_regs(lane) == serial.state.snapshot_regs(), lane


# --------------------------------------------------------------------------
# Attacker observations under every registered defense
# --------------------------------------------------------------------------

def test_observations_match_serial_under_every_defense():
    from repro.defenses import iter_defenses

    n_lanes = 3
    for defense in iter_defenses():
        spec, program, secrets = _campaign(n_lanes, defense.compile_mode)
        secret_sets = [{spec.secret: secret} for secret in secrets]
        batch_traces = collect_observations_batch(
            program, secret_sets, defense=defense.name, keep_streams=True)
        for lane, secret_values in enumerate(secret_sets):
            serial = collect_observation(
                program, defense=defense.name, secret_values=secret_values,
                keep_streams=True, engine="fast")
            assert batch_traces[lane] == serial, (defense.name, lane)


def test_collect_observation_engine_batch_delegates():
    spec, program, secrets = _campaign(1)
    secret_values = {spec.secret: secrets[0]}
    fast = collect_observation(program, defense="sempe",
                               secret_values=secret_values, engine="fast")
    batch = collect_observation(program, defense="sempe",
                                secret_values=secret_values, engine="batch")
    assert batch == fast


# --------------------------------------------------------------------------
# Attack reports: batch profiling is bit-identical modulo the engine tag
# --------------------------------------------------------------------------

def test_attack_report_batch_equals_fast():
    from repro.security.attackers import AttackSpec, execute_attack

    spec = AttackSpec("memcmp", "prime-probe", trials=16)
    for defense in ("plain", "sempe"):
        fast = execute_attack(spec, defense, engine="fast")
        batch = execute_attack(spec, defense, engine="batch")
        assert batch.engine == "batch"
        assert dataclasses.replace(batch, engine="fast") == fast, defense
