"""Snapshot-mechanism cost models (§IV-F)."""

import pytest

from repro.core.snapshots import (
    ArchRS, LazyRegisterSpill, PhyRS, make_snapshot_mechanism,
)


def test_factory():
    assert isinstance(make_snapshot_mechanism("archrs"), ArchRS)
    assert isinstance(make_snapshot_mechanism("PhyRS"), PhyRS)
    assert isinstance(make_snapshot_mechanism("lrs"), LazyRegisterSpill)
    with pytest.raises(ValueError):
        make_snapshot_mechanism("nope")


def test_phyrs_much_more_traffic_than_archrs():
    """The paper rejects PhyRS for excessive SPM spilling: hundreds of
    physical registers vs dozens of architectural ones."""
    archrs = ArchRS(n_arch_regs=48, n_phys_regs=256)
    phyrs = PhyRS(n_arch_regs=48, n_phys_regs=256)
    assert phyrs.snapshot_bytes() > 2.5 * archrs.snapshot_bytes()
    cost_arch = archrs.cost(10, 10)
    cost_phy = phyrs.cost(10, 10)
    assert cost_phy.entry_cycles > cost_arch.entry_cycles
    assert cost_phy.nt_end_cycles > cost_arch.nt_end_cycles


def test_phyrs_cost_independent_of_modified_counts():
    phyrs = PhyRS()
    assert phyrs.cost(1, 1) == phyrs.cost(40, 40)


def test_lrs_cheap_drains_but_rename_overhead():
    """The paper rejects LRS because it slows instructions outside
    SecBlocks (tagged rename table)."""
    lrs = LazyRegisterSpill()
    archrs = ArchRS()
    assert lrs.rename_overhead_per_instruction() > 0
    assert archrs.rename_overhead_per_instruction() == 0.0
    assert lrs.cost(5, 5).entry_cycles <= archrs.cost(5, 5).entry_cycles


def test_archrs_nt_cost_scales_with_modified_registers():
    archrs = ArchRS()
    assert archrs.cost(2, 0).nt_end_cycles <= archrs.cost(40, 0).nt_end_cycles


def test_snapshot_bytes_in_papers_ballpark():
    """48 architectural registers -> several hundred bytes per snapshot
    (the paper reports 7392 B including RAT metadata; ours is the
    register payload portion)."""
    archrs = ArchRS(n_arch_regs=48)
    assert 700 <= archrs.snapshot_bytes() <= 7392
