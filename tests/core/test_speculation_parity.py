"""Engine parity with the speculation window enabled.

The wrong-path fork lives in three places — the reference executor,
the fast chunk loop, and the batched engine's vectorized step — and
the bit-identical contract extends to all of it: reports (including
the transient pipeline counters), observation traces (including the
transient digest), and per-lane chunk streams must agree exactly with
``speculation.enabled = True``, for the architectural victims and for
the spectre gadget itself.
"""

import copy

import pytest

pytestmark = pytest.mark.parity

from repro.core.engine import simulate
from repro.security import collect_observation
from repro.security.observer import collect_observations_batch
from repro.workloads.registry import get_workload

ENGINES = ("reference", "fast", "batch")


def _spec_config(fast_config, window=32):
    config = copy.deepcopy(fast_config)
    config.speculation.enabled = True
    config.speculation.window = window
    return config


@pytest.mark.parametrize("mode", ["plain", "sempe", "fence"])
@pytest.mark.parametrize("name", ["gcd", "bsearch", "spectre"])
def test_reports_identical_across_engines(name, mode, fast_config):
    spec = get_workload(name)
    program = spec.compile(mode, **spec.resolve()).program
    config = _spec_config(fast_config)
    reports = [simulate(program, defense=mode, config=config,
                        engine=engine)
               for engine in ENGINES]
    assert reports[0] == reports[1] == reports[2], (name, mode)


@pytest.mark.parametrize("name", ["gcd", "spectre"])
def test_observations_identical_across_engines(name, fast_config):
    """The attacker's view — every digest, transient included — cannot
    depend on --engine with the window open."""
    spec = get_workload(name)
    params = spec.leak_resolve()
    config = _spec_config(fast_config)
    for secret in spec.secret_values(params)[:2]:
        compiled = spec.compile("plain", **params)
        serial = [collect_observation(
                      compiled.program, defense="plain",
                      secret_values={spec.secret: secret},
                      config=config, engine=engine)
                  for engine in ("reference", "fast")]
        batched = collect_observations_batch(
            compiled.program, [{spec.secret: secret}],
            defense="plain", config=config)
        assert serial[0] == serial[1], name
        assert batched[0] == serial[0], name


def test_spectre_transient_digest_distinguishes_secrets(fast_config):
    """The channel itself: with the window open, different keys give
    different wrong-path line streams — on every engine identically —
    while all committed digests stay secret-independent."""
    spec = get_workload("spectre")
    params = spec.resolve()
    compiled = spec.compile("plain", **params)
    config = _spec_config(fast_config)
    traces = {}
    for key in (1, 5):
        traces[key] = collect_observation(
            compiled.program, defense="plain",
            secret_values={"key": key}, config=config, engine="fast")
    a, b = traces[1], traces[5]
    assert a.transient_digest != b.transient_digest
    assert a.pc_digest == b.pc_digest
    assert a.mem_digest == b.mem_digest
    assert a.cycles == b.cycles


@pytest.mark.parametrize("window", [4, 32])
def test_window_size_respected_identically(window, fast_config):
    """Shrinking the window changes what the wrong path reaches; both
    serial engines and the batch engine must agree on the cut."""
    spec = get_workload("spectre")
    program = spec.compile("plain", **spec.resolve()).program
    config = _spec_config(fast_config, window=window)
    reports = [simulate(program, defense="plain", config=config,
                        engine=engine)
               for engine in ENGINES]
    assert reports[0] == reports[1] == reports[2]
    assert reports[0].pipeline.transient_instructions > 0
