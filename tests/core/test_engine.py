"""The SempeMachine engine: end-to-end simulate() behaviour."""


from repro.core.engine import SempeMachine, simulate
from repro.isa.assembler import assemble
from repro.uarch.config import MachineConfig

PROGRAM = """
    .data
key: .quad 1
    .text
main:
    la   a0, key
    ld   a1, 0(a0)
    addi a2, zero, 0
    addi a4, zero, 16
loop:
    sbeq a1, zero, skip
    addi a2, a2, 3
    jmp  skip
skip:
    eosjmp
    addi a4, a4, -1
    bne  a4, zero, loop
    halt
"""


def test_simulate_returns_report(fast_config):
    report = simulate(assemble(PROGRAM), sempe=True, config=fast_config)
    assert report.cycles > 0
    assert report.instructions > 0
    assert report.sempe is True
    assert 0.0 < report.ipc < 8.0
    assert set(report.miss_rates) == {"IL1", "DL1", "L2"}


def test_sempe_costs_more_than_baseline(fast_config):
    program = assemble(PROGRAM)
    secure = simulate(program, sempe=True, config=fast_config)
    baseline = simulate(program, sempe=False, config=fast_config)
    assert secure.cycles > baseline.cycles
    assert secure.instructions > baseline.instructions
    assert secure.overhead_vs(baseline) > 1.0


def test_same_binary_runs_on_both_machines(fast_config):
    """Backward compatibility: identical binary, different processors."""
    program = assemble(PROGRAM)
    secure = simulate(program, sempe=True, config=fast_config)
    legacy = simulate(program, sempe=False, config=fast_config)
    # Architectural result identical (key=1 -> NT path -> a2 = 48).
    assert secure.final_regs[12] == legacy.final_regs[12] == 48


def test_drain_counts_match_regions(fast_config):
    report = simulate(assemble(PROGRAM), sempe=True, config=fast_config)
    assert report.functional.secure_regions == 16
    assert report.functional.drains == 3 * 16
    assert report.pipeline.drains == 3 * 16


MIXED_PROGRAM = """
    .data
key: .quad 1
    .text
main:
    la   a0, key
    ld   a1, 0(a0)
    sbeq a1, zero, skip
    addi a2, a2, 3
    jmp  skip
skip:
    eosjmp
    addi a4, zero, 200
compute:
    addi a5, a5, 7
    addi a6, a6, 1
    addi a7, a7, 2
    addi s1, s1, 3
    addi s2, s2, 4
    addi s3, s3, 5
    addi s4, s4, 6
    addi a4, a4, -1
    bne  a4, zero, compute
    halt
"""


def test_snapshot_mechanism_affects_timing(fast_config):
    """PhyRS loses on drain traffic; LRS loses on programs dominated by
    non-secure code (the tagged rename table taxes every instruction) —
    exactly the two §IV-F rejection arguments."""
    program = assemble(MIXED_PROGRAM)
    cycles = {}
    for mechanism in ("archrs", "phyrs", "lrs"):
        config = MachineConfig()
        config.rob_entries = fast_config.rob_entries
        config.hierarchy = fast_config.hierarchy
        config.snapshot_mechanism = mechanism
        cycles[mechanism] = simulate(program, sempe=True,
                                     config=config).cycles
    assert cycles["phyrs"] > cycles["archrs"]
    assert cycles["lrs"] > cycles["archrs"]


def test_machine_reusable(fast_config):
    machine = SempeMachine(config=fast_config, sempe=True)
    first = machine.run(assemble(PROGRAM))
    second = machine.run(assemble(PROGRAM))
    assert first.cycles == second.cycles


def test_deterministic(fast_config):
    program = assemble(PROGRAM)
    runs = [simulate(program, sempe=True, config=fast_config).cycles
            for _ in range(3)]
    assert len(set(runs)) == 1
