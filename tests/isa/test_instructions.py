"""Instruction objects: operand bookkeeping and the SecPrefix rule."""

import pytest

from repro.isa.instructions import Instruction
from repro.isa.opcodes import Op


def test_secure_flag_only_on_conditional_branches():
    inst = Instruction(Op.BEQ, rs1=1, rs2=2, label="L", secure=True)
    assert inst.is_secure_branch
    with pytest.raises(ValueError):
        Instruction(Op.ADD, rd=1, rs1=2, rs2=3, secure=True)
    with pytest.raises(ValueError):
        Instruction(Op.JMP, label="L", secure=True)


def test_src_regs_excludes_x0():
    inst = Instruction(Op.ADD, rd=5, rs1=0, rs2=7)
    assert inst.src_regs() == (7,)


def test_cmov_reads_its_destination():
    inst = Instruction(Op.CMOV, rd=5, rs1=6, rs2=7)
    assert set(inst.src_regs()) == {5, 6, 7}


def test_dst_reg_none_for_stores_and_branches():
    assert Instruction(Op.ST, rs1=2, rs2=3, imm=0).dst_reg() is None
    assert Instruction(Op.BEQ, rs1=1, rs2=2, label="L").dst_reg() is None
    assert Instruction(Op.JMP, label="L").dst_reg() is None


def test_dst_reg_x0_discarded():
    assert Instruction(Op.ADD, rd=0, rs1=1, rs2=2).dst_reg() is None


def test_jal_writes_link_register():
    assert Instruction(Op.JAL, rd=1, label="f").dst_reg() == 1


def test_mnemonic_secure_prefix():
    inst = Instruction(Op.BNE, rs1=1, rs2=2, label="L", secure=True)
    assert inst.mnemonic() == "sbne"
    plain = Instruction(Op.BNE, rs1=1, rs2=2, label="L")
    assert plain.mnemonic() == "bne"


def test_classification_properties():
    load = Instruction(Op.LD, rd=1, rs1=2, imm=0)
    assert load.is_load and load.is_mem and not load.is_store
    store = Instruction(Op.SB, rs1=2, rs2=3, imm=4)
    assert store.is_store and store.is_mem and not store.is_load
