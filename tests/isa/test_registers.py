"""Register naming and parsing."""

import pytest

from repro.isa.registers import (
    NUM_REGS, RA, SP, ZERO, A0, T0, parse_reg, reg_name,
)


def test_register_count():
    assert NUM_REGS == 32


def test_zero_is_register_zero():
    assert ZERO == 0
    assert reg_name(0) == "zero"


def test_abi_aliases_roundtrip():
    for number in range(NUM_REGS):
        assert parse_reg(reg_name(number)) == number


def test_x_names_accepted():
    for number in range(NUM_REGS):
        assert parse_reg(f"x{number}") == number


def test_common_abi_names():
    assert parse_reg("ra") == RA
    assert parse_reg("sp") == SP
    assert parse_reg("a0") == A0
    assert parse_reg("t0") == T0


def test_case_insensitive():
    assert parse_reg("A0") == A0
    assert parse_reg(" sp ") == SP


def test_unknown_register_rejected():
    with pytest.raises(ValueError):
        parse_reg("q7")


def test_unknown_number_rejected():
    with pytest.raises(ValueError):
        reg_name(32)
