"""Opcode classification."""

import pytest

from repro.isa.opcodes import (
    Op, OpClass, is_branch_or_jump, is_cond_branch, is_load, is_store,
    mem_width, op_class,
)


def test_every_opcode_has_a_class():
    for op in Op:
        assert isinstance(op_class(op), OpClass)


def test_conditional_branch_set():
    for op in (Op.BEQ, Op.BNE, Op.BLT, Op.BGE, Op.BLTU, Op.BGEU):
        assert is_cond_branch(op)
        assert op_class(op) is OpClass.BRANCH
    assert not is_cond_branch(Op.JMP)
    assert not is_cond_branch(Op.EOSJMP)


def test_control_flow_set():
    assert is_branch_or_jump(Op.JMP)
    assert is_branch_or_jump(Op.JAL)
    assert is_branch_or_jump(Op.JALR)
    assert is_branch_or_jump(Op.BEQ)
    assert not is_branch_or_jump(Op.EOSJMP)
    assert not is_branch_or_jump(Op.ADD)


def test_memory_classification():
    assert is_load(Op.LD) and is_load(Op.LB)
    assert is_store(Op.ST) and is_store(Op.SB)
    assert not is_load(Op.ST)
    assert not is_store(Op.LD)


def test_mem_width():
    assert mem_width(Op.LD) == 8
    assert mem_width(Op.ST) == 8
    assert mem_width(Op.LB) == 1
    assert mem_width(Op.SB) == 1
    with pytest.raises(ValueError):
        mem_width(Op.ADD)


def test_divide_class_covers_rem():
    assert op_class(Op.DIV) is OpClass.DIV
    assert op_class(Op.REM) is OpClass.DIV


def test_eosjmp_has_own_class():
    assert op_class(Op.EOSJMP) is OpClass.EOSJMP
