"""Textual assembler."""

import pytest

from repro.isa.assembler import AssemblerError, assemble
from repro.isa.opcodes import Op
from repro.isa.program import DATA_BASE


def test_assemble_simple_program():
    program = assemble("""
        .text
    main:
        addi a0, zero, 5
        addi a1, a0, -2
        halt
    """)
    assert len(program) == 3
    assert program.entry == 0
    assert program.instructions[0].op is Op.ADDI
    assert program.instructions[1].imm == -2


def test_labels_resolve_to_indices():
    program = assemble("""
    main:
        jmp end
        nop
    end:
        halt
    """)
    assert program.instructions[0].target == 2


def test_secure_branch_mnemonics():
    program = assemble("""
    main:
        sbeq a0, zero, out
        nop
    out:
        eosjmp
        halt
    """)
    branch = program.instructions[0]
    assert branch.op is Op.BEQ and branch.secure
    assert program.instructions[2].op is Op.EOSJMP


def test_all_secure_branch_forms():
    source = "main:\n"
    for mnemonic in ("sbeq", "sbne", "sblt", "sbge", "sbltu", "sbgeu"):
        source += f"    {mnemonic} a0, a1, main\n"
    program = assemble(source)
    assert all(inst.secure for inst in program.instructions)


def test_data_section_quads():
    program = assemble("""
        .data
    arr: .quad 1, 2, 3
        .text
    main:
        la a0, arr
        ld a1, 8(a0)
        halt
    """)
    assert program.symbols["arr"] == DATA_BASE
    image = program.initial_memory()
    assert image[DATA_BASE + 8] == 2


def test_data_space_and_bytes():
    program = assemble("""
        .data
    buf: .space 4
    msg: .byte 7, 9
        .text
    main:
        halt
    """)
    assert program.symbols["msg"] == DATA_BASE + 32
    image = program.initial_memory()
    assert image[program.symbols["msg"]] == 7
    assert image[program.symbols["msg"] + 1] == 9


def test_memory_operand_forms():
    program = assemble("""
    main:
        ld a0, -8(sp)
        st a1, 16(sp)
        halt
    """)
    assert program.instructions[0].imm == -8
    assert program.instructions[1].imm == 16


def test_pseudo_instructions():
    program = assemble("""
    main:
        li a0, 42
        mv a1, a0
        ret
    """)
    assert program.instructions[0].op is Op.ADDI
    assert program.instructions[1].op is Op.ADDI
    assert program.instructions[2].op is Op.JALR


def test_undefined_label_rejected():
    with pytest.raises(Exception):
        assemble("main:\n jmp nowhere\n")


def test_duplicate_label_rejected():
    with pytest.raises(AssemblerError):
        assemble("main:\n nop\nmain:\n halt\n")


def test_unknown_mnemonic_rejected():
    with pytest.raises(AssemblerError):
        assemble("main:\n frobnicate a0\n")


def test_comments_ignored():
    program = assemble("""
    # full-line comment
    main:
        nop  # trailing comment
        halt
    """)
    assert len(program) == 2


def test_entry_defaults_to_main_label():
    program = assemble("""
    helper:
        ret
    main:
        halt
    """)
    assert program.entry == 1
