"""ProgramBuilder API."""

import pytest

from repro.isa.builder import ProgramBuilder
from repro.isa.opcodes import Op
from repro.isa.program import DATA_BASE, SHADOW_BASE, ProgramError
from repro.isa.registers import A0, ZERO


def test_emit_and_build():
    builder = ProgramBuilder()
    builder.label("main")
    builder.li(A0, 7)
    builder.halt()
    program = builder.build(entry="main")
    assert len(program) == 2
    assert program.instructions[0].imm == 7


def test_li_large_immediate_expands():
    builder = ProgramBuilder()
    builder.label("main")
    builder.li(A0, 1 << 40)
    builder.halt()
    program = builder.build(entry="main")
    assert len(program) > 2   # multi-instruction expansion


def test_fresh_labels_unique():
    builder = ProgramBuilder()
    labels = {builder.fresh_label() for _ in range(100)}
    assert len(labels) == 100


def test_duplicate_label_rejected():
    builder = ProgramBuilder()
    builder.label("x")
    with pytest.raises(ProgramError):
        builder.label("x")


def test_data_allocation_addresses():
    builder = ProgramBuilder()
    first = builder.data_quads("a", [1, 2])
    second = builder.data_space("b", 3)
    assert first == DATA_BASE
    assert second == DATA_BASE + 16


def test_shadow_space_separate_region():
    builder = ProgramBuilder()
    addr = builder.shadow_space("sh", 4)
    assert addr == SHADOW_BASE


def test_duplicate_data_symbol_rejected():
    builder = ProgramBuilder()
    builder.data_quads("a", [1])
    with pytest.raises(ProgramError):
        builder.data_quads("a", [2])


def test_la_resolves_symbol():
    builder = ProgramBuilder()
    addr = builder.data_quads("table", [5])
    builder.label("main")
    builder.la(A0, "table")
    builder.halt()
    program = builder.build(entry="main")
    assert program.instructions[0].op is Op.LUI
    assert program.instructions[0].imm == addr


def test_branch_emits_secure_flag():
    builder = ProgramBuilder()
    builder.label("main")
    builder.branch(Op.BEQ, A0, ZERO, "main", secure=True)
    program = builder.build(entry="main")
    assert program.instructions[0].secure
