"""Backward-compatible byte encoding (the paper's SecPrefix story)."""

from repro.isa.assembler import assemble
from repro.isa.encoding import (
    NOP_BYTE, SEC_PREFIX, decode_program, encode_program,
)
from repro.isa.opcodes import Op

SOURCE = """
main:
    addi a0, zero, 3
    sbne a0, zero, over
    addi a1, zero, 1
    jmp join
over:
    addi a1, zero, 2
join:
    eosjmp
    halt
"""


def test_roundtrip_preserves_program():
    program = assemble(SOURCE)
    blob = encode_program(program)
    decoded = decode_program(blob)
    assert len(decoded) == len(program)
    for original, copy in zip(program.instructions, decoded):
        assert copy.op is original.op
        assert copy.secure == original.secure
        if original.is_control:
            assert copy.target == original.target


def test_eosjmp_encodes_as_prefix_nop():
    program = assemble(SOURCE)
    blob = encode_program(program)
    assert bytes([SEC_PREFIX, NOP_BYTE]) in blob


def test_legacy_decode_erases_security():
    """A legacy processor sees the same program minus security bits."""
    program = assemble(SOURCE)
    decoded = decode_program(encode_program(program), legacy=True)
    assert len(decoded) == len(program)
    assert not any(inst.secure for inst in decoded)
    # eosJMP reads as a plain NOP on legacy parts.
    kinds = [inst.op for inst in decoded]
    assert Op.EOSJMP not in kinds
    assert kinds[program.labels["join"]] is Op.NOP


def test_legacy_decode_preserves_functional_ops():
    program = assemble(SOURCE)
    decoded = decode_program(encode_program(program), legacy=True)
    for original, copy in zip(program.instructions, decoded):
        if original.op is Op.EOSJMP:
            continue
        assert copy.op is original.op
        assert copy.rd == original.rd
        assert copy.rs1 == original.rs1


def test_secure_branch_has_prefix_byte_before_opcode():
    program = assemble("main:\n sbeq a0, a1, main\n")
    blob = encode_program(program)
    # header: 8 bytes, imm table: 1 entry (target 0) = 8 bytes.
    assert blob[16] == SEC_PREFIX


def test_plain_nop_single_byte():
    program = assemble("main:\n nop\n halt\n")
    blob = encode_program(program)
    decoded = decode_program(blob)
    assert decoded[0].op is Op.NOP
    assert decoded[1].op is Op.HALT
