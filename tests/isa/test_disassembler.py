"""Disassembler output."""

from repro.isa.assembler import assemble
from repro.isa.disassembler import (
    disassemble, disassemble_binary, disassemble_instruction,
)
from repro.isa.encoding import encode_program

SOURCE = """
main:
    addi a0, zero, 1
    sbne a0, zero, over
    addi a1, zero, 1
    jmp  join
over:
    addi a1, zero, 2
join:
    eosjmp
    halt
"""


def test_instruction_rendering_with_index():
    program = assemble(SOURCE)
    line = disassemble_instruction(program.instructions[0], 0)
    assert line.startswith("    0:")
    assert "addi" in line


def test_listing_annotates_secure_regions():
    program = assemble(SOURCE)
    text = disassemble(program.instructions)
    assert "; sJMP (SecPrefix)" in text
    assert "; eosJMP (join point; NOP on legacy)" in text


def test_binary_decodes_differ_by_machine():
    program = assemble(SOURCE)
    blob = encode_program(program)
    sempe_view = disassemble_binary(blob, legacy=False)
    legacy_view = disassemble_binary(blob, legacy=True)
    assert "sbne" in sempe_view
    assert "sbne" not in legacy_view    # prefix erased
    assert "bne" in legacy_view
    assert "eosjmp" in sempe_view
    assert "eosjmp" not in legacy_view
    assert "nop" in legacy_view


def test_same_byte_count_both_views():
    """It really is the same bytes — only the decode differs."""
    program = assemble(SOURCE)
    blob = encode_program(program)
    sempe_lines = disassemble_binary(blob, legacy=False).splitlines()
    legacy_lines = disassemble_binary(blob, legacy=True).splitlines()
    assert len(sempe_lines) == len(legacy_lines)
