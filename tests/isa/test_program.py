"""Program sealing and queries."""

import pytest

from repro.isa.assembler import assemble
from repro.isa.instructions import INSTRUCTION_BYTES, Instruction
from repro.isa.opcodes import Op
from repro.isa.program import Program, ProgramError


def test_address_mapping_roundtrip():
    program = assemble("main:\n nop\n nop\n halt\n")
    for index in range(len(program)):
        assert program.index_of_address(program.address_of(index)) == index
    assert program.address_of(1) == INSTRUCTION_BYTES


def test_undefined_entry_label_rejected():
    with pytest.raises(ProgramError):
        Program([Instruction(Op.HALT)], {}, [], entry="nope")


def test_undefined_branch_label_rejected():
    with pytest.raises(ProgramError):
        Program([Instruction(Op.JMP, label="missing")], {}, [])


def test_count_secure_branches():
    program = assemble("""
    main:
        sbeq a0, a1, main
        beq a0, a1, main
        sbne a0, a1, main
        halt
    """)
    assert program.count_secure_branches() == 2


def test_initial_memory_little_endian():
    program = assemble("""
        .data
    x: .quad 258
        .text
    main:
        halt
    """)
    image = program.initial_memory()
    addr = program.symbols["x"]
    assert image[addr] == 2       # 258 = 0x0102
    assert image[addr + 1] == 1


def test_listing_contains_labels_and_instructions():
    program = assemble("main:\n addi a0, zero, 1\n halt\n")
    listing = program.listing()
    assert "main:" in listing
    assert "addi" in listing
