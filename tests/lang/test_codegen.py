"""Code generation: compiled programs compute correct results."""

import pytest

from repro.arch.executor import Executor
from repro.arch.state import to_signed
from repro.lang.compiler import compile_source
from repro.lang.errors import CompileError


def run(source, mode="plain", pokes=None):
    compiled = compile_source(source, mode=mode)
    executor = Executor(compiled.program, sempe=(mode == "sempe"))
    for name, value in (pokes or {}).items():
        executor.state.memory.store(compiled.program.symbols[name], value)
    executor.run_to_completion()
    return compiled, executor


def global_value(compiled, executor, name):
    return to_signed(
        executor.state.memory.load(compiled.program.symbols[name]))


def test_arithmetic_and_globals():
    compiled, executor = run("""
    int result = 0;
    void main() { result = (2 + 3) * 4 - 6 / 2; }
    """)
    assert global_value(compiled, executor, "result") == 17


def test_operator_semantics_match_python():
    cases = {
        "5 % 3": 5 % 3,
        "7 & 3": 7 & 3,
        "5 | 2": 5 | 2,
        "5 ^ 3": 5 ^ 3,
        "1 << 6": 1 << 6,
        "64 >> 3": 64 >> 3,
        "3 < 5": 1, "5 < 3": 0,
        "3 <= 3": 1, "4 <= 3": 0,
        "5 > 3": 1, "3 > 5": 0,
        "3 >= 3": 1, "2 >= 3": 0,
        "4 == 4": 1, "4 == 5": 0,
        "4 != 5": 1, "4 != 4": 0,
        "2 && 3": 1, "0 && 3": 0,
        "0 || 0": 0, "0 || 9": 1,
    }
    exprs = "\n".join(
        f"r{i} = {expr};" for i, expr in enumerate(cases))
    decls = "\n".join(f"int r{i} = 0;" for i in range(len(cases)))
    compiled, executor = run(f"{decls}\nvoid main() {{ {exprs} }}")
    for index, (expr, expected) in enumerate(cases.items()):
        assert global_value(compiled, executor, f"r{index}") == expected, expr


def test_unary_operators():
    compiled, executor = run("""
    int a = 0; int b = 0; int c = 0;
    void main() { a = -5; b = !7; c = ~0; }
    """)
    assert global_value(compiled, executor, "a") == -5
    assert global_value(compiled, executor, "b") == 0
    assert global_value(compiled, executor, "c") == -1


def test_while_loop():
    compiled, executor = run("""
    int total = 0;
    void main() {
      int i = 0;
      while (i < 10) { total = total + i; i = i + 1; }
    }
    """)
    assert global_value(compiled, executor, "total") == 45


def test_for_loop_variants():
    compiled, executor = run("""
    int up = 0; int down = 0;
    void main() {
      for (int i = 0; i < 5; i = i + 1) { up = up + i; }
      int j = 0;
      for (j = 10; j > 0; j = j - 2) { down = down + 1; }
    }
    """)
    assert global_value(compiled, executor, "up") == 10
    assert global_value(compiled, executor, "down") == 5


def test_local_arrays():
    compiled, executor = run("""
    int result = 0;
    void main() {
      int a[8];
      for (int i = 0; i < 8; i = i + 1) { a[i] = i * i; }
      result = a[3] + a[7];
    }
    """)
    assert global_value(compiled, executor, "result") == 9 + 49


def test_global_arrays_with_init():
    compiled, executor = run("""
    int table[4] = {10, 20, 30, 40};
    int result = 0;
    void main() { result = table[1] + table[3]; }
    """)
    assert global_value(compiled, executor, "result") == 60


def test_function_calls_and_recursion():
    compiled, executor = run("""
    int result = 0;
    int fact(int n) {
      int r = 1;
      if (n > 1) { r = n * fact(n - 1); }
      return r;
    }
    void main() { result = fact(6); }
    """)
    assert global_value(compiled, executor, "result") == 720


def test_array_params_mutate_caller():
    compiled, executor = run("""
    int result = 0;
    void fill(int a[], int n) {
      for (int i = 0; i < n; i = i + 1) { a[i] = i + 1; }
    }
    void main() {
      int buf[4];
      fill(buf, 4);
      result = buf[0] + buf[1] + buf[2] + buf[3];
    }
    """)
    assert global_value(compiled, executor, "result") == 10


def test_many_arguments():
    compiled, executor = run("""
    int result = 0;
    int add6(int a, int b, int c, int d, int e, int f) {
      return a + b + c + d + e + f;
    }
    void main() { result = add6(1, 2, 3, 4, 5, 6); }
    """)
    assert global_value(compiled, executor, "result") == 21


def test_too_many_arguments_rejected():
    with pytest.raises(CompileError):
        compile_source("""
        int f(int a, int b, int c, int d, int e, int f, int g) { return a; }
        void main() { int x = f(1,2,3,4,5,6,7); }
        """)


def test_temps_survive_calls():
    """Caller-saved temporaries must be spilled around calls."""
    compiled, executor = run("""
    int result = 0;
    int id(int x) { return x; }
    void main() {
      result = id(1) + id(2) + id(3) + (4 * id(5));
    }
    """)
    assert global_value(compiled, executor, "result") == 26


def test_nested_call_expressions():
    compiled, executor = run("""
    int result = 0;
    int add(int a, int b) { return a + b; }
    void main() { result = add(add(1, 2), add(3, add(4, 5))); }
    """)
    assert global_value(compiled, executor, "result") == 15


def test_branch_free_logical_ops():
    """&& and || must compile without conditional branches (the
    compiler-reintroduced-branch hazard the paper warns about)."""
    compiled = compile_source("""
    secret int key = 1;
    int result = 0;
    void main() {
      int a = key && 1;
      int b = key || 0;
      result = a + b;
    }
    """, mode="plain")
    branches = sum(1 for inst in compiled.program.instructions
                   if inst.is_cond_branch)
    assert branches == 0


def test_deep_expression_within_pool():
    compiled, executor = run("""
    int result = 0;
    void main() {
      result = ((((1+2)*(3+4))+((5+6)*(7+8)))*(((1+1)*(2+2))+((3+3)*(4+4))));
    }
    """)
    assert global_value(compiled, executor, "result") == \
        ((((1+2)*(3+4))+((5+6)*(7+8)))*(((1+1)*(2+2))+((3+3)*(4+4))))


def test_sempe_mode_secure_if_end_to_end(simple_secret_source):
    for key, expected in ((0, -3), (1, 7), (9, 7)):
        compiled, executor = run(simple_secret_source, mode="sempe",
                                 pokes={"key": key})
        assert global_value(compiled, executor, "result") == expected


def test_cte_mode_end_to_end(simple_secret_source):
    for key, expected in ((0, -3), (1, 7)):
        compiled, executor = run(simple_secret_source, mode="cte",
                                 pokes={"key": key})
        assert global_value(compiled, executor, "result") == expected
