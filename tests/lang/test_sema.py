"""Semantic checks."""

import pytest

from repro.lang.errors import CompileError
from repro.lang.parser import parse
from repro.lang.sema import check


def check_source(source):
    return check(parse(source))


def test_valid_module_collects_symbols():
    info = check_source("""
    secret int key = 1;
    int buf[4];
    int f(int x) { return x; }
    void main() { int y = f(2); }
    """)
    assert "key" in info.secret_globals
    assert info.globals_["buf"] is True
    assert info.globals_["key"] is False
    assert info.funcs["f"].returns_value


def test_missing_main_rejected():
    with pytest.raises(CompileError, match="main"):
        check_source("int f() { return 1; }")


def test_main_with_params_rejected():
    with pytest.raises(CompileError):
        check_source("void main(int x) { }")


def test_undefined_variable_rejected():
    with pytest.raises(CompileError, match="undefined"):
        check_source("void main() { int x = y; }")


def test_duplicate_local_rejected():
    with pytest.raises(CompileError, match="duplicate"):
        check_source("void main() { int x = 1; int x = 2; }")


def test_shadowing_global_allowed():
    check_source("int g = 1; void main() { int g = 2; }")


def test_indexing_scalar_rejected():
    with pytest.raises(CompileError, match="scalar"):
        check_source("void main() { int x = 1; int y = x[0]; }")


def test_bare_array_as_value_rejected():
    with pytest.raises(CompileError, match="array"):
        check_source("void main() { int a[4]; int x = a + 1; }")


def test_whole_array_assignment_rejected():
    with pytest.raises(CompileError):
        check_source("void main() { int a[4]; a = 3; }")


def test_call_arity_checked():
    with pytest.raises(CompileError, match="expects"):
        check_source("""
        int f(int a, int b) { return a; }
        void main() { int x = f(1); }
        """)


def test_array_param_needs_array_argument():
    with pytest.raises(CompileError):
        check_source("""
        int f(int a[]) { return a[0]; }
        void main() { int x = 1; int y = f(x); }
        """)


def test_scalar_param_rejects_array_argument():
    with pytest.raises(CompileError):
        check_source("""
        int f(int a) { return a; }
        void main() { int b[4]; int y = f(b); }
        """)


def test_undefined_function_rejected():
    with pytest.raises(CompileError, match="undefined function"):
        check_source("void main() { int x = mystery(); }")


def test_void_function_returning_value_rejected():
    with pytest.raises(CompileError):
        check_source("void f() { return 1; } void main() { }")


def test_value_function_with_bare_return_rejected():
    with pytest.raises(CompileError):
        check_source("int f() { return; } void main() { }")


def test_array_passed_through_is_fine():
    check_source("""
    int sum2(int a[]) { return a[0] + a[1]; }
    int wrap(int b[]) { return sum2(b); }
    void main() { int buf[2]; int x = wrap(buf); }
    """)
