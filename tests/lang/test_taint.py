"""Secret-taint analysis and mode constraint enforcement."""

import pytest

from repro.lang import ast
from repro.lang.errors import TaintError
from repro.lang.parser import parse
from repro.lang.taint import analyze_taint


def secret_if_count(module, taint):
    count = 0
    for func in module.funcs:
        for stmt in ast.walk_stmts(func.body):
            if isinstance(stmt, ast.If) and taint.is_secret_if(stmt):
                count += 1
    return count


def test_explicit_flow_marks_branch_secret():
    module = parse("""
    secret int key = 1;
    void main() {
      int x = key + 1;
      if (x) { int y = 1; }
    }
    """)
    taint = analyze_taint(module, "sempe")
    assert taint.is_tainted("main", "x")
    assert secret_if_count(module, taint) == 1


def test_public_branch_not_secret():
    module = parse("""
    secret int key = 1;
    void main() {
      int x = 5;
      if (x) { int y = 1; }
    }
    """)
    taint = analyze_taint(module, "sempe")
    assert secret_if_count(module, taint) == 0


def test_interprocedural_taint_through_params():
    module = parse("""
    secret int key = 1;
    int identity(int v) { return v; }
    void main() {
      int x = identity(key);
      if (x) { int y = 1; }
    }
    """)
    taint = analyze_taint(module, "sempe")
    assert "identity" in taint.func_return_tainted
    assert secret_if_count(module, taint) == 1


def test_merged_scalar_tainted_in_sempe():
    """A scalar assigned under a secret branch outlives the region, so
    its merged value depends on the secret."""
    module = parse("""
    secret int key = 1;
    void main() {
      int acc = 0;
      if (key) { acc = 1; }
      if (acc) { int z = 1; }
    }
    """)
    taint = analyze_taint(module, "sempe")
    assert taint.is_tainted("main", "acc")
    assert secret_if_count(module, taint) == 2   # the acc branch too


def test_path_local_not_tainted_in_sempe():
    """Variables declared inside the path are exempt from implicit flow
    in SeMPE mode (both paths always execute)."""
    module = parse("""
    secret int key = 1;
    int sink = 0;
    void main() {
      if (key) {
        int local = 0;
        for (int i = 0; i < 4; i = i + 1) { local = local + i; }
        sink = sink + local;
      }
    }
    """)
    taint = analyze_taint(module, "sempe")
    assert not taint.is_tainted("main", "local")
    assert taint.is_tainted("", "sink")


def test_cte_taints_everything_assigned_under_context():
    module = parse("""
    secret int key = 1;
    void main() {
      if (key) {
        int local = 0;
        local = local + 1;
      }
    }
    """)
    taint = analyze_taint(module, "cte")
    assert taint.is_tainted("main", "local")


def test_secret_while_condition_rejected():
    source = """
    secret int key = 3;
    void main() {
      int n = key;
      while (n) { n = n - 1; }
    }
    """
    with pytest.raises(TaintError, match="while"):
        analyze_taint(parse(source), "sempe")


def test_secret_for_bound_rejected():
    source = """
    secret int key = 3;
    void main() {
      int acc = 0;
      for (int i = 0; i < key; i = i + 1) { acc = acc + 1; }
    }
    """
    with pytest.raises(TaintError, match="bound"):
        analyze_taint(parse(source), "sempe")


def test_plain_mode_skips_enforcement():
    source = """
    secret int key = 3;
    void main() {
      int n = key;
      while (n) { n = n - 1; }
    }
    """
    analyze_taint(parse(source), "plain")   # no exception


def test_return_inside_region_rejected():
    source = """
    secret int key = 1;
    int f() {
      if (key) { return 1; }
      return 0;
    }
    void main() { int x = f(); }
    """
    with pytest.raises(TaintError, match="return"):
        analyze_taint(parse(source), "sempe")


def test_cte_rejects_calls_in_region():
    source = """
    secret int key = 1;
    int f(int x) { return x + 1; }
    void main() {
      int acc = 0;
      if (key) { acc = f(acc); }
    }
    """
    with pytest.raises(TaintError, match="call"):
        analyze_taint(parse(source), "cte")


def test_sempe_allows_calls_in_region():
    source = """
    secret int key = 1;
    int f(int x) { return x + 1; }
    void main() {
      int acc = 0;
      if (key) { acc = f(acc); }
    }
    """
    analyze_taint(parse(source), "sempe")   # no exception


def test_sempe_rejects_global_writer_call_in_region():
    source = """
    secret int key = 1;
    int g = 0;
    void bump() { g = g + 1; }
    void main() {
      if (key) { bump(); }
    }
    """
    with pytest.raises(TaintError, match="globals"):
        analyze_taint(parse(source), "sempe")


def test_sempe_rejects_transitive_global_writer():
    source = """
    secret int key = 1;
    int g = 0;
    void inner() { g = g + 1; }
    void outer() { inner(); }
    void main() {
      if (key) { outer(); }
    }
    """
    with pytest.raises(TaintError, match="globals"):
        analyze_taint(parse(source), "sempe")


def test_sempe_rejects_outer_array_write_in_region():
    source = """
    secret int key = 1;
    void main() {
      int buf[4];
      if (key) { buf[0] = 1; }
    }
    """
    with pytest.raises(TaintError, match="array"):
        analyze_taint(parse(source), "sempe")


def test_sempe_allows_path_local_array_write():
    source = """
    secret int key = 1;
    int sink = 0;
    void main() {
      if (key) {
        int buf[4];
        buf[0] = 1;
        sink = sink + buf[0];
      }
    }
    """
    analyze_taint(parse(source), "sempe")


def test_sempe_rejects_outer_array_passed_into_region_call():
    source = """
    secret int key = 1;
    int f(int a[]) { a[0] = 1; return 0; }
    void main() {
      int buf[4];
      int x = 0;
      if (key) { x = f(buf); }
    }
    """
    with pytest.raises(TaintError):
        analyze_taint(parse(source), "sempe")


def test_sempe_allows_path_local_array_in_region_call():
    source = """
    secret int key = 1;
    int sink = 0;
    int f(int a[]) { a[0] = 1; return a[0]; }
    void main() {
      if (key) {
        int buf[4];
        sink = sink + f(buf);
      }
    }
    """
    analyze_taint(parse(source), "sempe")


def test_secret_index_write_taints_the_array():
    """Regression (IR cross-check): a write at a secret *index* encodes
    the secret in which cell changed, so the whole array is tainted —
    the analyzer used to discard the index expression's taint."""
    module = parse("""
    secret int idx = 0;
    int table[8];
    int result = 0;
    void main() {
      table[idx] = 7;
      result = table[0];
      if (result) { result = 1; }
    }
    """)
    taint = analyze_taint(module, "plain")
    assert taint.is_tainted("", "table")
    assert taint.is_tainted("", "result")
    assert secret_if_count(module, taint) == 1


def test_public_index_write_keeps_array_clean():
    module = parse("""
    secret int key = 0;
    int table[8];
    int result = 0;
    void main() {
      table[2] = 7;
      result = table[0] + key;
    }
    """)
    taint = analyze_taint(module, "plain")
    assert not taint.is_tainted("", "table")


def test_taint_through_call_return_chain():
    """Regression (IR cross-check): taint must survive a two-deep
    call-return chain, not just a single call."""
    module = parse("""
    secret int key = 0;
    int inner(int v) { return v + 1; }
    int outer(int v) { return inner(v) * 2; }
    void main() {
      int t = outer(key);
      if (t) { int y = 1; }
    }
    """)
    taint = analyze_taint(module, "plain")
    assert "inner" in taint.func_return_tainted
    assert "outer" in taint.func_return_tainted
    assert taint.is_tainted("main", "t")
    assert secret_if_count(module, taint) == 1


def test_secret_if_lines_match_source_positions():
    """The exported line set (what the IR differential checks against)
    names exactly the secret ifs' source lines."""
    source = """secret int key = 0;
int result = 0;
void main() {
  int x = 5;
  if (key) { result = 1; }
  if (x) { result = 2; }
}
"""
    module = parse(source)
    taint = analyze_taint(module, "plain")
    secret_line = source.splitlines().index(
        "  if (key) { result = 1; }") + 1
    assert taint.secret_if_lines == {secret_line}


def test_nested_secret_ifs_both_labelled():
    module = parse("""
    secret int a = 0;
    secret int b = 0;
    void main() {
      if (a) {
        int x = 1;
        if (b) { int y = 2; }
      }
    }
    """)
    taint = analyze_taint(module, "sempe")
    assert secret_if_count(module, taint) == 2
