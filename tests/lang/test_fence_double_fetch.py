"""Fence transform: double-fetch guards get the SecPrefix mark.

``transform_fence`` historically marked only secret-dependent
branches.  The transient threat model adds a second criterion: a
public guard whose body contains a double-fetch chain (a value loaded
from an array feeding another index) must be serialized too — that is
the branch the spectre gadget mistrains.  The criterion has to be
precise: it runs at compile time regardless of the speculation knob,
so marking anything in the pre-existing victims would change their
fence binaries and break every golden.
"""

from repro.lang import ast
from repro.lang.compiler import compile_source
from repro.lang.parser import parse
from repro.lang.transform_fence import _guards_double_fetch
from repro.workloads.registry import get_workload, iter_workloads


def _first_if(source):
    module = parse(source)
    for func in module.funcs:
        for stmt in ast.walk_stmts(func.body):
            if isinstance(stmt, ast.If):
                return stmt
    raise AssertionError("no If in source")


def test_directly_nested_index_is_a_double_fetch():
    assert _guards_double_fetch(_first_if("""
    int table[8];
    int probe[64];
    int out = 0;
    void main() {
      for (int t = 0; t < 4; t = t + 1) {
        if (t < 8) { out = out + probe[table[t]]; }
      }
    }
    """))


def test_chain_through_local_is_a_double_fetch():
    assert _guards_double_fetch(_first_if("""
    int table[8];
    int probe[64];
    int out = 0;
    void main() {
      for (int t = 0; t < 4; t = t + 1) {
        if (t < 8) {
          int val = table[t];
          out = out + probe[val * 8];
        }
      }
    }
    """))


def test_single_fetch_guard_is_not_marked():
    assert not _guards_double_fetch(_first_if("""
    int table[8];
    int out = 0;
    void main() {
      for (int t = 0; t < 4; t = t + 1) {
        if (t < 8) { out = out + table[t]; }
      }
    }
    """))


def test_plain_computation_guard_is_not_marked():
    assert not _guards_double_fetch(_first_if("""
    int out = 0;
    void main() {
      for (int t = 0; t < 4; t = t + 1) {
        if (t < 8) { out = out + t * 3; }
      }
    }
    """))


def test_spectre_fence_build_serializes_exactly_the_guard():
    """The gadget's bounds check is *public* — ``is_secret_if`` alone
    would never mark it; the double-fetch criterion must, and nothing
    else in the program qualifies."""
    spec = get_workload("spectre")
    compiled = spec.compile("fence", **spec.resolve())
    secure_branches = [inst for inst in compiled.program.instructions
                       if inst.is_secure_branch]
    assert len(secure_branches) == 1


def test_preexisting_fence_binaries_unchanged():
    """For every architectural victim the fence build must mark
    exactly the secret-dependent branches — i.e. the double-fetch
    criterion fires on none of them, keeping their binaries (and all
    fence goldens) byte-identical to the pre-speculation compiler."""
    for spec in iter_workloads():
        if spec.name == "spectre":
            continue
        source = spec.builder(**spec.resolve())
        module = parse(source)
        from repro.lang.taint import analyze_taint

        taint = analyze_taint(module, mode="fence")
        for func in module.funcs:
            for stmt in ast.walk_stmts(func.body):
                if isinstance(stmt, ast.If) \
                        and _guards_double_fetch(stmt):
                    assert taint.is_secret_if(stmt), (
                        spec.name, "double-fetch criterion fired on a "
                        "public branch of a pre-existing victim")
