"""The SeMPE and CTE transforms: structure of the produced AST."""

from repro.lang import ast
from repro.lang.parser import parse
from repro.lang.taint import analyze_taint
from repro.lang.transform_cte import transform_cte
from repro.lang.transform_sempe import transform_sempe

SOURCE = """
secret int key = 1;
int acc = 0;

void main() {
  int local = 5;
  if (key) {
    local = local + 7;
  } else {
    local = local - 3;
  }
  acc = local;
}
"""


def transformed(source, mode):
    module = parse(source)
    taint = analyze_taint(module, mode)
    if mode == "sempe":
        return transform_sempe(module, taint)
    return transform_cte(module, taint)


def find_all(module, node_type):
    found = []
    for func in module.funcs:
        for stmt in ast.walk_stmts(func.body):
            if isinstance(stmt, node_type):
                found.append(stmt)
    return found


def test_sempe_marks_if_secure():
    module = transformed(SOURCE, "sempe")
    ifs = find_all(module, ast.If)
    assert len(ifs) == 1
    assert ifs[0].secure


def test_sempe_creates_shadow_pairs():
    module = transformed(SOURCE, "sempe")
    decls = {d.name for d in find_all(module, ast.VarDeclStmt)}
    shadows = {name for name in decls if "__nt" in name or "__t" in name}
    assert len(shadows) == 2          # local__nt0 and local__t0
    assert any("__sc" in name for name in decls)   # condition temp


def test_sempe_merges_with_cmov():
    module = transformed(SOURCE, "sempe")
    cmov_assigns = [
        stmt for stmt in find_all(module, ast.Assign)
        if isinstance(stmt.value, ast.Cmov)
    ]
    assert len(cmov_assigns) == 1
    assert cmov_assigns[0].target.name == "local"


def test_sempe_paths_use_shadows():
    module = transformed(SOURCE, "sempe")
    secure_if = find_all(module, ast.If)[0]
    then_names = {
        node.name
        for stmt in ast.walk_stmts(secure_if.then)
        for expr in ast.stmt_exprs(stmt)
        for node in ast.walk_exprs(expr)
        if isinstance(node, ast.Var)
    }
    assert any("__nt" in name for name in then_names)
    assert not any("__t0" in name for name in then_names)


def test_sempe_nested_shadows_compose():
    source = """
    secret int a = 0;
    secret int b = 0;
    int sink = 0;
    void main() {
      if (a) {
        sink = sink + 1;
        if (b) { sink = sink + 10; }
      }
    }
    """
    module = transformed(source, "sempe")
    decls = {d.name for d in find_all(module, ast.VarDeclStmt)}
    # The inner region privatizes the outer NT shadow.
    assert any(name.count("__") >= 2 for name in decls)


def test_cte_removes_secret_branches():
    module = transformed(SOURCE, "cte")
    assert find_all(module, ast.If) == []     # fully straight-line


def test_cte_predicates_with_full_product():
    module = transformed(SOURCE, "cte")
    assigns = [s for s in find_all(module, ast.Assign)
               if isinstance(s.target, ast.Var) and s.target.name == "local"]
    assert len(assigns) == 2   # one per original path
    for assign in assigns:
        # Shape: b*(value) + (1-b)*local  -> a '+' of two '*' terms.
        assert isinstance(assign.value, ast.Binary)
        assert assign.value.op == "+"
        assert assign.value.left.op == "*"
        assert assign.value.right.op == "*"


def test_cte_keeps_public_ifs():
    source = """
    secret int key = 1;
    int acc = 0;
    void main() {
      int pub = 3;
      if (pub) { acc = 1; }
      if (key) { acc = 2; }
    }
    """
    module = transformed(source, "cte")
    remaining = find_all(module, ast.If)
    assert len(remaining) == 1    # the public one survives


def test_cte_nesting_depth_grows_products():
    source = """
    secret int a = 0;
    secret int b = 0;
    int acc = 0;
    void main() {
      if (a) {
        if (b) { acc = acc + 1; }
      }
    }
    """
    module = transformed(source, "cte")
    assigns = [s for s in find_all(module, ast.Assign)
               if isinstance(s.target, ast.Var) and s.target.name == "acc"]
    assert len(assigns) == 1
    multiplies = sum(
        1 for node in ast.walk_exprs(assigns[0].value)
        if isinstance(node, ast.Binary) and node.op == "*"
    )
    # depth-2 product on both sides: at least 4 multiplications.
    assert multiplies >= 4


def test_cte_for_scaffolding_untouched():
    source = """
    secret int key = 1;
    int acc = 0;
    void main() {
      if (key) {
        for (int i = 0; i < 4; i = i + 1) { acc = acc + i; }
      }
    }
    """
    module = transformed(source, "cte")
    loops = find_all(module, ast.For)
    assert len(loops) == 1
    # The step stays the raw expression (no predication product).
    assert isinstance(loops[0].step, ast.Binary)
    assert loops[0].step.op == "+"


def test_transforms_do_not_mutate_input():
    module = parse(SOURCE)
    taint = analyze_taint(module, "sempe")
    before = len(list(ast.walk_stmts(module.func("main").body)))
    transform_sempe(module, taint)
    after = len(list(ast.walk_stmts(module.func("main").body)))
    assert before == after
