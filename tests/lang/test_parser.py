"""mini-C parser."""

import pytest

from repro.lang import ast
from repro.lang.errors import CompileError
from repro.lang.parser import parse


def test_global_declarations():
    module = parse("""
    secret int key = 5;
    int table[4] = {1, 2, 3, 4};
    int scalar;
    void main() { }
    """)
    assert len(module.globals) == 3
    key, table, scalar = module.globals
    assert key.is_secret and key.init_values == [5]
    assert table.size == 4 and table.init_values == [1, 2, 3, 4]
    assert scalar.size is None and not scalar.is_secret


def test_negative_global_initializer():
    module = parse("int x = -7; void main() { }")
    assert module.globals[0].init_values == [-7]


def test_function_params():
    module = parse("""
    int f(int a, int b[]) { return a; }
    void main() { }
    """)
    func = module.func("f")
    assert func.params[0].is_array is False
    assert func.params[1].is_array is True
    assert func.returns_value


def test_if_else_chain():
    module = parse("""
    void main() {
      int x = 1;
      if (x) { x = 2; } else { x = 3; }
      if (x) x = 4;
    }
    """)
    stmts = module.func("main").body.stmts
    assert isinstance(stmts[1], ast.If)
    assert stmts[1].els is not None
    assert isinstance(stmts[2], ast.If)
    assert stmts[2].els is None


def test_for_loop_normalized():
    module = parse("""
    void main() {
      for (int i = 0; i < 10; i = i + 2) { }
    }
    """)
    loop = module.func("main").body.stmts[0]
    assert isinstance(loop, ast.For)
    assert loop.var == "i" and loop.declares
    assert loop.bound_op == "<"


def test_for_loop_counter_mismatch_rejected():
    with pytest.raises(CompileError):
        parse("void main() { for (int i = 0; j < 10; i = i + 1) { } }")
    with pytest.raises(CompileError):
        parse("void main() { for (int i = 0; i < 10; j = j + 1) { } }")


def test_precedence():
    module = parse("void main() { int x = 1 + 2 * 3; }")
    init = module.func("main").body.stmts[0].init
    assert init.op == "+"
    assert init.right.op == "*"


def test_comparison_binds_looser_than_arith():
    module = parse("void main() { int x = 1 + 2 < 4; }")
    init = module.func("main").body.stmts[0].init
    assert init.op == "<"


def test_logical_operators_lowest():
    module = parse("void main() { int x = 1 < 2 && 3 < 4; }")
    init = module.func("main").body.stmts[0].init
    assert init.op == "&&"


def test_unary_operators():
    module = parse("void main() { int x = -1; int y = !x; int z = ~x; }")
    stmts = module.func("main").body.stmts
    assert stmts[0].init.op == "-"
    assert stmts[1].init.op == "!"
    assert stmts[2].init.op == "~"


def test_array_indexing_and_calls():
    module = parse("""
    int get(int a[], int i) { return a[i + 1]; }
    void main() { int buf[8]; buf[0] = get(buf, 2); }
    """)
    assign = module.func("main").body.stmts[1]
    assert isinstance(assign.target, ast.Index)
    assert isinstance(assign.value, ast.Call)


def test_while_and_return():
    module = parse("""
    int f() {
      int x = 0;
      while (x < 5) { x = x + 1; }
      return x;
    }
    void main() { }
    """)
    stmts = module.func("f").body.stmts
    assert isinstance(stmts[1], ast.While)
    assert isinstance(stmts[2], ast.Return)


def test_assignment_to_expression_rejected():
    with pytest.raises(CompileError):
        parse("void main() { 1 + 2 = 3; }")


def test_unterminated_block_rejected():
    with pytest.raises(CompileError):
        parse("void main() { int x = 1; ")


def test_walk_helpers_cover_nested():
    module = parse("""
    void main() {
      if (1) { while (2) { int x = 3; } }
    }
    """)
    all_stmts = list(ast.walk_stmts(module.func("main").body))
    assert any(isinstance(s, ast.While) for s in all_stmts)
    assert any(isinstance(s, ast.VarDeclStmt) for s in all_stmts)
