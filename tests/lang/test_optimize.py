"""The §IV-E nesting-reduction optimization and the recursion check."""

import pytest

from repro.arch.executor import Executor
from repro.arch.state import to_signed
from repro.lang import ast
from repro.lang.compiler import compile_source
from repro.lang.errors import TaintError
from repro.lang.optimize import collapse_nested_ifs, count_collapsible
from repro.lang.parser import parse

NESTED = """
secret int a = 1;
secret int b = 1;
int result = 0;

void main() {
  int acc = 0;
  if (a) {
    if (b) {
      acc = acc + 5;
    }
  }
  result = acc;
}
"""


def test_count_collapsible():
    assert count_collapsible(parse(NESTED)) == 1


def test_collapse_merges_conditions():
    module = collapse_nested_ifs(parse(NESTED))
    ifs = [stmt for stmt in ast.walk_stmts(module.func("main").body)
           if isinstance(stmt, ast.If)]
    assert len(ifs) == 1
    assert isinstance(ifs[0].cond, ast.Binary)
    assert ifs[0].cond.op == "&&"


def test_collapse_reduces_sjmp_count():
    without = compile_source(NESTED, mode="sempe")
    with_opt = compile_source(NESTED, mode="sempe", collapse_ifs=True)
    assert without.program.count_secure_branches() == 2
    assert with_opt.program.count_secure_branches() == 1


def test_collapse_preserves_semantics():
    for a in (0, 1):
        for b in (0, 1):
            results = []
            for collapse in (False, True):
                compiled = compile_source(NESTED, mode="sempe",
                                          collapse_ifs=collapse)
                executor = Executor(compiled.program, sempe=True)
                executor.state.memory.store(compiled.program.symbols["a"], a)
                executor.state.memory.store(compiled.program.symbols["b"], b)
                executor.run_to_completion()
                results.append(to_signed(executor.state.memory.load(
                    compiled.program.symbols["result"])))
            assert results[0] == results[1] == (5 if a and b else 0)


def test_collapse_reduces_drains():
    without = compile_source(NESTED, mode="sempe")
    with_opt = compile_source(NESTED, mode="sempe", collapse_ifs=True)

    def drains(compiled):
        executor = Executor(compiled.program, sempe=True)
        executor.run_to_completion()
        return executor.result.drains

    assert drains(with_opt) < drains(without)


def test_collapse_skips_else_branches():
    source = """
    secret int a = 1;
    int result = 0;
    void main() {
      if (a) {
        if (a) { result = 1; } else { result = 2; }
      }
    }
    """
    assert count_collapsible(parse(source)) == 0


def test_collapse_skips_multi_statement_bodies():
    source = """
    secret int a = 1;
    int result = 0;
    void main() {
      if (a) {
        result = 1;
        if (a) { result = 2; }
      }
    }
    """
    assert count_collapsible(parse(source)) == 0


def test_collapse_chains_three_deep():
    source = """
    secret int a = 1;
    int result = 0;
    void main() {
      if (a) { if (a) { if (a) { result = 9; } } }
    }
    """
    compiled = compile_source(source, mode="sempe", collapse_ifs=True)
    assert compiled.program.count_secure_branches() == 1


def test_recursive_secure_branch_rejected():
    source = """
    secret int key = 1;
    int walk(int n) {
      int out = 0;
      if (key) { out = 1; }
      if (n > 0) { out = out + walk(n - 1); }
      return out;
    }
    void main() { int x = walk(3); }
    """
    with pytest.raises(TaintError, match="recursive"):
        compile_source(source, mode="sempe")


def test_mutually_recursive_secure_branch_rejected():
    source = """
    secret int key = 1;
    int ping(int n);
    """
    source = """
    secret int key = 1;
    int pong(int n) {
      int out = 0;
      if (n > 0) { out = ping(n - 1); }
      return out;
    }
    int ping(int n) {
      int out = 0;
      if (key) { out = 1; }
      if (n > 0) { out = out + pong(n - 1); }
      return out;
    }
    void main() { int x = ping(3); }
    """
    with pytest.raises(TaintError, match="recursive"):
        compile_source(source, mode="sempe")


def test_recursion_without_secret_branch_allowed():
    source = """
    secret int key = 1;
    int sink = 0;
    int fact(int n) {
      int r = 1;
      if (n > 1) { r = n * fact(n - 1); }
      return r;
    }
    void main() {
      if (key) {
        int v = fact(5);
        sink = sink + v;
      }
    }
    """
    compile_source(source, mode="sempe")   # no exception
