"""mini-C tokenizer."""

import pytest

from repro.lang.errors import CompileError
from repro.lang.lexer import tokenize


def kinds(source):
    return [token.kind for token in tokenize(source)]


def texts(source):
    return [token.text for token in tokenize(source)[:-1]]


def test_keywords_vs_names():
    tokens = tokenize("int x if secret loop")
    assert tokens[0].kind == "keyword"
    assert tokens[1].kind == "name"
    assert tokens[2].kind == "keyword"
    assert tokens[3].kind == "keyword"
    assert tokens[4].kind == "name"   # 'loop' is not a keyword


def test_numbers_decimal_and_hex():
    tokens = tokenize("42 0x2A")
    assert tokens[0].text == "42"
    assert tokens[1].text == "0x2A"


def test_two_char_operators_not_split():
    assert texts("a << b >= c == d && e") == \
        ["a", "<<", "b", ">=", "c", "==", "d", "&&", "e"]


def test_line_comments_stripped():
    tokens = tokenize("a // comment\nb")
    assert [t.text for t in tokens[:-1]] == ["a", "b"]


def test_block_comments_stripped():
    tokens = tokenize("a /* multi\nline */ b")
    assert [t.text for t in tokens[:-1]] == ["a", "b"]


def test_line_numbers_tracked():
    tokens = tokenize("a\nb\n\nc")
    assert tokens[0].line == 1
    assert tokens[1].line == 2
    assert tokens[2].line == 4


def test_eof_token_appended():
    assert tokenize("")[-1].kind == "eof"


def test_bad_character_rejected():
    with pytest.raises(CompileError):
        tokenize("a $ b")
