"""Ablation: prefetchers and the dual-path locality effect.

The paper observes that executing both paths can *help* the caches:
one path warms lines for the other (and ShadowMemory copies sit close
together).  This bench runs djpeg with prefetchers on and off, on both
machines, and reports the DL1 miss-rate deltas.
"""

from repro.core import simulate
from repro.harness.report import format_table
from repro.uarch.config import MachineConfig
from repro.workloads.djpeg import DjpegSpec, compile_djpeg


def run_matrix():
    spec = DjpegSpec("gif", 512)
    results = {}
    for sempe in (False, True):
        program = compile_djpeg(spec, "sempe" if sempe else "plain").program
        for prefetch in (False, True):
            config = MachineConfig()
            config.hierarchy.enable_l1_prefetcher = prefetch
            config.hierarchy.enable_l2_prefetcher = prefetch
            report = simulate(program, defense="sempe" if sempe else "plain",
                              config=config)
            results[(sempe, prefetch)] = report
    return results


def test_ablation_prefetchers(benchmark):
    results = benchmark.pedantic(run_matrix, rounds=1, iterations=1)
    rows = []
    for (sempe, prefetch), report in results.items():
        rows.append([
            "SeMPE" if sempe else "baseline",
            "on" if prefetch else "off",
            report.cycles,
            f"{report.miss_rates['DL1'] * 100:.2f}%",
            f"{report.miss_rates['L2'] * 100:.2f}%",
        ])
    print()
    print(format_table(
        ["machine", "prefetch", "cycles", "DL1 miss", "L2 miss"], rows,
        title="Prefetcher ablation (djpeg gif-512px)"))
    # Prefetching must not hurt cycles on either machine.
    assert results[(False, True)].cycles <= results[(False, False)].cycles
    assert results[(True, True)].cycles <= results[(True, False)].cycles
