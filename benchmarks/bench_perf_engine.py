"""Engine performance benchmark: fast vs reference, instructions/second.

Runs the microbenchmark sweep (all four workloads x {sempe, plain}) on
both engines, measures end-to-end ``simulate()`` throughput, verifies
the two engines agree bit-for-bit on cycles and final registers, and
appends one entry to the ``BENCH_perf.json`` trajectory artifact at the
repo root so speedups are tracked across commits.

Run directly::

    REPRO_BENCH_SCALE=quick python -m pytest benchmarks/bench_perf_engine.py -q -s

or via ``make bench-quick``.
"""

from __future__ import annotations

import json
import os
import time

from repro.core.engine import simulate
from repro.workloads.microbench import (
    MicrobenchSpec,
    WORKLOADS,
    compile_microbench,
)

ARTIFACT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        os.pardir, "BENCH_perf.json")

# The speedup the fast engine must beat; the recorded artifact carries
# the actual measurement (>= 3x on an idle machine).
MIN_SPEEDUP = 2.0


def _sweep_programs(scale):
    w = scale["w_sweep"][1] if len(scale["w_sweep"]) > 1 else scale["w_sweep"][0]
    programs = []
    for workload in scale["workloads"]:
        for mode in ("sempe", "plain"):
            spec = MicrobenchSpec(workload, w=w, iters=2)
            compiled = compile_microbench(spec, mode)
            programs.append((spec.name, compiled.program, mode))
    return programs


def _time_engine(programs, engine):
    instructions = 0
    reports = {}
    started = time.perf_counter()
    for name, program, defense in programs:
        report = simulate(program, defense=defense, engine=engine)
        instructions += report.instructions
        reports[(name, defense)] = report
    elapsed = time.perf_counter() - started
    return instructions / elapsed, elapsed, reports


def _defense_overheads(scale):
    """Cycle overhead of every registered defense vs the unprotected
    baseline on one representative microbenchmark (fast engine)."""
    from repro.defenses import iter_defenses
    from repro.workloads.microbench import compile_microbench as _compile

    w = scale["w_sweep"][0]
    spec = MicrobenchSpec(scale["workloads"][0], w=w, iters=2)
    base = simulate(_compile(spec, "plain").program, defense="plain",
                    engine="fast").cycles
    overheads = {}
    for defense in iter_defenses():
        program = _compile(spec, defense.compile_mode).program
        cycles = simulate(program, defense=defense.name,
                          engine="fast").cycles
        overheads[defense.name] = round(cycles / base, 3)
    return overheads


def _append_trajectory(entry):
    trajectory = []
    if os.path.exists(ARTIFACT):
        try:
            with open(ARTIFACT, "r", encoding="utf-8") as handle:
                trajectory = json.load(handle)
        except (json.JSONDecodeError, OSError):
            trajectory = []
    trajectory.append(entry)
    with open(ARTIFACT, "w", encoding="utf-8") as handle:
        json.dump(trajectory, handle, indent=2)
        handle.write("\n")


def test_bench_perf_engine(scale):
    programs = _sweep_programs(scale)

    # Warm both code paths (predecode caches, imports) outside the clock.
    simulate(programs[0][1], defense=programs[0][2], engine="fast")
    simulate(programs[0][1], defense=programs[0][2], engine="reference")

    reference_ips, reference_s, reference_reports = _time_engine(
        programs, "reference")
    fast_ips, fast_s, fast_reports = _time_engine(programs, "fast")
    speedup = fast_ips / reference_ips

    # The speedup claim only counts because the engines agree exactly.
    for key, reference in reference_reports.items():
        fast = fast_reports[key]
        assert reference.cycles == fast.cycles, key
        assert reference.final_regs == fast.final_regs, key
        assert reference.miss_rates == fast.miss_rates, key

    entry = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "scale": os.environ.get("REPRO_BENCH_SCALE", "quick"),
        "workloads": list(scale["workloads"]),
        "total_instructions": sum(
            report.instructions for report in reference_reports.values()),
        "reference_ips": round(reference_ips),
        "fast_ips": round(fast_ips),
        "reference_seconds": round(reference_s, 3),
        "fast_seconds": round(fast_s, 3),
        "speedup": round(speedup, 2),
        # Per-defense execution-time overhead (x vs plain) on the first
        # workload, so the trajectory tracks the cost of every scheme.
        "defense_overheads": _defense_overheads(scale),
    }
    _append_trajectory(entry)

    print(f"\nreference: {reference_ips:,.0f} inst/s   "
          f"fast: {fast_ips:,.0f} inst/s   speedup: {speedup:.2f}x")
    assert speedup >= MIN_SPEEDUP, (
        f"fast engine only {speedup:.2f}x faster (floor {MIN_SPEEDUP}x); "
        f"see {ARTIFACT}"
    )
