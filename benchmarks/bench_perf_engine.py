"""Engine performance benchmark: reference vs fast vs batch, inst/second.

Runs the microbenchmark sweep (all four workloads x {sempe, plain}) on
all three engines, measures end-to-end ``simulate()`` throughput,
verifies the engines agree bit-for-bit on cycles and final registers,
times a 64-trial functional campaign (one :class:`BatchExecutor` vs 64
serial :class:`FastExecutor` runs over per-trial secrets — the attack
profiling shape), and appends one entry to the ``BENCH_perf.json``
trajectory artifact at the repo root so throughput is tracked across
commits.

Every entry carries the **same** schema (:data:`SCHEMA_KEYS`) — all
engine rows plus python/CPU provenance — so downstream tooling
(``bench_gate.py``, plots) never has to special-case old shapes.

Run directly::

    REPRO_BENCH_SCALE=quick python -m pytest benchmarks/bench_perf_engine.py -q -s

or via ``make bench-perf``.
"""

from __future__ import annotations

import json
import os
import platform
import time

from repro.arch.fast_executor import FastExecutor
from repro.core.engine import simulate
from repro.security.observer import poke_secrets
from repro.workloads.microbench import (
    MicrobenchSpec,
    compile_microbench,
)

ARTIFACT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        os.pardir, "BENCH_perf.json")

# The end-to-end speedup the fast engine must beat; the recorded
# artifact carries the actual measurement (>= 3x on an idle machine).
MIN_SPEEDUP = 2.0

# The aggregate functional speedup the batched engine must beat on a
# 64-trial campaign (the PR acceptance criterion; ~18x measured).
MIN_CAMPAIGN_SPEEDUP = 10.0

# The aggregate *with-timing* speedup the batched pipeline (lockstep
# lane sharing + digest-keyed memoization) must beat on the same
# campaign (this PR's acceptance criterion; the SeMPE campaign
# collapses to a single pipeline pass, so the measured value is far
# higher).
MIN_CAMPAIGN_CYCLES_SPEEDUP = 5.0

CAMPAIGN_TRIALS = 64
CAMPAIGN_WORKLOAD = "memcmp"

# The fixed trajectory-entry schema.  Every run emits exactly these
# keys; ``validate_entry`` is the single checker shared with the CI
# bench-smoke job (via ``bench_gate.py --check-schema``).
SCHEMA_KEYS = (
    "timestamp",
    "scale",
    "python",
    "cpu",
    "workloads",
    "total_instructions",
    "reference_ips",
    "fast_ips",
    "batch_ips",
    "reference_seconds",
    "fast_seconds",
    "batch_seconds",
    "speedup",
    "batch_speedup",
    "pipeline_ips",
    "pipeline_spec_ips",
    "fast_functional_ips",
    "campaign_trials",
    "campaign_serial_ips",
    "campaign_ips",
    "campaign_speedup",
    "campaign_cycles_serial_ips",
    "campaign_cycles_ips",
    "campaign_cycles_speedup",
    "pipeline_batch_ips",
    "defense_overheads",
)


def validate_entry(entry: dict) -> list[str]:
    """Return a list of schema violations for one trajectory entry
    (empty when the entry conforms)."""
    problems = []
    missing = [key for key in SCHEMA_KEYS if key not in entry]
    extra = [key for key in entry if key not in SCHEMA_KEYS]
    if missing:
        problems.append(f"missing keys: {missing}")
    if extra:
        problems.append(f"unexpected keys: {extra}")
    for key in ("reference_ips", "fast_ips", "batch_ips",
                "pipeline_ips", "pipeline_spec_ips",
                "fast_functional_ips", "campaign_serial_ips",
                "campaign_ips", "campaign_cycles_serial_ips",
                "campaign_cycles_ips", "pipeline_batch_ips"):
        value = entry.get(key)
        if key in entry and (not isinstance(value, (int, float))
                             or value <= 0):
            problems.append(f"{key} must be a positive number, got {value!r}")
    if "defense_overheads" in entry and \
            not isinstance(entry["defense_overheads"], dict):
        problems.append("defense_overheads must be a mapping")
    if "python" in entry and not isinstance(entry["python"], str):
        problems.append("python must be a version string")
    return problems


def _cpu_model() -> str:
    """Best-effort CPU identification without third-party deps."""
    try:
        with open("/proc/cpuinfo", "r", encoding="utf-8") as handle:
            for line in handle:
                if line.lower().startswith("model name"):
                    return line.split(":", 1)[1].strip()
    except OSError:
        pass
    return platform.processor() or platform.machine() or "unknown"


def _sweep_programs(scale):
    w = scale["w_sweep"][1] if len(scale["w_sweep"]) > 1 else scale["w_sweep"][0]
    programs = []
    for workload in scale["workloads"]:
        for mode in ("sempe", "plain"):
            spec = MicrobenchSpec(workload, w=w, iters=2)
            compiled = compile_microbench(spec, mode)
            programs.append((spec.name, compiled.program, mode))
    return programs


def _time_engine(programs, engine):
    instructions = 0
    reports = {}
    started = time.perf_counter()
    for name, program, defense in programs:
        report = simulate(program, defense=defense, engine=engine)
        instructions += report.instructions
        reports[(name, defense)] = report
    elapsed = time.perf_counter() - started
    return instructions / elapsed, elapsed, reports


def _time_fast_functional(programs):
    """Functional-only throughput of the serial fast engine (chunks
    drained, no timing pipeline) — the hot-loop recovery record."""
    instructions = 0
    started = time.perf_counter()
    for _name, program, defense in programs:
        executor = FastExecutor(program, sempe=(defense == "sempe"))
        for _chunk in executor.run_chunks(64):
            pass
        instructions += executor.result.instructions
    return instructions / (time.perf_counter() - started)


def _time_speculation(programs, enabled):
    """End-to-end pipeline throughput (fast engine) with the
    transient-execution window off vs on.  The two rows track the cost
    of the speculation machinery: the ``enabled=False`` row guards the
    default path (the window must stay ~free when off), the
    ``enabled=True`` row guards the wrong-path replay itself."""
    from repro.uarch.config import MachineConfig

    config = MachineConfig()
    config.speculation.enabled = enabled
    instructions = 0
    started = time.perf_counter()
    for _name, program, defense in programs:
        report = simulate(program, defense=defense, engine="fast",
                          config=config)
        instructions += report.instructions
    return instructions / (time.perf_counter() - started)


def _campaign_secrets(spec, trials):
    """Deterministic per-trial secret sets shaped like the workload's
    canonical secrets (byte tuples for memcmp)."""
    sample = spec.secret_values({})[0]
    width = len(sample)
    secrets = []
    for trial in range(trials):
        secrets.append(tuple((trial * 37 + index * 11 + 3) % 256
                             for index in range(width)))
    return secrets


def _time_campaign(trials=CAMPAIGN_TRIALS):
    """Aggregate functional throughput of a *trials*-lane campaign:
    one batched execution vs the same trials run serially.

    Matches the attack-profiling shape (`collect_observations_batch`):
    one predecoded program, per-trial secrets, full chunk streams
    materialised per lane.  The timing pipeline is excluded on both
    sides — it is per-lane serial either way (see README).
    """
    from repro.arch.batch import BatchExecutor
    from repro.workloads.registry import get_workload

    spec = get_workload(CAMPAIGN_WORKLOAD)
    program = spec.compile("sempe").program
    secrets = _campaign_secrets(spec, trials)

    started = time.perf_counter()
    serial_instructions = 0
    serial_chunks = 0
    for secret in secrets:
        executor = FastExecutor(program, sempe=True)
        poke_secrets(executor.state.memory, program.symbols,
                     {spec.secret: secret})
        for chunk in executor.run_chunks(64):
            serial_chunks += chunk.n
        serial_instructions += executor.result.instructions
    serial_seconds = time.perf_counter() - started
    serial_ips = serial_instructions / serial_seconds

    started = time.perf_counter()
    executor = BatchExecutor(program, sempe=True, n_lanes=trials)
    for lane, secret in enumerate(secrets):
        poke_secrets(executor.memory.lane_view(lane), program.symbols,
                     {spec.secret: secret})
    executor.run(line_bytes=64)
    batch_instructions = 0
    batch_chunks = 0
    for lane in range(trials):
        for chunk in executor.lane_chunks(lane):
            batch_chunks += chunk.n
        batch_instructions += executor.lane_result(lane).instructions
    batch_seconds = time.perf_counter() - started
    batch_ips = batch_instructions / batch_seconds

    assert batch_instructions == serial_instructions, \
        "campaign engines executed different instruction counts"
    assert batch_chunks == serial_chunks, \
        "campaign engines emitted different trace lengths"
    return serial_ips, batch_ips


def _time_campaign_cycles(trials=CAMPAIGN_TRIALS):
    """Aggregate throughput of a *trials*-lane campaign **with timing**:
    per-lane serial pipelines vs the batched timing path
    (:func:`repro.uarch.batch_pipeline.lane_outcomes` — lockstep lane
    sharing + digest-keyed memoization, measured cold).

    Returns ``(serial_ips, batched_ips, pipeline_batch_ips)`` where the
    first two are end-to-end (functional + timing) and the last is the
    timing-model side alone — the batched counterpart of the serial
    ``pipeline_ips`` row.  Exactness is asserted per lane, so the
    speedup claim only counts because the stats agree bit-for-bit.
    """
    from repro.arch.batch import BatchExecutor
    from repro.defenses import get_defense
    from repro.uarch import batch_pipeline
    from repro.uarch.config import MachineConfig
    from repro.uarch.pipeline import OutOfOrderPipeline
    from repro.workloads.registry import get_workload

    spec = get_workload(CAMPAIGN_WORKLOAD)
    program = spec.compile("sempe").program
    secrets = _campaign_secrets(spec, trials)
    defense = get_defense("sempe")
    config = defense.apply_config(MachineConfig())
    line_bytes = config.hierarchy.il1.line_bytes

    started = time.perf_counter()
    serial_stats = []
    serial_instructions = 0
    for secret in secrets:
        executor = FastExecutor(program, sempe=True)
        poke_secrets(executor.state.memory, program.symbols,
                     {spec.secret: secret})
        pipeline = OutOfOrderPipeline(config, sempe=True)
        serial_stats.append(
            pipeline.run_chunks(executor.run_chunks(line_bytes=line_bytes)))
        serial_instructions += executor.result.instructions
    serial_seconds = time.perf_counter() - started
    serial_ips = serial_instructions / serial_seconds

    # Best of three cold runs: the batched path finishes in a fraction
    # of a second, so a single sample would sit inside scheduler jitter.
    batch_seconds = timing_seconds = float("inf")
    for _attempt in range(3):
        batch_pipeline.clear_memo()   # measure the batched path cold
        started = time.perf_counter()
        executor = BatchExecutor(program, sempe=True, n_lanes=trials)
        for lane, secret in enumerate(secrets):
            poke_secrets(executor.memory.lane_view(lane), program.symbols,
                         {spec.secret: secret})
        executor.run(line_bytes=line_bytes)
        timing_started = time.perf_counter()
        outcomes = batch_pipeline.lane_outcomes(
            executor, config, sempe=True,
            defense_fingerprint=defense.fingerprint())
        finished = time.perf_counter()
        timing_seconds = min(timing_seconds, finished - timing_started)
        batch_seconds = min(batch_seconds, finished - started)
    batch_instructions = sum(executor.lane_result(lane).instructions
                             for lane in range(trials))

    assert batch_instructions == serial_instructions, \
        "campaign engines executed different instruction counts"
    for lane, stats in enumerate(serial_stats):
        assert outcomes[lane].stats == stats, \
            f"batched pipeline diverged from serial on lane {lane}"
    return (serial_ips, batch_instructions / batch_seconds,
            batch_instructions / timing_seconds)


def _defense_overheads(scale):
    """Cycle overhead of every registered defense vs the unprotected
    baseline on one representative microbenchmark (fast engine)."""
    from repro.defenses import iter_defenses
    from repro.workloads.microbench import compile_microbench as _compile

    w = scale["w_sweep"][0]
    spec = MicrobenchSpec(scale["workloads"][0], w=w, iters=2)
    base = simulate(_compile(spec, "plain").program, defense="plain",
                    engine="fast").cycles
    overheads = {}
    for defense in iter_defenses():
        program = _compile(spec, defense.compile_mode).program
        cycles = simulate(program, defense=defense.name,
                          engine="fast").cycles
        overheads[defense.name] = round(cycles / base, 3)
    return overheads


def _append_trajectory(entry):
    trajectory = []
    if os.path.exists(ARTIFACT):
        try:
            with open(ARTIFACT, "r", encoding="utf-8") as handle:
                trajectory = json.load(handle)
        except (json.JSONDecodeError, OSError):
            trajectory = []
    trajectory.append(entry)
    with open(ARTIFACT, "w", encoding="utf-8") as handle:
        json.dump(trajectory, handle, indent=2)
        handle.write("\n")


def measure(scale) -> dict:
    """Run every measurement and return one schema-complete entry.

    Shared with ``bench_gate.py`` so the CI perf gate and the
    trajectory artifact can never drift apart on methodology.
    """
    programs = _sweep_programs(scale)

    # Warm all code paths (predecode caches, imports) outside the clock.
    for engine in ("fast", "reference", "batch"):
        simulate(programs[0][1], defense=programs[0][2], engine=engine)

    reference_ips, reference_s, reference_reports = _time_engine(
        programs, "reference")
    fast_ips, fast_s, fast_reports = _time_engine(programs, "fast")
    batch_ips, batch_s, batch_reports = _time_engine(programs, "batch")
    speedup = fast_ips / reference_ips
    batch_speedup = batch_ips / reference_ips

    # The speedup claims only count because the engines agree exactly.
    for key, reference in reference_reports.items():
        for contender in (fast_reports[key], batch_reports[key]):
            assert reference.cycles == contender.cycles, key
            assert reference.final_regs == contender.final_regs, key
            assert reference.miss_rates == contender.miss_rates, key

    pipeline_ips = _time_speculation(programs, enabled=False)
    pipeline_spec_ips = _time_speculation(programs, enabled=True)
    fast_functional_ips = _time_fast_functional(programs)
    campaign_serial_ips, campaign_ips = _time_campaign()
    campaign_cycles_serial_ips, campaign_cycles_ips, pipeline_batch_ips = \
        _time_campaign_cycles()

    return {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "scale": os.environ.get("REPRO_BENCH_SCALE", "quick"),
        "python": platform.python_version(),
        "cpu": _cpu_model(),
        "workloads": list(scale["workloads"]),
        "total_instructions": sum(
            report.instructions for report in reference_reports.values()),
        "reference_ips": round(reference_ips),
        "fast_ips": round(fast_ips),
        "batch_ips": round(batch_ips),
        "reference_seconds": round(reference_s, 3),
        "fast_seconds": round(fast_s, 3),
        "batch_seconds": round(batch_s, 3),
        "speedup": round(speedup, 2),
        "batch_speedup": round(batch_speedup, 2),
        # Speculation-window cost rows: same sweep through the full
        # pipeline with the window off (default path; must stay ~free)
        # and on (wrong-path replay cost).
        "pipeline_ips": round(pipeline_ips),
        "pipeline_spec_ips": round(pipeline_spec_ips),
        # Satellite record: serial fast engine with the pipeline
        # excluded — where the hot-loop hoists actually show up.
        "fast_functional_ips": round(fast_functional_ips),
        "campaign_trials": CAMPAIGN_TRIALS,
        "campaign_serial_ips": round(campaign_serial_ips),
        "campaign_ips": round(campaign_ips),
        "campaign_speedup": round(campaign_ips / campaign_serial_ips, 2),
        # The with-timing campaign rows: end-to-end (functional +
        # pipeline) serial vs batched, plus the timing-model side alone
        # (the batched counterpart of pipeline_ips).
        "campaign_cycles_serial_ips": round(campaign_cycles_serial_ips),
        "campaign_cycles_ips": round(campaign_cycles_ips),
        "campaign_cycles_speedup": round(
            campaign_cycles_ips / campaign_cycles_serial_ips, 2),
        "pipeline_batch_ips": round(pipeline_batch_ips),
        # Per-defense execution-time overhead (x vs plain) on the first
        # workload, so the trajectory tracks the cost of every scheme.
        "defense_overheads": _defense_overheads(scale),
    }


def test_bench_perf_engine(scale):
    if os.environ.get("REPRO_BENCH_PROFILE"):
        # Per-phase breakdown of the whole benchmark run
        # (fetch/memory/schedule/functional) — the satellite profiling
        # hook; the CLI twin is ``repro run --profile-pipeline``.
        from repro.uarch.profile import profiled_pipeline

        with profiled_pipeline():
            entry = measure(scale)
    else:
        entry = measure(scale)
    assert not validate_entry(entry), validate_entry(entry)
    _append_trajectory(entry)

    print(f"\nreference: {entry['reference_ips']:,} inst/s   "
          f"fast: {entry['fast_ips']:,} inst/s   "
          f"batch(1): {entry['batch_ips']:,} inst/s   "
          f"speedup: {entry['speedup']:.2f}x")
    print(f"campaign x{entry['campaign_trials']}: "
          f"serial {entry['campaign_serial_ips']:,} inst/s   "
          f"batched {entry['campaign_ips']:,} inst/s   "
          f"speedup: {entry['campaign_speedup']:.2f}x")
    print(f"campaign+timing x{entry['campaign_trials']}: "
          f"serial {entry['campaign_cycles_serial_ips']:,} inst/s   "
          f"batched {entry['campaign_cycles_ips']:,} inst/s   "
          f"speedup: {entry['campaign_cycles_speedup']:.2f}x   "
          f"pipeline-only {entry['pipeline_batch_ips']:,} inst/s")
    assert entry["speedup"] >= MIN_SPEEDUP, (
        f"fast engine only {entry['speedup']:.2f}x faster "
        f"(floor {MIN_SPEEDUP}x); see {ARTIFACT}"
    )
    assert entry["campaign_speedup"] >= MIN_CAMPAIGN_SPEEDUP, (
        f"batched campaign only {entry['campaign_speedup']:.2f}x over "
        f"serial (floor {MIN_CAMPAIGN_SPEEDUP}x); see {ARTIFACT}"
    )
    assert entry["campaign_cycles_speedup"] >= MIN_CAMPAIGN_CYCLES_SPEEDUP, (
        f"batched timing campaign only "
        f"{entry['campaign_cycles_speedup']:.2f}x over serial "
        f"(floor {MIN_CAMPAIGN_CYCLES_SPEEDUP}x); see {ARTIFACT}"
    )
