"""Fig. 10a: microbenchmark slowdown vs nesting depth, SeMPE vs FaCT.

Paper: SeMPE slowdown tracks the number of executed paths (about W+1,
reaching 8.4-10.6x at W=10); FaCT/CTE starts at 3-32x at W=1 and grows
super-linearly (12.9-187.3x at W=10); CTE is 1.6-18x slower than SeMPE.
"""

from repro.harness import fig10a_microbench, format_table


def test_fig10a_microbench(benchmark, scale):
    result = benchmark.pedantic(
        fig10a_microbench,
        kwargs={"w_sweep": scale["w_sweep"],
                "workloads": scale["workloads"]},
        rounds=1, iterations=1,
    )
    print()
    print(format_table(result.headers, result.rows, title=result.experiment))

    w_last = scale["w_sweep"][-1]
    for workload in scale["workloads"]:
        sempe = result.series[(workload, "sempe")]
        cte = result.series[(workload, "cte")]
        # Monotone growth with W for both schemes.
        assert sempe[-1] > sempe[0]
        assert cte[-1] > cte[0]
        # SeMPE tracks the path count W+1 within a factor (the
        # mispredict-heavy queens baseline needs long runs to converge,
        # hence the loose lower bound at quick scale).
        assert 0.4 * (w_last + 1) < sempe[-1] < 1.6 * (w_last + 1)
        # CTE is slower than SeMPE at depth.
        assert cte[-1] > sempe[-1]

    # The CTE-vs-SeMPE gap spans a wide range across workloads
    # (paper: 1.6x to 18x).
    gaps = [result.series[(w, "cte")][-1] / result.series[(w, "sempe")][-1]
            for w in scale["workloads"]]
    assert min(gaps) > 1.1
    assert max(gaps) > 3.0
