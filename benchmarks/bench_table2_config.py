"""Table II: the baseline machine configuration.

Sanity benchmark: prints the configuration of the simulated core and
asserts it matches the paper's parameters (2 GHz, 8-wide, 192-entry
ROB, 31KB TAGE, 32KB/16KB/256KB caches, 30-snapshot SPM at 64 B/cycle).
"""

from repro.harness import format_table, table2_config
from repro.uarch.branch.tage import Tage


def test_table2_config(benchmark):
    result = benchmark.pedantic(table2_config, rounds=1, iterations=1)
    print()
    print(format_table(result.headers, result.rows, title=result.experiment))
    text = format_table(result.headers, result.rows)
    for expected in ("2.0 GHz", "8 instructions / cycle", "192 uops",
                     "256 INT, 256 FP", "32+32 entries",
                     "32KB, 2-way assoc.", "16KB, 2-way assoc.",
                     "256KB, 2-way assoc.", "stride (L1), stream (L2)",
                     "30 snapshots", "64 B/cycle R/W"):
        assert expected in text, expected
    # The TAGE geometry lands in the paper's storage ballpark.
    assert 8 <= Tage().storage_bits() / 8 / 1024 <= 64
