"""Ablation: the §IV-E nesting-reduction optimization.

The paper: "the compiler can reduce the nesting degree by collapsing
multiple conditionals into a single one with larger expression".
Collapsing ``if (A) { if (B) { ... } }`` into ``if (A && B)`` halves
the sJMP count, jbTable occupancy and drain count for chain-nested
regions.  This bench measures the saving on a deeply-nested secret
chain with all the work in the innermost body.
"""

from repro.arch.executor import Executor
from repro.core import simulate
from repro.harness.report import format_table
from repro.lang.compiler import compile_source

DEPTH = 6


def make_source() -> str:
    lines = ["int sink = 0;"]
    for level in range(DEPTH):
        lines.append(f"secret int s{level} = 1;")
    lines.append("void main() {")
    lines.append("for (int it = 0; it < 10; it = it + 1) {")
    for level in range(DEPTH):
        lines.append(f"if (s{level}) {{")
    lines.append("int w = 0;")
    lines.append("for (int i = 0; i < 30; i = i + 1) { w = w + i; }")
    lines.append("sink = sink + w;")
    lines.extend("}" for _ in range(DEPTH))
    lines.append("}")
    lines.append("}")
    return "\n".join(lines)


def run_both():
    source = make_source()
    out = {}
    for collapse in (False, True):
        compiled = compile_source(source, mode="sempe",
                                  collapse_ifs=collapse)
        executor = Executor(compiled.program, sempe=True)
        executor.run_to_completion()
        report = simulate(compiled.program, defense="sempe")
        out[collapse] = {
            "sjmps": compiled.program.count_secure_branches(),
            "regions": executor.result.secure_regions,
            "max_nesting": executor.result.max_nesting,
            "drains": executor.result.drains,
            "cycles": report.cycles,
        }
    return out


def test_ablation_collapse_nested_ifs(benchmark):
    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    rows = []
    for collapse, stats in results.items():
        rows.append([
            "collapsed" if collapse else "nested",
            stats["sjmps"], stats["regions"], stats["max_nesting"],
            stats["drains"], stats["cycles"],
        ])
    print()
    print(format_table(
        ["variant", "static sJMP", "regions", "max nesting", "drains",
         "cycles"],
        rows, title=f"Nesting-reduction ablation (depth {DEPTH} chain)"))
    nested = results[False]
    collapsed = results[True]
    assert collapsed["sjmps"] == 1
    assert nested["sjmps"] == DEPTH
    assert collapsed["max_nesting"] == 1
    assert collapsed["drains"] < nested["drains"]
    assert collapsed["cycles"] < nested["cycles"]
