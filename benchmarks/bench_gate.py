"""CI perf-regression gate: measured throughput vs committed baseline.

Compares a fresh quick-scale measurement of the engine throughput
metrics (``fast_ips``, ``batch_ips``, ``campaign_ips``) against the
committed ``BENCH_baseline.json`` and fails (exit 1) when any metric
regresses by more than :data:`THRESHOLD` after machine-speed
normalisation.

Raw instructions/second are not comparable across machines, so the
baseline also records a **calibration** figure — the throughput of a
fixed pure-Python loop on the recording machine.  At gate time the same
loop is re-timed and every baseline metric is scaled by
``current_calibration / baseline_calibration`` before the threshold is
applied.  That keeps the gate about *the code*, not the runner.

Usage::

    python benchmarks/bench_gate.py                  # gate (CI entry)
    python benchmarks/bench_gate.py --write-baseline # refresh baseline
    python benchmarks/bench_gate.py --check-schema   # validate BENCH_perf.json
    python benchmarks/bench_gate.py --simulate-regression 20  # demo red

``--write-baseline`` is the **only** way the baseline moves: a refresh
must land as an explicit, reviewed diff of ``BENCH_baseline.json``
(see CONTRIBUTING.md), never as a side effect of a green run.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

import bench_perf_engine
from conftest import QUICK

BASELINE = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        os.pardir, "BENCH_baseline.json")

# Fractional regression (after calibration scaling) that turns the
# gate red.  15% clears normal same-machine jitter; the calibration
# scaling absorbs cross-machine deltas.
THRESHOLD = 0.15

# Metrics under the gate.  fast_ips guards the serial hot loop,
# batch_ips the single-lane batched path, campaign_ips the
# many-trial aggregate that justifies the batched engine,
# pipeline_ips the default (speculation-off) pipeline path,
# pipeline_spec_ips the wrong-path replay with the window enabled,
# campaign_cycles_ips the with-timing campaign through the batched
# timing path (lane sharing + memoization), and pipeline_batch_ips
# the batched timing model alone (pipeline_ips's batched counterpart).
GATED_METRICS = ("fast_ips", "batch_ips", "campaign_ips",
                 "pipeline_ips", "pipeline_spec_ips",
                 "campaign_cycles_ips", "pipeline_batch_ips")

_CALIBRATION_OPS = 2_000_000


def _calibrate() -> float:
    """Machine-speed probe: ops/second of a fixed interpreter-bound
    loop (same flavour of work as the simulator hot loops)."""
    best = 0.0
    for _attempt in range(3):
        started = time.perf_counter()
        acc = 0
        for i in range(_CALIBRATION_OPS):
            acc = (acc + i * 3) & 0xFFFFFFFFFFFFFFFF
        elapsed = time.perf_counter() - started
        best = max(best, _CALIBRATION_OPS / elapsed)
    return best


def _load_baseline() -> dict:
    with open(BASELINE, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _measure_metrics() -> dict:
    entry = bench_perf_engine.measure(QUICK)
    problems = bench_perf_engine.validate_entry(entry)
    if problems:
        raise SystemExit(f"measurement violates bench schema: {problems}")
    return entry


def write_baseline() -> int:
    calibration = _calibrate()
    entry = _measure_metrics()
    baseline = {
        "recorded": entry["timestamp"],
        "python": platform.python_version(),
        "cpu": entry["cpu"],
        "calibration_ips": round(calibration),
        "metrics": {key: entry[key] for key in GATED_METRICS},
    }
    with open(BASELINE, "w", encoding="utf-8") as handle:
        json.dump(baseline, handle, indent=2)
        handle.write("\n")
    print(f"baseline written to {BASELINE}:")
    for key in GATED_METRICS:
        print(f"  {key:>18}: {baseline['metrics'][key]:,}")
    print(f"  {'calibration_ips':>18}: {baseline['calibration_ips']:,}")
    return 0


def check_schema() -> int:
    artifact = bench_perf_engine.ARTIFACT
    with open(artifact, "r", encoding="utf-8") as handle:
        trajectory = json.load(handle)
    if not trajectory:
        print(f"SCHEMA: {artifact} is empty", file=sys.stderr)
        return 1
    problems = bench_perf_engine.validate_entry(trajectory[-1])
    if problems:
        for problem in problems:
            print(f"SCHEMA: {problem}", file=sys.stderr)
        return 1
    print(f"schema OK: last of {len(trajectory)} entries carries all "
          f"{len(bench_perf_engine.SCHEMA_KEYS)} keys")
    return 0


def evaluate(baseline: dict, entry: dict, factor: float,
             penalty: float = 1.0) -> tuple[list[tuple], list[str]]:
    """Pure gate decision: delta rows and the list of failed metrics.

    *factor* scales the baseline to the current machine's speed;
    *penalty* scales the measurement down (the ``--simulate-regression``
    demo hook).  Separated from the timing so the threshold logic is
    unit-testable with synthetic numbers.
    """
    rows = []
    failed = []
    for key in GATED_METRICS:
        measured = entry[key] * penalty
        expected = baseline["metrics"][key] * factor
        delta = measured / expected - 1.0
        status = "ok"
        if delta < -THRESHOLD:
            status = "REGRESSION"
            failed.append(key)
        rows.append((key, baseline["metrics"][key], round(expected),
                     round(measured), delta, status))
    return rows, failed


def run_gate(simulate_regression: float = 0.0) -> int:
    baseline = _load_baseline()
    calibration = _calibrate()
    factor = calibration / baseline["calibration_ips"]
    entry = _measure_metrics()
    rows, failed = evaluate(baseline, entry, factor,
                            penalty=1.0 - simulate_regression / 100.0)

    header = (f"{'metric':>18} {'baseline':>12} {'expected*':>12} "
              f"{'measured':>12} {'delta':>8}  status")
    print(header)
    print("-" * len(header))
    for key, base, expected, measured, delta, status in rows:
        print(f"{key:>18} {base:>12,} {expected:>12,} {measured:>12,} "
              f"{delta:>+7.1%}  {status}")
    print(f"(* baseline scaled by machine factor {factor:.2f} = "
          f"{calibration:,.0f} / {baseline['calibration_ips']:,} "
          f"calibration ops/s; threshold -{THRESHOLD:.0%})")
    if simulate_regression:
        print(f"(simulated regression of {simulate_regression:.0f}% "
              "applied to measured values)")

    if failed:
        print(f"\nGATE RED: {', '.join(failed)} regressed more than "
              f"{THRESHOLD:.0%}.  If this is an accepted trade-off, "
              "refresh the baseline explicitly:\n"
              "  python benchmarks/bench_gate.py --write-baseline\n"
              "and commit the BENCH_baseline.json diff for review.",
              file=sys.stderr)
        return 1
    print("\nGATE GREEN: no gated metric regressed beyond the threshold.")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--write-baseline", action="store_true",
                        help="re-measure and overwrite BENCH_baseline.json")
    parser.add_argument("--check-schema", action="store_true",
                        help="validate the last BENCH_perf.json entry "
                             "against the fixed schema and exit")
    parser.add_argument("--simulate-regression", type=float, default=0.0,
                        metavar="PCT",
                        help="scale measured values down by PCT%% to "
                             "demonstrate the gate turning red")
    args = parser.parse_args(argv)
    if args.check_schema:
        return check_schema()
    if args.write_baseline:
        return write_baseline()
    return run_gate(simulate_regression=args.simulate_regression)


if __name__ == "__main__":
    sys.exit(main())
