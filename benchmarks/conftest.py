"""Benchmark configuration.

Set ``REPRO_BENCH_SCALE=full`` to run the paper-scale sweeps
(W = 1..10, djpeg up to 4096 pixels).  The default ``quick`` scale
exercises every experiment end-to-end with smaller sweeps so the whole
benchmark suite finishes in a few minutes of pure-Python simulation.
"""

from __future__ import annotations

import os

import pytest

QUICK = {
    "w_sweep": (1, 2, 4),
    "djpeg_sizes": (256, 512, 1024),
    "table1_w": 4,
    "workloads": ("fibonacci", "ones", "quicksort", "queens"),
}

FULL = {
    "w_sweep": (1, 2, 4, 6, 8, 10),
    "djpeg_sizes": (512, 1024, 2048, 4096),
    "table1_w": 10,
    "workloads": ("fibonacci", "ones", "quicksort", "queens"),
}


@pytest.fixture(scope="session")
def scale() -> dict:
    name = os.environ.get("REPRO_BENCH_SCALE", "quick").lower()
    return FULL if name == "full" else QUICK
