"""Fig. 10b: average slowdown normalized to the ideal case.

The ideal overhead of any SDBCB-removing scheme is the sum of the
execution times of all branch paths (§IV-A).  Paper: SeMPE stays near
(or slightly below, thanks to cross-path prefetching) the ideal, while
CTE's normalized cost grows with nesting depth.
"""

from repro.harness import fig10b_normalized_to_ideal, format_table


def test_fig10b_normalized_to_ideal(benchmark, scale):
    result = benchmark.pedantic(
        fig10b_normalized_to_ideal,
        kwargs={"w_sweep": scale["w_sweep"],
                "workloads": scale["workloads"]},
        rounds=1, iterations=1,
    )
    print()
    print(format_table(result.headers, result.rows, title=result.experiment))

    for value in result.series["sempe"]:
        assert 0.6 < value < 1.7   # near-ideal at every depth
    # CTE normalized cost exceeds SeMPE's everywhere and by a widening
    # margin at depth.
    for sempe_value, cte_value in zip(result.series["sempe"],
                                      result.series["cte"]):
        assert cte_value > sempe_value
    assert result.series["cte"][-1] / result.series["sempe"][-1] > 1.5
