"""Table I: approach comparison (CTE, GhostRider, Raccoon, SeMPE).

Regenerates the paper's comparison table: the qualitative rows plus an
overhead row pairing the paper's reported numbers with overheads
measured (SeMPE, CTE) or modelled (Raccoon, GhostRider) on our
microbenchmarks.

Expected shape: SeMPE lowest overhead; CTE substantially higher;
Raccoon and GhostRider (per-memory-op transaction / ORAM penalties)
higher still, GhostRider the worst.
"""

from repro.harness import format_table, table1_comparison


def test_table1_comparison(benchmark, scale):
    result = benchmark.pedantic(
        table1_comparison,
        kwargs={"w": scale["table1_w"], "workloads": scale["workloads"]},
        rounds=1, iterations=1,
    )
    print()
    print(format_table(result.headers, result.rows, title=result.experiment))

    series = result.series
    assert max(series["SeMPE"]) < max(series["CTE"])
    assert max(series["CTE"]) < max(series["GhostRider"])
    assert max(series["Raccoon"]) > max(series["SeMPE"])
