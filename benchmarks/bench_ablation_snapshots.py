"""Ablation: the three §IV-F snapshot mechanisms (ArchRS/PhyRS/LRS).

DESIGN.md design-choice ablation: the paper picks ArchRS after
rejecting PhyRS (too much SPM traffic: the whole physical register file
plus RAT per drain) and LRS (a tagged rename table that taxes every
instruction, inside or outside secure regions).  This bench reruns a
mixed workload (secure loop + large non-secure loop) under all three
mechanisms.
"""

from repro.core import simulate
from repro.harness.report import format_table
from repro.uarch.config import MachineConfig
from repro.workloads.microbench import MicrobenchSpec, compile_microbench


def run_all_mechanisms():
    spec = MicrobenchSpec("fibonacci", w=3, iters=8)
    program = compile_microbench(spec, "sempe").program
    cycles = {}
    for mechanism in ("archrs", "phyrs", "lrs"):
        config = MachineConfig()
        config.snapshot_mechanism = mechanism
        cycles[mechanism] = simulate(program, defense="sempe",
                                     config=config).cycles
    return cycles


def test_ablation_snapshot_mechanisms(benchmark):
    cycles = benchmark.pedantic(run_all_mechanisms, rounds=1, iterations=1)
    rows = [[name, count, f"{count / cycles['archrs']:.3f}x"]
            for name, count in cycles.items()]
    print()
    print(format_table(["mechanism", "cycles", "vs ArchRS"], rows,
                       title="Snapshot-mechanism ablation"))
    assert cycles["phyrs"] > cycles["archrs"]
    assert cycles["lrs"] > cycles["archrs"]
