"""Fig. 9: IL1 / DL1 / L2 miss rates, baseline vs SeMPE, on djpeg.

Paper: IL1 miss rates low and size-independent; DL1 impact small (the
ShadowMemory working sets of the two paths overlap, giving a prefetch
effect); L2 rates higher overall but moving with the DL1.
"""

from repro.harness import fig9_cache_missrates, format_table


def test_fig9_cache_missrates(benchmark, scale):
    result = benchmark.pedantic(
        fig9_cache_missrates,
        kwargs={"sizes": scale["djpeg_sizes"]},
        rounds=1, iterations=1,
    )
    print()
    print(format_table(result.headers, result.rows, title=result.experiment))

    series = result.series
    # IL1 stays low on both machines.
    for rate in series["IL1"]["base"] + series["IL1"]["sempe"]:
        assert rate < 0.10
    # SeMPE never blows up a miss rate by more than a few points.
    for level in ("IL1", "DL1", "L2"):
        for base_rate, sempe_rate in zip(series[level]["base"],
                                         series[level]["sempe"]):
            assert abs(sempe_rate - base_rate) < 0.2, level
