"""Fig. 8: djpeg execution-time overhead, 3 formats x input sizes.

Paper: overheads between 31% and 87%, ordered PPM > GIF > BMP, and
essentially flat across image sizes (the secure-region work per block
does not depend on the image size).
"""

from repro.harness import fig8_djpeg_overhead, format_table


def test_fig8_djpeg_overhead(benchmark, scale):
    result = benchmark.pedantic(
        fig8_djpeg_overhead,
        kwargs={"sizes": scale["djpeg_sizes"]},
        rounds=1, iterations=1,
    )
    print()
    print(format_table(result.headers, result.rows, title=result.experiment))

    series = result.series
    for index in range(len(scale["djpeg_sizes"])):
        assert series["ppm"][index] > series["gif"][index] > \
            series["bmp"][index]
    for fmt, overheads in series.items():
        for overhead in overheads:
            assert 0.05 < overhead < 1.5, (fmt, overhead)
        assert max(overheads) - min(overheads) < 0.25, (fmt, overheads)
