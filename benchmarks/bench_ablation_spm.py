"""Ablation: SPM throughput sensitivity.

Table II fixes the SPM at 64 B/cycle.  This bench sweeps the transfer
throughput to show how much of SeMPE's overhead is snapshot traffic:
a slower SPM inflates the three per-SecBlock drains, a faster one
approaches the drain-only floor.
"""

from repro.core import simulate
from repro.harness.report import format_table
from repro.uarch.config import MachineConfig
from repro.workloads.microbench import MicrobenchSpec, compile_microbench

THROUGHPUTS = (8, 32, 64, 256)


def run_sweep():
    spec = MicrobenchSpec("ones", w=4, iters=6)
    program = compile_microbench(spec, "sempe").program
    cycles = {}
    for bytes_per_cycle in THROUGHPUTS:
        config = MachineConfig()
        config.spm_bytes_per_cycle = bytes_per_cycle
        cycles[bytes_per_cycle] = simulate(program, defense="sempe",
                                           config=config).cycles
    return cycles


def test_ablation_spm_throughput(benchmark):
    cycles = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    baseline = cycles[64]
    rows = [[f"{bpc} B/cycle", cycles[bpc], f"{cycles[bpc] / baseline:.3f}x"]
            for bpc in THROUGHPUTS]
    print()
    print(format_table(["SPM throughput", "cycles", "vs 64 B/cycle"], rows,
                       title="SPM-throughput ablation"))
    # Monotone: slower SPM never helps.
    ordered = [cycles[bpc] for bpc in THROUGHPUTS]
    assert all(a >= b for a, b in zip(ordered, ordered[1:]))
    assert cycles[8] > cycles[256]
