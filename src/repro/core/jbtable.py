"""The Jump-Back Table (jbTable).

A small hardware LIFO (Fig. 5 of the paper).  Each entry describes one
in-flight secure branch:

* ``target`` — the sJMP destination address, written when the sJMP
  commits (step 2), consumed by the first ``eosJMP`` commit to set the
  nextPC (step 4);
* ``taken`` — the real branch outcome (the T/NT bit field);
* ``valid`` — set once the target address has been computed; a nested
  sJMP may only issue when the previous entry is valid (step 6),
  keeping the LIFO faithful;
* ``jump_back`` — set by the first ``eosJMP`` (step 5); a set bit tells
  the second ``eosJMP`` to retire the entry instead of jumping back.

The default depth of 30 follows Table II (SPM sized for 30 snapshots).
"""

from __future__ import annotations

from dataclasses import dataclass


class JbTableError(Exception):
    """Raised on protocol violations (overflow, pop of live entry ...)."""


@dataclass
class JbEntry:
    """One jbTable row."""

    target: int | None = None
    taken: bool = False
    valid: bool = False
    jump_back: bool = False


class JumpBackTable:
    """LIFO of :class:`JbEntry` with the paper's issue/commit protocol."""

    def __init__(self, depth: int = 30) -> None:
        self.depth = depth
        self._entries: list[JbEntry] = []
        self.pushes = 0
        self.max_occupancy = 0

    # -- protocol steps --------------------------------------------------------

    def can_issue_sjmp(self) -> bool:
        """A nested sJMP may issue only if the table is empty or the most
        recent entry has its Valid bit set (step 6)."""
        return not self._entries or self._entries[-1].valid

    def push(self, target: int | None = None, taken: bool = False) -> JbEntry:
        """Allocate an entry at sJMP issue (step 1); Valid/jb start clear."""
        if len(self._entries) >= self.depth:
            raise JbTableError(
                f"jbTable overflow: nesting exceeds depth {self.depth}"
            )
        if not self.can_issue_sjmp():
            raise JbTableError("sJMP issued while previous entry is not valid")
        entry = JbEntry(target=target, taken=taken, valid=False, jump_back=False)
        self._entries.append(entry)
        self.pushes += 1
        self.max_occupancy = max(self.max_occupancy, len(self._entries))
        return entry

    def set_valid(self, target: int) -> None:
        """Record the computed target at sJMP commit (step 2)."""
        entry = self.top()
        entry.target = target
        entry.valid = True

    def take_jump_back(self) -> int:
        """First eosJMP commit: return nextPC and set the jb bit (4-5)."""
        entry = self.top()
        if not entry.valid:
            raise JbTableError("eosJMP reached before sJMP target was valid")
        if entry.jump_back:
            raise JbTableError("jump-back taken twice for the same entry")
        entry.jump_back = True
        return entry.target

    def pop(self) -> JbEntry:
        """Second eosJMP commit: retire the most recent entry."""
        if not self._entries:
            raise JbTableError("pop from empty jbTable")
        entry = self._entries[-1]
        if not entry.jump_back:
            raise JbTableError("pop before the jump-back was taken")
        return self._entries.pop()

    def squash_youngest(self) -> JbEntry | None:
        """Branch-misprediction recovery: delete the most recent entry for
        each squashed sJMP, newest to oldest (§IV-E)."""
        if not self._entries:
            return None
        return self._entries.pop()

    # -- queries -------------------------------------------------------------

    def top(self) -> JbEntry:
        if not self._entries:
            raise JbTableError("jbTable is empty")
        return self._entries[-1]

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def occupancy(self) -> int:
        return len(self._entries)

    def size_bytes(self) -> int:
        """Hardware cost: 64-bit address + T/NT + valid + jb per entry."""
        bits_per_entry = 64 + 3
        return (self.depth * bits_per_entry + 7) // 8

    def reset(self) -> None:
        self._entries.clear()
