"""Register-snapshot mechanisms considered in §IV-F.

The paper evaluates three designs for dealing with phantom register
dependences between the two paths of a secure branch, and adopts the
third:

* **LRS** (Lazy Register Spill) — a cache-like rename table with SecBlock
  tags; spills only modified registers but complicates renaming and slows
  instructions outside SecBlocks.
* **PhyRS** (Physical Register Snapshot) — snapshot the entire physical
  register file plus the RAT; simple but produces very large SPM traffic
  (hundreds of physical registers).
* **ArchRS** (Architectural Register Snapshot) — snapshot only the
  architectural registers plus two modified-register bit-vectors; this is
  the adopted design.

All three share one functional behaviour (save entry state / save NT
state / constant-time restore) and differ in their per-event SPM traffic
and in a steady-state penalty.  The engine consumes a
:class:`SnapshotMechanism` so the ablation bench can swap them.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class SnapshotCost:
    """Cycles charged at each of the three drain points of a SecBlock."""

    entry_cycles: int
    nt_end_cycles: int
    exit_cycles: int


class SnapshotMechanism:
    """Base class: cost model for one snapshot design."""

    name = "base"

    def __init__(self, n_arch_regs: int = 48, n_phys_regs: int = 256,
                 reg_bytes: int = 8, spm_bytes_per_cycle: int = 64) -> None:
        self.n_arch_regs = n_arch_regs
        self.n_phys_regs = n_phys_regs
        self.reg_bytes = reg_bytes
        self.spm_bytes_per_cycle = spm_bytes_per_cycle

    # -- shared helpers ----------------------------------------------------

    def _cycles(self, nbytes: int) -> int:
        return max(1, -(-nbytes // self.spm_bytes_per_cycle))

    @property
    def bitvector_bytes(self) -> int:
        return (self.n_arch_regs + 7) // 8

    # -- interface ------------------------------------------------------------

    def cost(self, n_modified_nt: int, n_modified_t: int) -> SnapshotCost:
        """Per-SecBlock drain costs, given the modified-register counts."""
        raise NotImplementedError

    def rename_overhead_per_instruction(self) -> float:
        """Extra cycles added to every renamed instruction (LRS only)."""
        return 0.0

    def snapshot_bytes(self) -> int:
        """Storage needed per nesting level."""
        raise NotImplementedError


class ArchRS(SnapshotMechanism):
    """Architectural Register Snapshot — the adopted design.

    Entry: save all architectural registers (plus a cleared bit-vector).
    NT end: save only NT-modified registers; read the entry state back.
    Exit: read the union of modified registers (constant-time restore).
    """

    name = "ArchRS"

    def cost(self, n_modified_nt: int, n_modified_t: int) -> SnapshotCost:
        regstate = self.n_arch_regs * self.reg_bytes
        entry = self._cycles(regstate + self.bitvector_bytes)
        nt_save = self._cycles(n_modified_nt * self.reg_bytes + self.bitvector_bytes)
        nt_restore = self._cycles(regstate)
        union = len(set(range(n_modified_nt)) | set(range(n_modified_t)))
        exit_read = self._cycles(max(n_modified_nt, n_modified_t, union)
                                 * self.reg_bytes + 2 * self.bitvector_bytes)
        return SnapshotCost(entry, nt_save + nt_restore, exit_read)

    def snapshot_bytes(self) -> int:
        return 2 * self.n_arch_regs * self.reg_bytes + 2 * self.bitvector_bytes


class PhyRS(SnapshotMechanism):
    """Physical Register Snapshot — rejected: too much SPM spilling.

    Every drain moves the whole physical register file plus the RAT.
    """

    name = "PhyRS"

    @property
    def _rat_bytes(self) -> int:
        # One physical-register index (~2 bytes) per architectural register.
        return self.n_arch_regs * 2

    def cost(self, n_modified_nt: int, n_modified_t: int) -> SnapshotCost:
        full = self.n_phys_regs * self.reg_bytes + self._rat_bytes
        entry = self._cycles(full)
        nt_end = self._cycles(full) + self._cycles(full)  # save + restore
        exit_read = self._cycles(full)
        return SnapshotCost(entry, nt_end, exit_read)

    def snapshot_bytes(self) -> int:
        return 2 * (self.n_phys_regs * self.reg_bytes + self._rat_bytes)


class LazyRegisterSpill(SnapshotMechanism):
    """LRS — rejected: tagged rename table slows *all* instructions.

    Spills only the modified registers (cheap drains) but adds a rename
    overhead to every instruction in the program, inside or outside
    SecBlocks, modelling the extra tag-match level in the rename table.
    """

    name = "LRS"

    def __init__(self, *args, rename_penalty: float = 0.15, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.rename_penalty = rename_penalty

    def cost(self, n_modified_nt: int, n_modified_t: int) -> SnapshotCost:
        entry = 1  # tag allocation only
        nt_end = self._cycles(n_modified_nt * self.reg_bytes)
        exit_read = self._cycles(
            (n_modified_nt + n_modified_t) * self.reg_bytes
        )
        return SnapshotCost(entry, nt_end, exit_read)

    def rename_overhead_per_instruction(self) -> float:
        return self.rename_penalty

    def snapshot_bytes(self) -> int:
        return self.n_arch_regs * self.reg_bytes + self.bitvector_bytes


_MECHANISMS = {
    "archrs": ArchRS,
    "phyrs": PhyRS,
    "lrs": LazyRegisterSpill,
}


def make_snapshot_mechanism(name: str, **kwargs) -> SnapshotMechanism:
    """Factory by case-insensitive name: ``archrs``, ``phyrs``, ``lrs``."""
    key = name.lower()
    if key not in _MECHANISMS:
        raise ValueError(f"unknown snapshot mechanism {name!r}")
    return _MECHANISMS[key](**kwargs)
