"""SeMPE core: the paper's primary contribution.

* :mod:`repro.core.jbtable` — the Jump-Back Table, the LIFO hardware
  structure that sequences multi-path execution of nested secure branches.
* :mod:`repro.core.snapshots` — the three candidate register-snapshot
  mechanisms of §IV-F (ArchRS, PhyRS, LRS) with their cost models; ArchRS
  is the one SeMPE adopts.
* :mod:`repro.core.engine` — the SeMPE machine: couples the functional
  executor, the out-of-order timing model, the memory hierarchy, and the
  side-channel observers into one `simulate()` entry point.
"""

from repro.core.jbtable import JumpBackTable, JbEntry, JbTableError
from repro.core.snapshots import (
    SnapshotMechanism,
    ArchRS,
    PhyRS,
    LazyRegisterSpill,
    make_snapshot_mechanism,
)
from repro.core.engine import SempeMachine, SimulationReport, simulate

__all__ = [
    "JumpBackTable",
    "JbEntry",
    "JbTableError",
    "SnapshotMechanism",
    "ArchRS",
    "PhyRS",
    "LazyRegisterSpill",
    "make_snapshot_mechanism",
    "SempeMachine",
    "SimulationReport",
    "simulate",
]
