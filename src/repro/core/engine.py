"""The SeMPE machine: functional execution + timing in one call.

:func:`simulate` is the main entry point of the library::

    from repro import simulate
    report = simulate(program, defense="sempe")
    print(report.cycles, report.pipeline.ipc)

``defense`` names a registered protection scheme
(:mod:`repro.defenses`): ``sempe`` (the default) is the paper's
machine; ``plain`` models the unprotected baseline running the same
binary (SecPrefix ignored, ``eosJMP`` decoded as NOP) — identical
core, no security; the other schemes apply their machine hooks
(fences, cache partitioning/randomization, exit flush) on the
baseline core.  ``sempe=True/False`` remains as a deprecated alias
for the two legacy schemes.

Three engines produce bit-identical :class:`SimulationReport`\\ s:

* ``fast`` (the default) — predecoded dispatch plus a columnar batched
  trace (:class:`~repro.arch.fast_executor.FastExecutor` feeding
  :meth:`~repro.uarch.pipeline.OutOfOrderPipeline.run_chunks`);
* ``batch`` — the trial-batched vectorized engine
  (:class:`~repro.arch.batch.BatchExecutor`, numpy-backed); a single
  ``simulate`` call runs it with one lane, but observation campaigns
  (:func:`repro.security.observer.collect_observations_batch`) share
  one decode and one batched execution across all their trials;
* ``reference`` — the original object-per-instruction stream, kept as
  the readable oracle the parity suites check both other engines
  against.

Select with the ``engine=`` argument, :func:`set_default_engine` (the
CLI's ``--engine`` flag), or the ``REPRO_ENGINE`` environment variable.
"""

from __future__ import annotations

import dataclasses
import os
import warnings

from dataclasses import dataclass, field

from repro.arch.executor import ExecutionResult, Executor
from repro.arch.fast_executor import FastExecutor
from repro.core.jbtable import JumpBackTable
from repro.core.snapshots import make_snapshot_mechanism
from repro.defenses.registry import DefenseSpec, get_defense
from repro.isa.program import Program
from repro.isa.registers import NUM_REGS
from repro.mem.scratchpad import ScratchpadMemory
from repro.uarch.config import MachineConfig
from repro.uarch.pipeline import OutOfOrderPipeline, PipelineStats


@dataclass
class SimulationReport:
    """Everything a benchmark or experiment needs from one run."""

    program_name: str
    sempe: bool
    cycles: int
    functional: ExecutionResult
    pipeline: PipelineStats
    miss_rates: dict[str, float] = field(default_factory=dict)
    final_regs: list[int] = field(default_factory=list)

    @property
    def instructions(self) -> int:
        return self.functional.instructions

    @property
    def ipc(self) -> float:
        return self.pipeline.ipc

    def overhead_vs(self, baseline: "SimulationReport") -> float:
        """Execution-time ratio against *baseline* (1.0 = equal)."""
        if baseline.cycles == 0:
            return float("inf")
        return self.cycles / baseline.cycles

    def to_dict(self) -> dict:
        """Plain-data form (JSON-safe) for the on-disk result store."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "SimulationReport":
        """Rebuild a report from :meth:`to_dict` output.

        Round-trips bit-exactly: every field of the nested
        :class:`~repro.arch.executor.ExecutionResult` and
        :class:`~repro.uarch.pipeline.PipelineStats` is a plain int,
        bool, float, or str-keyed dict of ints.
        """
        return cls(
            program_name=data["program_name"],
            sempe=data["sempe"],
            cycles=data["cycles"],
            functional=ExecutionResult(**data["functional"]),
            pipeline=PipelineStats(**data["pipeline"]),
            miss_rates=dict(data["miss_rates"]),
            final_regs=list(data["final_regs"]),
        )


# Engine registry.  All three are bit-identical (the golden parity and
# batch-parity suites enforce it); "reference" stays as the readable
# oracle.  "batch" requires numpy and shines on multi-trial campaigns.
ENGINES = ("fast", "batch", "reference")
_default_engine = "fast"
_default_engine_overridden = False


def set_default_engine(name: str) -> None:
    """Set the process-wide default engine (the CLI's ``--engine``).

    An explicit call wins over the ``REPRO_ENGINE`` environment
    variable; the env var only steers runs that never chose an engine.
    """
    global _default_engine, _default_engine_overridden
    if name not in ENGINES:
        raise ValueError(f"unknown engine {name!r}; choose from {ENGINES}")
    _default_engine = name
    _default_engine_overridden = True


def get_default_engine() -> str:
    """The engine used when ``simulate`` is called without ``engine=``."""
    if _default_engine_overridden:
        return _default_engine
    return os.environ.get("REPRO_ENGINE") or _default_engine


def _resolve_engine(name: str | None) -> str:
    resolved = (name or get_default_engine()).lower()
    if resolved not in ENGINES:
        raise ValueError(f"unknown engine {resolved!r}; choose from {ENGINES}")
    return resolved


def resolve_defense(defense: "str | DefenseSpec | None",
                    sempe: bool | None = None) -> DefenseSpec:
    """The :class:`DefenseSpec` a machine should run under.

    *defense* wins when given (name or spec); otherwise the legacy
    ``sempe`` bool maps onto the matching legacy scheme (``None`` means
    the historical default, the SeMPE machine).
    """
    if defense is not None:
        if isinstance(defense, DefenseSpec):
            return defense
        return get_defense(defense)
    return get_defense("sempe" if sempe or sempe is None else "plain")


def flush_penalty_cycles(config: MachineConfig) -> int:
    """Cycles a full transient-state flush costs (flush-local defense).

    One cycle per cache *frame* (set x way), every level, independent
    of what is resident — a secret-dependent flush time would itself be
    a channel, so the model charges the constant worst case.
    """
    hierarchy = config.hierarchy
    return sum(cache.n_sets * cache.assoc
               for cache in (hierarchy.il1, hierarchy.dl1, hierarchy.l2))


class SempeMachine:
    """A configured machine that can run programs.

    ``defense`` names the protection scheme whose *machine-side* hooks
    apply (config overrides, SeMPE hardware, fences, exit flush); the
    scheme's compiler transform is the caller's business — this class
    runs already-compiled programs.  The legacy ``sempe`` bool remains
    as an alias for the ``sempe``/``plain`` schemes.
    """

    def __init__(self, config: MachineConfig | None = None,
                 sempe: bool | None = None, engine: str | None = None,
                 defense: str | DefenseSpec | None = None) -> None:
        if defense is not None and sempe is not None:
            raise ValueError(
                "pass defense= or the legacy sempe= flag, not both")
        self.defense = resolve_defense(defense, sempe)
        self.config = self.defense.apply_config(config or MachineConfig())
        self.sempe = self.defense.sempe_machine
        self.engine = engine

    def run(self, program: Program,
            max_instructions: int = 50_000_000) -> SimulationReport:
        """Execute *program* functionally and through the timing model."""
        config = self.config
        engine = _resolve_engine(self.engine)
        spm = ScratchpadMemory(
            n_slots=config.spm_slots,
            n_arch_regs=NUM_REGS,
            bytes_per_cycle=config.spm_bytes_per_cycle,
        )
        # The SPM *timing* uses the paper's architectural state size so
        # snapshot traffic matches the paper's machine even though our ISA
        # has fewer registers.
        mechanism = make_snapshot_mechanism(
            config.snapshot_mechanism,
            n_arch_regs=config.spm_arch_regs,
            n_phys_regs=config.int_phys_regs,
            spm_bytes_per_cycle=config.spm_bytes_per_cycle,
        )
        jbtable = JumpBackTable(depth=config.jbtable_depth)
        pipeline = OutOfOrderPipeline(config, sempe=self.sempe,
                                      fence=self.defense.fence_branches)
        pipeline.rename_overhead = mechanism.rename_overhead_per_instruction()
        scale = _drain_scale(mechanism, spm)

        if engine == "fast":
            executor = FastExecutor(
                program,
                sempe=self.sempe,
                spm=spm,
                jbtable=jbtable,
                max_instructions=max_instructions,
                speculation=config.speculation,
                fence=self.defense.fence_branches,
            )
            chunks = executor.run_chunks(
                line_bytes=config.hierarchy.il1.line_bytes)
            if scale != 1.0:
                chunks = _scale_chunk_drains(chunks, scale)
            stats = pipeline.run_chunks(chunks)
        elif engine == "batch":
            from repro.arch.batch import BatchExecutor
            from repro.uarch.batch_pipeline import lane_outcomes

            executor = BatchExecutor(
                program,
                sempe=self.sempe,
                n_lanes=1,
                spm=spm,
                jbtable=jbtable,
                max_instructions=max_instructions,
                speculation=config.speculation,
                fence=self.defense.fence_branches,
            )
            executor.run(line_bytes=config.hierarchy.il1.line_bytes)
            # The batched timing path: digest-keyed memoization plus
            # lockstep lane sharing (one lane here, but repeated
            # simulate() calls on the same machine/stream hit the memo).
            # Flush-on-exit and drain scaling are applied inside, so the
            # generic post-run blocks below must not repeat them.
            outcome = lane_outcomes(
                executor, config,
                sempe=self.sempe,
                fence=self.defense.fence_branches,
                defense_fingerprint=self.defense.fingerprint(),
                flush_penalty=flush_penalty_cycles(config)
                if self.defense.flush_on_exit else 0,
                drain_scale=scale,
                rename_overhead=pipeline.rename_overhead,
            )[0]
            if outcome is None:
                raise executor.lane_error(0)
            stats = outcome.stats
        else:
            executor = Executor(
                program,
                sempe=self.sempe,
                spm=spm,
                jbtable=jbtable,
                max_instructions=max_instructions,
                speculation=config.speculation,
                fence=self.defense.fence_branches,
            )
            trace = _scale_drains(executor.run(), scale) if scale != 1.0 \
                else executor.run()
            stats = pipeline.run(trace)
        if engine == "batch":
            functional = executor.lane_result(0)
            final_regs = executor.lane_regs(0)
            miss_rates = outcome.miss_rates
        else:
            if self.defense.flush_on_exit:
                # Constant-cost exit flush; the residue itself is cleared
                # so post-run observers see a secret-independent machine.
                stats.cycles += flush_penalty_cycles(config)
                pipeline.flush_transient_state()
            functional = executor.result
            final_regs = executor.state.snapshot_regs()
            miss_rates = pipeline.hierarchy.miss_rates()
        return SimulationReport(
            program_name=program.name,
            sempe=self.sempe,
            cycles=stats.cycles,
            functional=functional,
            pipeline=stats,
            miss_rates=miss_rates,
            final_regs=final_regs,
        )


def _drain_scale(mechanism, spm: ScratchpadMemory) -> float:
    """SPM-traffic ratio of the configured mechanism vs ArchRS.

    The functional executor charges ArchRS-shaped SPM cycles into its
    drain events; alternative mechanisms (PhyRS, LRS) scale that traffic
    by the ratio of their per-snapshot footprint.
    """
    if mechanism.name == "ArchRS":
        return 1.0
    from repro.core.snapshots import ArchRS

    reference = ArchRS(
        n_arch_regs=mechanism.n_arch_regs,
        n_phys_regs=mechanism.n_phys_regs,
        reg_bytes=mechanism.reg_bytes,
        spm_bytes_per_cycle=mechanism.spm_bytes_per_cycle,
    )
    return mechanism.snapshot_bytes() / max(reference.snapshot_bytes(), 1)


def _lane_chunk_stream(executor, lane: int):
    """One batch lane's chunks, re-raising its fault where the serial
    engine's generator would have (after the fully-flushed chunks)."""
    yield from executor.lane_chunks(lane)
    error = executor.lane_error(lane)
    if error is not None:
        raise error


def _scale_drains(trace, scale: float):
    for record in trace:
        if record.kind == "drain":
            record.spm_cycles = max(1, int(round(record.spm_cycles * scale)))
        yield record


def _scale_chunk_drains(chunks, scale: float):
    """Chunked twin of :func:`_scale_drains`; the canonical
    implementation lives with the batched timing path so both the fast
    and batch engines scale drains identically."""
    from repro.uarch.batch_pipeline import scale_chunk_drains

    return scale_chunk_drains(chunks, scale)


_SEMPE_UNSET = object()


def simulate(
    program: Program,
    sempe: bool = _SEMPE_UNSET,
    config: MachineConfig | None = None,
    max_instructions: int = 50_000_000,
    engine: str | None = None,
    defense: str | DefenseSpec | None = None,
) -> SimulationReport:
    """Run *program* under a protection scheme and report.

    ``defense`` names a registered scheme (``repro defenses list``)
    whose machine-side hooks apply; the default is ``"sempe"``, the
    historical behavior.  ``sempe=True/False`` remains as a deprecated
    alias for ``defense="sempe"``/``defense="plain"``.

    ``engine`` selects the simulation engine (``"fast"``/``"reference"``,
    default :func:`get_default_engine`); both produce bit-identical
    reports.
    """
    if sempe is not _SEMPE_UNSET:
        if defense is not None:
            raise ValueError(
                "pass defense= or the deprecated sempe= flag, not both")
        warnings.warn(
            "simulate(sempe=...) is deprecated; use "
            "defense='sempe'/'plain' (or any registered defense)",
            DeprecationWarning, stacklevel=2)
        defense = "sempe" if sempe else "plain"
    machine = SempeMachine(config=config, engine=engine,
                           defense=defense)
    return machine.run(program, max_instructions=max_instructions)
