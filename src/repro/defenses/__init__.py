"""Protection-scheme registry: defenses as first-class, sweepable specs.

See :mod:`repro.defenses.registry` for the model and
:mod:`repro.defenses.builtin` for the built-in schemes.
"""

from repro.defenses.registry import (
    LEGACY_MODES,
    DefenseError,
    DefenseSpec,
    defense,
    defense_names,
    get_defense,
    iter_defenses,
    load_all,
    register,
    sempe_machine,
)

__all__ = [
    "LEGACY_MODES",
    "DefenseError",
    "DefenseSpec",
    "defense",
    "defense_names",
    "get_defense",
    "iter_defenses",
    "load_all",
    "register",
    "sempe_machine",
]
