"""The built-in protection schemes.

The first three are the paper's comparison points (the legacy ``mode``
axis, now registered like everything else); the other four are classic
mitigations from the side-channel literature, each working at a
different layer of the stack:

* ``fence``       — compiler + front end: serialize at secret branches;
* ``cache-partition`` — memory system: way-partitioned caches;
* ``cache-randomize`` — memory system: keyed set-index permutation;
* ``flush-local`` — runtime: flush transient state at region exit.

Every ``protects`` claim is checked empirically by the attack matrix
and the defense tests: an attacker exploiting a declared-protected
channel must land at chance, and on ``plain`` it must recover the key.
"""

from __future__ import annotations

from repro.defenses.registry import defense
from repro.security.leakage import CHANNELS

# Keys for the randomized caches: fixed per scheme so runs are
# reproducible, distinct per level so the levels' permutations differ.
_INDEX_KEYS = {"il1": 0x9E3779B9, "dl1": 0x85EBCA6B, "l2": 0xC2B2AE35}


@defense(name="plain", title="unprotected baseline",
         compile_mode="plain", sempe_machine=False, protects=())
def plain():
    """No mitigation: natural code on the baseline machine."""
    return {}


@defense(name="sempe", title="SeMPE dual-path execution",
         compile_mode="sempe", sempe_machine=True,
         protects=CHANNELS)
def sempe():
    """The paper's scheme: both paths of every secret branch execute
    and commit, so no *committed-state* channel depends on the secret —
    the claim is exactly :data:`~repro.security.leakage.CHANNELS`, the
    architectural channel set.  It deliberately excludes
    ``transient-memory``: dual-path execution restructures what the
    program commits, while the transient channel is carried by
    wrong-path accesses the commit stream never contains, so a
    speculation window leaks through SeMPE unchanged (the spectre
    victim demonstrates it)."""
    return {}


@defense(name="cte", title="constant-time expressions (FaCT-like)",
         compile_mode="cte", sempe_machine=False,
         protects=("timing", "instruction-count", "control-flow",
                   "branch-predictor"))
def cte():
    """Compiler-level constant-time transformation: secret branches
    become predicated straight-line code on the baseline machine."""
    return {}


@defense(name="fence", title="serializing fences at secret branches",
         compile_mode="fence", sempe_machine=False, fence_branches=True,
         protects=("branch-predictor", "transient-memory"))
def fence():
    """Secret branches and double-fetch guards carry the SecPrefix and
    the front end serializes on them: no prediction, no BTB/history
    update, no fetch past the unresolved condition (the lfence-style
    software mitigation).  Serialization also kills the speculation
    window at the marked branch — the wrong path never issues — which
    is why this is the one scheme here that closes the
    ``transient-memory`` channel."""
    return {}


@defense(name="cache-partition", title="way-partitioned caches",
         compile_mode="plain", sempe_machine=False,
         protects=("cache-state",))
def cache_partition():
    """Statically way-partition every cache between the victim and the
    rest of the system (CAT/DAWG-style): the victim's lines live in a
    reserved way per set the attacker cannot prime or probe, so the
    occupancy it measures is secret-independent; the victim pays the
    reduced effective associativity."""
    return {
        "hierarchy.il1.protected_ways": 1,
        "hierarchy.dl1.protected_ways": 1,
        "hierarchy.l2.protected_ways": 1,
    }


@defense(name="cache-randomize", title="keyed set-index randomization",
         compile_mode="plain", sempe_machine=False,
         protects=("cache-state",))
def cache_randomize():
    """CEASER-style keyed permutation of the set index in every cache:
    the attacker cannot map addresses to sets, so eviction-set
    construction outruns the rekeying period and a single run resolves
    no per-set occupancy; the victim pays the permuted conflict
    pattern."""
    return {
        "hierarchy.il1.index_key": _INDEX_KEYS["il1"],
        "hierarchy.dl1.index_key": _INDEX_KEYS["dl1"],
        "hierarchy.l2.index_key": _INDEX_KEYS["l2"],
    }


@defense(name="flush-local", title="transient-state flush at exit",
         compile_mode="plain", sempe_machine=False, flush_on_exit=True,
         protects=("cache-state", "branch-predictor"))
def flush_local():
    """Flush the microarchitectural residue when the secure region
    (here: the victim) exits — caches invalidated, branch predictors
    reset — so post-run probes see a constant machine; the victim pays
    a geometry-proportional flush cost and cold state afterwards."""
    return {}
