"""Declarative protection-scheme (defense) registry.

PR 3 made victims first-class, PR 4 made attackers first-class; this
module does the same for the third axis of the threat model: the
*defense* the victim runs under.  A :class:`DefenseSpec` bundles
everything the toolchain needs to know about one mitigation —

* the **compiler transform** (one of :data:`repro.lang.compiler.MODES`)
  that lowers the victim's source for this scheme,
* whether the binary runs on the **SeMPE machine** (dual-path secure
  regions, drains) or the baseline core,
* **machine hooks**: serialize-at-secret-branches (``fence_branches``),
  flush-transient-state-at-exit (``flush_on_exit``),
* **MachineConfig overrides** (dotted paths, e.g.
  ``hierarchy.dl1.protected_ways``) applied to a deep copy of the
  caller's config — shared defaults are never mutated,
* the **declared-protected channels** the scheme claims to close (the
  attack matrix checks each claim empirically), and
* a **JSON-safe fingerprint** so the harness can key cached results on
  the defense's full structural identity.

Registering a defense (via the :func:`defense` decorator on its
config-overrides builder) enrolls it in ``repro defenses list/show``,
the ``--defense`` CLI flag, the ``leakmatrix``/``defensematrix``/
``attacks`` experiments, and the sweep grids.  The three legacy
compiler modes (``plain``/``sempe``/``cte``) are themselves registered
defenses, which is what lets every ``mode`` string in the harness
become a defense name with unchanged behavior.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

# Modules that register defenses on import (the same lazy-load pattern
# as the workload registry: load_all() imports them all, and this
# module stays importable by anything without cycles).
_DEFENSE_MODULES = ("repro.defenses.builtin",)

_REGISTRY: dict[str, "DefenseSpec"] = {}
_loaded = False

# The three compiler modes that predate the registry.  ``--mode`` stays
# a back-compat alias restricted to these; ``--defense`` accepts any
# registered scheme.
LEGACY_MODES = ("plain", "sempe", "cte")


class DefenseError(ValueError):
    """Raised on invalid registration or lookup."""


@dataclass(frozen=True)
class DefenseSpec:
    """Everything the toolchain knows about one protection scheme."""

    name: str
    title: str
    compile_mode: str                  # lang transform (MODES member)
    sempe_machine: bool = False        # dual-path SeMPE hardware
    fence_branches: bool = False       # serialize at SecPrefix branches
    flush_on_exit: bool = False        # flush caches+predictors at exit
    config_overrides: dict = field(default_factory=dict)
    protects: tuple[str, ...] = ()     # declared-protected channels
    description: str = ""

    # -- claims ----------------------------------------------------------

    def protects_channel(self, channel: str) -> bool:
        return channel in self.protects

    # -- machine configuration -------------------------------------------

    def apply_config(self, config):
        """*config* with this defense's overrides applied.

        Returns *config* itself when there is nothing to override (the
        legacy modes), else a **deep copy** with each dotted-path
        override set — the input, and any defaults it shares structure
        with, are never mutated.  Unknown paths are rejected so a typo
        in an override fails the run instead of silently configuring
        nothing.
        """
        if not self.config_overrides:
            return config
        import copy

        derived = copy.deepcopy(config)
        for path, value in self.config_overrides.items():
            target = derived
            head, _, rest = path.partition(".")
            while rest:
                if not hasattr(target, head):
                    raise DefenseError(
                        f"defense {self.name!r} overrides unknown config "
                        f"path {path!r}")
                target = getattr(target, head)
                head, _, rest = rest.partition(".")
            if not hasattr(target, head):
                raise DefenseError(
                    f"defense {self.name!r} overrides unknown config "
                    f"path {path!r}")
            setattr(target, head, value)
        return derived

    # -- identity --------------------------------------------------------

    def describe(self) -> dict:
        """JSON-safe structural identity plus the display metadata."""
        return {
            "name": self.name,
            "title": self.title,
            "compile_mode": self.compile_mode,
            "sempe_machine": self.sempe_machine,
            "fence_branches": self.fence_branches,
            "flush_on_exit": self.flush_on_exit,
            "config_overrides": dict(self.config_overrides),
            "protects": list(self.protects),
        }

    def fingerprint(self) -> str:
        """SHA-256 content address of the scheme's structural identity.

        The same canonical-JSON notion the result store uses; the
        harness mixes this into every cell descriptor so a change to a
        defense's semantics re-addresses its cached results.
        """
        from repro.harness.store import fingerprint

        return fingerprint(self.describe())


# --------------------------------------------------------------------------
# Registration
# --------------------------------------------------------------------------


def register(spec: DefenseSpec) -> DefenseSpec:
    """Add *spec* to the registry (duplicate names are rejected)."""
    if spec.name in _REGISTRY:
        raise DefenseError(
            f"defense {spec.name!r} is already registered; "
            "names must be unique")
    from repro.lang.compiler import MODES

    if spec.compile_mode not in MODES:
        raise DefenseError(
            f"defense {spec.name!r} declares unknown compile mode "
            f"{spec.compile_mode!r}; choose from {MODES}")
    from repro.security.leakage import ALL_CHANNELS

    unknown = [c for c in spec.protects if c not in ALL_CHANNELS]
    if unknown:
        raise DefenseError(
            f"defense {spec.name!r} claims to protect unknown channels "
            f"{unknown}; choose from {ALL_CHANNELS}")
    _REGISTRY[spec.name] = spec
    return spec


def defense(*, name: str, title: str, compile_mode: str,
            sempe_machine: bool = False,
            fence_branches: bool = False,
            flush_on_exit: bool = False,
            protects: tuple[str, ...] = ()):
    """Decorator: register the decorated config-overrides builder.

    The builder is called once at registration and must return the
    defense's ``MachineConfig`` override dict (dotted paths; empty for
    schemes that change no machine parameter).  Its docstring becomes
    the defense's description.
    """
    def wrap(builder: Callable[[], dict]) -> Callable[[], dict]:
        register(DefenseSpec(
            name=name, title=title, compile_mode=compile_mode,
            sempe_machine=sempe_machine, fence_branches=fence_branches,
            flush_on_exit=flush_on_exit,
            config_overrides=dict(builder() or {}),
            protects=tuple(protects),
            description=(builder.__doc__ or "").strip().split("\n")[0],
        ))
        return builder
    return wrap


# --------------------------------------------------------------------------
# Lookup
# --------------------------------------------------------------------------


def load_all() -> None:
    """Import every defense module (idempotent; see workload registry)."""
    global _loaded
    if _loaded:
        return
    _loaded = True
    import importlib

    try:
        for module in _DEFENSE_MODULES:
            importlib.import_module(module)
    except BaseException:
        _loaded = False
        raise


def defense_names() -> list[str]:
    load_all()
    return sorted(_REGISTRY)


def iter_defenses() -> list[DefenseSpec]:
    load_all()
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def get_defense(name: str) -> DefenseSpec:
    load_all()
    spec = _REGISTRY.get(name)
    if spec is None:
        raise DefenseError(
            f"unknown defense {name!r}; choose from {sorted(_REGISTRY)}")
    return spec


def sempe_machine(name: str) -> bool:
    """Whether defense *name* runs on the SeMPE machine.

    The registry-backed replacement for the old ``mode == "sempe"``
    string comparisons, for callers that hold only a defense *name*;
    code that already resolved a :class:`DefenseSpec` reads its
    ``sempe_machine`` attribute directly.
    """
    return get_defense(name).sempe_machine
