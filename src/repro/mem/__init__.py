"""Memory-system substrate: flat backing memory, caches, prefetchers,
the cache hierarchy used by the timing model, and the SeMPE ScratchPad
Memory (SPM).
"""

from repro.mem.memory import FlatMemory
from repro.mem.cache import Cache, CacheConfig, CacheStats
from repro.mem.prefetch import StridePrefetcher, StreamPrefetcher
from repro.mem.hierarchy import MemoryHierarchy, HierarchyConfig, AccessResult
from repro.mem.scratchpad import ScratchpadMemory

__all__ = [
    "FlatMemory",
    "Cache",
    "CacheConfig",
    "CacheStats",
    "StridePrefetcher",
    "StreamPrefetcher",
    "MemoryHierarchy",
    "HierarchyConfig",
    "AccessResult",
    "ScratchpadMemory",
]
