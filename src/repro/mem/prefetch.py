"""Hardware prefetchers: stride (L1 data) and stream (L2), per Table II.

Both produce candidate prefetch line addresses that the hierarchy installs
into the corresponding cache.  They are intentionally simple but stateful,
so that dual-path execution produces the cross-path prefetching effect the
paper observes (one path warming lines for the other).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class _StrideEntry:
    last_address: int
    stride: int
    confidence: int


class StridePrefetcher:
    """PC-indexed stride prefetcher (used at the DL1 in the paper).

    Tracks per-PC access strides; after two consecutive accesses with the
    same stride it prefetches ``degree`` lines ahead.
    """

    def __init__(self, table_size: int = 64, degree: int = 2,
                 line_bytes: int = 64) -> None:
        self.table_size = table_size
        self.degree = degree
        self.line_bytes = line_bytes
        self._table: dict[int, _StrideEntry] = {}
        self.issued = 0

    def observe(self, pc: int, address: int) -> list[int]:
        """Record a demand access; return byte addresses to prefetch."""
        entry = self._table.get(pc)
        if entry is None:
            if len(self._table) >= self.table_size:
                # FIFO eviction of the oldest trained PC.
                self._table.pop(next(iter(self._table)))
            self._table[pc] = _StrideEntry(address, 0, 0)
            return []
        stride = address - entry.last_address
        if stride != 0 and stride == entry.stride:
            entry.confidence = min(entry.confidence + 1, 3)
        else:
            entry.confidence = max(entry.confidence - 1, 0)
            entry.stride = stride
        entry.last_address = address
        if entry.confidence >= 2 and entry.stride != 0:
            prefetches = [
                address + entry.stride * (index + 1)
                for index in range(self.degree)
            ]
            self.issued += len(prefetches)
            return [addr for addr in prefetches if addr >= 0]
        return []

    def reset(self) -> None:
        self._table.clear()
        self.issued = 0


class StreamPrefetcher:
    """Next-line stream prefetcher (used at the L2 in the paper).

    Detects monotone streams of miss line-addresses and prefetches the
    next ``degree`` sequential lines of an established stream.
    """

    def __init__(self, n_streams: int = 8, degree: int = 4,
                 line_bytes: int = 64) -> None:
        self.n_streams = n_streams
        self.degree = degree
        self.line_bytes = line_bytes
        # Each stream: [last_line, direction, confidence]
        self._streams: list[list[int]] = []
        self.issued = 0

    def observe_miss(self, address: int) -> list[int]:
        """Record a demand miss; return byte addresses to prefetch."""
        line = address // self.line_bytes
        for stream in self._streams:
            last_line, direction, confidence = stream
            delta = line - last_line
            if delta == 0:
                return []
            if abs(delta) <= 2 and (direction == 0 or (delta > 0) == (direction > 0)):
                stream[0] = line
                stream[1] = 1 if delta > 0 else -1
                stream[2] = min(confidence + 1, 4)
                if stream[2] >= 2:
                    prefetches = [
                        (line + stream[1] * (index + 1)) * self.line_bytes
                        for index in range(self.degree)
                    ]
                    self.issued += len(prefetches)
                    return [addr for addr in prefetches if addr >= 0]
                return []
        self._streams.append([line, 0, 0])
        if len(self._streams) > self.n_streams:
            self._streams.pop(0)
        return []

    def reset(self) -> None:
        self._streams.clear()
        self.issued = 0
