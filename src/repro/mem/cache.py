"""Set-associative write-back, write-allocate cache with LRU replacement.

The timing model only needs hit/miss decisions, writeback counts, and
occupancy behaviour; cached data values live in the functional simulator's
:class:`repro.mem.memory.FlatMemory`, so lines here are tags only.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CacheConfig:
    """Geometry and latency of one cache level.

    Two per-level defense knobs (see :mod:`repro.defenses.builtin`):

    ``protected_ways``
        Way-partitioning (CAT/DAWG-style).  When non-zero, the victim's
        fills are confined to this many reserved ways per set — reduced
        effective associativity is the performance cost — and the
        attacker-facing views (:meth:`Cache.attacker_occupancy`,
        :meth:`Cache.attacker_resident_lines`) expose only the shared
        partition, which the victim never touches.

    ``index_key``
        Keyed set-index permutation (CEASER-style).  When non-zero, the
        set index is a keyed mix of the line address instead of its low
        bits — conflict patterns change, which is the performance cost —
        and the attacker-facing views collapse: without the key the
        attacker cannot build eviction sets within one rekeying period,
        so a single run resolves no per-set occupancy.
    """

    name: str
    size_bytes: int
    assoc: int
    line_bytes: int = 64
    hit_latency: int = 2
    protected_ways: int = 0
    index_key: int = 0

    @property
    def n_sets(self) -> int:
        n = self.size_bytes // (self.assoc * self.line_bytes)
        if n <= 0:
            raise ValueError(f"{self.name}: size too small for geometry")
        return n


@dataclass
class CacheStats:
    """Per-cache counters, split explicitly into demand and prefetch.

    ``demand_accesses``/``demand_misses`` count only program-issued
    accesses (:meth:`Cache.access`); prefetcher-installed lines are
    tracked separately in ``prefetch_fills``.  Keeping the populations
    disjoint is what makes ``hits`` well-defined: a prefetch fill can
    never be recorded as a demand miss without a matching demand access,
    so ``demand_accesses - demand_misses`` cannot go negative.  The
    :meth:`validate` invariants are asserted by the tier-1 memory tests
    after every workload they run.

    ``accesses``/``misses``/``prefetches`` remain as read-only aliases
    for the pre-split field names.
    """

    demand_accesses: int = 0
    demand_misses: int = 0
    writebacks: int = 0
    prefetch_fills: int = 0
    prefetch_hits: int = 0   # demand hits on prefetched lines

    @property
    def accesses(self) -> int:
        return self.demand_accesses

    @property
    def misses(self) -> int:
        return self.demand_misses

    @property
    def prefetches(self) -> int:
        return self.prefetch_fills

    @property
    def hits(self) -> int:
        hits = self.demand_accesses - self.demand_misses
        if hits < 0:
            raise ValueError(
                f"cache accounting corrupt: {self.demand_misses} demand "
                f"misses exceed {self.demand_accesses} demand accesses "
                "(a non-demand fill was counted as a miss?)")
        return hits

    @property
    def miss_rate(self) -> float:
        if self.demand_accesses == 0:
            return 0.0
        return self.demand_misses / self.demand_accesses

    def validate(self) -> None:
        """Raise ``ValueError`` if any accounting invariant is broken."""
        for name in ("demand_accesses", "demand_misses", "writebacks",
                     "prefetch_fills", "prefetch_hits"):
            if getattr(self, name) < 0:
                raise ValueError(f"cache counter {name} is negative")
        if self.demand_misses > self.demand_accesses:
            raise ValueError(
                "more demand misses than demand accesses "
                f"({self.demand_misses} > {self.demand_accesses})")
        if self.prefetch_hits > self.prefetch_fills:
            raise ValueError(
                "more prefetch hits than prefetch fills "
                f"({self.prefetch_hits} > {self.prefetch_fills})")
        if self.prefetch_hits > self.demand_accesses:
            raise ValueError(
                "more prefetch hits than demand accesses "
                f"({self.prefetch_hits} > {self.demand_accesses})")

    def reset(self) -> None:
        self.demand_accesses = 0
        self.demand_misses = 0
        self.writebacks = 0
        self.prefetch_fills = 0
        self.prefetch_hits = 0


class _Line:
    __slots__ = ("tag", "dirty", "prefetched")

    def __init__(self, tag: int, dirty: bool, prefetched: bool) -> None:
        self.tag = tag
        self.dirty = dirty
        self.prefetched = prefetched


class Cache:
    """One level of tag-only set-associative cache.

    Each set is an ordered dict from tag to :class:`_Line`; ordering
    encodes recency (last item = most recently used).
    """

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self.stats = CacheStats()
        self._sets: list[dict[int, _Line]] = [
            {} for _ in range(config.n_sets)
        ]
        self._line_shift = config.line_bytes.bit_length() - 1
        if (1 << self._line_shift) != config.line_bytes:
            raise ValueError("line size must be a power of two")
        if not 0 <= config.protected_ways <= config.assoc:
            raise ValueError(
                f"{config.name}: protected_ways={config.protected_ways} "
                f"must be between 0 and assoc={config.assoc}")
        # Way partitioning confines the victim to the reserved ways.
        self._fill_assoc = config.protected_ways or config.assoc

    # -- address mapping ----------------------------------------------------

    def line_address(self, address: int) -> int:
        return address >> self._line_shift

    def set_index(self, line_address: int) -> int:
        key = self.config.index_key
        if key:
            mixed = ((line_address ^ key) * 0x9E3779B97F4A7C15) \
                & 0xFFFFFFFFFFFFFFFF
            return (mixed >> 17) % self.config.n_sets
        return line_address % self.config.n_sets

    # -- operations ------------------------------------------------------------

    def access(self, address: int, is_write: bool) -> bool:
        """Demand access.  Returns True on hit.

        On a miss the caller is responsible for filling (after fetching
        from the next level) via :meth:`fill`.
        """
        self.stats.demand_accesses += 1
        line_address = self.line_address(address)
        cache_set = self._sets[self.set_index(line_address)]
        line = cache_set.get(line_address)
        if line is None:
            self.stats.demand_misses += 1
            return False
        # LRU bump.
        del cache_set[line_address]
        cache_set[line_address] = line
        if line.prefetched:
            self.stats.prefetch_hits += 1
            line.prefetched = False
        if is_write:
            line.dirty = True
        return True

    def fill(self, address: int, is_write: bool = False,
             prefetched: bool = False) -> int | None:
        """Install the line containing *address*.

        Returns the byte address of an evicted dirty line (for writeback
        accounting) or ``None``.
        """
        line_address = self.line_address(address)
        cache_set = self._sets[self.set_index(line_address)]
        victim_address = None
        if line_address in cache_set:
            line = cache_set.pop(line_address)
            line.dirty = line.dirty or is_write
            line.prefetched = line.prefetched and prefetched
            cache_set[line_address] = line
            return None
        if len(cache_set) >= self._fill_assoc:
            victim_tag, victim = next(iter(cache_set.items()))
            del cache_set[victim_tag]
            if victim.dirty:
                self.stats.writebacks += 1
                victim_address = victim_tag << self._line_shift
        cache_set[line_address] = _Line(line_address, is_write, prefetched)
        if prefetched:
            self.stats.prefetch_fills += 1
        return victim_address

    def contains(self, address: int) -> bool:
        """Non-updating lookup (used by observers / prefetchers)."""
        line_address = self.line_address(address)
        return line_address in self._sets[self.set_index(line_address)]

    def reset_stats(self) -> None:
        """Start a new measurement epoch.

        Clears the counters *and* the resident lines' prefetched flags:
        a line prefetched before the reset must not produce a
        ``prefetch_hits`` increment in the new epoch (whose
        ``prefetch_fills`` is zero), or the epoch's invariants —
        ``prefetch_hits <= prefetch_fills`` — would break on a healthy
        cache.  Always reset through this method, not ``stats.reset()``
        directly, so counters and flags restart together.
        """
        self.stats.reset()
        for cache_set in self._sets:
            for line in cache_set.values():
                line.prefetched = False

    def invalidate_all(self) -> None:
        for cache_set in self._sets:
            cache_set.clear()

    def resident_lines(self) -> set[int]:
        """Set of resident line addresses (for cache-channel observers)."""
        resident: set[int] = set()
        for cache_set in self._sets:
            resident.update(cache_set.keys())
        return resident

    def set_occupancy(self) -> list[int]:
        """Number of valid lines per set (the machine's ground truth)."""
        return [len(cache_set) for cache_set in self._sets]

    # -- attacker-facing views ----------------------------------------------
    #
    # What a prime-and-probe adversary actually resolves, per the
    # configured defense.  Undefended caches expose the full per-set
    # footprint; a partitioned cache exposes only the shared ways (which
    # the victim never fills); a randomized cache exposes nothing
    # set-resolved within one rekeying period.

    def attacker_occupancy(self) -> list[int]:
        """Per-set victim footprint as the adversary measures it."""
        if self.config.protected_ways:
            # The victim lives entirely in the reserved partition; the
            # shared ways the attacker primes are never evicted.
            return [0] * self.config.n_sets
        if self.config.index_key:
            # No eviction sets without the key: no per-set resolution.
            return []
        return self.set_occupancy()

    def attacker_resident_lines(self) -> set[int]:
        """Residency as the adversary can enumerate it (for the
        cache-state channel digest)."""
        if self.config.protected_ways or self.config.index_key:
            return set()
        return self.resident_lines()
