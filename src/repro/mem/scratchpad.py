"""ScratchPad Memory (SPM) for ArchRS register snapshots.

Per the paper (Table II and §IV-F): the SPM holds up to 30 snapshots
(one per supported sJMP nesting level), each snapshot containing two
architectural-register states plus two modified-register bit-vectors
(7392 bytes per SecBlock on the paper's 48-register x86_64).  Transfer
throughput is 64 bytes/cycle for both reads and writes.

The SPM here plays two roles:

* **functional** — it stores the snapshot values the SeMPE engine saves
  and restores (nesting level is the slot index);
* **timing** — :meth:`save_cycles` / :meth:`restore_cycles` give the
  pipeline the number of cycles the transfer occupies.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class SPMOverflowError(Exception):
    """Raised when sJMP nesting exceeds the number of SPM snapshot slots."""


@dataclass
class Snapshot:
    """One nesting level's worth of saved architectural state."""

    entry_regs: list[int] | None = None        # state before the SecBlock
    nt_regs: list[int] | None = None           # state after the NT path
    t_modified: set[int] = field(default_factory=set)
    nt_modified: set[int] = field(default_factory=set)


class ScratchpadMemory:
    """Snapshot storage with cycle-accounting, indexed by nesting level."""

    def __init__(
        self,
        n_slots: int = 30,
        n_arch_regs: int = 48,
        bytes_per_cycle: int = 64,
        reg_bytes: int = 8,
    ) -> None:
        self.n_slots = n_slots
        self.n_arch_regs = n_arch_regs
        self.bytes_per_cycle = bytes_per_cycle
        self.reg_bytes = reg_bytes
        self._slots: list[Snapshot | None] = [None] * n_slots
        self.save_ops = 0
        self.restore_ops = 0
        self.bytes_written = 0
        self.bytes_read = 0

    # -- sizes -----------------------------------------------------------------

    @property
    def regstate_bytes(self) -> int:
        return self.n_arch_regs * self.reg_bytes

    @property
    def bitvector_bytes(self) -> int:
        return (self.n_arch_regs + 7) // 8

    @property
    def snapshot_bytes(self) -> int:
        """Total bytes per SecBlock snapshot (paper: 7392 B at 48 regs
        including RAT metadata; here two reg states + two bit-vectors)."""
        return 2 * self.regstate_bytes + 2 * self.bitvector_bytes

    @property
    def total_bytes(self) -> int:
        return self.n_slots * self.snapshot_bytes

    # -- functional operations -----------------------------------------------

    def slot(self, level: int) -> Snapshot:
        if level >= self.n_slots:
            raise SPMOverflowError(
                f"sJMP nesting {level + 1} exceeds SPM capacity {self.n_slots}"
            )
        snapshot = self._slots[level]
        if snapshot is None:
            snapshot = Snapshot()
            self._slots[level] = snapshot
        return snapshot

    def save_entry_state(self, level: int, regs: list[int]) -> int:
        """Save the pre-SecBlock register state; returns transfer cycles."""
        snapshot = self.slot(level)
        snapshot.entry_regs = list(regs)
        snapshot.t_modified = set()
        snapshot.nt_modified = set()
        snapshot.nt_regs = None
        self.save_ops += 1
        nbytes = self.regstate_bytes + self.bitvector_bytes
        self.bytes_written += nbytes
        return self._cycles(nbytes)

    def save_nt_state(self, level: int, regs: list[int],
                      nt_modified: set[int]) -> int:
        """Save the post-NT-path state (modified registers only)."""
        snapshot = self.slot(level)
        snapshot.nt_regs = list(regs)
        snapshot.nt_modified = set(nt_modified)
        self.save_ops += 1
        nbytes = (len(nt_modified) * self.reg_bytes) + self.bitvector_bytes
        self.bytes_written += nbytes
        return self._cycles(nbytes)

    def restore_cycles_for(self, level: int) -> int:
        """Cycles for the end-of-SecBlock restore.

        Registers modified in *either* path are always read from the SPM
        regardless of the branch outcome (the paper's constant-time
        restore), so the transfer size depends only on the union of the
        modified sets — never on the secret.
        """
        snapshot = self.slot(level)
        modified = snapshot.t_modified | snapshot.nt_modified
        nbytes = len(modified) * self.reg_bytes + 2 * self.bitvector_bytes
        self.bytes_read += nbytes
        self.restore_ops += 1
        return self._cycles(nbytes)

    def release(self, level: int) -> None:
        if level < self.n_slots:
            self._slots[level] = None

    def reset(self) -> None:
        self._slots = [None] * self.n_slots
        self.save_ops = 0
        self.restore_ops = 0
        self.bytes_written = 0
        self.bytes_read = 0

    # -- timing helpers -----------------------------------------------------------

    def _cycles(self, nbytes: int) -> int:
        return max(1, -(-nbytes // self.bytes_per_cycle))

    def entry_save_cycles(self) -> int:
        """Cycles to save a full architectural state (worst case)."""
        return self._cycles(self.regstate_bytes + self.bitvector_bytes)
