"""Flat byte-addressable backing memory.

The functional simulator reads and writes values here.  Storage is a
sparse ``dict`` of 8-byte-aligned words, which is compact for the large,
mostly-untouched address space the programs use (code, data, shadow,
heap, stack regions).
"""

from __future__ import annotations

MASK64 = (1 << 64) - 1


class FlatMemory:
    """Sparse 64-bit byte-addressable memory, zero-initialised."""

    def __init__(self, image: dict[int, int] | None = None) -> None:
        # Word-aligned storage: word address -> 64-bit little-endian value.
        self._words: dict[int, int] = {}
        if image:
            for address, byte in image.items():
                self.store(address, byte, width=1)

    # -- accessors -----------------------------------------------------------

    def load(self, address: int, width: int = 8) -> int:
        """Load *width* bytes (1 or 8) little-endian, zero-extended."""
        if width == 8 and address % 8 == 0:
            return self._words.get(address, 0)
        value = 0
        for byte_index in range(width):
            value |= self._load_byte(address + byte_index) << (8 * byte_index)
        return value

    def store(self, address: int, value: int, width: int = 8) -> None:
        """Store the low *width* bytes of *value* little-endian."""
        value &= (1 << (8 * width)) - 1
        if width == 8 and address % 8 == 0:
            self._words[address] = value
            return
        for byte_index in range(width):
            self._store_byte(address + byte_index, (value >> (8 * byte_index)) & 0xFF)

    def load_signed(self, address: int, width: int = 8) -> int:
        """Load and sign-extend."""
        value = self.load(address, width)
        sign_bit = 1 << (8 * width - 1)
        return (value ^ sign_bit) - sign_bit

    # -- bulk helpers ----------------------------------------------------------

    def load_quads(self, address: int, count: int) -> list[int]:
        """Load *count* consecutive 8-byte words."""
        return [self.load(address + 8 * index, 8) for index in range(count)]

    def store_quads(self, address: int, values: list[int]) -> None:
        for index, value in enumerate(values):
            self.store(address + 8 * index, value, 8)

    def copy(self) -> "FlatMemory":
        clone = FlatMemory()
        clone._words = dict(self._words)
        return clone

    def touched_words(self) -> dict[int, int]:
        """Word address -> value for every word ever written."""
        return dict(self._words)

    # -- internals ---------------------------------------------------------------

    def _load_byte(self, address: int) -> int:
        word_address = address & ~7
        shift = 8 * (address - word_address)
        return (self._words.get(word_address, 0) >> shift) & 0xFF

    def _store_byte(self, address: int, byte: int) -> None:
        word_address = address & ~7
        shift = 8 * (address - word_address)
        word = self._words.get(word_address, 0)
        word &= ~(0xFF << shift)
        word |= (byte & 0xFF) << shift
        self._words[word_address] = word
