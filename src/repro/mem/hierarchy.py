"""Multi-level cache hierarchy with latency accounting.

Models the Table II memory system: split IL1/DL1, unified L2, DRAM behind
it, a stride prefetcher training on DL1 accesses and a stream prefetcher
training on L2 misses.  The hierarchy returns an access latency in cycles;
the out-of-order pipeline uses it as the load-to-use latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mem.cache import Cache, CacheConfig
from repro.mem.prefetch import StridePrefetcher, StreamPrefetcher


@dataclass
class HierarchyConfig:
    """Geometry and latencies for the whole memory system (Table II)."""

    il1: CacheConfig = field(default_factory=lambda: CacheConfig(
        name="IL1", size_bytes=16 * 1024, assoc=2, hit_latency=1))
    dl1: CacheConfig = field(default_factory=lambda: CacheConfig(
        name="DL1", size_bytes=32 * 1024, assoc=2, hit_latency=2))
    l2: CacheConfig = field(default_factory=lambda: CacheConfig(
        name="L2", size_bytes=256 * 1024, assoc=2, hit_latency=12))
    dram_latency: int = 160
    enable_l1_prefetcher: bool = True
    enable_l2_prefetcher: bool = True


@dataclass
class AccessResult:
    """Outcome of one demand access."""

    latency: int
    l1_hit: bool
    l2_hit: bool


class MemoryHierarchy:
    """IL1 + DL1 + unified L2 + DRAM with prefetchers."""

    def __init__(self, config: HierarchyConfig | None = None) -> None:
        self.config = config or HierarchyConfig()
        self.il1 = Cache(self.config.il1)
        self.dl1 = Cache(self.config.dl1)
        self.l2 = Cache(self.config.l2)
        self.stride_prefetcher = StridePrefetcher(
            line_bytes=self.config.dl1.line_bytes)
        self.stream_prefetcher = StreamPrefetcher(
            line_bytes=self.config.l2.line_bytes)
        self.dram_accesses = 0

    # -- demand paths ----------------------------------------------------------

    def access_instruction(self, address: int) -> AccessResult:
        """Instruction fetch through IL1 -> L2 -> DRAM."""
        latency = self.config.il1.hit_latency
        if self.il1.access(address, is_write=False):
            return AccessResult(latency, l1_hit=True, l2_hit=False)
        l2_hit = self._l2_demand(address, is_write=False)
        latency += self.config.l2.hit_latency
        if not l2_hit:
            latency += self.config.dram_latency
        self.il1.fill(address)
        return AccessResult(latency, l1_hit=False, l2_hit=l2_hit)

    def access_data(self, pc: int, address: int, is_write: bool) -> AccessResult:
        """Data access through DL1 -> L2 -> DRAM, training the stride
        prefetcher on every access."""
        if self.config.enable_l1_prefetcher:
            for prefetch_address in self.stride_prefetcher.observe(pc, address):
                self._prefetch_into_dl1(prefetch_address)

        latency = self.config.dl1.hit_latency
        if self.dl1.access(address, is_write):
            return AccessResult(latency, l1_hit=True, l2_hit=False)
        l2_hit = self._l2_demand(address, is_write=False)
        latency += self.config.l2.hit_latency
        if not l2_hit:
            latency += self.config.dram_latency
        self.dl1.fill(address, is_write=is_write)
        return AccessResult(latency, l1_hit=False, l2_hit=l2_hit)

    # -- fast-path variants ------------------------------------------------------
    #
    # Same cache side effects as the access_* methods, but they return a
    # bare latency int instead of allocating an AccessResult.  The fast
    # engine's inner loop calls these; the reference engine keeps the
    # object-returning methods, so the parity suite covers both.

    def fetch_latency(self, address: int) -> int:
        """Instruction fetch; returns 0 on an IL1 hit, else the full
        miss latency (what the pipeline adds to the fetch cycle)."""
        if self.il1.access(address, is_write=False):
            return 0
        l2_hit = self._l2_demand(address, is_write=False)
        latency = self.config.il1.hit_latency + self.config.l2.hit_latency
        if not l2_hit:
            latency += self.config.dram_latency
        self.il1.fill(address)
        return latency

    def data_latency(self, pc: int, address: int, is_write: bool) -> int:
        """Data access; returns the load-to-use latency in cycles."""
        if self.config.enable_l1_prefetcher:
            for prefetch_address in self.stride_prefetcher.observe(pc, address):
                self._prefetch_into_dl1(prefetch_address)

        latency = self.config.dl1.hit_latency
        if self.dl1.access(address, is_write):
            return latency
        l2_hit = self._l2_demand(address, is_write=False)
        latency += self.config.l2.hit_latency
        if not l2_hit:
            latency += self.config.dram_latency
        self.dl1.fill(address, is_write=is_write)
        return latency

    # -- internals ---------------------------------------------------------------

    def _l2_demand(self, address: int, is_write: bool) -> bool:
        hit = self.l2.access(address, is_write)
        if not hit:
            self.dram_accesses += 1
            if self.config.enable_l2_prefetcher:
                for prefetch_address in self.stream_prefetcher.observe_miss(address):
                    if not self.l2.contains(prefetch_address):
                        self.l2.fill(prefetch_address, prefetched=True)
            self.l2.fill(address, is_write=is_write)
        return hit

    def _prefetch_into_dl1(self, address: int) -> None:
        if self.dl1.contains(address):
            return
        # The prefetch pulls the line through the L2 as well.
        if not self.l2.contains(address):
            self.l2.fill(address, prefetched=True)
        self.dl1.fill(address, prefetched=True)

    # -- reporting --------------------------------------------------------------

    def miss_rates(self) -> dict[str, float]:
        return {
            "IL1": self.il1.stats.miss_rate,
            "DL1": self.dl1.stats.miss_rate,
            "L2": self.l2.stats.miss_rate,
        }

    def reset_stats(self) -> None:
        # Cache.reset_stats (not stats.reset) so resident prefetched
        # flags restart with the counters — see its docstring.
        self.il1.reset_stats()
        self.dl1.reset_stats()
        self.l2.reset_stats()
        self.dram_accesses = 0
