"""Leak-site classification and the :class:`StaticLeakReport`.

The taint fixpoint (:class:`repro.analysis.dataflow.TaintDataflow`)
says *which* instructions touch secret data; this module says *what
that means for an attacker*.  Every potential leak site falls into one
of three kinds:

``branch``
    A conditional branch whose operands are tainted (or a ``JALR``
    whose target register is) — the direction taken depends on the
    secret.  Divergent control flow is the root of every channel the
    observer defines: the paths differ in length (timing,
    instruction-count), in the pc trace (control-flow), in the data
    they touch (memory-address, cache-state), and in the predictor
    updates they make (branch-predictor), so an unprotected branch
    site is charged with **all** channels.

``address``
    A load or store whose *address* is tainted — the access-stream
    position depends on the secret value itself, not just on the path.
    Charged with memory-address, cache-state and timing (hit/miss
    variation); this is the channel class dual-path execution does
    *not* close, which is why the verifier never discounts it for any
    scheme.

``latency``
    A ``MUL``/``DIV``/``REM`` with a tainted operand.  This pipeline
    model gives every op-class a fixed latency, so these sites carry
    **no** channels here — they are advisories flagging where a
    hardware early-out multiplier/divider would open a timing channel.

Channel *projection* then applies what a registered defense is known
to change about the machine:

* ``sempe_machine`` — a secure branch (and anything inside a secure
  region) executes both paths to the join, so protected branch sites
  are dropped, and so are *path-conditional* (control-only) accesses
  inside regions: both paths run, so the stream no longer depends on
  the secret.  A **secret-valued** (data-tainted) address is never
  dropped — dual-path hides which path ran, not the address itself.
* ``fence_branches`` — the front end neither predicts nor records a
  serialized branch, and serialization covers everything inside the
  fenced region (the pipeline checks ``secure or fence_depth > 0``),
  closing exactly the branch-predictor channel at those sites; the
  paths still differ in everything else.
* ``flush_on_exit`` — caches and predictors are reset before the
  attacker observes, so cache-state and branch-predictor are removed
  from every site; the in-band channels survive.
* config-only schemes (cache way-partitioning, index randomization)
  change *observability statistically*, which a per-site static rule
  cannot certify — their sites keep full channels and the claim is
  left to the empirical attack matrix (the verifier exempts them from
  the claims lint for the same reason).

What survives projection is the static *prediction*: the set of
channels an attacker could use against this compiled program under
this defense.  The differential gate checks it stays a superset of
what the dynamic noninterference experiment actually observes.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.analysis.dataflow import TAINT_DATA, TaintDataflow
from repro.analysis.speculative import speculative_sites
from repro.isa.opcodes import Op, is_cond_branch, is_load, is_store
from repro.isa.program import Program
from repro.security.leakage import ALL_CHANNELS, CHANNELS

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.defenses.registry import DefenseSpec

BRANCH_CHANNELS: tuple[str, ...] = CHANNELS
ADDRESS_CHANNELS: tuple[str, ...] = (
    "timing", "memory-address", "cache-state")
# A double-fetch site leaks through the wrong path's data-line stream:
# the transient digest (functional), plus cache/timing residue the
# squash does not undo.  The claims lint evaluates speculative sites
# against "transient-memory" only — the cache/timing charges describe
# the *transient* machine, which architectural defenses never see.
SPECULATIVE_CHANNELS: tuple[str, ...] = (
    "timing", "cache-state", "transient-memory")
LATENCY_POTENTIAL: tuple[str, ...] = ("timing",)

_LATENCY_OPS = (Op.MUL, Op.DIV, Op.REM)

SITE_KINDS = ("branch", "address", "latency", "speculative")


def _ordered(channels: Iterable[str]) -> tuple[str, ...]:
    """Channels in canonical :data:`ALL_CHANNELS` order (stable JSON)."""
    wanted = set(channels)
    return tuple(c for c in ALL_CHANNELS if c in wanted)


@dataclass(frozen=True)
class LeakSite:
    """One classified potential leak site in a compiled program."""

    index: int                   # instruction index
    pc: int                      # byte address (index * 4)
    line: int                    # source line (0 = no debug info)
    kind: str                    # "branch" | "address" | "latency"
    op: str                      # opcode mnemonic
    secure: bool                 # carries the SecPrefix (sJMP)
    region_protected: bool       # strictly inside a secure region
    control_only: bool           # tainted only via implicit flow (CTL)
    channels: tuple[str, ...]    # channels charged after projection
    potential: tuple[str, ...]   # hardware-risk advisories (latency)
    detail: str

    def to_dict(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "pc": self.pc,
            "line": self.line,
            "kind": self.kind,
            "op": self.op,
            "secure": self.secure,
            "region_protected": self.region_protected,
            "control_only": self.control_only,
            "channels": list(self.channels),
            "potential": list(self.potential),
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "LeakSite":
        return cls(
            index=int(data["index"]),
            pc=int(data["pc"]),
            line=int(data["line"]),
            kind=str(data["kind"]),
            op=str(data["op"]),
            secure=bool(data["secure"]),
            region_protected=bool(data["region_protected"]),
            control_only=bool(data.get("control_only", False)),
            channels=tuple(data["channels"]),
            potential=tuple(data.get("potential", ())),
            detail=str(data.get("detail", "")),
        )


@dataclass(frozen=True)
class StaticLeakReport:
    """Everything the static analyzer concluded about one compile."""

    program: str                     # program name
    defense: str                     # defense the projection applied
    secret_symbols: tuple[str, ...]
    sites: tuple[LeakSite, ...]
    instruction_count: int
    reachable_count: int

    # -- verdicts ---------------------------------------------------------

    def predicted_channels(self) -> tuple[str, ...]:
        """Union of channels over all sites (canonical order)."""
        union: set[str] = set()
        for site in self.sites:
            union.update(site.channels)
        return _ordered(union)

    def sites_of_kind(self, kind: str) -> tuple[LeakSite, ...]:
        return tuple(site for site in self.sites if site.kind == kind)

    def advisories(self) -> tuple[LeakSite, ...]:
        """Sites with no charged channels but a hardware-risk note."""
        return tuple(site for site in self.sites
                     if not site.channels and site.potential)

    # -- serialization ----------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "program": self.program,
            "defense": self.defense,
            "secret_symbols": list(self.secret_symbols),
            "sites": [site.to_dict() for site in self.sites],
            "instruction_count": self.instruction_count,
            "reachable_count": self.reachable_count,
            "predicted_channels": list(self.predicted_channels()),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "StaticLeakReport":
        return cls(
            program=str(data["program"]),
            defense=str(data["defense"]),
            secret_symbols=tuple(data["secret_symbols"]),
            sites=tuple(LeakSite.from_dict(s) for s in data["sites"]),
            instruction_count=int(data["instruction_count"]),
            reachable_count=int(data["reachable_count"]),
        )

    def summary(self) -> str:
        by_kind = {kind: len(self.sites_of_kind(kind))
                   for kind in SITE_KINDS}
        counts = ", ".join(f"{n} {kind}" for kind, n in by_kind.items()
                           if n) or "no sites"
        predicted = ", ".join(self.predicted_channels()) or "none"
        return (f"{self.program} [{self.defense}]: {counts}; "
                f"predicted channels: {predicted}")


# --------------------------------------------------------------------------
# Classification
# --------------------------------------------------------------------------


def classify_sites(flow: TaintDataflow,
                   speculation: bool = False) -> list[LeakSite]:
    """Raw (defense-independent) leak sites of one analyzed program.

    With *speculation* the machine under analysis has an in-flight
    speculation window: secret-dependent branch and address sites
    additionally leak through the wrong-path record stream (both paths
    of a secret branch execute transiently; a secret-valued address is
    touched on wrong paths too), and the double-fetch fixpoint
    (:mod:`repro.analysis.speculative`) contributes ``speculative``
    sites for accesses whose address a wrong path can derive from
    speculatively-read memory.  Off (the default) the classification is
    byte-identical to the pre-speculation analyzer.
    """
    program = flow.program
    transient: tuple[str, ...] = ("transient-memory",) if speculation else ()
    branch_channels = BRANCH_CHANNELS + transient
    address_channels = ADDRESS_CHANNELS + transient
    sites: list[LeakSite] = []
    for index, inst in enumerate(program.instructions):
        if not flow.reachable(index):
            continue
        op = inst.op
        depth = flow.region_depth(index)
        secure = bool(inst.secure)
        protected = depth > 0
        line = program.source_lines[index]
        pc = program.address_of(index)
        rs1_m, rs2_m = flow.operand_taints(index)
        operand_mask = rs1_m | rs2_m

        def ctl_only(mask: int) -> bool:
            return not mask & TAINT_DATA

        if is_cond_branch(op) and operand_mask:
            sites.append(LeakSite(
                index=index, pc=pc, line=line, kind="branch",
                op=op.name, secure=secure, region_protected=protected,
                control_only=ctl_only(operand_mask),
                channels=branch_channels, potential=(),
                detail=f"secret-dependent {op.name} direction"))
        elif op is Op.JALR and rs1_m:
            sites.append(LeakSite(
                index=index, pc=pc, line=line, kind="branch",
                op=op.name, secure=secure, region_protected=protected,
                control_only=ctl_only(rs1_m),
                channels=branch_channels, potential=(),
                detail="secret-dependent indirect-jump target"))
        elif is_load(op) or is_store(op):
            address_mask = flow.address_tainted(index)
            if address_mask:
                what = "load" if is_load(op) else "store"
                how = ("path-conditional" if ctl_only(address_mask)
                       else "secret-valued")
                sites.append(LeakSite(
                    index=index, pc=pc, line=line, kind="address",
                    op=op.name, secure=secure,
                    region_protected=protected,
                    control_only=ctl_only(address_mask),
                    channels=address_channels, potential=(),
                    detail=f"{how} {what} address"))
        elif op in _LATENCY_OPS and operand_mask:
            sites.append(LeakSite(
                index=index, pc=pc, line=line, kind="latency",
                op=op.name, secure=secure, region_protected=protected,
                control_only=ctl_only(operand_mask),
                channels=(), potential=LATENCY_POTENTIAL,
                detail=(f"{op.name} on secret operand "
                        "(fixed-latency in this pipeline; early-out "
                        "hardware would leak timing)")))
    if speculation:
        for index, detail in sorted(speculative_sites(flow).items()):
            inst = program.instructions[index]
            sites.append(LeakSite(
                index=index, pc=program.address_of(index),
                line=program.source_lines[index], kind="speculative",
                op=inst.op.name, secure=bool(inst.secure),
                region_protected=flow.region_depth(index) > 0,
                control_only=False,
                channels=SPECULATIVE_CHANNELS, potential=(),
                detail=detail))
    return sites


def project_sites(sites: list[LeakSite],
                  defense: "DefenseSpec | None") -> list[LeakSite]:
    """Apply a defense's known machine effects to the raw site list."""
    if defense is None:
        return list(sites)
    projected: list[LeakSite] = []
    for site in sites:
        channels = set(site.channels)
        if defense.sempe_machine:
            if site.kind == "branch" \
                    and (site.secure or site.region_protected):
                # Both paths execute and commit: the site vanishes.
                continue
            if site.kind == "address" and site.control_only \
                    and site.region_protected:
                # The access is conditional on *which path ran*, and
                # dual-path runs both: the stream is secret-independent.
                # A secret-valued (DATA-tainted) address is NOT dropped.
                continue
        if defense.fence_branches \
                and (site.secure or site.region_protected):
            if site.kind == "branch":
                # The front end neither predicts nor records a
                # serialized branch, and serialization covers the whole
                # fenced region (pipeline: ``inst.secure or
                # fence_depth > 0``).
                channels.discard("branch-predictor")
            if site.kind == "speculative":
                # Serialize-to-join kills the window: a marked branch
                # never forks, and a wrong path entering a fenced
                # region stops at its fence — the double fetch never
                # executes transiently.
                continue
            # A marked branch does not execute transiently at all, so
            # fenced branch/address sites lose the wrong-path channel
            # (the committed-path channels are untouched).
            channels.discard("transient-memory")
        if defense.flush_on_exit:
            channels.discard("cache-state")
            channels.discard("branch-predictor")
        projected.append(LeakSite(
            index=site.index, pc=site.pc, line=site.line,
            kind=site.kind, op=site.op, secure=site.secure,
            region_protected=site.region_protected,
            control_only=site.control_only,
            channels=_ordered(channels), potential=site.potential,
            detail=site.detail))
    return projected


def build_report(program: Program,
                 secret_symbols: dict[str, int],
                 defense: "DefenseSpec | None" = None,
                 flow: TaintDataflow | None = None,
                 speculation: bool = False) -> StaticLeakReport:
    """Analyze *program* and classify its sites under *defense*."""
    if flow is None:
        flow = TaintDataflow(program, secret_symbols)
    raw = classify_sites(flow, speculation=speculation)
    sites = project_sites(raw, defense)
    reachable = sum(1 for i in range(len(program.instructions))
                    if flow.reachable(i))
    return StaticLeakReport(
        program=program.name,
        defense=defense.name if defense is not None else "none",
        secret_symbols=tuple(sorted(secret_symbols)),
        sites=tuple(sites),
        instruction_count=len(program.instructions),
        reachable_count=reachable,
    )
