"""Defense-transform verifier: lint compiled output against claims.

Every registered defense makes two kinds of promise: a *structural*
one about the code its compiler transform emits (SeMPE wraps every
secret branch in a secure region; CTE removes secret branches
entirely; fence marks them all with the SecPrefix), and a *claims* one
about the channels the scheme closes (``DefenseSpec.protects``).  The
attack matrix checks the claims empirically; this module checks both
statically, so a broken transform turns CI red without running a
single simulation.

The structural invariants, per scheme property:

* ``sempe_machine`` — every secret-dependent conditional branch is
  either itself secure (an sJMP) or strictly inside a secure region;
  and no secret-dependent *address* sites exist at all, because
  dual-path execution hides the path, not a secret-valued address.
* ``compile_mode == "cte"`` — predication removed every secret branch
  and address site; any survivor means the transform failed to
  linearize a secret dependence.
* ``fence_branches`` — every secret-dependent conditional branch
  either carries the SecPrefix (``secure=1``) or sits inside a fenced
  region (serialization covers the region's interior); an unmarked
  one outside every region would be predicted and recorded, leaking
  through the very channel the scheme claims to close.

The claims lint then requires the *projected* prediction (see
:mod:`repro.analysis.report`) to be disjoint from ``protects``.
Config-only statistical schemes (way-partitioning, index
randomization) are exempt: their protection is a property of attacker
observability, not of any per-site code structure, so the static
layer enumerates their sites without certifying the claim — the
attack matrix owns it.  The exemption is structural (plain compile,
no machine hooks, config overrides present), never by name, so a new
statistical scheme is exempted automatically and a new structural one
is linted automatically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.analysis.report import StaticLeakReport
from repro.defenses.registry import DefenseSpec


@dataclass(frozen=True)
class TransformViolation:
    """One broken invariant in a defense's compiled output."""

    defense: str
    program: str
    invariant: str        # short machine-readable rule name
    index: int            # offending instruction index (-1 = program)
    line: int             # source line (0 = none)
    message: str

    def to_dict(self) -> dict[str, Any]:
        return {
            "defense": self.defense,
            "program": self.program,
            "invariant": self.invariant,
            "index": self.index,
            "line": self.line,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "TransformViolation":
        return cls(
            defense=str(data["defense"]),
            program=str(data["program"]),
            invariant=str(data["invariant"]),
            index=int(data["index"]),
            line=int(data["line"]),
            message=str(data["message"]),
        )


class TransformVerificationError(AssertionError):
    """Raised by :func:`check_defense_transform` on any violation."""

    def __init__(self, violations: list[TransformViolation]) -> None:
        self.violations = list(violations)
        lines = [f"{len(violations)} defense-transform violation(s):"]
        lines += [f"  [{v.defense}/{v.program}] {v.invariant}: "
                  f"{v.message}" for v in violations]
        super().__init__("\n".join(lines))


def claims_statically_checkable(defense: DefenseSpec) -> bool:
    """Whether the claims lint applies to *defense*.

    Statistical config-only schemes are detected structurally: they
    compile plain, use no machine hook, and work purely through
    ``MachineConfig`` overrides.
    """
    if defense.sempe_machine or defense.fence_branches \
            or defense.flush_on_exit:
        return True
    if defense.compile_mode != "plain":
        return True
    return not defense.config_overrides


def verify_defense_transform(defense: DefenseSpec,
                             report: StaticLeakReport
                             ) -> list[TransformViolation]:
    """All invariant violations of *report* under *defense* (empty = ok).

    *report* must be the defense-projected report of a program compiled
    with ``defense.compile_mode``.
    """
    violations: list[TransformViolation] = []

    def add(invariant: str, index: int, line: int, message: str) -> None:
        violations.append(TransformViolation(
            defense=defense.name, program=report.program,
            invariant=invariant, index=index, line=line,
            message=message))

    if defense.sempe_machine:
        # Projection already dropped every protected branch site and
        # every path-conditional in-region access, so any such site
        # still in the report escaped the transform's protection.
        for site in report.sites_of_kind("branch"):
            add("sempe-branch-unprotected", site.index, site.line,
                f"secret-dependent {site.op} at pc={site.pc:#x} "
                f"(line {site.line}) is neither secure nor inside "
                "a secure region")
        for site in report.sites_of_kind("address"):
            add("sempe-secret-address", site.index, site.line,
                f"{site.detail} at pc={site.pc:#x} (line {site.line}); "
                "dual-path execution hides which path ran, not a "
                "secret-valued address")

    if defense.compile_mode == "cte":
        for site in report.sites_of_kind("branch"):
            add("cte-residual-branch", site.index, site.line,
                f"secret-dependent {site.op} at pc={site.pc:#x} "
                f"(line {site.line}) survived predication")
        for site in report.sites_of_kind("address"):
            add("cte-secret-address", site.index, site.line,
                f"{site.detail} at pc={site.pc:#x} (line {site.line}) "
                "survived predication")

    if defense.fence_branches:
        for site in report.sites_of_kind("branch"):
            if site.op == "JALR":
                continue   # fences mark conditional branches only
            if not site.secure and not site.region_protected:
                add("fence-unmarked-branch", site.index, site.line,
                    f"secret-dependent {site.op} at pc={site.pc:#x} "
                    f"(line {site.line}) lacks the SecPrefix and is "
                    "outside every fenced region; it will be "
                    "predicted and recorded")

    if claims_statically_checkable(defense):
        # Architectural claims describe committed execution, so
        # speculative (wrong-path) sites are excluded: their
        # cache/timing charges model the transient machine, which no
        # committed-state defense ever sees.  "transient-memory" is
        # likewise excluded as a *global* claim — a window-killing
        # scheme protects it at the branches its transform marks (the
        # projection drops exactly those sites), and whether it marked
        # enough of them for a given victim is the empirical attack
        # matrix's question, like the statistical schemes' claims.
        union: set[str] = set()
        for site in report.sites:
            if site.kind == "speculative":
                continue
            union.update(c for c in site.channels
                         if c != "transient-memory")
        broken = [c for c in report.predicted_channels()
                  if c in union and defense.protects_channel(c)]
        if broken:
            add("claims-channel-open", -1, 0,
                f"predicted channels {broken} are declared protected "
                f"by {defense.name!r}")

    return violations


def check_defense_transform(defense: DefenseSpec,
                            report: StaticLeakReport) -> None:
    """Raise :class:`TransformVerificationError` on any violation."""
    violations = verify_defense_transform(defense, report)
    if violations:
        raise TransformVerificationError(violations)
