"""Speculative (wrong-path) taint: the static double-fetch detector.

The architectural taint fixpoint (:class:`~repro.analysis.dataflow.
TaintDataflow`) reasons about committed execution, where a bounds check
dominates the access it guards.  Inside a speculation window that
guarantee is gone: the fork walks the *wrong* path of a conditional
branch, so a load whose address is not a compile-time constant may read
past its region — in this machine's deterministic global layout, into
an adjacent ``secret`` item.  The classic bounds-check-bypass gadget is
therefore a *double fetch*: a guarded load whose (speculatively
out-of-bounds) value feeds the address of a second access, encoding the
stolen bytes in which line the wrong path touches.

This module finds those chains at the IR level with a small forward
fixpoint over the same CFG the architectural analysis uses:

* a load is a **speculative source** when its address is not provably
  constant and points into data (not the compiler-managed stack or the
  SeMPE shadow area) — on a wrong path its index register may hold
  anything the window can compute, so the loaded value may be secret;
* speculative taint propagates through ALU ops and CMOV like ordinary
  taint, and — because the code generator round-trips every local
  through a stack slot — through *concrete-address* memory (the
  architectural fixpoint proves stack-slot addresses constant, which is
  what makes the store→reload hop trackable);
* a load or store whose **address register** carries speculative taint
  is a double-fetch site: the wrong path's data-line stream depends on
  speculatively-read bytes.

Soundness over precision, like the architectural side: unknown regions
count as sources, unknown-address stores of speculative values taint
their whole region.  The projection layer decides what a defense does
to these sites (only killing the window itself — the fence — helps;
dual-path execution and predication are architectural answers to an
extra-architectural channel).
"""

from __future__ import annotations

from repro.analysis.dataflow import STACK_REGION, TaintDataflow
from repro.isa.opcodes import Op, is_load, is_store, mem_width
from repro.isa.registers import ZERO

# Regions a wrong-path index cannot plausibly reach secret data through:
# the stack is compiler-managed (its addresses never flow through a
# bounds-checked index), the shadow area is SeMPE scaffolding.
_SAFE_REGIONS = (STACK_REGION, "<shadow>")


class SpeculativeFlow:
    """Forward fixpoint of speculative taint over one analyzed program.

    ``sites`` maps instruction index -> detail string for every access
    whose address depends on a speculatively-loaded value.
    """

    def __init__(self, flow: TaintDataflow) -> None:
        self.flow = flow
        self.program = flow.program
        n = len(self.program.instructions)
        self._in: list[int] = [0] * n      # per-inst register bitmask
        self._out: list[int] = [0] * n
        self._spec_bytes: set[int] = set()
        self._spec_regions: set[str | None] = set()
        self.sites: dict[int, str] = {}
        self._run()

    # -- address helpers -------------------------------------------------

    def _address_of(self, index: int) -> tuple[int | None, str | None]:
        """(concrete address, region) of the access at *index*, from the
        architectural fixpoint's IN state."""
        state = self.flow.state_at(index)
        inst = self.program.instructions[index]
        if state is None or inst.rs1 is None:
            return None, None
        base = state[0][inst.rs1]
        if base[1] is not None:
            address = base[1] + (inst.imm or 0)
            return address, self.flow.region_of(address)
        return None, base[2]

    def _mem_spec(self, address: int | None, region: str | None,
                  width: int) -> bool:
        if None in self._spec_regions:
            return True
        if address is not None:
            if any(address + k in self._spec_bytes for k in range(width)):
                return True
            region = self.flow.region_of(address)
        return region in self._spec_regions

    # -- transfer --------------------------------------------------------

    def _transfer(self, index: int, mask: int) -> tuple[int, bool]:
        """OUT mask for *index*; returns (out_mask, memory_changed)."""
        inst = self.program.instructions[index]
        op = inst.op
        dst = inst.dst_reg()

        def spec(reg: int | None) -> bool:
            return reg is not None and reg != ZERO and bool(mask >> reg & 1)

        changed = False
        if is_load(op):
            address, region = self._address_of(index)
            if spec(inst.rs1):
                self.sites.setdefault(
                    index, "load address carries a speculatively-read "
                           "value (double fetch)")
            value_spec = spec(inst.rs1) \
                or self._mem_spec(address, region, mem_width(op))
            if address is None and region not in _SAFE_REGIONS:
                # Unknown-index load from data: a wrong path may read
                # out of bounds, so the value may be secret.
                value_spec = True
            if dst is not None:
                mask = (mask | (1 << dst)) if value_spec \
                    else (mask & ~(1 << dst))
        elif is_store(op):
            if spec(inst.rs1):
                self.sites.setdefault(
                    index, "store address carries a speculatively-read "
                           "value (double fetch)")
            if spec(inst.rs2):
                address, region = self._address_of(index)
                if address is not None:
                    for k in range(mem_width(op)):
                        if address + k not in self._spec_bytes:
                            self._spec_bytes.add(address + k)
                            changed = True
                elif region not in self._spec_regions:
                    self._spec_regions.add(region)
                    changed = True
        elif op is Op.CMOV:
            if dst is not None:
                if spec(inst.rd) or spec(inst.rs1) or spec(inst.rs2):
                    mask |= 1 << dst
        elif op in (Op.JAL, Op.JALR, Op.JMP):
            if dst is not None:
                mask &= ~(1 << dst)
        elif dst is not None:
            # ALU family (including LUI, whose operands are immediate).
            if spec(inst.rs1) or spec(inst.rs2):
                mask |= 1 << dst
            else:
                mask &= ~(1 << dst)
        return mask, changed

    # -- fixpoint --------------------------------------------------------

    def _run(self) -> None:
        cfg = self.flow.cfg
        n = cfg.n
        for _ in range(4 * n + 64):
            changed = False
            for index in range(n):
                if not self.flow.reachable(index):
                    continue
                mask = 0
                for pred in cfg.preds[index]:
                    mask |= self._out[pred]
                if mask != self._in[index]:
                    self._in[index] = mask
                    changed = True
                out, mem_changed = self._transfer(index, mask)
                if mem_changed:
                    changed = True
                if out != self._out[index]:
                    self._out[index] = out
                    changed = True
            if not changed:
                return
        raise AssertionError(
            "speculative fixpoint failed to converge on "
            f"{self.program.name!r}")  # pragma: no cover - defensive


def speculative_sites(flow: TaintDataflow) -> dict[int, str]:
    """Double-fetch site map (instruction index -> detail) of *flow*."""
    return SpeculativeFlow(flow).sites
