"""Control-flow graphs over sealed ISA programs.

The static leakage analyzer works on the *compiled* program — the same
instruction list the executors run — so its control-flow model must
reproduce exactly the successor relation the machine implements:

* conditional branches have two successors (fall-through, target);
* ``JMP`` is unconditional;
* ``JAL`` transfers to the callee entry (the interprocedural edge) and
  records ``index + 1`` as the call's return site;
* ``JALR`` is used by the code generator only for returns, so its
  successors are the return sites of every call into the containing
  function (context-insensitive but sound);
* ``HALT`` has no successors.

Functions are recovered structurally: the entry point plus every
``JAL`` target start a function, and the code generator lays functions
out contiguously, so sorted entry indices partition the instruction
range.  Immediate postdominators — the join points that bound a
branch's region of control influence — are computed per function on the
*intraprocedural* view (``JAL`` falls through to its return site), with
a virtual exit node collecting returns and halts.
"""

from __future__ import annotations

from repro.isa.instructions import Instruction
from repro.isa.opcodes import Op, is_cond_branch
from repro.isa.program import Program

VIRTUAL_EXIT = -1


class ControlFlowGraph:
    """Successor/predecessor structure of one sealed program."""

    def __init__(self, program: Program) -> None:
        self.program = program
        instructions = program.instructions
        self.n = len(instructions)
        self.entry = program.entry

        # -- function partition --------------------------------------------
        entries = {self.entry}
        for inst in instructions:
            if inst.op is Op.JAL and inst.target is not None:
                entries.add(inst.target)
        self.function_entries = tuple(sorted(entries))
        # func_of[i] = entry index of the function containing i.
        self.func_of = [self.entry] * self.n
        bounds = list(self.function_entries) + [self.n]
        for k in range(len(self.function_entries)):
            for i in range(bounds[k], bounds[k + 1]):
                self.func_of[i] = bounds[k]
        # Return sites: callee entry -> {call index + 1}.
        self.return_sites: dict[int, list[int]] = {
            e: [] for e in self.function_entries}
        # Call sites: index of every JAL, and JALR exits per function.
        self.call_sites: list[int] = []
        self.exits_of: dict[int, list[int]] = {
            e: [] for e in self.function_entries}
        for index, inst in enumerate(instructions):
            if inst.op is Op.JAL and inst.target is not None:
                self.call_sites.append(index)
                if index + 1 < self.n:
                    self.return_sites[inst.target].append(index + 1)
            elif inst.op in (Op.JALR, Op.HALT):
                self.exits_of[self.func_of[index]].append(index)

        # -- interprocedural successors (what the machine executes) --------
        self.succs: list[tuple[int, ...]] = [()] * self.n
        for index, inst in enumerate(instructions):
            self.succs[index] = self._successors(index, inst)
        self.preds: list[list[int]] = [[] for _ in range(self.n)]
        for index, targets in enumerate(self.succs):
            for target in targets:
                self.preds[target].append(index)

        # -- intraprocedural successors (for postdominators) ----------------
        self.intra_succs: list[tuple[int, ...]] = [()] * self.n
        for index, inst in enumerate(instructions):
            self.intra_succs[index] = self._intra_successors(index, inst)

        self._ipdom: dict[int, dict[int, int]] = {}

    # -- successor relations ----------------------------------------------

    def _successors(self, index: int, inst: Instruction) -> tuple[int, ...]:
        op = inst.op
        if op is Op.HALT:
            return ()
        if is_cond_branch(op):
            succs = []
            if index + 1 < self.n:
                succs.append(index + 1)
            if inst.target is not None:
                succs.append(inst.target)
            return tuple(succs)
        if op is Op.JMP:
            return (inst.target,) if inst.target is not None else ()
        if op is Op.JAL:
            return (inst.target,) if inst.target is not None else ()
        if op is Op.JALR:
            # Return: flow to the return site of every call into this
            # function (context-insensitive).
            return tuple(self.return_sites.get(self.func_of[index], ()))
        if index + 1 < self.n:
            return (index + 1,)
        return ()

    def _intra_successors(self, index: int,
                          inst: Instruction) -> tuple[int, ...]:
        """Successors with calls collapsed to fall-through edges."""
        op = inst.op
        if op in (Op.HALT, Op.JALR):
            return ()
        if op is Op.JAL:
            return (index + 1,) if index + 1 < self.n else ()
        return self._successors(index, inst)

    def function_range(self, entry: int) -> tuple[int, int]:
        """Half-open instruction index range [start, stop) of a function."""
        bounds = list(self.function_entries) + [self.n]
        k = bounds.index(entry)
        return entry, bounds[k + 1]

    # -- postdominators -----------------------------------------------------

    def ipdom(self, entry: int) -> dict[int, int]:
        """Immediate postdominators of the function at *entry*.

        Returns index -> immediate postdominator index, where
        :data:`VIRTUAL_EXIT` stands for the function's (virtual) exit.
        Nodes that cannot reach an exit (infinite loops) are absent.
        """
        cached = self._ipdom.get(entry)
        if cached is not None:
            return cached
        start, stop = self.function_range(entry)
        nodes = list(range(start, stop)) + [VIRTUAL_EXIT]
        # Reverse CFG: postdominance is dominance on reversed edges
        # rooted at the virtual exit.
        rsuccs: dict[int, list[int]] = {node: [] for node in nodes}
        for i in range(start, stop):
            targets = self.intra_succs[i]
            if not targets:
                targets = (VIRTUAL_EXIT,)
            for t in targets:
                if t == VIRTUAL_EXIT or start <= t < stop:
                    rsuccs[t].append(i)

        # Reverse-postorder of the reverse graph from the exit.
        order: list[int] = []
        seen: set[int] = set()
        stack: list[tuple[int, int]] = [(VIRTUAL_EXIT, 0)]
        seen.add(VIRTUAL_EXIT)
        while stack:
            node, child = stack[-1]
            children = rsuccs[node]
            if child < len(children):
                stack[-1] = (node, child + 1)
                nxt = children[child]
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append((nxt, 0))
            else:
                stack.pop()
                order.append(node)
        order.reverse()                      # reverse-postorder
        number = {node: k for k, node in enumerate(order)}

        idom: dict[int, int] = {VIRTUAL_EXIT: VIRTUAL_EXIT}

        def intersect(a: int, b: int) -> int:
            while a != b:
                while number[a] > number[b]:
                    a = idom[a]
                while number[b] > number[a]:
                    b = idom[b]
            return a

        changed = True
        while changed:
            changed = False
            for node in order:
                if node == VIRTUAL_EXIT:
                    continue
                preds = [p for p in self.intra_succs[node]
                         if p == VIRTUAL_EXIT or start <= p < stop]
                if not self.intra_succs[node]:
                    preds = [VIRTUAL_EXIT]
                candidates = [p for p in preds if p in idom]
                if not candidates:
                    continue
                new = candidates[0]
                for p in candidates[1:]:
                    new = intersect(new, p)
                if idom.get(node) != new:
                    idom[node] = new
                    changed = True
        idom.pop(VIRTUAL_EXIT, None)
        self._ipdom[entry] = idom
        return idom

    def influence_region(self, branch: int) -> set[int]:
        """Instructions control-dependent on the branch at *branch*.

        The set of instructions reachable (intraprocedurally) from the
        branch's successors without passing through its immediate
        postdominator — the classic region an implicit flow taints.
        """
        entry = self.func_of[branch]
        join = self.ipdom(entry).get(branch, VIRTUAL_EXIT)
        start, stop = self.function_range(entry)
        region: set[int] = set()
        frontier = [s for s in self.intra_succs[branch] if s != join]
        while frontier:
            node = frontier.pop()
            if node in region or node == join:
                continue
            if not (start <= node < stop):
                continue
            region.add(node)
            for s in self.intra_succs[node]:
                if s != join and s != VIRTUAL_EXIT:
                    frontier.append(s)
        return region
