"""The static-vs-dynamic differential: one verify cell per pair.

A static prediction and a dynamic measurement can disagree in two
directions, and they mean very different things:

* **static-only** channels (predicted but not observed) are the
  attacker/observer gap: the analyzer charges a site with every
  channel divergent control flow *could* drive, while the dynamic
  observer reports what the tested secret values actually
  distinguished at its granularity.  Expected, reported, not an error.
* **dynamic-only** channels (observed but not predicted) mean the
  dynamic experiment caught a secret dependence the static analyzer
  missed — an unsoundness bug in the analyzer or a transform doing
  something it does not model.  This fails the gate.

:func:`execute_verify` runs one workload × defense pair through both
sides — the *same* compiled program: the workload's leak parameters,
the defense's compiler transform — plus the defense-transform verifier
(:mod:`repro.analysis.verifier`), and folds everything into a
JSON-round-trippable :class:`VerifyReport` so the harness caches verify
cells like any other cell kind.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.analysis.dataflow import TaintDataflow
from repro.analysis.report import StaticLeakReport, build_report
from repro.analysis.verifier import (
    TransformViolation,
    verify_defense_transform,
)
from repro.security.leakage import ALL_CHANNELS, victim_report
from repro.uarch.config import MachineConfig


@dataclass
class VerifySpec:
    """One static-vs-dynamic verification cell (a sweep-cell spec).

    Shaped like :class:`~repro.workloads.registry.WorkloadRunSpec` so
    the run cache, the on-disk store, and the parallel sweep layer
    treat verify cells exactly like the other kinds.
    """

    workload: str
    params: dict[str, Any] = field(default_factory=dict)

    @property
    def name(self) -> str:
        tags = "-".join(f"{key}{self.params[key]}"
                        for key in sorted(self.params))
        stem = f"verify-{self.workload}"
        return f"{stem}-{tags}" if tags else stem


@dataclass(frozen=True)
class VerifyReport:
    """Static prediction vs. dynamic observation for one pair."""

    program: str
    workload: str
    defense: str
    static: StaticLeakReport
    predicted: tuple[str, ...]        # static, after projection
    dynamic: tuple[str, ...]          # empirically leaking channels
    static_only: tuple[str, ...]      # explained observer gap
    dynamic_only: tuple[str, ...]     # unsoundness — fails the gate
    violations: tuple[TransformViolation, ...]

    @property
    def sound(self) -> bool:
        """Static prediction covers everything dynamically observed."""
        return not self.dynamic_only

    @property
    def ok(self) -> bool:
        """Sound and no transform-invariant violations."""
        return self.sound and not self.violations

    def to_dict(self) -> dict[str, Any]:
        return {
            "program": self.program,
            "workload": self.workload,
            "defense": self.defense,
            "static": self.static.to_dict(),
            "predicted": list(self.predicted),
            "dynamic": list(self.dynamic),
            "static_only": list(self.static_only),
            "dynamic_only": list(self.dynamic_only),
            "violations": [v.to_dict() for v in self.violations],
            "ok": self.ok,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "VerifyReport":
        return cls(
            program=str(data["program"]),
            workload=str(data["workload"]),
            defense=str(data["defense"]),
            static=StaticLeakReport.from_dict(data["static"]),
            predicted=tuple(data["predicted"]),
            dynamic=tuple(data["dynamic"]),
            static_only=tuple(data["static_only"]),
            dynamic_only=tuple(data["dynamic_only"]),
            violations=tuple(TransformViolation.from_dict(v)
                             for v in data["violations"]),
        )

    def summary(self) -> str:
        verdict = "ok" if self.ok else (
            "UNSOUND" if not self.sound else "TRANSFORM-VIOLATION")
        parts = [f"{self.workload} [{self.defense}]: {verdict}"]
        parts.append(f"predicted={','.join(self.predicted) or 'none'}")
        parts.append(f"dynamic={','.join(self.dynamic) or 'none'}")
        if self.static_only:
            parts.append(f"static-only={','.join(self.static_only)}")
        if self.dynamic_only:
            parts.append(f"dynamic-only={','.join(self.dynamic_only)}")
        if self.violations:
            parts.append(f"violations={len(self.violations)}")
        return " ".join(parts)


def execute_verify(
    spec: VerifySpec,
    mode: str,
    config: MachineConfig | None = None,
    engine: str | None = None,
    max_instructions: int = 50_000_000,
) -> VerifyReport:
    """Run one workload × defense pair through both sides.

    *mode* names a registered defense.  The static side analyzes the
    exact program :func:`~repro.security.leakage.victim_report`
    simulates — same leak parameters, same compiler transform — so a
    disagreement is about the analysis, never about compiling two
    different programs.
    """
    from repro.defenses.registry import get_defense
    from repro.workloads.registry import get_workload

    workload = get_workload(spec.workload)
    defense = get_defense(mode)
    params = workload.leak_resolve(spec.params)
    compiled = workload.compile(defense.compile_mode, **params)

    # The static side must model the same machine the dynamic side
    # runs: a speculation window exists when the config enables one, or
    # when the workload declares the transient channel (victim_report
    # auto-enables the window for those, so the declaration is
    # testable at all).
    speculation = (config is not None and config.speculation.enabled) \
        or "transient-memory" in workload.channels
    flow = TaintDataflow(compiled.program, compiled.secrets)
    static = build_report(compiled.program, compiled.secrets,
                          defense=defense, flow=flow,
                          speculation=speculation)
    violations = verify_defense_transform(defense, static)

    dynamic_report = victim_report(
        workload, mode, config=config, engine=engine,
        max_instructions=max_instructions, **spec.params)
    dynamic = tuple(c for c in ALL_CHANNELS
                    if c in set(dynamic_report.leaking_channels()))

    predicted = static.predicted_channels()
    static_only = tuple(c for c in predicted if c not in dynamic)
    dynamic_only = tuple(c for c in dynamic if c not in predicted)

    return VerifyReport(
        program=compiled.program.name,
        workload=workload.name,
        defense=defense.name,
        static=static,
        predicted=predicted,
        dynamic=dynamic,
        static_only=static_only,
        dynamic_only=dynamic_only,
        violations=tuple(violations),
    )
