"""IR-level static leakage analysis.

The dynamic side of this repository (the observer, the noninterference
experiments, the attack matrix) *measures* leakage on concrete runs;
this package *proves* properties of the compiled instruction stream
itself:

* :mod:`repro.analysis.cfg` — machine-level control-flow graphs with
  postdominators and control-dependence regions;
* :mod:`repro.analysis.dataflow` — the abstract-interpretation taint
  fixpoint (explicit and implicit flows, secure-region depths);
* :mod:`repro.analysis.report` — leak-site classification and
  defense-aware channel projection (:class:`StaticLeakReport`);
* :mod:`repro.analysis.verifier` — the defense-transform lint;
* :mod:`repro.analysis.differential` — the static-vs-dynamic gate.

The convenience entry points below are what the CLI, the harness, and
most tests use.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.analysis.cfg import ControlFlowGraph
from repro.analysis.dataflow import AnalysisError, TaintDataflow
from repro.analysis.differential import (
    VerifyReport,
    VerifySpec,
    execute_verify,
)
from repro.analysis.report import (
    LeakSite,
    StaticLeakReport,
    build_report,
    classify_sites,
    project_sites,
)
from repro.analysis.verifier import (
    TransformVerificationError,
    TransformViolation,
    check_defense_transform,
    claims_statically_checkable,
    verify_defense_transform,
)

__all__ = [
    "AnalysisError",
    "ControlFlowGraph",
    "LeakSite",
    "StaticLeakReport",
    "TaintDataflow",
    "TransformVerificationError",
    "TransformViolation",
    "VerifyReport",
    "VerifySpec",
    "analyze_compiled",
    "analyze_workload",
    "build_report",
    "check_defense_transform",
    "claims_statically_checkable",
    "classify_sites",
    "execute_verify",
    "project_sites",
    "verify_defense_transform",
]

if TYPE_CHECKING:
    from repro.defenses.registry import DefenseSpec
    from repro.lang.compiler import CompiledProgram
    from repro.workloads.registry import WorkloadSpec


def analyze_compiled(compiled: CompiledProgram,
                     defense: DefenseSpec | str | None = None,
                     ) -> StaticLeakReport:
    """Static leak report of a :class:`~repro.lang.compiler.
    CompiledProgram` (its ``secrets`` map seeds the taint).

    *defense* is a :class:`~repro.defenses.registry.DefenseSpec`, a
    defense name, or ``None`` for the raw (unprojected) report.
    """
    if isinstance(defense, str):
        from repro.defenses.registry import get_defense

        defense = get_defense(defense)
    return build_report(compiled.program, compiled.secrets,
                        defense=defense)


def analyze_workload(workload: WorkloadSpec | str,
                     defense: DefenseSpec | str = "plain",
                     **param_overrides: object) -> StaticLeakReport:
    """Static leak report of one registered workload under a defense.

    Compiles the workload with the defense's transform at its *leak*
    parameters — the same program the dynamic noninterference
    experiments run — and projects the sites through the defense.
    """
    from repro.defenses.registry import get_defense
    from repro.workloads.registry import get_workload

    if isinstance(workload, str):
        workload = get_workload(workload)
    spec = get_defense(defense) if isinstance(defense, str) else defense
    params = workload.leak_resolve(param_overrides)
    compiled = workload.compile(spec.compile_mode, **params)
    return build_report(compiled.program, compiled.secrets, defense=spec)
