"""Abstract-interpretation taint dataflow over compiled programs.

The analyzer executes the program abstractly: every register holds an
abstract value — a taint bit, an optional known constant, and an
optional *region* (the data item or stack area an address points into)
— and memory is a monotone taint map seeded from the program's secret
symbols (the same word extents :func:`repro.security.observer.
poke_secrets` writes).  The fixpoint is computed over the machine-level
CFG (:class:`repro.analysis.cfg.ControlFlowGraph`), so what is proven
holds for the exact instruction stream the executors run, not for the
source the compiler started from.

Design points, chosen for *soundness over precision*:

* Register updates are flow-sensitive with strong updates (a register
  rewrite kills its old taint); memory taint is monotone (a tainted
  cell stays tainted), matching the source-level analysis in
  :mod:`repro.lang.taint`, which never untaints either.
* Taint is a two-bit mask (:data:`TAINT_DATA` / :data:`TAINT_CTL`):
  values computed *from* secret bytes carry DATA, values merely
  written *under* secret control carry CTL.  Both make a site
  secret-dependent; the projection layer needs the distinction
  because dual-path execution hides which path ran (CTL) but not a
  secret-valued address (DATA).
* Constants are folded only where Python and 64-bit machine semantics
  provably agree (bounded operands); anything else degrades to
  "unknown" rather than risking a wrong address classification.
* Address regions survive pointer arithmetic (``SLLI``+``ADD`` element
  addressing keeps the base's region), so an unknown-index load from a
  *public* array stays clean while any access overlapping a secret
  item's extent is tainted.
* Implicit flows: writes control-dependent on a secret-operand branch
  (between the branch and its immediate postdominator) are tainted,
  iterated to an outer fixpoint as taint discovers new secret branches.
* Calling convention: ``JAL``/``JALR`` follow the code generator's
  contract (callee balances SP, result in ``a0``).  On the return edge
  the caller's SP and secure-region depth are spliced back in; all
  other registers flow from the callee (context-insensitively joined).
* Secure-region membership (between an sJMP and its eosJMP) is a
  min-joined depth counter: an instruction counts as region-protected
  only if *every* path reaching it is inside a region.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass

from repro.analysis.cfg import ControlFlowGraph
from repro.isa.opcodes import Op, is_cond_branch, is_load, is_store, mem_width
from repro.isa.program import (
    DATA_BASE,
    HEAP_BASE,
    Program,
    SHADOW_BASE,
    STACK_BASE,
)
from repro.isa.registers import SP, ZERO

STACK_REGION = "<stack>"
ANY_REGION = "*"

# Taint is a 2-bit mask: DATA marks values computed from secret bytes,
# CTL marks values written under secret-dependent control (implicit
# flows).  The distinction matters to the projection layer: dual-path
# execution hides *which path ran* (CTL) but not a secret-valued
# address (DATA).
TAINT_DATA = 1
TAINT_CTL = 2

# Abstract value: (taint mask, const-or-None, region-or-None).
AbstractValue = tuple[int, int | None, str | None]
_UNKNOWN: AbstractValue = (0, None, None)

# Per-instruction machine state: (register file, secure-region depth).
MachineState = tuple[tuple[AbstractValue, ...], int]

_FOLD_BOUND = 1 << 62


class AnalysisError(Exception):
    """Raised when the fixpoint fails to converge (a bug, not an input
    property — the domains are finite-height)."""


def _join_value(a: AbstractValue, b: AbstractValue) -> AbstractValue:
    if a == b:
        return a
    return (a[0] | b[0],
            a[1] if a[1] == b[1] else None,
            a[2] if a[2] == b[2] else None)


@dataclass
class _MemoryState:
    """Monotone abstract memory: slot values plus taint summaries.

    Taint entries map to :data:`TAINT_DATA`/:data:`TAINT_CTL` masks.
    """

    values: dict[int, tuple[int | None, str | None]]
    tainted_bytes: dict[int, int]
    tainted_regions: dict[str, int]   # unknown-offset tainted stores
    region_has_taint: dict[str, int]  # regions containing tainted bytes

    def any_taint(self) -> int:
        mask = 0
        for m in self.tainted_bytes.values():
            mask |= m
        for m in self.tainted_regions.values():
            mask |= m
        return mask


class TaintDataflow:
    """The whole-program fixpoint and its per-instruction results."""

    def __init__(self, program: Program,
                 secret_symbols: dict[str, int]) -> None:
        self.program = program
        self.cfg = ControlFlowGraph(program)
        self.secret_symbols = dict(secret_symbols)

        # Data-item intervals for region classification.
        items = sorted(program.data, key=lambda item: item.address)
        self._item_starts = [item.address for item in items]
        self._items = items

        self.memory = _MemoryState(values={}, tainted_bytes={},
                                   tainted_regions={},
                                   region_has_taint={})
        self._seed_secrets()

        n = self.cfg.n
        # IN/OUT register states; None = unreachable so far.
        self._in: list[tuple[tuple[AbstractValue, ...], int] | None] =\
            [None] * n
        self._out: list[tuple[tuple[AbstractValue, ...], int] | None] =\
            [None] * n
        self.control_tainted: set[int] = set()
        self.secret_branches: set[int] = set()
        self._run()

    # -- setup ---------------------------------------------------------------

    def _seed_secrets(self) -> None:
        """Taint the secret symbols' full extents, word-encoded exactly
        as ``poke_secrets`` writes them."""
        extents = {item.name: (item.address, item.size)
                   for item in self.program.data}
        for name in self.secret_symbols:
            address, size = extents.get(
                name, (self.secret_symbols[name], 8))
            for byte in range(address, address + size):
                self.memory.tainted_bytes[byte] = TAINT_DATA
            region = self.region_of(address)
            if region is not None:
                self.memory.region_has_taint[region] = TAINT_DATA

    def region_of(self, address: int | None) -> str | None:
        """Region name for a concrete address (item name, stack, ...)."""
        if address is None:
            return None
        k = bisect_right(self._item_starts, address) - 1
        if k >= 0:
            item = self._items[k]
            if item.address <= address < item.address + item.size:
                return item.name
        if DATA_BASE <= address < HEAP_BASE:
            return "<data>"
        if HEAP_BASE <= address < SHADOW_BASE:
            return "<heap>"
        if SHADOW_BASE <= address < 0x0060_0000:
            return "<shadow>"
        if 0x0060_0000 <= address <= STACK_BASE:
            return STACK_REGION
        return None

    def _entry_state(self) -> tuple[tuple[AbstractValue, ...], int]:
        regs = [_UNKNOWN] * 32
        regs[ZERO] = (0, 0, None)
        regs[SP] = (0, STACK_BASE, STACK_REGION)
        return tuple(regs), 0

    # -- memory ---------------------------------------------------------------

    def _load_taint(self, address: int | None, region: str | None,
                    width: int) -> int:
        mem = self.memory
        mask = mem.tainted_regions.get(ANY_REGION, 0)
        if address is not None:
            for k in range(width):
                mask |= mem.tainted_bytes.get(address + k, 0)
            here = self.region_of(address)
            if here is not None:
                mask |= mem.tainted_regions.get(here, 0)
            return mask
        if region is not None:
            return (mask | mem.tainted_regions.get(region, 0)
                    | mem.region_has_taint.get(region, 0))
        return mask | mem.any_taint()

    def _store(self, address: int | None, region: str | None, width: int,
               value: AbstractValue, taint: int) -> bool:
        """Apply a store; returns True if memory state changed."""
        mem = self.memory
        changed = False
        if address is not None:
            slot = mem.values.get(address)
            new = (value[1], value[2])
            if slot is not None and slot != new:
                new = (slot[0] if slot[0] == new[0] else None,
                       slot[1] if slot[1] == new[1] else None)
            if slot != new:
                mem.values[address] = new
                changed = True
            if taint:
                for k in range(width):
                    old = mem.tainted_bytes.get(address + k, 0)
                    if old | taint != old:
                        mem.tainted_bytes[address + k] = old | taint
                        changed = True
                here = self.region_of(address)
                if here is not None:
                    old = mem.region_has_taint.get(here, 0)
                    if old | taint != old:
                        mem.region_has_taint[here] = old | taint
                        changed = True
            return changed
        target = region if region is not None else ANY_REGION
        if taint:
            old = mem.tainted_regions.get(target, 0)
            if old | taint != old:
                mem.tainted_regions[target] = old | taint
                changed = True
        return changed

    # -- constant folding ------------------------------------------------------

    @staticmethod
    def _fold(op: Op, a: int | None, b: int | None) -> int | None:
        if a is None or b is None:
            return None
        if op in (Op.ADD, Op.ADDI):
            r = a + b
            return r if -_FOLD_BOUND < r < _FOLD_BOUND else None
        if op is Op.SUB:
            r = a - b
            return r if -_FOLD_BOUND < r < _FOLD_BOUND else None
        if op in (Op.SLL, Op.SLLI):
            if 0 <= a < (1 << 40) and 0 <= b < 24:
                return a << b
            return None
        if op in (Op.SRL, Op.SRLI, Op.SRA, Op.SRAI):
            if 0 <= a < _FOLD_BOUND and 0 <= b < 64:
                return a >> b
            return None
        if op in (Op.AND, Op.ANDI, Op.OR, Op.ORI, Op.XOR, Op.XORI):
            if 0 <= a < _FOLD_BOUND and 0 <= b < _FOLD_BOUND:
                if op in (Op.AND, Op.ANDI):
                    return a & b
                if op in (Op.OR, Op.ORI):
                    return a | b
                return a ^ b
            return None
        if op in (Op.SLT, Op.SLTI):
            if -_FOLD_BOUND < a < _FOLD_BOUND and\
                    -_FOLD_BOUND < b < _FOLD_BOUND:
                return int(a < b)
            return None
        if op is Op.SLTU:
            if 0 <= a < _FOLD_BOUND and 0 <= b < _FOLD_BOUND:
                return int(a < b)
            return None
        return None           # MUL/DIV/REM: wrap semantics, don't fold

    # -- transfer -------------------------------------------------------------

    def _transfer(self, index: int,
                  state: tuple[tuple[AbstractValue, ...], int]
                  ) -> tuple[tuple[tuple[AbstractValue, ...], int], bool]:
        """OUT state for instruction *index* given its IN *state*.

        Returns ``(out_state, memory_changed)``.
        """
        inst = self.program.instructions[index]
        regs, depth = state
        op = inst.op
        ctl = TAINT_CTL if index in self.control_tainted else 0
        mem_changed = False

        def read(reg: int | None) -> AbstractValue:
            if reg is None:
                return _UNKNOWN
            if reg == ZERO:
                return (0, 0, None)
            return regs[reg]

        new_regs = list(regs)
        dst = inst.dst_reg()

        if is_cond_branch(op):
            if inst.secure:
                depth = depth + 1
        elif op is Op.EOSJMP:
            depth = max(depth - 1, 0)
        elif op is Op.CMOV:
            old = read(inst.rd)
            taken = read(inst.rs1)
            cond = read(inst.rs2)
            merged = _join_value(old, taken)
            value = (merged[0] | cond[0] | old[0] | taken[0] | ctl,
                     merged[1], merged[2])
            if dst is not None:
                new_regs[dst] = value
        elif is_load(op):
            base = read(inst.rs1)
            address = (None if base[1] is None
                       else base[1] + (inst.imm or 0))
            region = self.region_of(address) if address is not None\
                else base[2]
            # A tainted *address* taints the value: reading a public
            # array at a secret index yields a secret-dependent value.
            tainted = (self._load_taint(address, region, mem_width(op))
                       | base[0] | ctl)
            const, vregion = None, None
            if address is not None:
                slot = self.memory.values.get(address)
                if slot is not None and op is Op.LD:
                    const, vregion = slot
            if dst is not None:
                new_regs[dst] = (tainted, const, vregion)
        elif is_store(op):
            base = read(inst.rs1)
            value = read(inst.rs2)
            address = (None if base[1] is None
                       else base[1] + (inst.imm or 0))
            region = self.region_of(address) if address is not None\
                else base[2]
            # A tainted address taints the stored bytes too: *which*
            # cell changed encodes the secret even if the value is
            # public, so later reads of the region may reveal it.
            mem_changed = self._store(address, region, mem_width(op),
                                      value, value[0] | base[0] | ctl)
        elif op is Op.JAL:
            if dst is not None:
                new_regs[dst] = (0, (index + 1) * 4, None)
        elif op in (Op.JALR, Op.JMP, Op.NOP, Op.HALT):
            if dst is not None:
                new_regs[dst] = _UNKNOWN
        else:
            # ALU family (including LUI).
            if op is Op.LUI:
                value: AbstractValue = (ctl, inst.imm,
                                        self.region_of(inst.imm))
            else:
                a = read(inst.rs1)
                if inst.rs2 is not None:
                    b = read(inst.rs2)
                elif inst.imm is not None:
                    b = (0, inst.imm, None)
                else:
                    b = _UNKNOWN
                const = self._fold(op, a[1], b[1])
                if const is not None:
                    region = self.region_of(const)
                elif op in (Op.ADD, Op.ADDI, Op.SUB):
                    if a[2] is not None and b[2] is None:
                        region = a[2]
                    elif (b[2] is not None and a[2] is None
                          and op is not Op.SUB):
                        region = b[2]
                    else:
                        region = None
                else:
                    region = None
                value = (a[0] | b[0] | ctl, const, region)
            if dst is not None:
                new_regs[dst] = value

        return (tuple(new_regs), depth), mem_changed

    # -- fixpoint -------------------------------------------------------------

    def _join_states(self, a: MachineState | None,
                     b: MachineState | None) -> MachineState | None:
        if a is None:
            return b
        if b is None:
            return a
        if a == b:
            return a
        regs = tuple(x if x == y else _join_value(x, y)
                     for x, y in zip(a[0], b[0]))
        return (regs, min(a[1], b[1]))

    def _compute_in(self, index: int) -> MachineState | None:
        cfg = self.cfg
        state = None
        if index == cfg.entry:
            state = self._entry_state()
        for pred in cfg.preds[index]:
            out = self._out[pred]
            if out is None:
                continue
            inst = self.program.instructions[pred]
            if inst.op is Op.JALR:
                # Return edge: callee registers, caller SP and depth.
                caller = self._out[index - 1]\
                    if index - 1 >= 0 else None
                if caller is None:
                    continue
                regs = list(out[0])
                regs[SP] = caller[0][SP]
                out = (tuple(regs), caller[1])
            state = self._join_states(state, out)
        return state

    def _run_passes(self) -> None:
        n = self.cfg.n
        for _ in range(4 * n + 64):
            changed = False
            for index in range(n):
                new_in = self._compute_in(index)
                if new_in is None:
                    continue
                if new_in != self._in[index]:
                    self._in[index] = new_in
                    changed = True
                out, mem_changed = self._transfer(index, new_in)
                if mem_changed:
                    changed = True
                if out != self._out[index]:
                    self._out[index] = out
                    changed = True
            if not changed:
                return
        raise AnalysisError(
            "taint fixpoint failed to converge on "
            f"{self.program.name!r}")  # pragma: no cover - defensive

    def _branch_operands_tainted(self, index: int) -> bool:
        state = self._in[index]
        if state is None:
            return False
        inst = self.program.instructions[index]
        for reg in (inst.rs1, inst.rs2):
            if reg is not None and reg != ZERO and state[0][reg][0]:
                return True
        return False

    def _run(self) -> None:
        for _ in range(64):
            self._run_passes()
            branches = {
                index for index, inst
                in enumerate(self.program.instructions)
                if (is_cond_branch(inst.op) or inst.op is Op.JALR)
                and self._branch_operands_tainted(index)
            }
            ctl = set()
            for index in branches:
                if is_cond_branch(self.program.instructions[index].op):
                    ctl |= self.cfg.influence_region(index)
            if branches == self.secret_branches\
                    and ctl <= self.control_tainted:
                return
            self.secret_branches = branches
            self.control_tainted |= ctl
        raise AnalysisError(
            "implicit-flow iteration failed to converge on "
            f"{self.program.name!r}")  # pragma: no cover - defensive

    # -- results -------------------------------------------------------------

    def reachable(self, index: int) -> bool:
        return self._in[index] is not None

    def state_at(self, index: int) -> MachineState | None:
        return self._in[index]

    def region_depth(self, index: int) -> int:
        state = self._in[index]
        return 0 if state is None else state[1]

    def operand_taints(self, index: int) -> tuple[int, int]:
        """(rs1 taint mask, rs2 taint mask) at the IN state."""
        state = self._in[index]
        if state is None:
            return 0, 0
        inst = self.program.instructions[index]
        masks = []
        for reg in (inst.rs1, inst.rs2):
            masks.append(state[0][reg][0]
                         if reg is not None and reg != ZERO else 0)
        return masks[0], masks[1]

    def address_tainted(self, index: int) -> int:
        """Taint mask of the load/store address register at *index*."""
        state = self._in[index]
        if state is None:
            return 0
        inst = self.program.instructions[index]
        if inst.rs1 is None or inst.rs1 == ZERO:
            return 0
        return state[0][inst.rs1][0]
