"""Instruction set architecture for the SeMPE reproduction.

The paper extends x86_64 with a ``SecPrefix`` byte that turns an ordinary
conditional branch into a secure jump (``sJMP``) and a new ``eosJMP``
instruction encoded so that legacy processors see a NOP.  Running real x86
is out of scope for a pure-Python reproduction, so this package defines a
small 64-bit RISC-style ISA with the same two extensions:

* conditional branches carry a ``secure`` flag (the SecPrefix);
* an ``EOSJMP`` opcode marks the join point of a secure branch.

The :mod:`repro.isa.encoding` module provides a byte-level encoding in
which the SecPrefix is a genuine prefix byte (``0x2e``) and ``eosJMP`` is
``0x2e 0x90``, so the paper's backward-compatibility argument can be
demonstrated: a legacy decoder ignores the prefix and reads ``eosJMP`` as
a NOP.
"""

from repro.isa.registers import (
    NUM_REGS,
    REG_ABI_NAMES,
    ZERO,
    RA,
    SP,
    GP,
    A0,
    A1,
    A2,
    A3,
    A4,
    A5,
    T0,
    T1,
    T2,
    T3,
    T4,
    T5,
    S0,
    S1,
    S2,
    S3,
    S4,
    S5,
    reg_name,
    parse_reg,
)
from repro.isa.opcodes import Op, OpClass
from repro.isa.instructions import Instruction
from repro.isa.program import Program, DataItem
from repro.isa.builder import ProgramBuilder
from repro.isa.assembler import assemble, AssemblerError
from repro.isa.encoding import (
    encode_program,
    decode_program,
    encode_instruction,
    SEC_PREFIX,
    NOP_BYTE,
)

__all__ = [
    "NUM_REGS",
    "REG_ABI_NAMES",
    "ZERO",
    "RA",
    "SP",
    "GP",
    "A0",
    "A1",
    "A2",
    "A3",
    "A4",
    "A5",
    "T0",
    "T1",
    "T2",
    "T3",
    "T4",
    "T5",
    "S0",
    "S1",
    "S2",
    "S3",
    "S4",
    "S5",
    "reg_name",
    "parse_reg",
    "Op",
    "OpClass",
    "Instruction",
    "Program",
    "DataItem",
    "ProgramBuilder",
    "assemble",
    "AssemblerError",
    "encode_program",
    "decode_program",
    "encode_instruction",
    "SEC_PREFIX",
    "NOP_BYTE",
]
