"""Programs: code, data, and symbol resolution.

A :class:`Program` couples an instruction list with an initial data image.
Instruction addresses are ``index * 4``.  Data lives in a separate address
range starting at :data:`DATA_BASE`, with the stack placed above it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.instructions import INSTRUCTION_BYTES, Instruction
from repro.isa.opcodes import Op

CODE_BASE = 0x0000_0000
DATA_BASE = 0x0010_0000
STACK_BASE = 0x0080_0000   # initial stack pointer (grows down)
SHADOW_BASE = 0x0040_0000  # compiler-managed ShadowMemory region
HEAP_BASE = 0x0020_0000    # bump-allocated dynamic memory


@dataclass
class DataItem:
    """A named, initialised chunk of the data segment."""

    name: str
    address: int
    values: list[int]
    width: int = 8  # bytes per element (8 for .quad, 1 for .byte)

    @property
    def size(self) -> int:
        return len(self.values) * self.width


class ProgramError(Exception):
    """Raised for malformed programs (duplicate/undefined labels ...)."""


class Program:
    """A sealed program ready for simulation.

    Attributes:
        instructions: the instruction list.
        labels: label name -> instruction index.
        data: list of :class:`DataItem` in the data segment.
        symbols: data symbol name -> byte address.
        entry: instruction index where execution begins.
        name: human-readable program name.
    """

    def __init__(
        self,
        instructions: list[Instruction],
        labels: dict[str, int] | None = None,
        data: list[DataItem] | None = None,
        entry: str | int = 0,
        name: str = "program",
    ) -> None:
        self.instructions = instructions
        self.labels = dict(labels or {})
        self.data = list(data or [])
        self.symbols = {item.name: item.address for item in self.data}
        self.name = name
        if isinstance(entry, str):
            if entry not in self.labels:
                raise ProgramError(f"entry label {entry!r} not defined")
            self.entry = self.labels[entry]
        else:
            self.entry = entry
        self._seal()

    # -- construction ------------------------------------------------------

    def _seal(self) -> None:
        """Resolve symbolic branch targets and data references."""
        for index, inst in enumerate(self.instructions):
            if inst.label is None:
                continue
            if inst.is_control:
                if inst.label not in self.labels:
                    raise ProgramError(
                        f"undefined label {inst.label!r} at instruction {index}"
                    )
                inst.target = self.labels[inst.label]
            elif inst.op is Op.LUI:
                if inst.label not in self.symbols:
                    raise ProgramError(
                        f"undefined data symbol {inst.label!r} at instruction {index}"
                    )
                inst.imm = self.symbols[inst.label]

    # -- queries -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.instructions)

    def address_of(self, index: int) -> int:
        """Byte address of instruction *index*."""
        return CODE_BASE + index * INSTRUCTION_BYTES

    def index_of_address(self, address: int) -> int:
        return (address - CODE_BASE) // INSTRUCTION_BYTES

    def initial_memory(self) -> dict[int, int]:
        """Byte address -> byte value map for the initial data image."""
        image: dict[int, int] = {}
        for item in self.data:
            addr = item.address
            for value in item.values:
                masked = value & ((1 << (8 * item.width)) - 1)
                for byte_index in range(item.width):
                    image[addr + byte_index] = (masked >> (8 * byte_index)) & 0xFF
                addr += item.width
        return image

    def count_secure_branches(self) -> int:
        """Static count of sJMP instructions in the program."""
        return sum(1 for inst in self.instructions if inst.is_secure_branch)

    def listing(self) -> str:
        """Human-readable assembly listing."""
        index_to_labels: dict[int, list[str]] = {}
        for label, index in self.labels.items():
            index_to_labels.setdefault(index, []).append(label)
        lines = []
        for index, inst in enumerate(self.instructions):
            for label in sorted(index_to_labels.get(index, [])):
                lines.append(f"{label}:")
            lines.append(f"    {inst}")
        return "\n".join(lines)
