"""Programs: code, data, and symbol resolution.

A :class:`Program` couples an instruction list with an initial data image.
Instruction addresses are ``index * 4``.  Data lives in a separate address
range starting at :data:`DATA_BASE`, with the stack placed above it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.instructions import INSTRUCTION_BYTES, Instruction
from repro.isa.opcodes import Op, OP_CLASS_IDS, OP_ID, mem_width

CODE_BASE = 0x0000_0000
DATA_BASE = 0x0010_0000
STACK_BASE = 0x0080_0000   # initial stack pointer (grows down)
SHADOW_BASE = 0x0040_0000  # compiler-managed ShadowMemory region
HEAP_BASE = 0x0020_0000    # bump-allocated dynamic memory


@dataclass
class DataItem:
    """A named, initialised chunk of the data segment."""

    name: str
    address: int
    values: list[int]
    width: int = 8  # bytes per element (8 for .quad, 1 for .byte)

    @property
    def size(self) -> int:
        return len(self.values) * self.width


class ProgramError(Exception):
    """Raised for malformed programs (duplicate/undefined labels ...)."""


class Program:
    """A sealed program ready for simulation.

    Attributes:
        instructions: the instruction list.
        labels: label name -> instruction index.
        data: list of :class:`DataItem` in the data segment.
        symbols: data symbol name -> byte address.
        entry: instruction index where execution begins.
        name: human-readable program name.
    """

    def __init__(
        self,
        instructions: list[Instruction],
        labels: dict[str, int] | None = None,
        data: list[DataItem] | None = None,
        entry: str | int = 0,
        name: str = "program",
        source_lines: list[int] | None = None,
    ) -> None:
        self.instructions = instructions
        self.labels = dict(labels or {})
        self.data = list(data or [])
        self.symbols = {item.name: item.address for item in self.data}
        self.name = name
        # Debug map: instruction index -> source line (0 = no position).
        lines = list(source_lines or [])
        lines += [0] * (len(instructions) - len(lines))
        self.source_lines = tuple(lines[: len(instructions)])
        if isinstance(entry, str):
            if entry not in self.labels:
                raise ProgramError(f"entry label {entry!r} not defined")
            self.entry = self.labels[entry]
        else:
            self.entry = entry
        self._seal()

    # -- construction ------------------------------------------------------

    def _seal(self) -> None:
        """Resolve symbolic branch targets and data references."""
        for index, inst in enumerate(self.instructions):
            if inst.label is None:
                continue
            if inst.is_control:
                if inst.label not in self.labels:
                    raise ProgramError(
                        f"undefined label {inst.label!r} at instruction {index}"
                    )
                inst.target = self.labels[inst.label]
            elif inst.op is Op.LUI:
                if inst.label not in self.symbols:
                    raise ProgramError(
                        f"undefined data symbol {inst.label!r} at instruction {index}"
                    )
                inst.imm = self.symbols[inst.label]

    # -- queries -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.instructions)

    def address_of(self, index: int) -> int:
        """Byte address of instruction *index*."""
        return CODE_BASE + index * INSTRUCTION_BYTES

    def index_of_address(self, address: int) -> int:
        return (address - CODE_BASE) // INSTRUCTION_BYTES

    def initial_memory(self) -> dict[int, int]:
        """Byte address -> byte value map for the initial data image."""
        image: dict[int, int] = {}
        for item in self.data:
            addr = item.address
            for value in item.values:
                masked = value & ((1 << (8 * item.width)) - 1)
                for byte_index in range(item.width):
                    image[addr + byte_index] = (masked >> (8 * byte_index)) & 0xFF
                addr += item.width
        return image

    def count_secure_branches(self) -> int:
        """Static count of sJMP instructions in the program."""
        return sum(1 for inst in self.instructions if inst.is_secure_branch)

    def listing(self) -> str:
        """Human-readable assembly listing."""
        index_to_labels: dict[int, list[str]] = {}
        for label, index in self.labels.items():
            index_to_labels.setdefault(index, []).append(label)
        lines = []
        for index, inst in enumerate(self.instructions):
            for label in sorted(index_to_labels.get(index, [])):
                lines.append(f"{label}:")
            lines.append(f"    {inst}")
        return "\n".join(lines)

    def predecode(self, line_bytes: int = 64) -> "PredecodedProgram":
        """Lower the instruction list to flat tables (cached per geometry).

        The fast engine dispatches through these tables instead of
        touching :class:`Instruction` objects or Enum members in its
        inner loop.  *line_bytes* fixes the instruction-cache line size
        used for the precomputed line indices, so the cache is keyed by
        it.
        """
        cache = getattr(self, "_predecoded", None)
        if cache is None:
            cache = {}
            self._predecoded = cache
        predecoded = cache.get(line_bytes)
        if predecoded is None:
            predecoded = PredecodedProgram(self, line_bytes)
            cache[line_bytes] = predecoded
        return predecoded


# --------------------------------------------------------------------------
# Predecoded form: one handler-kind int per instruction plus parallel
# operand tables, so the fast engine's inner loop is table lookups and
# small-int comparisons only.
# --------------------------------------------------------------------------

# Handler kinds.  ALU kinds collapse the reg/imm variants (ADD/ADDI ...)
# into one semantic handler; the operand tables say where the second
# operand comes from.
(
    K_ADD, K_SUB, K_MUL, K_DIV, K_REM, K_AND, K_OR, K_XOR,
    K_SLL, K_SRL, K_SRA, K_SLT, K_SLTU, K_LUI,
    K_LOAD, K_STORE,
    K_BEQ, K_BNE, K_BLT, K_BGE, K_BLTU, K_BGEU,
    K_JMP, K_JAL, K_JALR, K_CMOV, K_EOSJMP, K_NOP, K_HALT,
) = range(29)

K_LAST_ALU = K_LUI        # kinds <= this compute a register value
K_FIRST_BRANCH = K_BEQ
K_LAST_BRANCH = K_BGEU

_HANDLER_KIND = {
    Op.ADD: K_ADD, Op.ADDI: K_ADD,
    Op.SUB: K_SUB,
    Op.MUL: K_MUL,
    Op.DIV: K_DIV,
    Op.REM: K_REM,
    Op.AND: K_AND, Op.ANDI: K_AND,
    Op.OR: K_OR, Op.ORI: K_OR,
    Op.XOR: K_XOR, Op.XORI: K_XOR,
    Op.SLL: K_SLL, Op.SLLI: K_SLL,
    Op.SRL: K_SRL, Op.SRLI: K_SRL,
    Op.SRA: K_SRA, Op.SRAI: K_SRA,
    Op.SLT: K_SLT, Op.SLTI: K_SLT,
    Op.SLTU: K_SLTU,
    Op.LUI: K_LUI,
    Op.LD: K_LOAD, Op.LB: K_LOAD,
    Op.ST: K_STORE, Op.SB: K_STORE,
    Op.BEQ: K_BEQ, Op.BNE: K_BNE, Op.BLT: K_BLT, Op.BGE: K_BGE,
    Op.BLTU: K_BLTU, Op.BGEU: K_BGEU,
    Op.JMP: K_JMP, Op.JAL: K_JAL, Op.JALR: K_JALR,
    Op.CMOV: K_CMOV,
    Op.EOSJMP: K_EOSJMP,
    Op.NOP: K_NOP,
    Op.HALT: K_HALT,
}


class PredecodedProgram:
    """Struct-of-arrays lowering of a sealed :class:`Program`.

    All tables are tuples indexed by instruction index; ``-1`` encodes
    "no register"/"no target".  ``srcs`` keeps the exact source-register
    tuples :meth:`Instruction.src_regs` would return, so trace chunks can
    be re-materialized bit-exactly.
    """

    __slots__ = (
        "program", "n", "line_bytes",
        "kind", "op_id", "cls_id",
        "rd", "rs1", "rs2", "imm", "b_is_imm",
        "target", "secure", "width", "line", "srcs", "dst",
    )

    def __init__(self, program: Program, line_bytes: int = 64) -> None:
        self.program = program
        self.line_bytes = line_bytes
        instructions = program.instructions
        self.n = len(instructions)
        kind, op_id, cls_id = [], [], []
        rd, rs1, rs2, imm, b_is_imm = [], [], [], [], []
        target, secure, width, line, srcs, dst = [], [], [], [], [], []
        insts_per_line = max(line_bytes // INSTRUCTION_BYTES, 1)
        for index, inst in enumerate(instructions):
            op = inst.op
            kind.append(_HANDLER_KIND[op])
            op_index = OP_ID[op]
            op_id.append(op_index)
            cls_id.append(OP_CLASS_IDS[op_index])
            rd.append(-1 if inst.rd is None else inst.rd)
            rs1.append(-1 if inst.rs1 is None else inst.rs1)
            rs2.append(-1 if inst.rs2 is None else inst.rs2)
            imm.append(0 if inst.imm is None else inst.imm)
            # Mirrors Executor._alu's operand selection exactly.
            b_is_imm.append(1 if (inst.imm is not None and inst.rs2 is None)
                            else 0)
            target.append(-1 if inst.target is None else inst.target)
            secure.append(1 if inst.secure else 0)
            width.append(mem_width(op) if inst.is_mem else 0)
            line.append(index // insts_per_line)
            srcs.append(inst.src_regs())
            dst_reg = inst.dst_reg()
            dst.append(-1 if dst_reg is None else dst_reg)
        self.kind = tuple(kind)
        self.op_id = tuple(op_id)
        self.cls_id = tuple(cls_id)
        self.rd = tuple(rd)
        self.rs1 = tuple(rs1)
        self.rs2 = tuple(rs2)
        self.imm = tuple(imm)
        self.b_is_imm = tuple(b_is_imm)
        self.target = tuple(target)
        self.secure = tuple(secure)
        self.width = tuple(width)
        self.line = tuple(line)
        self.srcs = tuple(srcs)
        self.dst = tuple(dst)
