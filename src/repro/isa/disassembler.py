"""Disassembler: decoded instruction streams back to assembly text.

Complements :mod:`repro.isa.encoding`: a SeMPE binary can be decoded
with either the SeMPE-aware or the legacy decoder and printed, which is
how the backward-compatibility example shows that the *same bytes* read
as secure code on one machine and plain code on the other.
"""

from __future__ import annotations

from repro.isa.encoding import decode_program
from repro.isa.instructions import Instruction
from repro.isa.opcodes import Op


def disassemble_instruction(inst: Instruction, index: int | None = None) -> str:
    """One instruction as assembler text (branch targets as @index)."""
    text = str(inst)
    if index is not None:
        return f"{index:5d}:  {text}"
    return text


def disassemble(instructions: list[Instruction],
                annotate_regions: bool = True) -> str:
    """Render an instruction list.

    With ``annotate_regions`` the output marks secure branches and their
    join points, making SecBlock extents visible in the listing.
    """
    lines = []
    for index, inst in enumerate(instructions):
        line = disassemble_instruction(inst, index)
        if annotate_regions:
            if inst.is_secure_branch:
                line += "    ; sJMP (SecPrefix) -> @%s" % inst.target
            elif inst.op is Op.EOSJMP:
                line += "    ; eosJMP (join point; NOP on legacy)"
        lines.append(line)
    return "\n".join(lines)


def disassemble_binary(blob: bytes, legacy: bool = False) -> str:
    """Decode *blob* (from :func:`encode_program`) and render it.

    ``legacy=True`` shows what a non-SeMPE processor executes: the same
    program with SecPrefixes ignored and ``eosJMP`` read as NOP.
    """
    instructions = decode_program(blob, legacy=legacy)
    header = "; legacy decode (SecPrefix ignored)" if legacy else \
        "; SeMPE decode"
    return header + "\n" + disassemble(instructions,
                                       annotate_regions=not legacy)
