"""Two-pass textual assembler.

Syntax example::

        .data
    arr:    .quad 5, 3, 8
    buf:    .space 16          # 16 zero quads
    msg:    .byte 1, 2, 3
        .text
    main:
        la   a0, arr
        ld   a1, 0(a0)
        sbne a1, zero, Lelse   # secure branch (SecPrefix)
        addi a2, zero, 1
        jmp  Ljoin
    Lelse:
        addi a2, zero, 2
    Ljoin:
        eosjmp
        halt

Secure branches use the ``s`` mnemonic prefix (``sbeq``, ``sbne`` ...),
mirroring the paper's SecPrefix on an ordinary branch.
"""

from __future__ import annotations

import re

from repro.isa.instructions import Instruction
from repro.isa.opcodes import Op
from repro.isa.program import DataItem, Program
from repro.isa.builder import _align
from repro.isa.program import DATA_BASE
from repro.isa.registers import parse_reg


class AssemblerError(Exception):
    """Raised on malformed assembly input."""


_MEM_OPERAND = re.compile(r"^(-?\w+)\((\w+)\)$")

_RR_OPS = {
    "add": Op.ADD, "sub": Op.SUB, "mul": Op.MUL, "div": Op.DIV,
    "rem": Op.REM, "and": Op.AND, "or": Op.OR, "xor": Op.XOR,
    "sll": Op.SLL, "srl": Op.SRL, "sra": Op.SRA, "slt": Op.SLT,
    "sltu": Op.SLTU,
}
_RI_OPS = {
    "addi": Op.ADDI, "andi": Op.ANDI, "ori": Op.ORI, "xori": Op.XORI,
    "slli": Op.SLLI, "srli": Op.SRLI, "srai": Op.SRAI, "slti": Op.SLTI,
}
_BRANCH_OPS = {
    "beq": Op.BEQ, "bne": Op.BNE, "blt": Op.BLT, "bge": Op.BGE,
    "bltu": Op.BLTU, "bgeu": Op.BGEU,
}
_LOAD_OPS = {"ld": Op.LD, "lb": Op.LB}
_STORE_OPS = {"st": Op.ST, "sb": Op.SB}


def assemble(source: str, name: str = "program", entry: str | int | None = None) -> Program:
    """Assemble *source* text into a sealed :class:`Program`.

    If *entry* is ``None``, the ``main`` label is used when present,
    otherwise instruction 0.
    """
    instructions: list[Instruction] = []
    labels: dict[str, int] = {}
    data: list[DataItem] = []
    data_cursor = DATA_BASE
    section = ".text"
    pending_data_label: str | None = None

    for line_number, raw_line in enumerate(source.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue

        if line.startswith("."):
            directive_parts = line.split(None, 1)
            directive = directive_parts[0]
            if directive in (".text", ".data"):
                section = directive
                continue
            if section == ".data" and directive in (".quad", ".byte", ".space"):
                if pending_data_label is None:
                    raise AssemblerError(
                        f"line {line_number}: data directive without a label"
                    )
                item = _parse_data_directive(
                    pending_data_label, directive, directive_parts, data_cursor,
                    line_number,
                )
                data.append(item)
                data_cursor = _align(item.address + item.size, 8)
                pending_data_label = None
                continue
            raise AssemblerError(f"line {line_number}: unknown directive {directive!r}")

        # Labels (possibly followed by code/data on the same line).
        while True:
            match = re.match(r"^([A-Za-z_.][\w.]*)\s*:\s*(.*)$", line)
            if not match:
                break
            label, line = match.group(1), match.group(2).strip()
            if section == ".text":
                if label in labels:
                    raise AssemblerError(f"line {line_number}: duplicate label {label!r}")
                labels[label] = len(instructions)
            else:
                pending_data_label = label
            if not line:
                break
        if not line:
            continue

        if section == ".data":
            if line.startswith("."):
                directive_parts = line.split(None, 1)
                item = _parse_data_directive(
                    pending_data_label, directive_parts[0], directive_parts,
                    data_cursor, line_number,
                )
                data.append(item)
                data_cursor = _align(item.address + item.size, 8)
                pending_data_label = None
                continue
            raise AssemblerError(f"line {line_number}: unexpected text in .data")

        instructions.append(_parse_instruction(line, line_number))

    if entry is None:
        entry = labels.get("main", 0)
    return Program(instructions, labels, data, entry=entry, name=name)


def _parse_data_directive(
    label: str | None,
    directive: str,
    parts: list[str],
    cursor: int,
    line_number: int,
) -> DataItem:
    if label is None:
        raise AssemblerError(f"line {line_number}: data directive without a label")
    arg_text = parts[1] if len(parts) > 1 else ""
    if directive == ".space":
        count = int(arg_text, 0)
        return DataItem(name=label, address=cursor, values=[0] * count, width=8)
    values = [int(token.strip(), 0) for token in arg_text.split(",") if token.strip()]
    width = 8 if directive == ".quad" else 1
    return DataItem(name=label, address=cursor, values=values, width=width)


def _parse_instruction(line: str, line_number: int) -> Instruction:
    parts = line.split(None, 1)
    mnemonic = parts[0].lower()
    operand_text = parts[1] if len(parts) > 1 else ""
    operands = [token.strip() for token in operand_text.split(",") if token.strip()]

    secure = False
    if mnemonic.startswith("s") and mnemonic[1:] in _BRANCH_OPS:
        secure = True
        mnemonic = mnemonic[1:]

    try:
        return _build_instruction(mnemonic, operands, secure)
    except (ValueError, KeyError, IndexError) as exc:
        raise AssemblerError(f"line {line_number}: {exc}") from exc


def _build_instruction(mnemonic: str, ops: list[str], secure: bool) -> Instruction:
    if mnemonic in _RR_OPS:
        return Instruction(_RR_OPS[mnemonic], rd=parse_reg(ops[0]),
                           rs1=parse_reg(ops[1]), rs2=parse_reg(ops[2]))
    if mnemonic in _RI_OPS:
        return Instruction(_RI_OPS[mnemonic], rd=parse_reg(ops[0]),
                           rs1=parse_reg(ops[1]), imm=int(ops[2], 0))
    if mnemonic in _BRANCH_OPS:
        return Instruction(_BRANCH_OPS[mnemonic], rs1=parse_reg(ops[0]),
                           rs2=parse_reg(ops[1]), label=ops[2], secure=secure)
    if mnemonic in _LOAD_OPS:
        base, offset = _parse_mem_operand(ops[1])
        return Instruction(_LOAD_OPS[mnemonic], rd=parse_reg(ops[0]),
                           rs1=base, imm=offset)
    if mnemonic in _STORE_OPS:
        base, offset = _parse_mem_operand(ops[1])
        return Instruction(_STORE_OPS[mnemonic], rs2=parse_reg(ops[0]),
                           rs1=base, imm=offset)
    if mnemonic == "lui":
        try:
            return Instruction(Op.LUI, rd=parse_reg(ops[0]), imm=int(ops[1], 0))
        except ValueError:
            return Instruction(Op.LUI, rd=parse_reg(ops[0]), label=ops[1])
    if mnemonic == "la":
        return Instruction(Op.LUI, rd=parse_reg(ops[0]), label=ops[1])
    if mnemonic == "li":
        return Instruction(Op.ADDI, rd=parse_reg(ops[0]), rs1=0, imm=int(ops[1], 0))
    if mnemonic == "mv":
        return Instruction(Op.ADDI, rd=parse_reg(ops[0]), rs1=parse_reg(ops[1]), imm=0)
    if mnemonic == "jmp":
        return Instruction(Op.JMP, label=ops[0])
    if mnemonic == "jal":
        if len(ops) == 1:
            return Instruction(Op.JAL, rd=1, label=ops[0])
        return Instruction(Op.JAL, rd=parse_reg(ops[0]), label=ops[1])
    if mnemonic == "jalr":
        if len(ops) == 1:
            return Instruction(Op.JALR, rd=0, rs1=parse_reg(ops[0]))
        return Instruction(Op.JALR, rd=parse_reg(ops[0]), rs1=parse_reg(ops[1]))
    if mnemonic == "ret":
        return Instruction(Op.JALR, rd=0, rs1=1)
    if mnemonic == "cmov":
        return Instruction(Op.CMOV, rd=parse_reg(ops[0]), rs1=parse_reg(ops[1]),
                           rs2=parse_reg(ops[2]))
    if mnemonic == "eosjmp":
        return Instruction(Op.EOSJMP)
    if mnemonic == "nop":
        return Instruction(Op.NOP)
    if mnemonic == "halt":
        return Instruction(Op.HALT)
    raise ValueError(f"unknown mnemonic {mnemonic!r}")


def _parse_mem_operand(text: str) -> tuple[int, int]:
    match = _MEM_OPERAND.match(text.replace(" ", ""))
    if not match:
        raise ValueError(f"bad memory operand {text!r}")
    offset_text, base_text = match.group(1), match.group(2)
    return parse_reg(base_text), int(offset_text, 0)
