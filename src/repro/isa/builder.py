"""Programmatic program construction.

:class:`ProgramBuilder` is the interface the compiler back end and the
workload generators use to emit code.  It manages labels, the data
segment layout, and fresh-name generation, and produces a sealed
:class:`repro.isa.program.Program`.
"""

from __future__ import annotations

import itertools

from repro.isa.instructions import Instruction
from repro.isa.opcodes import Op
from repro.isa.program import DATA_BASE, SHADOW_BASE, DataItem, Program, ProgramError
from repro.isa.registers import ZERO


class ProgramBuilder:
    """Incremental builder for :class:`Program` objects."""

    def __init__(self, name: str = "program") -> None:
        self.name = name
        self.instructions: list[Instruction] = []
        self.labels: dict[str, int] = {}
        self.data: list[DataItem] = []
        self.source_lines: list[int] = []
        self._current_line = 0
        self._data_cursor = DATA_BASE
        self._shadow_cursor = SHADOW_BASE
        self._label_counter = itertools.count()

    # -- code emission -------------------------------------------------------

    def set_line(self, line: int) -> None:
        """Attribute subsequently emitted instructions to source *line*.

        The compiler back end calls this per statement/expression; every
        instruction emitted until the next call is stamped with *line* in
        the debug map (``Program.source_lines``).  Line 0 means "no
        source position" (builder-generated scaffolding).
        """
        self._current_line = int(line)

    def emit(self, inst: Instruction) -> Instruction:
        """Append *inst* and return it."""
        self.instructions.append(inst)
        self.source_lines.append(self._current_line)
        return inst

    def op(self, op: Op, **kwargs) -> Instruction:
        """Emit an instruction by opcode with keyword operands."""
        return self.emit(Instruction(op, **kwargs))

    def label(self, name: str) -> str:
        """Bind *name* to the next instruction index."""
        if name in self.labels:
            raise ProgramError(f"duplicate label {name!r}")
        self.labels[name] = len(self.instructions)
        return name

    def fresh_label(self, stem: str = "L") -> str:
        """Return a unique label name (not yet bound)."""
        return f".{stem}{next(self._label_counter)}"

    @property
    def here(self) -> int:
        """Index of the next instruction to be emitted."""
        return len(self.instructions)

    # -- common instruction helpers -------------------------------------------

    def li(self, rd: int, value: int, comment: str = "") -> None:
        """Load a (possibly large) immediate into *rd*."""
        value = int(value)
        if -(1 << 31) <= value < (1 << 31):
            self.op(Op.ADDI, rd=rd, rs1=ZERO, imm=value, comment=comment)
        else:
            high = value >> 32
            low = value & 0xFFFF_FFFF
            self.op(Op.ADDI, rd=rd, rs1=ZERO, imm=high, comment=comment)
            self.op(Op.SLLI, rd=rd, rs1=rd, imm=32)
            self.op(Op.ORI, rd=rd, rs1=rd, imm=low)

    def la(self, rd: int, symbol: str, comment: str = "") -> None:
        """Load the address of data *symbol* into *rd*."""
        self.op(Op.LUI, rd=rd, label=symbol, comment=comment)

    def mv(self, rd: int, rs: int, comment: str = "") -> None:
        self.op(Op.ADDI, rd=rd, rs1=rs, imm=0, comment=comment)

    def branch(
        self,
        op: Op,
        rs1: int,
        rs2: int,
        label: str,
        secure: bool = False,
        comment: str = "",
    ) -> Instruction:
        return self.op(
            op, rs1=rs1, rs2=rs2, label=label, secure=secure, comment=comment
        )

    def jmp(self, label: str, comment: str = "") -> Instruction:
        return self.op(Op.JMP, label=label, comment=comment)

    def eosjmp(self, comment: str = "") -> Instruction:
        return self.op(Op.EOSJMP, comment=comment)

    def halt(self) -> Instruction:
        return self.op(Op.HALT)

    # -- data segment ---------------------------------------------------------

    def data_quads(self, name: str, values: list[int]) -> int:
        """Allocate 8-byte words in the data segment; returns the address."""
        return self._alloc(name, list(values), width=8)

    def data_bytes(self, name: str, values: list[int]) -> int:
        """Allocate bytes in the data segment; returns the address."""
        return self._alloc(name, list(values), width=1)

    def data_space(self, name: str, n_quads: int) -> int:
        """Allocate *n_quads* zero-initialised 8-byte words."""
        return self._alloc(name, [0] * n_quads, width=8)

    def shadow_space(self, name: str, n_quads: int) -> int:
        """Allocate ShadowMemory (path-private copies) for SeMPE code."""
        address = self._shadow_cursor
        item = DataItem(name=name, address=address, values=[0] * n_quads, width=8)
        self.data.append(item)
        self._shadow_cursor = _align(address + item.size, 8)
        return address

    def _alloc(self, name: str, values: list[int], width: int) -> int:
        if any(item.name == name for item in self.data):
            raise ProgramError(f"duplicate data symbol {name!r}")
        address = self._data_cursor
        item = DataItem(name=name, address=address, values=values, width=width)
        self.data.append(item)
        self._data_cursor = _align(address + item.size, 8)
        return address

    # -- finishing --------------------------------------------------------------

    def build(self, entry: str | int = 0) -> Program:
        """Seal and return the finished :class:`Program`."""
        return Program(
            instructions=self.instructions,
            labels=self.labels,
            data=self.data,
            entry=entry,
            name=self.name,
            source_lines=self.source_lines,
        )


def _align(address: int, alignment: int) -> int:
    return (address + alignment - 1) // alignment * alignment
