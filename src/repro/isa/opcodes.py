"""Opcode definitions and static properties.

Opcodes are grouped into :class:`OpClass` categories used by the timing
model to pick functional units and latencies, and by the functional
simulator to dispatch execution.
"""

from __future__ import annotations

import enum


class OpClass(enum.Enum):
    """Coarse instruction category."""

    ALU = "alu"            # single-cycle integer ops
    MUL = "mul"            # integer multiply
    DIV = "div"            # integer divide / remainder
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"      # conditional branches
    JUMP = "jump"          # unconditional direct jumps / calls
    IJUMP = "ijump"        # indirect jumps (returns)
    CMOV = "cmov"
    EOSJMP = "eosjmp"      # end-of-secure-jump marker
    SYS = "sys"            # nop / halt / print


class Op(enum.Enum):
    """Machine opcodes."""

    # Register-register ALU.
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    REM = "rem"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SLL = "sll"
    SRL = "srl"
    SRA = "sra"
    SLT = "slt"
    SLTU = "sltu"

    # Register-immediate ALU.
    ADDI = "addi"
    ANDI = "andi"
    ORI = "ori"
    XORI = "xori"
    SLLI = "slli"
    SRLI = "srli"
    SRAI = "srai"
    SLTI = "slti"
    LUI = "lui"

    # Memory (8-byte words and single bytes).
    LD = "ld"
    ST = "st"
    LB = "lb"
    SB = "sb"

    # Control flow.
    BEQ = "beq"
    BNE = "bne"
    BLT = "blt"
    BGE = "bge"
    BLTU = "bltu"
    BGEU = "bgeu"
    JMP = "jmp"
    JAL = "jal"
    JALR = "jalr"

    # Conditional move: rd = (rs2 != 0) ? rs1 : rd.
    CMOV = "cmov"

    # SeMPE join marker (NOP on legacy decoders).
    EOSJMP = "eosjmp"

    # System.
    NOP = "nop"
    HALT = "halt"


_COND_BRANCHES = {Op.BEQ, Op.BNE, Op.BLT, Op.BGE, Op.BLTU, Op.BGEU}
_ALU_RR = {
    Op.ADD, Op.SUB, Op.AND, Op.OR, Op.XOR, Op.SLL, Op.SRL, Op.SRA,
    Op.SLT, Op.SLTU,
}
_ALU_RI = {
    Op.ADDI, Op.ANDI, Op.ORI, Op.XORI, Op.SLLI, Op.SRLI, Op.SRAI,
    Op.SLTI, Op.LUI,
}

_OP_CLASS = {}
for _op in _ALU_RR | _ALU_RI:
    _OP_CLASS[_op] = OpClass.ALU
_OP_CLASS[Op.MUL] = OpClass.MUL
_OP_CLASS[Op.DIV] = OpClass.DIV
_OP_CLASS[Op.REM] = OpClass.DIV
_OP_CLASS[Op.LD] = OpClass.LOAD
_OP_CLASS[Op.LB] = OpClass.LOAD
_OP_CLASS[Op.ST] = OpClass.STORE
_OP_CLASS[Op.SB] = OpClass.STORE
for _op in _COND_BRANCHES:
    _OP_CLASS[_op] = OpClass.BRANCH
_OP_CLASS[Op.JMP] = OpClass.JUMP
_OP_CLASS[Op.JAL] = OpClass.JUMP
_OP_CLASS[Op.JALR] = OpClass.IJUMP
_OP_CLASS[Op.CMOV] = OpClass.CMOV
_OP_CLASS[Op.EOSJMP] = OpClass.EOSJMP
_OP_CLASS[Op.NOP] = OpClass.SYS
_OP_CLASS[Op.HALT] = OpClass.SYS


# -- dense integer ids -------------------------------------------------------
#
# The fast simulation engine dispatches through tables indexed by small
# integers instead of comparing Enum members (see the predecode pass in
# :mod:`repro.isa.program`).  The ids are the declaration order of the
# Enum members and are stable within a process.

OPS: tuple[Op, ...] = tuple(Op)
OP_ID: dict[Op, int] = {op: index for index, op in enumerate(OPS)}
OPCLASSES: tuple[OpClass, ...] = tuple(OpClass)
OPCLASS_ID: dict[OpClass, int] = {
    opclass: index for index, opclass in enumerate(OPCLASSES)
}
NUM_OPS = len(OPS)

# op id -> opclass id, as a flat tuple for int-indexed lookups.
OP_CLASS_IDS: tuple[int, ...] = tuple(
    OPCLASS_ID[_OP_CLASS[op]] for op in OPS
)


def op_class(op: Op) -> OpClass:
    """Return the :class:`OpClass` of *op*."""
    return _OP_CLASS[op]


def is_cond_branch(op: Op) -> bool:
    """True for conditional branch opcodes (the ones SecPrefix applies to)."""
    return op in _COND_BRANCHES


def is_branch_or_jump(op: Op) -> bool:
    """True for any control-flow opcode (excluding EOSJMP)."""
    return op in _COND_BRANCHES or op in (Op.JMP, Op.JAL, Op.JALR)


def is_load(op: Op) -> bool:
    return op in (Op.LD, Op.LB)


def is_store(op: Op) -> bool:
    return op in (Op.ST, Op.SB)


def mem_width(op: Op) -> int:
    """Access width in bytes for memory opcodes."""
    if op in (Op.LD, Op.ST):
        return 8
    if op in (Op.LB, Op.SB):
        return 1
    raise ValueError(f"{op} is not a memory opcode")
