"""Instruction objects.

An :class:`Instruction` is a fully-resolved machine instruction.  Branch
targets are kept symbolically (label name) until the program is sealed by
:class:`repro.isa.program.Program`, which resolves them to instruction
indices.  Every instruction occupies 4 bytes of (simulated) instruction
memory; the variable-length backward-compatible byte encoding lives in
:mod:`repro.isa.encoding` and is used only for the compatibility story.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.opcodes import (
    Op,
    OpClass,
    is_cond_branch,
    is_branch_or_jump,
    is_load,
    is_store,
    op_class,
)
from repro.isa.registers import ZERO, reg_name

INSTRUCTION_BYTES = 4


@dataclass
class Instruction:
    """One machine instruction.

    Attributes:
        op: opcode.
        rd: destination register (or ``None``).
        rs1: first source register (or ``None``).
        rs2: second source register (or ``None``).
        imm: immediate operand (or ``None``).
        label: symbolic control-flow target (branches, JAL, JMP) or the
            symbolic address for LUI-style data references.
        target: resolved control-flow target (instruction index); filled
            in by :meth:`repro.isa.program.Program.seal`.
        secure: the SecPrefix flag.  Only meaningful on conditional
            branches; a secure branch is the paper's ``sJMP``.
        comment: free-form annotation carried through the toolchain.
    """

    op: Op
    rd: int | None = None
    rs1: int | None = None
    rs2: int | None = None
    imm: int | None = None
    label: str | None = None
    target: int | None = None
    secure: bool = False
    comment: str = ""

    def __post_init__(self) -> None:
        if self.secure and not is_cond_branch(self.op):
            raise ValueError(
                f"SecPrefix is only valid on conditional branches, not {self.op}"
            )

    # -- static classification helpers ------------------------------------

    @property
    def opclass(self) -> OpClass:
        return op_class(self.op)

    @property
    def is_cond_branch(self) -> bool:
        return is_cond_branch(self.op)

    @property
    def is_secure_branch(self) -> bool:
        return self.secure and is_cond_branch(self.op)

    @property
    def is_control(self) -> bool:
        return is_branch_or_jump(self.op)

    @property
    def is_load(self) -> bool:
        return is_load(self.op)

    @property
    def is_store(self) -> bool:
        return is_store(self.op)

    @property
    def is_mem(self) -> bool:
        return is_load(self.op) or is_store(self.op)

    # -- register usage ----------------------------------------------------

    def src_regs(self) -> tuple[int, ...]:
        """Source registers actually read by this instruction."""
        srcs = []
        if self.rs1 is not None and self.rs1 != ZERO:
            srcs.append(self.rs1)
        if self.rs2 is not None and self.rs2 != ZERO:
            srcs.append(self.rs2)
        # CMOV also reads its old destination value.
        if self.op is Op.CMOV and self.rd is not None and self.rd != ZERO:
            srcs.append(self.rd)
        return tuple(srcs)

    def dst_reg(self) -> int | None:
        """Destination register, or ``None`` (writes to x0 are discarded)."""
        if self.rd is None or self.rd == ZERO:
            return None
        if self.is_store or self.is_cond_branch or self.op in (
            Op.JMP,
            Op.EOSJMP,
            Op.NOP,
            Op.HALT,
        ):
            return None
        return self.rd

    # -- printing ------------------------------------------------------------

    def mnemonic(self) -> str:
        """Assembler mnemonic, with the ``s`` prefix for secure branches."""
        base = self.op.value
        if self.is_secure_branch:
            return "s" + base
        return base

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        parts = [self.mnemonic()]
        operands = []
        if self.op in (Op.LD, Op.LB):
            operands = [reg_name(self.rd), f"{self.imm}({reg_name(self.rs1)})"]
        elif self.op in (Op.ST, Op.SB):
            operands = [reg_name(self.rs2), f"{self.imm}({reg_name(self.rs1)})"]
        elif self.is_cond_branch:
            tgt = self.label if self.label is not None else f"@{self.target}"
            operands = [reg_name(self.rs1), reg_name(self.rs2), str(tgt)]
        elif self.op in (Op.JMP,):
            operands = [self.label if self.label is not None else f"@{self.target}"]
        elif self.op is Op.JAL:
            tgt = self.label if self.label is not None else f"@{self.target}"
            operands = [reg_name(self.rd), str(tgt)]
        elif self.op is Op.JALR:
            operands = [reg_name(self.rd), reg_name(self.rs1)]
        else:
            if self.dst_reg() is not None or self.rd == ZERO:
                if self.rd is not None:
                    operands.append(reg_name(self.rd))
            if self.rs1 is not None:
                operands.append(reg_name(self.rs1))
            if self.rs2 is not None:
                operands.append(reg_name(self.rs2))
            if self.imm is not None:
                operands.append(str(self.imm))
        text = parts[0]
        if operands:
            text += " " + ", ".join(operands)
        if self.comment:
            text += f"  # {self.comment}"
        return text
