"""Byte-level encoding with the paper's backward-compatible extensions.

The paper encodes a secure branch as an ordinary branch preceded by the
``SecPrefix`` byte ``0x2e`` (an x86 segment-override/branch-hint byte that
legacy parts ignore), and ``eosJMP`` as ``0x2e 0x90`` (prefix + NOP, i.e. a
NOP on legacy parts).  We mirror that exactly:

* instructions encode to a 5-byte body ``[opcode, rd, rs1, rs2/flags,
  imm-index]`` preceded by ``0x2e`` when the SecPrefix flag is set;
* ``EOSJMP`` encodes to exactly ``0x2e 0x90``;
* ``NOP`` encodes to ``0x90``.

:func:`decode_program` has a ``legacy`` mode that ignores ``0x2e`` and
decodes ``0x90`` as NOP, demonstrating the binary-compatibility claim: a
SeMPE binary decodes on a legacy machine to the same program with all
security annotations erased.
"""

from __future__ import annotations

import struct

from repro.isa.instructions import Instruction
from repro.isa.opcodes import Op
from repro.isa.program import Program

SEC_PREFIX = 0x2E
NOP_BYTE = 0x90

_OPCODE_BYTES = {op: index + 1 for index, op in enumerate(Op)}
_BYTE_OPCODES = {byte: op for op, byte in _OPCODE_BYTES.items()}
# EOSJMP and NOP are special-cased to their x86-compatible encodings.
_SPECIAL_OPS = (Op.EOSJMP, Op.NOP)


class EncodingError(Exception):
    """Raised on undecodable byte streams."""


def encode_instruction(inst: Instruction, imm_table: list[int]) -> bytes:
    """Encode one instruction; immediates are interned in *imm_table*."""
    if inst.op is Op.EOSJMP:
        return bytes([SEC_PREFIX, NOP_BYTE])
    if inst.op is Op.NOP:
        return bytes([NOP_BYTE])

    body = bytearray()
    if inst.secure:
        body.append(SEC_PREFIX)
    body.append(_OPCODE_BYTES[inst.op])
    body.append(inst.rd if inst.rd is not None else 0xFF)
    body.append(inst.rs1 if inst.rs1 is not None else 0xFF)
    body.append(inst.rs2 if inst.rs2 is not None else 0xFF)

    imm = inst.imm
    if inst.is_control and inst.target is not None:
        imm = inst.target
    if imm is None:
        body.append(0xFF)
    else:
        if imm not in _imm_index_cache(imm_table):
            imm_table.append(imm)
            _imm_index_cache(imm_table)[imm] = len(imm_table) - 1
        index = _imm_index_cache(imm_table)[imm]
        if index >= 0xFF:
            raise EncodingError("immediate table overflow (>254 distinct values)")
        body.append(index)
    return bytes(body)


# The immediate-intern cache is attached to the table list itself so that
# encode_instruction stays a pure function of (inst, imm_table).
_IMM_CACHES: dict[int, dict[int, int]] = {}


def _imm_index_cache(imm_table: list[int]) -> dict[int, int]:
    cache = _IMM_CACHES.get(id(imm_table))
    if cache is None or len(cache) != len(imm_table):
        cache = {value: index for index, value in enumerate(imm_table)}
        _IMM_CACHES[id(imm_table)] = cache
    return cache


def encode_program(program: Program) -> bytes:
    """Encode *program* to a flat binary image.

    Layout: ``u32 n_instructions | u32 n_imms | imm table (i64 each) |
    instruction stream``.
    """
    imm_table: list[int] = []
    chunks = [encode_instruction(inst, imm_table) for inst in program.instructions]
    header = struct.pack("<II", len(program.instructions), len(imm_table))
    imms = b"".join(struct.pack("<q", value) for value in imm_table)
    return header + imms + b"".join(chunks)


def decode_program(blob: bytes, legacy: bool = False) -> list[Instruction]:
    """Decode a binary image back to instructions.

    With ``legacy=True`` the decoder models a non-SeMPE processor: the
    SecPrefix byte is skipped (treated as a meaningless hint) and the
    ``0x2e 0x90`` pair therefore decodes as a plain NOP.  The resulting
    instruction list is the same program with ``secure`` flags cleared and
    ``EOSJMP`` replaced by ``NOP``.
    """
    n_insts, n_imms = struct.unpack_from("<II", blob, 0)
    offset = 8
    imm_table = [
        struct.unpack_from("<q", blob, offset + 8 * index)[0]
        for index in range(n_imms)
    ]
    offset += 8 * n_imms

    instructions: list[Instruction] = []
    while len(instructions) < n_insts:
        saw_prefix = False
        byte = blob[offset]
        if byte == SEC_PREFIX:
            saw_prefix = True
            offset += 1
            byte = blob[offset]
        if byte == NOP_BYTE:
            offset += 1
            if saw_prefix and not legacy:
                instructions.append(Instruction(Op.EOSJMP))
            else:
                instructions.append(Instruction(Op.NOP))
            continue
        op = _BYTE_OPCODES.get(byte)
        if op is None or op in _SPECIAL_OPS:
            raise EncodingError(f"bad opcode byte 0x{byte:02x} at offset {offset}")
        rd, rs1, rs2, imm_index = blob[offset + 1: offset + 5]
        offset += 5
        imm = None if imm_index == 0xFF else imm_table[imm_index]
        inst = Instruction(
            op,
            rd=None if rd == 0xFF else rd,
            rs1=None if rs1 == 0xFF else rs1,
            rs2=None if rs2 == 0xFF else rs2,
            secure=saw_prefix and not legacy and op.name in _COND_BRANCH_NAMES,
        )
        if inst.is_control:
            inst.target = imm
        else:
            inst.imm = imm
        instructions.append(inst)
    return instructions


_COND_BRANCH_NAMES = {"BEQ", "BNE", "BLT", "BGE", "BLTU", "BGEU"}
