"""Architectural register file description.

The machine has 32 64-bit general-purpose registers with RISC-V-flavoured
ABI names.  Register ``x0`` is hardwired to zero.  The paper's x86_64
target has 48 architectural registers; the snapshot *size* used for SPM
timing is configurable independently of this count (see
:class:`repro.uarch.config.MachineConfig`).
"""

from __future__ import annotations

NUM_REGS = 32

# Hardwired and ABI registers.
ZERO = 0
RA = 1   # return address
SP = 2   # stack pointer
GP = 3   # global pointer (base of .data)

# Argument / return registers a0..a7 = x10..x17 (a0 doubles as return value).
A0, A1, A2, A3, A4, A5, A6, A7 = range(10, 18)

# Callee-saved s0..s7 = x18..x25.
S0, S1, S2, S3, S4, S5, S6, S7 = range(18, 26)

# Caller-saved temporaries t0..t5 = x26..x31, plus x4..x9 as extra temps.
T0, T1, T2, T3, T4, T5 = range(26, 32)

REG_ABI_NAMES = {
    0: "zero",
    1: "ra",
    2: "sp",
    3: "gp",
    4: "x4",
    5: "x5",
    6: "x6",
    7: "x7",
    8: "x8",
    9: "x9",
    10: "a0",
    11: "a1",
    12: "a2",
    13: "a3",
    14: "a4",
    15: "a5",
    16: "a6",
    17: "a7",
    18: "s0",
    19: "s1",
    20: "s2",
    21: "s3",
    22: "s4",
    23: "s5",
    24: "s6",
    25: "s7",
    26: "t0",
    27: "t1",
    28: "t2",
    29: "t3",
    30: "t4",
    31: "t5",
}

_NAME_TO_REG = {name: num for num, name in REG_ABI_NAMES.items()}
_NAME_TO_REG.update({f"x{i}": i for i in range(NUM_REGS)})


def reg_name(reg: int) -> str:
    """Return the ABI name of register number *reg*."""
    if reg not in REG_ABI_NAMES:
        raise ValueError(f"no such register: {reg}")
    return REG_ABI_NAMES[reg]


def parse_reg(text: str) -> int:
    """Parse a register name (``x7``, ``a0``, ``sp`` ...) to its number."""
    key = text.strip().lower()
    if key not in _NAME_TO_REG:
        raise ValueError(f"unknown register name: {text!r}")
    return _NAME_TO_REG[key]
