"""Cost models for Raccoon and GhostRider (Table I comparison)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.executor import ExecutionResult
from repro.core.engine import SimulationReport


@dataclass
class PriorWorkEstimate:
    """Estimated cycles and slowdown for one prior approach."""

    approach: str
    cycles: float
    slowdown: float


class RaccoonModel:
    """Raccoon (Rane et al., USENIX Security '15) cost model.

    Raccoon executes both branch paths in software and converts every
    load/store in obfuscated code into a hardware transaction plus
    operand-streaming CMOVs.  Cost model on top of our dual-path run:

    ``cycles = sempe_cycles_without_drains
               + (secure loads + stores) * txn_penalty
               + secure stores * cmov_penalty``

    The default ``txn_penalty`` (40 cycles) approximates an L2-visible
    transactional read/write set update; the paper reports an average
    22x and worst-case 452x slowdown, which this model lands near for
    memory-heavy / deeply nested workloads.
    """

    name = "Raccoon"

    def __init__(self, txn_penalty: int = 40, cmov_penalty: int = 4) -> None:
        self.txn_penalty = txn_penalty
        self.cmov_penalty = cmov_penalty

    def estimate(self, sempe_report: SimulationReport,
                 baseline_cycles: int) -> PriorWorkEstimate:
        functional: ExecutionResult = sempe_report.functional
        # Raccoon is software-only: no jbTable/SPM drains, but the same
        # both-path instruction stream.
        base = sempe_report.cycles - sempe_report.pipeline.drain_cycles
        mem_ops = functional.secure_loads + functional.secure_stores
        cycles = (base + mem_ops * self.txn_penalty
                  + functional.secure_stores * self.cmov_penalty)
        return PriorWorkEstimate(
            approach=self.name,
            cycles=cycles,
            slowdown=cycles / max(baseline_cycles, 1),
        )


class GhostRiderModel:
    """GhostRider / MTO (Liu et al., ASPLOS '15) cost model.

    GhostRider equalises both paths (so the both-path instruction floor
    applies) and routes every protected memory access through ORAM.  A
    Path-ORAM access over a tree of depth d touches O(d * bucket) cache
    lines; the default ``oram_penalty`` of 600 cycles corresponds to a
    modest tree (d ~ 20, 4-line buckets, mostly L2-resident).  The
    GhostRider paper reports about 10x-200x on its own platform and the
    Raccoon paper reports an average 195x / worst case 1987x for MTO,
    which this model approaches for load/store-dense regions.
    """

    name = "GhostRider"

    def __init__(self, oram_penalty: int = 600,
                 equalise_factor: float = 1.15) -> None:
        self.oram_penalty = oram_penalty
        self.equalise_factor = equalise_factor

    def estimate(self, sempe_report: SimulationReport,
                 baseline_cycles: int) -> PriorWorkEstimate:
        functional: ExecutionResult = sempe_report.functional
        base = (sempe_report.cycles - sempe_report.pipeline.drain_cycles)
        base *= self.equalise_factor   # instruction-count padding
        mem_ops = functional.secure_loads + functional.secure_stores
        cycles = base + mem_ops * self.oram_penalty
        return PriorWorkEstimate(
            approach=self.name,
            cycles=cycles,
            slowdown=cycles / max(baseline_cycles, 1),
        )
