"""Analytic cost models of the prior approaches compared in Table I.

The paper's Table I cites overheads *reported by other papers* for
GhostRider/MTO and Raccoon.  Those systems cannot be rebuilt exactly
(GhostRider needs its FPGA/ORAM platform; Raccoon needs Intel TSX), so
we model their per-mechanism costs on top of our own dual-path
functional statistics — both systems, like SeMPE, execute (or equalise)
both branch paths, and their extra cost over that floor is a
per-memory-op penalty:

* **Raccoon** wraps every load and store inside obfuscated code in a
  hardware transaction and streams both paths through CMOVs;
* **GhostRider/MTO** turns every memory access inside protected code
  into an ORAM access (a tree of physical accesses) and pads the paths
  to equal length.

See DESIGN.md substitution 5.
"""

from repro.models.priorwork import (
    RaccoonModel,
    GhostRiderModel,
    PriorWorkEstimate,
)

__all__ = ["RaccoonModel", "GhostRiderModel", "PriorWorkEstimate"]
