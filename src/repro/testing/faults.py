"""Deterministic fault injection for sweep cells.

A :class:`FaultPlan` maps cell fingerprints to faults.  The plan rides
into the worker process inside the cell payload, and the worker applies
it *before* simulating, so a faulted cell misbehaves exactly the way a
hostile or broken cell would:

* ``raise``  — the worker body raises :class:`InjectedFault`;
* ``hang``   — the worker sleeps past any reasonable deadline (then
  raises, so an unenforced hang still terminates eventually);
* ``kill``   — the worker process exits hard (``os._exit``), modelling
  an OOM kill or segfault: no exception, no result, just a dead pid.

Plans are keyed by the cell's structural fingerprint and attempt
number — never by submission order or worker identity — so a plan
produces the *same* faults for ``--jobs 1`` and ``--jobs 8``, and a
``times=N`` fault turns flaky: it fires on the first N attempts and
then lets the cell succeed, which is how the retry path is tested.

:meth:`FaultPlan.seeded` derives a pseudo-random plan from a seed and
a target fault rate, again purely from fingerprints, for chaos smokes
over grids whose cells the test doesn't want to enumerate by hand.
"""

from __future__ import annotations

import hashlib
import os
import sys
import time
from dataclasses import dataclass, field

# Exit code a "kill" fault dies with; chosen to be recognizable in
# worker post-mortems (it mimics an externally SIGKILLed process as far
# as the parent can tell: no result, dead sentinel).
KILL_EXIT_CODE = 86

# Every fault action fires on attempts 1..times; sys.maxsize = always.
ALWAYS = sys.maxsize

ACTIONS = ("raise", "hang", "kill")


class InjectedFault(RuntimeError):
    """The exception a ``raise`` fault (or an elapsed hang) throws."""


@dataclass(frozen=True)
class FaultSpec:
    """One cell's fault: what happens, for how many attempts.

    ``engines`` restricts the fault to cells *executing* on the named
    engines — e.g. ``("fast",)`` models a fast-engine-only crash, which
    is what the reference-engine fallback path recovers from.
    """

    action: str                        # raise | hang | kill
    times: int = ALWAYS                # fire on attempts 1..times
    hang_seconds: float = 3600.0       # how long a hang sleeps
    engines: tuple[str, ...] | None = None  # None = any engine

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r}; "
                f"choose from {ACTIONS}")

    def fires(self, attempt: int, engine: str) -> bool:
        if self.engines is not None and engine not in self.engines:
            return False
        return attempt <= self.times


@dataclass(frozen=True)
class FaultPlan:
    """Fingerprint-keyed fault assignments for one sweep."""

    faults: dict[str, FaultSpec] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.faults)

    def spec_for(self, fp: str) -> FaultSpec | None:
        return self.faults.get(fp)

    def has_hangs(self) -> bool:
        """Whether any fault can hang (such plans need a deadline)."""
        return any(spec.action == "hang" for spec in self.faults.values())

    def apply(self, fp: str, attempt: int, engine: str = "") -> None:
        """Misbehave if the plan faults (*fp*, *attempt*, *engine*).

        Called in the worker before the cell simulates.  Returns
        normally when the cell is healthy (or its fault is exhausted).
        """
        spec = self.faults.get(fp)
        if spec is None or not spec.fires(attempt, engine):
            return
        if spec.action == "kill":
            # Model an OOM kill / segfault: die without cleanup.  Flush
            # nothing, send nothing — the parent must cope with silence.
            os._exit(KILL_EXIT_CODE)
        if spec.action == "hang":
            time.sleep(spec.hang_seconds)
            raise InjectedFault(
                f"injected hang elapsed after {spec.hang_seconds}s "
                f"(cell {fp[:12]}, attempt {attempt})")
        raise InjectedFault(
            f"injected fault (cell {fp[:12]}, attempt {attempt})")

    @classmethod
    def seeded(cls, fingerprints, seed: int, rate: float = 0.25,
               hang_seconds: float = 3600.0,
               actions: tuple[str, ...] = ACTIONS) -> "FaultPlan":
        """A pseudo-random plan over *fingerprints*.

        Each cell is faulted with probability ~*rate*, with the action
        drawn round-robin from *actions*; both draws hash (seed,
        fingerprint) so the plan is a pure function of the cell set and
        seed — identical for any job count and submission order.
        """
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {rate}")
        faults: dict[str, FaultSpec] = {}
        for fp in fingerprints:
            digest = hashlib.sha256(
                f"{seed}:{fp}".encode()).digest()
            draw = int.from_bytes(digest[:8], "big") / 2**64
            if draw >= rate:
                continue
            action = actions[digest[8] % len(actions)]
            faults[fp] = FaultSpec(action, hang_seconds=hang_seconds)
        return cls(faults)
