"""Deterministic test instrumentation for the harness.

:mod:`repro.testing.faults` is the fault-injection harness the chaos
suite and ``make chaos-smoke`` drive: seeded, fingerprint-keyed fault
plans that make chosen sweep cells raise, hang, or kill their worker,
so every failure path of the fault-tolerant execution layer is
exercised in CI rather than just claimed.
"""

from repro.testing.faults import FaultPlan, FaultSpec, InjectedFault

__all__ = ["FaultPlan", "FaultSpec", "InjectedFault"]
