"""Synthetic ``djpeg``: the libjpeg stand-in (see DESIGN.md substitution 2).

The paper's real-world case study is libjpeg's ``djpeg`` converting JPEG
images to PPM, GIF or BMP; the secret is the pixel/coefficient array,
and the decode loop branches on each element.  Running real libjpeg on
our ISA is impossible, so this module generates a mini-C decoder with
the structural properties the evaluation depends on:

* the image is processed in 64-coefficient blocks; coefficients go
  through *decode steps* that branch on the secret values (sign
  handling, saturation, precision refinement) — these are the SecBlocks;
* every block also runs *public* work that does not branch on the
  secret: an IDCT-like butterfly pass and format-specific output
  conversion (PPM: raw emit; GIF: palette quantisation; BMP: channel
  reorder + padding arithmetic);
* the number of secret decode steps per block is highest for PPM and
  lowest for BMP (the paper: "the secure region in PPM contributes to a
  much higher instruction count than GIF and BMP"), which reproduces
  the PPM > GIF > BMP overhead ordering of Fig. 8;
* total work scales with the block count, so the *relative* overhead is
  flat across image sizes — the paper's headline observation.

:func:`reference_decode` implements the same pipeline in Python so
tests can check the simulated decoder bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads.registry import workload

FORMATS = ("ppm", "gif", "bmp")

BLOCK = 64

# Per-format shape:
#   step2_mask: the saturation SecBlock runs when (k & mask) == 0
#               (None disables it);
#   step3_mask: the precision-refinement SecBlock, likewise;
#   post_passes: public output-conversion passes per block.
_FORMAT_SHAPE = {
    "ppm": {"step2_mask": 0, "step3_mask": 1, "post_passes": 1},
    "gif": {"step2_mask": 1, "step3_mask": None, "post_passes": 2},
    "bmp": {"step2_mask": 3, "step3_mask": None, "post_passes": 3},
}

_MASK64 = (1 << 64) - 1


@dataclass
class DjpegSpec:
    """One djpeg configuration.

    ``fill=True`` (default) emits an in-program LCG fill of the secret
    image (models reading a file); ``fill=False`` leaves the image to be
    poked into the ``img`` symbol before the run, which the leak tests
    use to compare real images.
    """

    fmt: str
    npixels: int
    seed: int = 99991
    fill: bool = True

    def __post_init__(self) -> None:
        if self.fmt not in FORMATS:
            raise ValueError(f"unknown format {self.fmt!r}")
        if self.npixels % BLOCK != 0:
            raise ValueError(f"npixels must be a multiple of {BLOCK}")

    @property
    def nblocks(self) -> int:
        return self.npixels // BLOCK

    @property
    def name(self) -> str:
        return f"djpeg-{self.fmt}-{self.npixels}px"


def generate_image(npixels: int, seed: int = 99991) -> list[int]:
    """Deterministic pseudo-random coefficients in [-256, 255].

    Uses xorshift64 and takes high bits: a weak generator's low-bit
    periodicity would make the coefficient signs *predictable to the
    TAGE predictor*, which real image content is not (and which would
    artificially speed up the baseline at large image sizes).
    """
    values = []
    state = seed | 1
    for _ in range(npixels):
        state = (state ^ (state << 13)) & _MASK64
        state = state ^ (state >> 7)
        state = (state ^ (state << 17)) & _MASK64
        values.append(((state >> 20) & 511) - 256)
    return values


def djpeg_source(spec: DjpegSpec) -> str:
    """Generate the decoder source for *spec*.

    The image array is declared ``secret`` and filled in-program from a
    public seed (models reading the file); tests can poke different
    image words directly through the ``img`` symbol.
    """
    shape = _FORMAT_SHAPE[spec.fmt]
    lines = [
        f"secret int img[{spec.npixels}];",
        f"int out[{spec.npixels}];",
        "int checksum = 0;",
        "",
        "void main() {",
    ]
    if spec.fill:
        lines.extend([
            f"int seed = {spec.seed | 1};",
            f"for (int i = 0; i < {spec.npixels}; i = i + 1) {{",
            "seed = seed ^ (seed << 13);",
            "seed = seed ^ ((seed >> 7) & 144115188075855871);",
            "seed = seed ^ (seed << 17);",
            "img[i] = ((seed >> 20) & 511) - 256;",
            "}",
        ])
    lines.extend([
        f"for (int b = 0; b < {spec.nblocks}; b = b + 1) {{",
        # ---- coefficient decode (the SecBlocks live here) ----
        f"for (int k = 0; k < {BLOCK}; k = k + 1) {{",
        f"int coef = img[b * {BLOCK} + k];",
        "int val = 0;",
        # Secret step 1 (all formats): sign/magnitude with per-path
        # dequantisation work.
        "if (coef < 0) { val = (0 - coef) + ((0 - coef) >> 4); }",
        "else { val = coef + (coef >> 5) + 1; }",
    ])
    if shape["step2_mask"] is not None:
        guard = shape["step2_mask"]
        body = ("if (val > 192) { val = 255 - (val >> 6); } "
                "else { val = val + (val >> 2); }")
        if guard == 0:
            lines.append(body)
        else:
            lines.append(f"if ((k & {guard}) == 0) {{ {body} }}")
    if shape["step3_mask"] is not None:
        guard = shape["step3_mask"]
        body = ("if ((coef & 3) == 0) { val = val + 9; } "
                "else { val = val - (val >> 3); }")
        if guard == 0:
            lines.append(body)
        else:
            lines.append(f"if ((k & {guard}) == 0) {{ {body} }}")
    lines.extend([
        f"out[b * {BLOCK} + k] = val;",
        "}",
        # ---- public IDCT-like butterfly pass (no secret branches) ----
        f"for (int u = 0; u < {BLOCK}; u = u + 1) {{",
        f"int x0 = out[b * {BLOCK} + u];",
        f"int x1 = out[b * {BLOCK} + (u ^ 1)];",
        f"int x8 = out[b * {BLOCK} + (u ^ 8)];",
        "int y = x0 * 3 + x1 * 2 + x8 + (x0 >> 3) - (x1 >> 2);",
        "y = y + (y >> 5);",
        f"out[b * {BLOCK} + u] = y & 1023;",
        "}",
    ])

    # ---- public output conversion per block ----
    for pass_index in range(shape["post_passes"]):
        tag = f"p{pass_index}"
        lines.extend([
            f"int acc_{tag} = 0;",
            f"for (int k_{tag} = 0; k_{tag} < {BLOCK}; "
            f"k_{tag} = k_{tag} + 1) {{",
            f"int px_{tag} = out[b * {BLOCK} + k_{tag}];",
        ])
        if spec.fmt == "gif":
            lines.append(f"px_{tag} = (px_{tag} >> 4) * 17 + {pass_index};")
            lines.append(f"px_{tag} = px_{tag} + (px_{tag} >> 3);")
        elif spec.fmt == "bmp":
            lines.append(
                f"px_{tag} = ((px_{tag} << 1) & 255) + "
                f"(px_{tag} >> 6) + {pass_index * 3};"
            )
            lines.append(f"px_{tag} = px_{tag} ^ (px_{tag} >> 2);")
            lines.append(f"px_{tag} = (px_{tag} * 5 + 7) & 511;")
        else:  # ppm: raw emit, minimal work
            lines.append(f"px_{tag} = px_{tag} + {pass_index};")
        lines.extend([
            f"acc_{tag} = acc_{tag} + px_{tag};",
            "}",
            f"checksum = checksum + acc_{tag};",
        ])

    lines.append("}")
    lines.append("}")
    return "\n".join(lines)


def _leak_values(params: dict) -> list:
    npixels = params["npixels"]
    flat = (0,) * npixels
    busy = tuple(generate_image(npixels, seed=77))
    gradient = tuple((i % 512) - 256 for i in range(npixels))
    return [flat, busy, gradient]


@workload(
    name="djpeg",
    title="synthetic libjpeg decode (secret image)",
    secret="img",
    # memory-address: the sign/saturation decode steps only load their
    # correction tables on coefficient-dependent paths, so the
    # line-granular access stream betrays the image (flush-and-reload).
    channels=("timing", "instruction-count", "control-flow",
              "memory-address", "branch-predictor"),
    params={"fmt": "ppm", "npixels": 128, "seed": 99991, "fill": True},
    # Leak experiments poke the image directly, so the in-program fill
    # must be off (it would overwrite the poked secret).
    leak_params={"fill": False},
    leak_values=_leak_values,
    grid=({"fmt": "ppm"}, {"fmt": "gif"}, {"fmt": "bmp"}),
    result="checksum",
    reference=lambda params, secret: reference_decode(
        DjpegSpec(params["fmt"], params["npixels"], seed=params["seed"],
                  fill=params["fill"]),
        list(secret) if params["fill"] is False else None)[1],
)
def djpeg_victim_source(fmt: str = "ppm", npixels: int = 128,
                        seed: int = 99991, fill: bool = True) -> str:
    """Keyword-argument builder for the registry (wraps ``DjpegSpec``)."""
    return djpeg_source(DjpegSpec(fmt, npixels, seed=seed, fill=fill))


def compile_djpeg(spec: DjpegSpec, mode: str):
    """Compile the decoder (modes: ``plain``, ``sempe``)."""
    from repro.lang.compiler import compile_source

    return compile_source(djpeg_source(spec), mode=mode,
                          name=f"{spec.name}-{mode}")


def reference_decode(spec: DjpegSpec,
                     image: list[int] | None = None) -> tuple[list[int], int]:
    """Pure-Python model of the decoder; returns (out pixels, checksum)."""
    shape = _FORMAT_SHAPE[spec.fmt]
    img = list(image) if image is not None else generate_image(
        spec.npixels, spec.seed)
    out = [0] * spec.npixels
    checksum = 0
    for block in range(spec.nblocks):
        base = block * BLOCK
        for k in range(BLOCK):
            coef = img[base + k]
            if coef < 0:
                val = (-coef) + ((-coef) >> 4)
            else:
                val = coef + (coef >> 5) + 1
            mask2 = shape["step2_mask"]
            if mask2 is not None and (k & mask2) == 0:
                val = 255 - (val >> 6) if val > 192 else val + (val >> 2)
            mask3 = shape["step3_mask"]
            if mask3 is not None and (k & mask3) == 0:
                val = val + 9 if (coef & 3) == 0 else val - (val >> 3)
            out[base + k] = val
        for u in range(BLOCK):
            x0 = out[base + u]
            x1 = out[base + (u ^ 1)]
            x8 = out[base + (u ^ 8)]
            y = x0 * 3 + x1 * 2 + x8 + (x0 >> 3) - (x1 >> 2)
            y = y + (y >> 5)
            out[base + u] = y & 1023
        for pass_index in range(shape["post_passes"]):
            acc = 0
            for k in range(BLOCK):
                px = out[base + k]
                if spec.fmt == "gif":
                    px = (px >> 4) * 17 + pass_index
                    px = px + (px >> 3)
                elif spec.fmt == "bmp":
                    px = ((px << 1) & 255) + (px >> 6) + pass_index * 3
                    px = px ^ (px >> 2)
                    px = (px * 5 + 7) & 511
                else:
                    px = px + pass_index
                acc += px
            checksum += acc
    return out, checksum
