"""Workloads of the paper's evaluation (§V).

* :mod:`repro.workloads.microbench` — the Fig. 7 microbenchmark: W
  secret-dependent branches (W-1 of them nested) wrapping the four
  workloads (Fibonacci, Ones, Quicksort, Eight Queens), iterated I
  times, in three source variants (natural, oblivious-for-CTE,
  unconditional-for-ideal).
* :mod:`repro.workloads.djpeg` — the synthetic stand-in for libjpeg's
  ``djpeg``: block-based image decode whose per-coefficient steps branch
  on the secret image, with PPM/GIF/BMP output pipelines that differ in
  secret-dependent and public work per block.
* :mod:`repro.workloads.crypto` — RSA-style modular exponentiation
  (the paper's Fig. 1 motivating example).
"""

from repro.workloads.microbench import (
    WORKLOADS,
    MicrobenchSpec,
    microbench_source,
    compile_microbench,
)
from repro.workloads.djpeg import (
    FORMATS,
    DjpegSpec,
    djpeg_source,
    compile_djpeg,
    reference_decode,
)
from repro.workloads.crypto import modexp_source, modexp_reference

__all__ = [
    "WORKLOADS",
    "MicrobenchSpec",
    "microbench_source",
    "compile_microbench",
    "FORMATS",
    "DjpegSpec",
    "djpeg_source",
    "compile_djpeg",
    "reference_decode",
    "modexp_source",
    "modexp_reference",
]
