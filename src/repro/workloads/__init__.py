"""Workloads of the paper's evaluation (§V).

* :mod:`repro.workloads.microbench` — the Fig. 7 microbenchmark: W
  secret-dependent branches (W-1 of them nested) wrapping the four
  workloads (Fibonacci, Ones, Quicksort, Eight Queens), iterated I
  times, in three source variants (natural, oblivious-for-CTE,
  unconditional-for-ideal).
* :mod:`repro.workloads.djpeg` — the synthetic stand-in for libjpeg's
  ``djpeg``: block-based image decode whose per-coefficient steps branch
  on the secret image, with PPM/GIF/BMP output pipelines that differ in
  secret-dependent and public work per block.
* :mod:`repro.workloads.crypto` — RSA-style modular exponentiation
  (the paper's Fig. 1 motivating example).
* :mod:`repro.workloads.memcmp`, :mod:`repro.workloads.table_lookup`,
  :mod:`repro.workloads.bsearch`, :mod:`repro.workloads.gcd` — classic
  side-channel victims from the literature (early-exit comparison,
  secret-indexed lookup, secret-guided search, data-dependent trip
  count).
* :mod:`repro.workloads.registry` — the declarative
  :class:`~repro.workloads.registry.WorkloadSpec` registry that the
  experiments, sweeps, security tooling, and CLI iterate.
"""

from repro.workloads.registry import (
    WorkloadError,
    WorkloadRunSpec,
    WorkloadSpec,
    compile_workload,
    get_workload,
    iter_workloads,
    load_all,
    workload_names,
)
from repro.workloads.microbench import (
    WORKLOADS,
    MicrobenchSpec,
    microbench_source,
    compile_microbench,
)
from repro.workloads.djpeg import (
    FORMATS,
    DjpegSpec,
    djpeg_source,
    compile_djpeg,
    reference_decode,
)
from repro.workloads.crypto import modexp_source, modexp_reference

load_all()

__all__ = [
    "WorkloadError",
    "WorkloadRunSpec",
    "WorkloadSpec",
    "compile_workload",
    "get_workload",
    "iter_workloads",
    "load_all",
    "workload_names",
    "WORKLOADS",
    "MicrobenchSpec",
    "microbench_source",
    "compile_microbench",
    "FORMATS",
    "DjpegSpec",
    "djpeg_source",
    "compile_djpeg",
    "reference_decode",
    "modexp_source",
    "modexp_reference",
]
