"""Declarative victim-workload registry.

The paper's security claim is only as strong as the set of victims it
is tested against.  This module makes victims first-class: a
:class:`WorkloadSpec` bundles everything the harness, the security
tooling, and the CLI need to know about one victim —

* a **source builder** (mini-C text parameterized by keyword
  arguments),
* the **secret** symbol the adversary is after, plus representative
  secret values for leak experiments,
* the **expected leak channels** on the unprotected baseline (the
  channels the SeMPE transform must close),
* a **parameter grid** for sweeps, and an optional Python **reference**
  for functional correctness checks.

Registering a workload (via the :func:`workload` decorator on its
source builder) automatically enrolls it in:

* ``repro workloads list`` / ``repro run --workload NAME`` /
  ``repro check --workload NAME`` (the CLI),
* the ``victims`` overhead experiment and the ``leakmatrix``
  noninterference experiment (``repro experiments`` / ``repro sweep``),
* the registry test suite, which proves the baseline leaks the declared
  channels and that SeMPE closes all of them on both engines.

A new victim is therefore a one-file drop-in: write the builder, add
the decorator, list the module in :data:`_WORKLOAD_MODULES`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.lang.compiler import MODES, CompiledProgram, compile_source

# Modules that register workloads on import.  load_all() (called from
# the package __init__ and from every registry lookup) imports them all,
# so the full matrix is visible wherever any workload is; keeping the
# list here, rather than hard imports at the top, is what lets this
# module be imported *by* the victim modules for the decorator without
# a cycle.
_WORKLOAD_MODULES = (
    "repro.workloads.crypto",
    "repro.workloads.djpeg",
    "repro.workloads.memcmp",
    "repro.workloads.table_lookup",
    "repro.workloads.bsearch",
    "repro.workloads.gcd",
    "repro.workloads.spectre",
)

_REGISTRY: dict[str, "WorkloadSpec"] = {}
_loaded = False


class WorkloadError(ValueError):
    """Raised on invalid registration or lookup."""


@dataclass(frozen=True)
class WorkloadSpec:
    """Everything the harness knows about one victim workload."""

    name: str
    title: str
    builder: Callable[..., str]
    secret: str                          # secret symbol the leak varies
    params: dict                         # default builder parameters
    leak_values: Callable[[dict], list]  # params -> secret values to test
    channels: tuple[str, ...]            # expected baseline leak channels
    leak_params: dict = field(default_factory=dict)
    modes: tuple[str, ...] = ("plain", "sempe", "cte", "fence")
    grid: tuple[dict, ...] = ({},)       # per-cell parameter overrides
    result: str | None = None            # output global the reference checks
    reference: Callable[[dict, object], int] | None = None

    # -- parameters ------------------------------------------------------

    def resolve(self, overrides: dict | None = None) -> dict:
        """Defaults merged with *overrides*; unknown keys are rejected."""
        merged = dict(self.params)
        for key, value in (overrides or {}).items():
            if key not in merged:
                raise WorkloadError(
                    f"workload {self.name!r} has no parameter {key!r}; "
                    f"known: {sorted(merged)}")
            merged[key] = value
        return merged

    def leak_resolve(self, overrides: dict | None = None) -> dict:
        """Like :meth:`resolve` but with the leak defaults applied
        (e.g. djpeg's ``fill=False`` so poked secrets survive).

        Explicit *overrides* win over the leak defaults: a user who
        asks for a specific parameterization gets exactly it, never a
        silently different one.
        """
        merged = dict(self.params)
        merged.update(self.leak_params)
        for key, value in (overrides or {}).items():
            if key not in merged:
                raise WorkloadError(
                    f"workload {self.name!r} has no parameter {key!r}; "
                    f"known: {sorted(merged)}")
            merged[key] = value
        return merged

    def grid_points(self) -> list[dict]:
        """Fully-merged parameter dicts, one per grid entry."""
        return [self.resolve(overrides) for overrides in self.grid]

    # -- building --------------------------------------------------------

    def source(self, **overrides) -> str:
        return self.builder(**self.resolve(overrides))

    def compile(self, mode: str, collapse_ifs: bool = False,
                **overrides) -> CompiledProgram:
        if mode not in self.modes:
            raise WorkloadError(
                f"workload {self.name!r} does not support mode {mode!r}; "
                f"supported: {self.modes}")
        params = self.resolve(overrides)
        return compile_source(self.builder(**params), mode=mode,
                              name=f"{self.name}-{mode}",
                              collapse_ifs=collapse_ifs)

    # -- leak experiments ------------------------------------------------

    def secret_values(self, params: dict | None = None) -> list:
        """Representative secret values (ints, or tuples for arrays)."""
        return list(self.leak_values(self.leak_resolve(params)))

    def describe(self) -> dict:
        """One JSON-safe summary row (the CLI listing)."""
        return {
            "name": self.name,
            "title": self.title,
            "secret": self.secret,
            "channels": list(self.channels),
            "modes": list(self.modes),
            "grid": len(self.grid),
        }


@dataclass
class WorkloadRunSpec:
    """One registry workload at fixed parameters (a sweep-cell spec).

    Shaped like :class:`~repro.workloads.microbench.MicrobenchSpec` /
    :class:`~repro.workloads.djpeg.DjpegSpec` so the run cache, the
    on-disk store, and the parallel sweep layer handle registry cells
    exactly like the built-in kinds: ``dataclasses.asdict`` must be
    JSON-safe, and ``name`` labels progress output.
    """

    workload: str
    params: dict = field(default_factory=dict)

    @property
    def name(self) -> str:
        tags = "-".join(f"{key}{self.params[key]}"
                        for key in sorted(self.params))
        return f"{self.workload}-{tags}" if tags else self.workload


# --------------------------------------------------------------------------
# Registration
# --------------------------------------------------------------------------


def register(spec: WorkloadSpec) -> WorkloadSpec:
    """Add *spec* to the registry (duplicate names are rejected)."""
    if spec.name in _REGISTRY:
        raise WorkloadError(
            f"workload {spec.name!r} is already registered; "
            "names must be unique")
    for mode in spec.modes:
        if mode not in MODES:
            raise WorkloadError(
                f"workload {spec.name!r} declares unknown mode {mode!r}; "
                f"choose from {MODES}")
    from repro.security.leakage import ALL_CHANNELS

    unknown = [c for c in spec.channels if c not in ALL_CHANNELS]
    if unknown:
        raise WorkloadError(
            f"workload {spec.name!r} declares unknown channels {unknown}; "
            f"choose from {ALL_CHANNELS}")
    for overrides in spec.grid:
        spec.resolve(overrides)   # unknown grid keys fail registration
    _REGISTRY[spec.name] = spec
    return spec


def workload(*, name: str, title: str, secret: str,
             channels: tuple[str, ...],
             params: dict | None = None,
             leak_params: dict | None = None,
             leak_values: Callable[[dict], list],
             modes: tuple[str, ...] = ("plain", "sempe", "cte", "fence"),
             grid: tuple[dict, ...] = ({},),
             result: str | None = None,
             reference: Callable[[dict, object], int] | None = None):
    """Decorator: register the decorated source builder as a workload.

    The builder keeps working as a plain function; registration only
    records it in the registry.
    """
    def wrap(builder: Callable[..., str]) -> Callable[..., str]:
        register(WorkloadSpec(
            name=name, title=title, builder=builder, secret=secret,
            params=dict(params or {}),
            leak_params=dict(leak_params or {}),
            leak_values=leak_values, channels=tuple(channels),
            modes=tuple(modes), grid=tuple(dict(g) for g in grid),
            result=result, reference=reference,
        ))
        return builder
    return wrap


# --------------------------------------------------------------------------
# Lookup
# --------------------------------------------------------------------------


def load_all() -> None:
    """Import every workload module (idempotent).

    The flag is set before importing so re-entrant calls (the package
    ``__init__`` calls ``load_all`` while these imports are importing
    the package) return immediately — but a failed import resets it, so
    the registry is never silently left partial: the next call retries
    the broken module (already-imported ones are no-ops via
    ``sys.modules``) and surfaces the same error at the call site.
    """
    global _loaded
    if _loaded:
        return
    _loaded = True
    import importlib

    try:
        for module in _WORKLOAD_MODULES:
            importlib.import_module(module)
    except BaseException:
        _loaded = False
        raise


def workload_names() -> list[str]:
    load_all()
    return sorted(_REGISTRY)


def iter_workloads() -> list[WorkloadSpec]:
    load_all()
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def get_workload(name: str) -> WorkloadSpec:
    load_all()
    spec = _REGISTRY.get(name)
    if spec is None:
        raise WorkloadError(
            f"unknown workload {name!r}; choose from {sorted(_REGISTRY)}")
    return spec


def compile_workload(spec: WorkloadRunSpec, mode: str) -> CompiledProgram:
    """Compile one registry cell spec (the sweep layer's hook)."""
    return get_workload(spec.workload).compile(mode, **spec.params)
