"""The Fig. 7 microbenchmark generator.

Structure (matching the paper's description: W sJMPs per iteration, W-1
of them nested, plus an unconditional workload W+1)::

    for (it = 0; it < I; it++) {
        if (s1) {                 // secret branch 1
            workload_1;
            if (s2) {             // secret branch 2, nested
                workload_2;
                ...
                if (sW) { workload_W; }
            }
        }
        workload_{W+1};           // always executes
    }

All secrets are 0 at run time, so the **baseline** executes only
workload W+1, while **SeMPE** (both paths of every secure branch) and
**CTE** (everything predicated) execute all W+1 workloads — the ideal
slowdown is therefore about W+1, which is what Fig. 10 sweeps.

Source variants:

* ``natural`` — idiomatic code (recursion, data-dependent branches);
  used for the baseline and SeMPE runs.
* ``oblivious`` — FaCT-compatible restructuring (inline, public
  worst-case loop bounds: odd-even transposition sort instead of
  quicksort, exhaustive placement search instead of backtracking
  queens); used for the CTE runs.  The paper reports the FaCT
  conversion took three weeks — this variant is that conversion.
* ``unconditional`` — all W+1 workloads straight-line with no secret
  branches; compiled ``plain``, it measures the paper's *ideal*
  overhead (the sum of the execution times of all branch paths).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lang.compiler import CompiledProgram, compile_source

WORKLOADS = ("fibonacci", "ones", "quicksort", "queens")

_DEFAULT_SIZES = {
    "fibonacci": 30,   # terms
    "ones": 24,        # vector length
    "quicksort": 16,   # array length
    "queens": 4,       # board size
}


@dataclass
class MicrobenchSpec:
    """Parameters of one microbenchmark instance."""

    workload: str
    w: int                       # number of secret branches (chain depth)
    iters: int = 1
    size: int | None = None
    variant: str = "natural"     # natural | oblivious | unconditional

    def __post_init__(self) -> None:
        if self.workload not in WORKLOADS:
            raise ValueError(f"unknown workload {self.workload!r}")
        if self.w < 0:
            raise ValueError("w must be >= 0")
        if self.variant not in ("natural", "oblivious", "unconditional"):
            raise ValueError(f"unknown variant {self.variant!r}")
        if self.size is None:
            self.size = _DEFAULT_SIZES[self.workload]

    @property
    def name(self) -> str:
        return f"{self.workload}-W{self.w}-I{self.iters}-{self.variant}"


def microbench_source(spec: MicrobenchSpec) -> str:
    """Generate the mini-C source for *spec*."""
    lines: list[str] = []
    for index in range(1, spec.w + 1):
        lines.append(f"secret int s{index} = 0;")
    lines.append("int sink = 0;")
    lines.append("")

    helpers = _HELPERS.get((spec.workload, spec.variant), "")
    if helpers:
        lines.append(helpers)

    lines.append("void main() {")
    lines.append(f"for (int it = 0; it < {spec.iters}; it = it + 1) {{")

    if spec.variant == "unconditional":
        for depth in range(1, spec.w + 2):
            lines.extend(_body(spec, depth))
    else:
        lines.extend(_nest(spec, depth=1))
        lines.extend(_body(spec, spec.w + 1))

    lines.append("}")
    lines.append("}")
    return "\n".join(lines)


def _nest(spec: MicrobenchSpec, depth: int) -> list[str]:
    """Emit the chain of nested secret branches starting at *depth*."""
    if depth > spec.w:
        return []
    lines = [f"if (s{depth}) {{"]
    lines.extend(_body(spec, depth))
    lines.extend(_nest(spec, depth + 1))
    lines.append("}")
    return lines


def compile_microbench(spec: MicrobenchSpec, mode: str) -> CompiledProgram:
    """Compile *spec* in *mode* (``plain`` / ``sempe`` / ``cte``)."""
    source = microbench_source(spec)
    return compile_source(source, mode=mode, name=f"{spec.name}-{mode}")


# --------------------------------------------------------------------------
# Workload bodies.  Every local is suffixed with the nesting depth so the
# whole program satisfies mini-C's unique-local-names rule.
# --------------------------------------------------------------------------


def _body(spec: MicrobenchSpec, depth: int) -> list[str]:
    tag = f"d{depth}"
    size = spec.size
    oblivious = spec.variant == "oblivious"
    if spec.workload == "fibonacci":
        return _fibonacci(tag, size)
    if spec.workload == "ones":
        return _ones(tag, size, depth)
    if spec.workload == "quicksort":
        return _quicksort_oblivious(tag, size, depth) if oblivious \
            else _quicksort_natural(tag, size, depth)
    if spec.workload == "queens":
        return _queens_oblivious(tag, size) if oblivious \
            else _queens_natural(tag, size)
    raise AssertionError(spec.workload)


def _fibonacci(tag: str, n: int) -> list[str]:
    return [
        f"int a_{tag} = 0;",
        f"int b_{tag} = 1;",
        f"for (int i_{tag} = 0; i_{tag} < {n}; i_{tag} = i_{tag} + 1) {{",
        f"int t_{tag} = a_{tag} + b_{tag};",
        f"a_{tag} = b_{tag};",
        f"b_{tag} = t_{tag};",
        "}",
        f"sink = sink + a_{tag};",
    ]


def _ones(tag: str, n: int, depth: int) -> list[str]:
    seed = 12345 + depth * 1000
    return [
        f"int v_{tag}[{n}];",
        f"int seed_{tag} = {seed};",
        f"int cnt_{tag} = 0;",
        f"for (int i_{tag} = 0; i_{tag} < {n}; i_{tag} = i_{tag} + 1) {{",
        f"seed_{tag} = (seed_{tag} * 1103515245 + 12345) & 1073741823;",
        f"v_{tag}[i_{tag}] = seed_{tag} & 1;",
        f"cnt_{tag} = cnt_{tag} + v_{tag}[i_{tag}];",
        "}",
        f"sink = sink + cnt_{tag};",
    ]


def _fill_array(tag: str, n: int, depth: int) -> list[str]:
    seed = 777 + depth * 131
    return [
        f"int arr_{tag}[{n}];",
        f"int seed_{tag} = {seed};",
        f"for (int i_{tag} = 0; i_{tag} < {n}; i_{tag} = i_{tag} + 1) {{",
        f"seed_{tag} = (seed_{tag} * 1103515245 + 12345) & 1073741823;",
        f"arr_{tag}[i_{tag}] = seed_{tag} & 255;",
        "}",
    ]


def _quicksort_natural(tag: str, n: int, depth: int) -> list[str]:
    lines = _fill_array(tag, n, depth)
    lines.append(f"qsort(arr_{tag}, 0, {n - 1});")
    lines.append(
        f"sink = sink + arr_{tag}[0] + arr_{tag}[{n // 2}] "
        f"+ arr_{tag}[{n - 1}];"
    )
    return lines


def _quicksort_oblivious(tag: str, n: int, depth: int) -> list[str]:
    """Odd-even transposition sort: O(n^2), fully public loop structure."""
    lines = _fill_array(tag, n, depth)
    lines.extend([
        f"for (int p_{tag} = 0; p_{tag} < {n}; p_{tag} = p_{tag} + 1) {{",
        f"for (int j_{tag} = 0; j_{tag} < {n - 1}; j_{tag} = j_{tag} + 1) {{",
        f"int par_{tag} = (j_{tag} + p_{tag}) & 1;",
        f"if (par_{tag} == 0) {{",
        f"if (arr_{tag}[j_{tag}] > arr_{tag}[j_{tag} + 1]) {{",
        f"int x_{tag} = arr_{tag}[j_{tag}];",
        f"arr_{tag}[j_{tag}] = arr_{tag}[j_{tag} + 1];",
        f"arr_{tag}[j_{tag} + 1] = x_{tag};",
        "}",
        "}",
        "}",
        "}",
        f"sink = sink + arr_{tag}[0] + arr_{tag}[{n // 2}] "
        f"+ arr_{tag}[{n - 1}];",
    ])
    return lines


def _queens_natural(tag: str, n: int) -> list[str]:
    return [
        f"int board_{tag}[{n}];",
        f"int cnt_{tag} = queensrec(board_{tag}, 0, {n});",
        f"sink = sink + cnt_{tag};",
    ]


def _queens_oblivious(tag: str, n: int) -> list[str]:
    """Exhaustive placement search with fully public loop structure.

    Enumerates all n^n column assignments and checks every pair of rows
    for column and diagonal conflicts with straight-line arithmetic —
    the FaCT-expressible form of the 8-queens search.
    """
    lines = [f"int cnt_{tag} = 0;"]
    for row in range(n):
        lines.append(
            f"for (int q{row}_{tag} = 0; q{row}_{tag} < {n}; "
            f"q{row}_{tag} = q{row}_{tag} + 1) {{"
        )
    lines.append(f"int ok_{tag} = 1;")
    for row_a in range(n):
        for row_b in range(row_a + 1, n):
            qa = f"q{row_a}_{tag}"
            qb = f"q{row_b}_{tag}"
            delta = row_b - row_a
            lines.append(f"if ({qa} == {qb}) {{ ok_{tag} = 0; }}")
            lines.append(f"if ({qa} - {qb} == {delta}) {{ ok_{tag} = 0; }}")
            lines.append(f"if ({qb} - {qa} == {delta}) {{ ok_{tag} = 0; }}")
    lines.append(f"cnt_{tag} = cnt_{tag} + ok_{tag};")
    lines.extend("}" for _ in range(n))
    lines.append(f"sink = sink + cnt_{tag};")
    return lines


_QSORT_HELPERS = """
int qspart(int a[], int lo, int hi) {
  int pivot = a[hi];
  int ii = lo;
  for (int jj = lo; jj < hi; jj = jj + 1) {
    if (a[jj] < pivot) {
      int tmp = a[ii];
      a[ii] = a[jj];
      a[jj] = tmp;
      ii = ii + 1;
    }
  }
  int tmp2 = a[ii];
  a[ii] = a[hi];
  a[hi] = tmp2;
  return ii;
}

void qsort(int a[], int lo, int hi) {
  if (lo < hi) {
    int mid = qspart(a, lo, hi);
    qsort(a, lo, mid - 1);
    qsort(a, mid + 1, hi);
  }
}
"""

_QUEENS_HELPERS = """
int queensrec(int board[], int row, int n) {
  int count = 0;
  if (row == n) {
    count = 1;
  } else {
    for (int col = 0; col < n; col = col + 1) {
      int ok = 1;
      for (int rr = 0; rr < row; rr = rr + 1) {
        int bc = board[rr];
        if (bc == col) { ok = 0; }
        if (bc - col == row - rr) { ok = 0; }
        if (col - bc == row - rr) { ok = 0; }
      }
      if (ok) {
        board[row] = col;
        count = count + queensrec(board, row + 1, n);
      }
    }
  }
  return count;
}
"""

_HELPERS = {
    ("quicksort", "natural"): _QSORT_HELPERS,
    ("quicksort", "unconditional"): _QSORT_HELPERS,
    ("queens", "natural"): _QUEENS_HELPERS,
    ("queens", "unconditional"): _QUEENS_HELPERS,
}
