"""Early-exit secret comparison (the password-check timing victim).

The classic ``memcmp``-style side channel: the victim compares a secret
byte string against an attacker-controlled guess and stops at the first
mismatch, so execution time is proportional to the length of the
matching prefix — the textbook password-recovery oracle.  mini-C has no
``break``, so the early exit is expressed as a guard flag: once ``ok``
drops to zero the per-element comparison body is skipped, which is the
same observable shape (work ∝ matched prefix).

Both branches are secret-dependent (``ok`` is tainted through the
mismatch branch), so under SeMPE every element runs both the mismatch
and the refinement path and the prefix length disappears from every
channel.
"""

from __future__ import annotations

from repro.workloads.registry import workload


def guess_pattern(n: int) -> list[int]:
    """The public guess the victim compares the secret against."""
    return [(i * 37 + 11) % 251 for i in range(n)]


def _leak_values(params: dict) -> list:
    """Secrets with distinct matching-prefix lengths (incl. full match)."""
    n = params["n"]
    guess = guess_pattern(n)
    return [
        tuple(guess),                                  # full match
        tuple(guess[: n // 2] + [255] * (n - n // 2)),  # half prefix
        (255,) * n,                                    # immediate mismatch
    ]


@workload(
    name="memcmp",
    title="early-exit secret comparison (password check)",
    secret="pw",
    # cache-state: the matched prefix determines which pw[] lines are
    # ever touched, so the post-run cache residue betrays its length
    # (the prime-and-probe target).
    channels=("timing", "instruction-count", "control-flow",
              "memory-address", "cache-state", "branch-predictor"),
    params={"n": 12, "refine": 6},
    leak_values=_leak_values,
    grid=({}, {"n": 24}),
    result="match",
    reference=lambda params, secret: memcmp_reference(
        list(secret), n=params["n"], refine=params["refine"]),
)
def memcmp_source(n: int = 12, refine: int = 6) -> str:
    """mini-C source: compare secret ``pw[n]`` against the public guess.

    ``refine`` sizes the per-matched-element follow-up work (modelling
    the hashing/canonicalization real checkers do per byte), which makes
    the prefix-length timing signal pronounced.
    """
    return f"""
secret int pw[{n}];
int match = 0;

void main() {{
  int ok = 1;
  for (int i = 0; i < {n}; i = i + 1) {{
    int g = (i * 37 + 11) % 251;
    if (ok) {{
      if (pw[i] != g) {{ ok = 0; }}
      else {{
        int acc = 0;
        for (int j = 0; j < {refine}; j = j + 1) {{
          acc = acc + ((g >> j) & 1);
        }}
        ok = 1 + acc - acc;
      }}
    }}
  }}
  match = ok;
}}
"""


def memcmp_reference(pw: list[int], n: int = 12, refine: int = 6) -> int:
    """Python model: 1 iff *pw* equals the public guess."""
    del refine  # the follow-up work never changes the verdict
    guess = guess_pattern(n)
    masked = [(value & ((1 << 64) - 1)) for value in pw]
    return 1 if masked[:n] == guess else 0
