"""Secret-operand Euclid (the data-dependent trip-count victim).

``gcd(secret, public)`` by repeated remainder takes a number of steps
that depends on the secret operand — the leak behind several RSA/DSA
key-recovery attacks on modular-inversion code.  mini-C (like the
paper's compiler) rejects secret loop *bounds* outright, so the victim
runs a public worst-case number of rounds and guards the Euclid step
with ``if (b != 0)``: on the baseline the number of taken guards is the
step count, observable through timing, control flow and the predictor.

Under SeMPE every round executes both paths, including ``a % b`` with
``b == 0`` on the spent rounds — which is exactly the paper's wrong-path
exception story (§III): the machine adopts the RISC-V convention
``x % 0 == x`` instead of trapping, and the merge discards the result.
"""

from __future__ import annotations

from repro.workloads.registry import workload


def worst_case_rounds(bits: int) -> int:
    """Public bound on Euclid steps for *bits*-wide operands.

    The step count is maximized by consecutive Fibonacci numbers and is
    below ``1.5 * bits`` for any operand pair that fits in *bits* bits;
    a small safety margin keeps the bound obviously sufficient.
    """
    return (bits * 3) // 2 + 2


def _leak_values(params: dict) -> list:
    mask = (1 << params["bits"]) - 1
    other = params["other"]
    return [0, 12, 35, other & mask, mask]


@workload(
    name="gcd",
    title="secret-operand Euclid (trip count)",
    secret="u",
    channels=("timing", "instruction-count", "control-flow",
              "memory-address", "branch-predictor"),
    params={"bits": 16, "other": 40902},
    leak_values=_leak_values,
    grid=({}, {"other": 46368}),   # fib(24): the worst-case step count
    result="out",
    reference=lambda params, secret: gcd_reference(
        secret, bits=params["bits"], other=params["other"]),
)
def gcd_source(bits: int = 16, other: int = 40902) -> str:
    """mini-C source: bounded Euclid on ``(u & mask, other & mask)``."""
    if not 1 <= bits <= 63:
        raise ValueError("bits must be in 1..63")
    mask = (1 << bits) - 1
    rounds = worst_case_rounds(bits)
    return f"""
secret int u = 0;
int out = 0;

void main() {{
  int a = u & {mask};
  int b = {other & mask};
  for (int r = 0; r < {rounds}; r = r + 1) {{
    if (b != 0) {{
      int t = b;
      b = a % b;
      a = t;
    }}
  }}
  out = a;
}}
"""


def gcd_reference(u: int, bits: int = 16, other: int = 40902) -> int:
    """Python model of the bounded loop (equals ``math.gcd`` when the
    bound covers the step count, which :func:`worst_case_rounds`
    guarantees)."""
    mask = (1 << bits) - 1
    a = (u & ((1 << 64) - 1)) & mask
    b = other & mask
    for _ in range(worst_case_rounds(bits)):
        if b != 0:
            a, b = b, a % b
    return a
