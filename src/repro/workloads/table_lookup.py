"""Secret-indexed table lookup (the S-box / cache-channel victim).

AES-style ciphers read lookup tables at secret-derived indices; on real
hardware the touched cache lines betray the index (prime-and-probe).
SeMPE protects secret *branches*, not secret *addresses*, so the
SeMPE-safe form selects the entry with a comparison branch per slot:
``if (j == t)`` over a public scan of the table.  On the baseline that
branch's taken slot — and the fact that the load only happens in the
taken path — leaks the index through timing, control flow, the address
stream, and the predictor; under SeMPE both paths of every comparison
run, so every slot is loaded on every round regardless of the secret.

The looked-up value feeds the next round's index (``t = (t + e + 1)
& mask``), chaining lookups the way cipher rounds chain S-box outputs.
"""

from __future__ import annotations

from repro.workloads.registry import workload

_LCG_MULT = 1103515245
_LCG_ADD = 12345
_LCG_MASK = 1073741823


def sbox_table(entries: int, seed: int) -> list[int]:
    """The public table the victim scans (same LCG as the source)."""
    table = []
    state = seed
    for _ in range(entries):
        state = (state * _LCG_MULT + _LCG_ADD) & _LCG_MASK
        table.append(state & 255)
    return table


def _leak_values(params: dict) -> list:
    entries = params["entries"]
    return [0, entries // 3 + 1, entries - 3]


@workload(
    name="table_lookup",
    title="secret-indexed S-box lookup (cache channel)",
    secret="idx",
    channels=("timing", "instruction-count", "control-flow",
              "memory-address", "branch-predictor"),
    params={"entries": 16, "rounds": 4, "seed": 40503},
    leak_values=_leak_values,
    grid=({}, {"entries": 32}),
    result="out",
    reference=lambda params, secret: table_lookup_reference(
        secret, entries=params["entries"], rounds=params["rounds"],
        seed=params["seed"]),
)
def table_lookup_source(entries: int = 16, rounds: int = 4,
                        seed: int = 40503) -> str:
    """mini-C source: *rounds* chained lookups into ``sbox[entries]``."""
    if entries & (entries - 1) or entries <= 0:
        raise ValueError("entries must be a power of two")
    mask = entries - 1
    return f"""
secret int idx = 0;
int sbox[{entries}];
int out = 0;

void main() {{
  int seed = {seed};
  for (int i = 0; i < {entries}; i = i + 1) {{
    seed = (seed * {_LCG_MULT} + {_LCG_ADD}) & {_LCG_MASK};
    sbox[i] = seed & 255;
  }}
  int t = idx & {mask};
  int acc = 0;
  for (int r = 0; r < {rounds}; r = r + 1) {{
    for (int j = 0; j < {entries}; j = j + 1) {{
      if (j == t) {{
        int e = sbox[j];
        acc = acc + e * 3 + r;
        t = (t + e + 1) & {mask};
      }}
    }}
  }}
  out = acc;
}}
"""


def table_lookup_reference(idx: int, entries: int = 16, rounds: int = 4,
                           seed: int = 40503) -> int:
    """Python model of the chained lookups (the ``out`` global)."""
    table = sbox_table(entries, seed)
    mask = entries - 1
    t = (idx & ((1 << 64) - 1)) & mask
    acc = 0
    for r in range(rounds):
        # One scan of the table; at most one slot matches per round, but
        # the chained update can re-match later slots in the same scan,
        # exactly as the in-program loop does.
        j = 0
        while j < entries:
            if j == t:
                e = table[j]
                acc += e * 3 + r
                t = (t + e + 1) & mask
            j += 1
    return acc
