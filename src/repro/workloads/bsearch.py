"""Secret-guided binary search (the data-dependent branch-pattern victim).

Searching a public sorted table for a secret key is a classic leak: the
taken/not-taken pattern of the ``key < table[mid]`` comparison *is* the
key's binary encoding, and the probed positions betray it through the
cache.  The SeMPE-safe form keeps the address stream public by
selecting ``table[mid]`` with a comparison branch over a full scan
(``if (j == mid)``), so the only secret-dependent artifacts are
branches — which the baseline leaks through timing, control flow, the
address stream and the predictor, and which SeMPE executes both ways.

``rounds`` is fixed at ``log2(entries)`` (the public worst case), so
the loop structure never depends on the key.
"""

from __future__ import annotations

from repro.workloads.registry import workload


def search_table(entries: int) -> list[int]:
    """The public sorted table (same affine fill as the source)."""
    return [i * 3 + 1 for i in range(entries)]


def _leak_values(params: dict) -> list:
    entries = params["entries"]
    return [2, (entries // 2) * 3 + 2, (entries - 1) * 3 + 2]


@workload(
    name="bsearch",
    title="secret-guided binary search (branch pattern)",
    secret="key",
    channels=("timing", "instruction-count", "control-flow",
              "memory-address", "branch-predictor"),
    params={"entries": 16},
    leak_values=_leak_values,
    grid=({}, {"entries": 32}),
    result="pos",
    reference=lambda params, secret: bsearch_reference(
        secret, entries=params["entries"]),
)
def bsearch_source(entries: int = 16) -> str:
    """mini-C source: ``log2(entries)`` halving rounds over the table."""
    if entries & (entries - 1) or entries <= 1:
        raise ValueError("entries must be a power of two > 1")
    rounds = entries.bit_length() - 1
    return f"""
secret int key = 0;
int table[{entries}];
int pos = 0;

void main() {{
  for (int i = 0; i < {entries}; i = i + 1) {{
    table[i] = i * 3 + 1;
  }}
  int lo = 0;
  int hi = {entries};
  for (int r = 0; r < {rounds}; r = r + 1) {{
    int mid = (lo + hi) / 2;
    int v = 0;
    for (int j = 0; j < {entries}; j = j + 1) {{
      if (j == mid) {{ v = table[j]; }}
    }}
    if (key < v) {{ hi = mid; }} else {{ lo = mid + 1; }}
  }}
  pos = lo;
}}
"""


def bsearch_reference(key: int, entries: int = 16) -> int:
    """Python model of the bounded search (the ``pos`` global)."""
    table = search_table(entries)
    key &= (1 << 64) - 1
    lo, hi = 0, entries
    for _ in range(entries.bit_length() - 1):
        mid = (lo + hi) // 2
        if key < table[mid]:
            hi = mid
        else:
            lo = mid + 1
    return lo
