"""RSA-style modular exponentiation — the paper's Fig. 1 motivator.

Square-and-multiply with the multiply step guarded by the secret key
bit: the classic timing-channel victim.  Under SeMPE the guard becomes
an sJMP and both the multiply path and the empty path execute.

The modular multiplication is implemented as a shift-add loop over the
multiplier bits (``mul_steps`` iterations), modelling the multi-limb
big-number multiply of a real RSA implementation — this is what makes
the guarded step *heavy* enough for the timing channel to be practical,
exactly as in the original attack literature.
"""

from __future__ import annotations

from repro.workloads.registry import workload


def _leak_values(params: dict) -> list:
    mask = (1 << params["bits"]) - 1
    return [0, 0x0F & mask, 0x5A & mask, mask]


@workload(
    name="modexp",
    title="RSA square-and-multiply (Fig. 1)",
    secret="ekey",
    # cache-state: the multiply block's code lines are only fetched for
    # set key bits, so IL1 residue betrays the key (prime-and-probe on
    # the instruction cache).
    channels=("timing", "instruction-count", "control-flow",
              "cache-state", "branch-predictor"),
    # Registry defaults are sized for leak experiments and smoke runs;
    # call the builder directly for the paper-scale 16-bit key.
    params={"bits": 8, "base": 7, "modulus": 1009, "key": 0x5A,
            "mul_steps": 12},
    leak_values=_leak_values,
    grid=({}, {"bits": 12}),
    result="result",
    reference=lambda params, secret: modexp_reference(
        params["bits"], params["base"], params["modulus"], secret,
        params["mul_steps"]),
)
def modexp_source(bits: int = 16, base: int = 7,
                  modulus: int = 1000003, key: int = 0x5AD3,
                  mul_steps: int = 20) -> str:
    """mini-C source for result = base^key mod modulus.

    ``mul_steps`` controls the length of the shift-add modular multiply
    (one step per multiplier bit; the modulus must fit in that many
    bits).
    """
    key &= (1 << bits) - 1
    return f"""
secret int ekey = {key};
int result = 0;

void main() {{
  int r = 1;
  int b = {base};
  for (int i = 0; i < {bits}; i = i + 1) {{
    int bit = (ekey >> i) & 1;
    if (bit) {{
      // r = (r * b) mod m via shift-add over b's bits (big-number-
      // multiply stand-in; runs only for set key bits).
      int prod = 0;
      int addend = b;
      for (int l = 0; l < {mul_steps}; l = l + 1) {{
        int rbit = (r >> l) & 1;
        prod = (prod + rbit * addend) % {modulus};
        addend = (addend + addend) % {modulus};
      }}
      r = prod;
    }}
    // b = (b * b) mod m, same shift-add structure (always executes).
    int sq = 0;
    int saddend = b;
    for (int l2 = 0; l2 < {mul_steps}; l2 = l2 + 1) {{
      int sbit = (b >> l2) & 1;
      sq = (sq + sbit * saddend) % {modulus};
      saddend = (saddend + saddend) % {modulus};
    }}
    b = sq;
  }}
  result = r;
}}
"""


def modexp_reference(bits: int, base: int, modulus: int, key: int,
                     mul_steps: int = 20) -> int:
    """Python reference for the same fixed-width square-and-multiply.

    The shift-add multiply only accumulates the low ``mul_steps`` bits
    of the multiplicand, so the reference truncates identically (with
    the default 20 steps and a ~20-bit modulus the truncation is
    exact).
    """
    def mulmod(value_r: int, value_b: int) -> int:
        prod = 0
        addend = value_b
        for bit_index in range(mul_steps):
            if (value_r >> bit_index) & 1:
                prod = (prod + addend) % modulus
            addend = (addend + addend) % modulus
        return prod

    key &= (1 << bits) - 1
    result = 1
    acc = base
    for index in range(bits):
        if (key >> index) & 1:
            result = mulmod(result, acc)
        acc = mulmod(acc, acc)
    return result
