"""Bounds-check bypass (Spectre v1): the transient-execution victim.

The classic gadget: an attacker-controlled index is bounds-checked,
and the guarded body both loads through it and uses the loaded value
as a second array index.  Architecturally the program never reads the
secret — every committed iteration passes the check.  On a machine
with a speculation window the training iterations bias the predictor
toward the in-bounds path, so the one out-of-bounds trial runs the
body *transiently*: the first load reads past ``table`` — the data
layout places the secret ``key`` in the very next slot — and the
second access encodes ``key`` in which ``probe`` line the wrong path
touches.  The squash undoes the registers, not the line stream.

The training schedule is compiled in (``idx = t % n + (t / train) *
n`` with ``train`` a multiple of ``n``): trials ``0..train-1`` stay in
bounds, trial ``train`` lands exactly on ``table[n]`` — the secret —
so a single static branch is mistrained in-program, no attacker
scheduling needed.  ``stride`` spreads probe indices one cache line
apart (8-byte elements, 64-byte lines), mirroring the element-per-line
probe arrays of the original PoCs.

The spec declares *only* the ``transient-memory`` channel: every
committed-state channel is secret-independent (the verify cell checks
exactly that), so this victim separates the transient threat model
from the architectural ones — dual-path execution (SeMPE) and
predication (CTE) do nothing for it, while the fence's serialize-at-
guard removes the window itself.
"""

from __future__ import annotations

from repro.workloads.registry import workload


def spectre_tables(n: int, stride: int, mask: int) -> tuple[list, list]:
    """The public ``table`` / ``probe`` contents the victim builds."""
    table = [(i * 11 + 5) & mask for i in range(n)]
    probe = [(i * 3) & 255 for i in range((mask + 1) * stride)]
    return table, probe


def _leak_values(params: dict) -> list:
    mask = params["mask"]
    return [1 & mask, 3 & mask, mask - 1]


@workload(
    name="spectre",
    title="bounds-check bypass gadget (transient channel)",
    secret="key",
    channels=("transient-memory",),
    params={"n": 8, "train": 16, "stride": 8, "mask": 7},
    leak_values=_leak_values,
    grid=({}, {"n": 16, "mask": 15}),
    result="out",
    reference=lambda params, secret: spectre_reference(
        secret, n=params["n"], train=params["train"],
        stride=params["stride"], mask=params["mask"]),
)
def spectre_source(n: int = 8, train: int = 16, stride: int = 8,
                   mask: int = 7) -> str:
    """mini-C source: train-then-bypass over ``table[n]``.

    ``key`` is declared immediately after ``table``, so ``table[n]``
    — the first out-of-bounds slot — *is* the secret (the code
    generator lays globals out contiguously in declaration order).
    """
    if n & (n - 1) or n <= 0:
        raise ValueError("n must be a power of two")
    if train % n or train <= 0:
        raise ValueError("train must be a positive multiple of n")
    if mask & (mask + 1):
        raise ValueError("mask must be a low-bit mask (2^k - 1)")
    psize = (mask + 1) * stride
    trials = train + 1
    return f"""
int table[{n}];
secret int key = 0;
int probe[{psize}];
int out = 0;

void main() {{
  for (int i = 0; i < {n}; i = i + 1) {{
    table[i] = (i * 11 + 5) & {mask};
  }}
  for (int j = 0; j < {psize}; j = j + 1) {{
    probe[j] = (j * 3) & 255;
  }}
  int acc = 0;
  for (int t = 0; t < {trials}; t = t + 1) {{
    int idx = t % {n} + (t / {train}) * {n};
    if (idx < {n}) {{
      int val = table[idx];
      acc = acc + probe[(val & {mask}) * {stride}];
    }}
  }}
  out = acc;
}}
"""


def spectre_reference(key: int, n: int = 8, train: int = 16,
                      stride: int = 8, mask: int = 7) -> int:
    """Python model of the committed path (the ``out`` global).

    Committed execution never takes the out-of-bounds trial's body, so
    the result is independent of *key* — which is the point: the
    victim's architectural output carries nothing, the wrong path
    carries everything.
    """
    table, probe = spectre_tables(n, stride, mask)
    acc = 0
    for t in range(train + 1):
        idx = t % n + (t // train) * n
        if idx < n:
            acc += probe[(table[idx] & mask) * stride]
    return acc
