"""repro — reproduction of SeMPE (DAC 2021).

Secure Multi-Path Execution: an architecture that removes the
secret-dependent behavior of conditional branches (SDBCB) by executing
and committing *both* paths of secret-dependent branches, NT path first,
with register state managed by ArchRS snapshots in a scratchpad memory
and sequencing by a small jump-back LIFO (jbTable).

Top-level convenience API::

    from repro import assemble, simulate

    program = assemble(SOURCE)
    secure = simulate(program, defense="sempe")
    base = simulate(program, defense="plain")
    print(secure.overhead_vs(base))

Protection schemes (the ``defense=`` axis) are first-class and
registered in :mod:`repro.defenses`: ``plain``, ``sempe``, ``cte``
plus the ``fence``, ``cache-partition``, ``cache-randomize`` and
``flush-local`` mitigations — see ``repro defenses list``.

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from repro.isa import assemble, Program, ProgramBuilder
from repro.core import simulate, SempeMachine, SimulationReport, JumpBackTable
from repro.defenses import DefenseSpec, defense_names, get_defense
from repro.uarch import MachineConfig, haswell_like
from repro.arch import Executor, run_program

__version__ = "1.1.0"

__all__ = [
    "assemble",
    "DefenseSpec",
    "defense_names",
    "get_defense",
    "Program",
    "ProgramBuilder",
    "simulate",
    "SempeMachine",
    "SimulationReport",
    "JumpBackTable",
    "MachineConfig",
    "haswell_like",
    "Executor",
    "run_program",
    "__version__",
]
