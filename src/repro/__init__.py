"""repro — reproduction of SeMPE (DAC 2021).

Secure Multi-Path Execution: an architecture that removes the
secret-dependent behavior of conditional branches (SDBCB) by executing
and committing *both* paths of secret-dependent branches, NT path first,
with register state managed by ArchRS snapshots in a scratchpad memory
and sequencing by a small jump-back LIFO (jbTable).

Top-level convenience API::

    from repro import assemble, simulate

    program = assemble(SOURCE)
    secure = simulate(program, sempe=True)
    base = simulate(program, sempe=False)
    print(secure.overhead_vs(base))

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from repro.isa import assemble, Program, ProgramBuilder
from repro.core import simulate, SempeMachine, SimulationReport, JumpBackTable
from repro.uarch import MachineConfig, haswell_like
from repro.arch import Executor, run_program

__version__ = "1.0.0"

__all__ = [
    "assemble",
    "Program",
    "ProgramBuilder",
    "simulate",
    "SempeMachine",
    "SimulationReport",
    "JumpBackTable",
    "MachineConfig",
    "haswell_like",
    "Executor",
    "run_program",
    "__version__",
]
