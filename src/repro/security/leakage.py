"""Leakage detection: noninterference checks and quantification.

The paper's security argument (§IV-A) is that executing all of both
paths makes the execution independent of the secret.  We test it
operationally: run the victim under a set of secret values and compare
the attacker-visible channels.  A channel *leaks* if any two secret
values produce different observations.

:func:`mutual_information_bits` additionally quantifies a leak: treating
the secret as uniform over the tested values, it computes I(secret;
observation) in bits — 0 for a closed channel, log2(n) for a channel
that uniquely identifies each of n secret values.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field

from repro.isa.program import Program
from repro.security.observer import ObservationTrace, collect_observation
from repro.uarch.config import MachineConfig

CHANNELS = (
    "timing",
    "instruction-count",
    "control-flow",
    "memory-address",
    "cache-state",
    "branch-predictor",
)

# The transient channel only exists on machines with a speculation
# window (``MachineConfig.speculation.enabled``); reports include it only
# then, so machines without the window keep their exact channel set (and
# SeMPE's architectural guarantee — ``protects=CHANNELS`` — is not
# claimed to cover wrong-path effects it never sees).
ALL_CHANNELS = CHANNELS + ("transient-memory",)


def active_channels(config: MachineConfig | None) -> tuple[str, ...]:
    """The channel set the given machine actually exposes."""
    if config is not None and config.speculation.enabled:
        return ALL_CHANNELS
    return CHANNELS


def observation_key(value: object) -> object:
    """A stable, hashable dedupe key for one channel observation.

    Observations are compared *by value*: two runs that produced equal
    observations must map to the same key, and unequal observations must
    (for every type the channels actually produce) map to different
    keys.  Hashing the value directly would raise on lists; the old
    ``repr`` fallback was worse — two equal objects whose ``repr``
    includes identity (the ``object`` default) looked distinct, and two
    distinct objects with a lossy ``repr`` collided.  Containers are
    therefore canonicalized recursively, and every key is tagged with
    the value's type so ``1``, ``1.0`` and ``True`` — equal but
    differently-typed observations — never alias.
    """
    if isinstance(value, (list, tuple)):
        return (type(value).__name__,
                tuple(observation_key(item) for item in value))
    if isinstance(value, (set, frozenset)):
        # Sort *by* repr for a deterministic order, but keep the
        # canonical keys themselves as the components — deduping by
        # repr would reintroduce the collision this function fixes.
        return (type(value).__name__,
                tuple(sorted((observation_key(item) for item in value),
                             key=repr)))
    if isinstance(value, dict):
        return ("dict", tuple(sorted(
            ((observation_key(k), observation_key(v))
             for k, v in value.items()), key=repr)))
    try:
        hash(value)
    except TypeError:
        return (type(value).__name__, repr(value))
    return (type(value).__name__, value)


@dataclass
class ChannelReport:
    """One channel's behaviour across the tested secrets."""

    channel: str
    observations: dict[int, object] = field(default_factory=dict)

    @property
    def leaks(self) -> bool:
        keys = set(map(observation_key, self.observations.values()))
        return len(keys) > 1

    @property
    def mutual_information(self) -> float:
        return mutual_information_bits(list(self.observations.values()))


@dataclass
class NoninterferenceReport:
    """All channels for one program/machine combination."""

    program_name: str
    sempe: bool
    secret_name: str
    channels: dict[str, ChannelReport] = field(default_factory=dict)

    @property
    def secure(self) -> bool:
        """True iff no channel distinguishes any pair of secrets."""
        return not any(report.leaks for report in self.channels.values())

    def leaking_channels(self) -> list[str]:
        return [name for name, report in self.channels.items() if report.leaks]

    def summary(self) -> str:
        lines = [
            f"program={self.program_name} sempe={self.sempe} "
            f"secret={self.secret_name}"
        ]
        for name, report in self.channels.items():
            verdict = "LEAKS" if report.leaks else "closed"
            lines.append(
                f"  {name:18s} {verdict:7s} "
                f"I={report.mutual_information:.2f} bits"
            )
        return "\n".join(lines)


def noninterference_report(
    program: Program,
    secret_name: str,
    secret_values: list[int],
    sempe: bool | None = None,
    symbols: dict[str, int] | None = None,
    config: MachineConfig | None = None,
    max_instructions: int = 50_000_000,
    engine: str | None = None,
    defense: str | None = None,
) -> NoninterferenceReport:
    """Run *program* once per secret value and compare all channels.

    ``defense`` selects the machine-side protection scheme the victim
    runs under (the legacy ``sempe`` bool remains as an alias).
    Array-valued secrets must be passed as tuples (they key the
    per-secret observation table).
    """
    from repro.core.engine import resolve_defense

    spec = resolve_defense(defense, sempe)
    report = NoninterferenceReport(
        program_name=program.name, sempe=spec.sempe_machine,
        secret_name=secret_name
    )
    traces: dict[int, ObservationTrace] = {}
    for value in secret_values:
        traces[value] = collect_observation(
            program,
            defense=spec.name,
            secret_values={secret_name: value},
            symbols=symbols,
            config=config,
            max_instructions=max_instructions,
            engine=engine,
        )
    for channel in active_channels(config):
        channel_report = ChannelReport(channel=channel)
        for value, trace in traces.items():
            channel_report.observations[value] = trace.channels()[channel]
        report.channels[channel] = channel_report
    return report


def victim_report(
    spec,
    mode: str,
    config: MachineConfig | None = None,
    engine: str | None = None,
    secret_values: list | None = None,
    max_instructions: int = 50_000_000,
    **param_overrides,
) -> NoninterferenceReport:
    """Noninterference report for one registered workload.

    *spec* is a :class:`~repro.workloads.registry.WorkloadSpec` (or its
    name).  *mode* names a registered defense: the victim is compiled
    with that defense's compiler transform (with the spec's leak
    parameters applied) and observed under its machine hooks, its
    declared secret swept over the spec's representative values (or
    *secret_values*) — the generic form of the per-victim leak
    experiments, now covering the whole defense axis.

    A workload that declares the ``transient-memory`` channel only
    leaks on a machine with a speculation window, so the window is
    enabled automatically for those (on a copy — the caller's config is
    never mutated).  Everything else runs the exact machine it was
    given, keeping the default-off invariance.
    """
    import copy

    from repro.defenses.registry import get_defense

    if isinstance(spec, str):
        from repro.workloads.registry import get_workload

        spec = get_workload(spec)
    if "transient-memory" in spec.channels and (
            config is None or not config.speculation.enabled):
        config = copy.deepcopy(config) if config is not None \
            else MachineConfig()
        config.speculation.enabled = True
    defense = get_defense(mode)
    params = spec.leak_resolve(param_overrides)
    compiled = spec.compile(defense.compile_mode, **params)
    values = (spec.leak_values(params) if secret_values is None
              else secret_values)
    values = [tuple(v) if isinstance(v, list) else v for v in values]
    return noninterference_report(
        compiled.program,
        spec.secret,
        values,
        defense=defense.name,
        config=config,
        max_instructions=max_instructions,
        engine=engine,
    )


def distinguishing_channels(
    trace_a: ObservationTrace, trace_b: ObservationTrace
) -> list[str]:
    """Channels on which two observations differ."""
    channels_a = trace_a.channels()
    channels_b = trace_b.channels()
    return [name for name in ALL_CHANNELS
            if channels_a[name] != channels_b[name]]


def mutual_information_bits(observations: list[object]) -> float:
    """I(secret; observation) for a uniform secret over the runs.

    Each element of *observations* is the channel value for one secret.
    The conditional distribution is deterministic (one observation per
    secret), so I = H(observation).  Degenerate channels — no
    observations, or a single one — carry no information and return
    0.0; observations are deduplicated by :func:`observation_key`, so
    unhashable values are compared canonically rather than through
    ``repr`` collisions.  The result is always bounded by
    ``log2(len(observations))``, the entropy of the uniform secret.
    """
    if len(observations) < 2:
        return 0.0
    counts = Counter(map(observation_key, observations))
    total = len(observations)
    entropy = 0.0
    for count in counts.values():
        probability = count / total
        entropy -= probability * math.log2(probability)
    return entropy
