"""Statistical distinguishers for the attack engine.

A realistic adversary never sees one clean trace; it sees many noisy
ones and must *decide*.  This module is the standard leakage-assessment
toolkit (pure Python, no dependencies) that the attackers in
:mod:`repro.security.attackers` plug their observations into:

* :func:`welch_t_test` — the fixed-vs-fixed TVLA test on scalar
  observables (timing): are the two secret classes' sample means
  distinguishable?  Returns the t statistic and a two-sided p-value
  from Student's t distribution with Welch–Satterthwaite degrees of
  freedom.
* :func:`paired_mutual_information_bits` — plug-in (maximum-likelihood)
  MI estimate between secret labels and repeated noisy observations,
  the quantitative "how many bits leak" measure (the deterministic
  one-observation-per-secret form lives in
  :mod:`repro.security.leakage`).
* :func:`permutation_test` — a label-shuffling null for the MI
  statistic on categorical observables (digests), where a parametric
  test does not apply.  Robust to spurious structure (e.g. unique
  corrupted-probe tokens inflate plug-in MI identically under the
  null, so the p-value is honest).
* :func:`majority_vote` — per-position vote across repeated noisy
  trials, the classic error-correction step of multi-trial key
  recovery.

All randomized helpers take an explicit :class:`random.Random` so every
attack run is reproducible from its seed.
"""

from __future__ import annotations

import math
import random
import statistics
from dataclasses import dataclass
from typing import Hashable, Sequence


# --------------------------------------------------------------------------
# Scalar helpers (stdlib `statistics` with degenerate-size guards, so
# callers never branch on sample counts)
# --------------------------------------------------------------------------

def mean(values: Sequence[float]) -> float:
    return statistics.fmean(values) if values else 0.0


def variance(values: Sequence[float]) -> float:
    """Unbiased sample variance (0.0 for fewer than two samples)."""
    if len(values) < 2:
        return 0.0
    return statistics.variance(values)


# --------------------------------------------------------------------------
# Student's t distribution (for Welch's test)
# --------------------------------------------------------------------------

def _betacf(a: float, b: float, x: float) -> float:
    """Continued fraction for the incomplete beta function (Lentz)."""
    max_iter = 200
    eps = 3e-12
    tiny = 1e-300
    qab = a + b
    qap = a + 1.0
    qam = a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < tiny:
        d = tiny
    d = 1.0 / d
    h = d
    for m in range(1, max_iter + 1):
        m2 = 2 * m
        aa = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        h *= d * c
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < eps:
            break
    return h


def regularized_incomplete_beta(a: float, b: float, x: float) -> float:
    """I_x(a, b) via the symmetric continued-fraction expansion."""
    if x <= 0.0:
        return 0.0
    if x >= 1.0:
        return 1.0
    ln_front = (math.lgamma(a + b) - math.lgamma(a) - math.lgamma(b)
                + a * math.log(x) + b * math.log1p(-x))
    front = math.exp(ln_front)
    if x < (a + 1.0) / (a + b + 2.0):
        return front * _betacf(a, b, x) / a
    return 1.0 - front * _betacf(b, a, 1.0 - x) / b


def student_t_sf(t: float, dof: float) -> float:
    """Two-sided tail probability P(|T| >= |t|) for Student's t."""
    if dof <= 0:
        return 1.0
    if math.isinf(t):
        return 0.0
    x = dof / (dof + t * t)
    return regularized_incomplete_beta(dof / 2.0, 0.5, x)


@dataclass(frozen=True)
class TTestResult:
    """Outcome of one Welch test."""

    statistic: float
    dof: float
    p_value: float
    n_a: int
    n_b: int

    def significant(self, alpha: float = 0.01) -> bool:
        return self.p_value < alpha


def welch_t_test(sample_a: Sequence[float],
                 sample_b: Sequence[float]) -> TTestResult:
    """Welch's unequal-variance t-test between two samples.

    Degenerate inputs resolve conservatively rather than raising: with
    fewer than two observations on either side there is no variance
    estimate, so the test cannot reject (``p = 1.0``); two zero-variance
    samples are distinguishable iff their means differ (``p`` 0 or 1).
    """
    n_a, n_b = len(sample_a), len(sample_b)
    if n_a < 2 or n_b < 2:
        return TTestResult(0.0, 0.0, 1.0, n_a, n_b)
    mean_a, mean_b = mean(sample_a), mean(sample_b)
    var_a, var_b = variance(sample_a), variance(sample_b)
    if var_a == 0.0 and var_b == 0.0:
        if mean_a == mean_b:
            return TTestResult(0.0, float(n_a + n_b - 2), 1.0, n_a, n_b)
        return TTestResult(math.inf if mean_a > mean_b else -math.inf,
                           float(n_a + n_b - 2), 0.0, n_a, n_b)
    se_sq = var_a / n_a + var_b / n_b
    statistic = (mean_a - mean_b) / math.sqrt(se_sq)
    dof = se_sq ** 2 / (
        (var_a / n_a) ** 2 / (n_a - 1) + (var_b / n_b) ** 2 / (n_b - 1))
    return TTestResult(statistic, dof, student_t_sf(statistic, dof),
                       n_a, n_b)


# --------------------------------------------------------------------------
# Mutual information on labelled observations
# --------------------------------------------------------------------------

def _entropy(counts: dict) -> float:
    total = sum(counts.values())
    if total == 0:
        return 0.0
    entropy = 0.0
    for count in counts.values():
        p = count / total
        entropy -= p * math.log2(p)
    return entropy


def paired_mutual_information_bits(
        pairs: Sequence[tuple[Hashable, Hashable]]) -> float:
    """Plug-in estimate of I(label; observation) from (label, obs) pairs.

    Unlike the single-observation-per-secret form in
    :mod:`repro.security.leakage`, this handles repeated noisy trials:
    I = H(L) + H(O) - H(L, O) over the empirical joint.  Both elements
    of each pair must already be hashable keys (see
    :func:`repro.security.leakage.observation_key`).
    """
    if len(pairs) < 2:
        return 0.0
    label_counts: dict = {}
    obs_counts: dict = {}
    joint_counts: dict = {}
    for label, obs in pairs:
        label_counts[label] = label_counts.get(label, 0) + 1
        obs_counts[obs] = obs_counts.get(obs, 0) + 1
        joint_counts[(label, obs)] = joint_counts.get((label, obs), 0) + 1
    value = (_entropy(label_counts) + _entropy(obs_counts)
             - _entropy(joint_counts))
    # Clamp float round-off; information is never negative.
    return max(0.0, value)


def permutation_test(pairs: Sequence[tuple[Hashable, Hashable]],
                     rng: random.Random,
                     rounds: int = 500) -> tuple[float, float]:
    """Label-permutation p-value for the MI statistic.

    Returns ``(observed_mi, p_value)`` where ``p_value`` is the
    add-one-smoothed fraction of label shuffles whose MI is at least the
    observed value.  If the labels carry no information (all
    observations identical), every shuffle ties the observed statistic
    and the p-value is 1.0 — the distinguisher's null.

    ``rounds`` sets the p-value floor at ``1/(rounds + 1)``; the
    default leaves a comfortable margin below the attack engine's 0.01
    decision threshold even when a few shuffles of a small balanced
    campaign tie the observed statistic by chance.
    """
    observed = paired_mutual_information_bits(pairs)
    if len(pairs) < 2:
        return observed, 1.0
    labels = [label for label, _obs in pairs]
    observations = [obs for _label, obs in pairs]
    at_least = 0
    for _ in range(rounds):
        rng.shuffle(labels)
        shuffled = paired_mutual_information_bits(
            list(zip(labels, observations)))
        if shuffled >= observed - 1e-12:
            at_least += 1
    return observed, (1 + at_least) / (1 + rounds)


# --------------------------------------------------------------------------
# Majority vote
# --------------------------------------------------------------------------

def majority_vote(votes: Sequence[int],
                  rng: random.Random | None = None) -> int:
    """The majority bit of *votes*; exact ties are broken by *rng* (or 0).

    Raises ``ValueError`` on an empty vote set — a caller that has no
    observations has no business claiming a recovered bit.
    """
    if not votes:
        raise ValueError("majority_vote needs at least one vote")
    ones = sum(1 for vote in votes if vote)
    zeros = len(votes) - ones
    if ones == zeros:
        return rng.randrange(2) if rng is not None else 0
    return 1 if ones > zeros else 0


def majority_vote_bits(rows: Sequence[Sequence[int]],
                       rng: random.Random | None = None) -> list[int]:
    """Per-position majority across trial rows (rows may differ in
    length; each position votes over the rows that reach it)."""
    if not rows:
        return []
    width = max(len(row) for row in rows)
    recovered: list[int] = []
    for position in range(width):
        votes = [row[position] for row in rows if position < len(row)]
        recovered.append(majority_vote(votes, rng))
    return recovered
