"""Attacker observation collection.

An :class:`ObservationTrace` bundles everything the threat model allows
the adversary to see for one victim run:

* ``cycles`` — coarse end-to-end timing;
* ``pc_sequence`` — the committed control-flow trace (what an attacker
  reconstructs from a shared fetch engine / branch history);
* ``mem_addresses`` — the data-access address stream (shared-cache
  channel at line granularity);
* ``cache_digest`` — post-run cache tag state (prime-and-probe residue);
* ``predictor_digest`` — post-run branch-predictor state (the branch
  predictor channel);
* ``instruction_count`` — committed instruction count.

:func:`collect_observation` runs a program on the full machine
(functional + timing) and gathers all of them.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.arch.executor import Executor
from repro.arch.fast_executor import FastExecutor
from repro.core.engine import (
    _resolve_engine,
    flush_penalty_cycles,
    resolve_defense,
)
from repro.isa.program import Program
from repro.uarch.batch_pipeline import lane_outcomes, residue_digests
from repro.uarch.config import MachineConfig
from repro.uarch.pipeline import OutOfOrderPipeline


@dataclass
class ObservationTrace:
    """Everything the §III attacker can observe for one run."""

    cycles: int
    instruction_count: int
    pc_digest: str
    mem_digest: str
    cache_digest: str
    predictor_digest: str
    # Wrong-path (speculation window) fetch/access stream.  The constant
    # hash-of-nothing whenever speculation is disabled, so the channel is
    # trivially closed on machines without a transient window.
    transient_digest: str = ""
    pc_sequence: list[int] = field(default_factory=list, repr=False)
    mem_addresses: list[int] = field(default_factory=list, repr=False)
    # Per-set valid-line counts (IL1, DL1, L2) — the prime-and-probe
    # residue an attacker measures by timing its own primed lines.
    cache_occupancy: tuple = ()

    def channels(self) -> dict[str, object]:
        """Channel name -> observable value (digests for big streams)."""
        return {
            "timing": self.cycles,
            "instruction-count": self.instruction_count,
            "control-flow": self.pc_digest,
            "memory-address": self.mem_digest,
            "cache-state": self.cache_digest,
            "branch-predictor": self.predictor_digest,
            "transient-memory": self.transient_digest,
        }


class TraceObserver:
    """Streams a functional trace, accumulating observable digests."""

    def __init__(self, line_bytes: int = 64, keep_streams: bool = False) -> None:
        self.line_bytes = line_bytes
        self.keep_streams = keep_streams
        self.pc_sequence: list[int] = []
        self.mem_addresses: list[int] = []
        self._pc_hash = hashlib.sha256()
        self._mem_hash = hashlib.sha256()
        self._transient_hash = hashlib.sha256()
        self.instruction_count = 0

    def observe(self, record) -> None:
        if record.kind != "inst":
            if record.kind == "transient":
                # Wrong-path fetch + access stream: what a same-core
                # attacker reconstructs from the cache lines the squashed
                # instructions touched (flush+reload on the shared lines).
                self._transient_hash.update(record.pc.to_bytes(8, "little"))
                if record.mem_addr is not None:
                    line = record.mem_addr // self.line_bytes
                    self._transient_hash.update(
                        line.to_bytes(8, "little", signed=False))
            return
        self.instruction_count += 1
        self._pc_hash.update(record.pc.to_bytes(8, "little"))
        if self.keep_streams:
            self.pc_sequence.append(record.pc)
        if record.mem_addr is not None:
            line = record.mem_addr // self.line_bytes
            self._mem_hash.update(line.to_bytes(8, "little", signed=False))
            if self.keep_streams:
                self.mem_addresses.append(line)

    @property
    def pc_digest(self) -> str:
        return self._pc_hash.hexdigest()

    @property
    def mem_digest(self) -> str:
        return self._mem_hash.hexdigest()

    @property
    def transient_digest(self) -> str:
        return self._transient_hash.hexdigest()


def poke_secrets(memory, symbols: dict[str, int],
                 secret_values: dict[str, object] | None) -> None:
    """Install secret values into *memory* before a victim run.

    This is the one place secrets are encoded into the machine: scalar
    secrets are masked to the 8-byte word their ``secret int`` symbol
    occupies, and array secrets (lists/tuples) fill consecutive 8-byte
    words.  Every consumer — observation collection, the concrete
    attacks, the leak experiments — must poke through here so attacker
    and victim agree on the secret's width and encoding.
    """
    for name, value in (secret_values or {}).items():
        if isinstance(value, (list, tuple)):
            for index, element in enumerate(value):
                memory.store(symbols[name] + 8 * index,
                             element & ((1 << 64) - 1), 8)
        else:
            memory.store(symbols[name], value & ((1 << 64) - 1), 8)


def collect_observation(
    program: Program,
    sempe: bool | None = None,
    secret_values: dict[str, int] | None = None,
    symbols: dict[str, int] | None = None,
    config: MachineConfig | None = None,
    keep_streams: bool = False,
    max_instructions: int = 50_000_000,
    engine: str | None = None,
    defense: str | None = None,
) -> ObservationTrace:
    """Run *program* with the given secrets and collect the observation.

    ``secret_values`` maps symbol names (resolved through ``symbols`` or
    ``program.symbols``) to the values poked into memory before the run.

    ``defense`` selects the protection scheme whose machine-side hooks
    the victim runs under (config overrides, SeMPE hardware, fences,
    exit flush) *and* whose attacker model shapes the residue channels:
    partitioned or randomized caches expose their attacker-facing views
    (see :meth:`repro.mem.cache.Cache.attacker_occupancy`), an exit
    flush clears the residue before it is digested.  The legacy
    ``sempe`` bool remains as an alias for ``sempe``/``plain``.

    ``engine`` selects the functional engine (``"fast"``/``"reference"``,
    default the session default); both produce identical observations,
    so leak verdicts are engine-independent — which the victim test
    suite asserts for every registered workload.

    **Hermeticity contract:** every call builds a fresh executor,
    pipeline, cache hierarchy, prefetchers, and predictors, and never
    mutates *program* or *config*.  Two calls with the same arguments
    return identical traces regardless of what ran in between — the
    multi-trial attack engine depends on this (residue from a previous
    trial, e.g. a trained ``StridePrefetcher`` table, must never
    masquerade as a leak), and ``tests/security/test_observer.py``
    pins it on both engines.
    """
    spec = resolve_defense(defense, sempe)
    engine = _resolve_engine(engine)
    if engine == "batch":
        # One-trial batch: same engine, same observation; campaigns use
        # collect_observations_batch directly to share the batch run.
        return collect_observations_batch(
            program, [secret_values or {}], symbols=symbols, config=config,
            keep_streams=keep_streams, max_instructions=max_instructions,
            defense=spec,
        )[0]
    sempe = spec.sempe_machine
    config = spec.apply_config(config or MachineConfig())
    executor_cls = FastExecutor if engine == "fast" else Executor
    executor = executor_cls(program, sempe=sempe,
                            max_instructions=max_instructions,
                            speculation=config.speculation,
                            fence=spec.fence_branches)
    symbol_table = symbols if symbols is not None else program.symbols
    poke_secrets(executor.state.memory, symbol_table, secret_values)

    observer = TraceObserver(
        line_bytes=config.hierarchy.dl1.line_bytes, keep_streams=keep_streams
    )
    pipeline = OutOfOrderPipeline(config, sempe=sempe,
                                  fence=spec.fence_branches)

    if engine == "fast":
        # Tee the columnar chunk stream: feed the observer through the
        # re-materializing records() adapter (bit-identical to the
        # reference stream by the chunk protocol) while the timing model
        # consumes the chunks natively.
        def observed_chunks(chunks):
            for chunk in chunks:
                for record in chunk.records():
                    observer.observe(record)
                yield chunk

        chunks = executor.run_chunks(
            line_bytes=config.hierarchy.il1.line_bytes)
        stats = pipeline.run_chunks(observed_chunks(chunks))
    else:
        def observed(trace):
            for record in trace:
                observer.observe(record)
                yield record

        stats = pipeline.run(observed(executor.run()))

    if spec.flush_on_exit:
        # The region-exit flush clears the residue *and* costs cycles;
        # both must land in the observation or the flush would look
        # free and leaky at the same time.
        stats.cycles += flush_penalty_cycles(config)
        pipeline.flush_transient_state()
    cache_digest, cache_occupancy, predictor_digest = \
        _residue_digests(pipeline)

    return ObservationTrace(
        cycles=stats.cycles,
        instruction_count=observer.instruction_count,
        pc_digest=observer.pc_digest,
        mem_digest=observer.mem_digest,
        cache_digest=cache_digest,
        predictor_digest=predictor_digest,
        transient_digest=observer.transient_digest,
        pc_sequence=observer.pc_sequence,
        mem_addresses=observer.mem_addresses,
        cache_occupancy=cache_occupancy,
    )


def _residue_digests(pipeline: OutOfOrderPipeline) -> tuple[str, tuple, str]:
    """Post-run residue channels of one machine (see
    :func:`repro.uarch.batch_pipeline.residue_digests`, the canonical
    implementation the batched timing path memoizes)."""
    return residue_digests(pipeline.hierarchy, pipeline.predictor,
                           pipeline.btb, pipeline.ittage, pipeline.ras)


def collect_observations_batch(
    program: Program,
    secret_sets: list[dict[str, object] | None],
    sempe: bool | None = None,
    symbols: dict[str, int] | None = None,
    config: MachineConfig | None = None,
    keep_streams: bool = False,
    max_instructions: int = 50_000_000,
    defense: str | None = None,
) -> list[ObservationTrace]:
    """One observation per secret set, executed as a single batch.

    The trial-batched engine (:class:`~repro.arch.batch.BatchExecutor`)
    decodes the program once and steps every trial together, so a
    whole profiling campaign pays one functional execution instead of
    ``len(secret_sets)``; each lane's observation is byte-identical to
    :func:`collect_observation` on the same secrets (the batch-parity
    suite pins this under every registered defense).

    The hermeticity contract carries over per lane: every lane gets a
    fresh timing pipeline, cache hierarchy, and predictors, and the
    residue digests are taken per lane, so trials cannot contaminate
    each other any more than back-to-back serial calls could.
    """
    from repro.arch.batch import BatchExecutor

    spec = resolve_defense(defense, sempe)
    sempe_machine = spec.sempe_machine
    config = spec.apply_config(config or MachineConfig())
    symbol_table = symbols if symbols is not None else program.symbols
    n_lanes = len(secret_sets)
    executor = BatchExecutor(program, sempe=sempe_machine, n_lanes=n_lanes,
                             max_instructions=max_instructions,
                             speculation=config.speculation,
                             fence=spec.fence_branches)
    for lane, secret_values in enumerate(secret_sets):
        poke_secrets(executor.memory.lane_view(lane), symbol_table,
                     secret_values)
    executor.run(line_bytes=config.hierarchy.il1.line_bytes)

    # The batched timing path: one pipeline pass per *distinct* lane
    # timing digest (SeMPE campaigns usually collapse to one), memoized
    # across calls.  Flush-on-exit, the transient tee, and the residue
    # digests all happen inside lane_outcomes, so a memo hit reproduces
    # the full observation without touching a pipeline.
    dl1_line_bytes = config.hierarchy.dl1.line_bytes
    outcomes = lane_outcomes(
        executor, config,
        sempe=sempe_machine,
        fence=spec.fence_branches,
        defense_fingerprint=spec.fingerprint(),
        flush_penalty=flush_penalty_cycles(config)
        if spec.flush_on_exit else 0,
    )
    observations = []
    for lane, outcome in enumerate(outcomes):
        if outcome is None:
            # Faulted lane: raise in lane order, exactly where the
            # serial per-lane generator would have.
            raise executor.lane_error(lane)
        instruction_count, pc_values, mem_lines = executor.lane_streams(
            lane, dl1_line_bytes)
        pc_digest = hashlib.sha256(
            pc_values.astype("<u8").tobytes()).hexdigest()
        mem_digest = hashlib.sha256(
            mem_lines.astype("<u8").tobytes()).hexdigest()
        observations.append(ObservationTrace(
            cycles=outcome.stats.cycles,
            instruction_count=instruction_count,
            pc_digest=pc_digest,
            mem_digest=mem_digest,
            cache_digest=outcome.cache_digest,
            predictor_digest=outcome.predictor_digest,
            transient_digest=outcome.transient_digest,
            pc_sequence=pc_values.tolist() if keep_streams else [],
            mem_addresses=mem_lines.tolist() if keep_streams else [],
            cache_occupancy=outcome.cache_occupancy,
        ))
    return observations


