"""Side-channel analysis tooling.

Implements the attacker models of the paper's threat model (§III): a
co-located process that can measure coarse timing, prime-and-probe the
caches, observe the victim's memory working set through a shared cache,
and inspect branch-predictor state after the victim runs.  The
:func:`noninterference_report` driver runs a program under multiple
secret values and checks whether each observation channel distinguishes
them — SeMPE's security claim is that none do.
"""

from repro.security.observer import (
    ObservationTrace,
    TraceObserver,
    collect_observation,
)
from repro.security.leakage import (
    ChannelReport,
    NoninterferenceReport,
    noninterference_report,
    distinguishing_channels,
    mutual_information_bits,
    victim_report,
)

__all__ = [
    "victim_report",
    "ObservationTrace",
    "TraceObserver",
    "collect_observation",
    "ChannelReport",
    "NoninterferenceReport",
    "noninterference_report",
    "distinguishing_channels",
    "mutual_information_bits",
]
