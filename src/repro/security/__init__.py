"""Side-channel analysis tooling.

Implements the attacker models of the paper's threat model (§III): a
co-located process that can measure coarse timing, prime-and-probe the
caches, observe the victim's memory working set through a shared cache,
and inspect branch-predictor state after the victim runs.  The
:func:`noninterference_report` driver runs a program under multiple
secret values and checks whether each observation channel distinguishes
them — SeMPE's security claim is that none do.  The statistical attack
engine (:mod:`repro.security.attackers`) turns that claim into an
end-to-end demonstration: noisy multi-trial adversaries recover every
registered victim's secret on the baseline machine and degrade to
chance under SeMPE.
"""

from repro.security.observer import (
    ObservationTrace,
    TraceObserver,
    collect_observation,
    poke_secrets,
)
from repro.security.leakage import (
    ChannelReport,
    NoninterferenceReport,
    noninterference_report,
    distinguishing_channels,
    mutual_information_bits,
    observation_key,
    victim_report,
)
from repro.security.attackers import (
    ALPHA,
    ATTACKERS,
    AttackReport,
    AttackSpec,
    applicable_attackers,
    attacker_names,
    execute_attack,
    get_attacker,
    iter_attackers,
)

__all__ = [
    "victim_report",
    "ObservationTrace",
    "TraceObserver",
    "collect_observation",
    "poke_secrets",
    "ChannelReport",
    "NoninterferenceReport",
    "noninterference_report",
    "distinguishing_channels",
    "mutual_information_bits",
    "observation_key",
    "ALPHA",
    "ATTACKERS",
    "AttackReport",
    "AttackSpec",
    "applicable_attackers",
    "attacker_names",
    "execute_attack",
    "get_attacker",
    "iter_attackers",
]
