"""Concrete attacks against SDBCB — the adversary's side of the story.

The noninterference checker asks "do any two secrets look different?".
These classes go further and *recover* the secret from the observation,
demonstrating the §III threat model end-to-end:

* :class:`TimingAttack` — the classic attack on square-and-multiply
  (Fig. 1 of the paper): per-iteration execution time reveals each key
  bit; total time reveals the Hamming weight.
* :class:`BranchTraceAttack` — a stronger adversary who reconstructs
  the victim's committed control-flow trace (e.g. through a shared BTB
  or an execution port / fetch contention probe) and reads the branch
  outcomes directly.
* :class:`NoisyBranchTraceAttack` — the same adversary with an
  imperfect probe: each observed direction flips with some
  probability, and the key is recovered by per-bit majority vote
  across repeated trials (:mod:`repro.security.stats`).

All of them succeed against the baseline machine and fail against the
SeMPE machine (see ``tests/security/test_attacks.py``).  The
statistical multi-trial engine generalizing these to the full victim
registry lives in :mod:`repro.security.attackers`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.arch.executor import Executor
from repro.isa.program import Program
from repro.security.observer import poke_secrets
from repro.security.stats import majority_vote_bits


@dataclass
class AttackResult:
    """What the adversary learned.

    ``recovered_bits[i]`` is bit *i* of the key (LSB first, matching
    the per-iteration order the victim's loop tests them in), so
    :meth:`as_int` reassembles the key as ``sum(bit << i)``.
    """

    recovered_bits: list[int]
    confidence: str

    def as_int(self) -> int:
        value = 0
        for index, bit in enumerate(self.recovered_bits):
            value |= (bit & 1) << index
        return value


class BranchTraceAttack:
    """Recover secret key bits from the committed branch outcomes.

    The attacker knows the victim's code (per §III) and therefore which
    static branch tests each key bit.  Observing the per-instance
    outcome stream of that branch yields the key directly on a
    conventional machine.  On a SeMPE machine the sJMP always proceeds
    to the NT path first and both paths commit, so the *observable*
    direction sequence is the same for every key.
    """

    def __init__(self, program: Program, sempe: bool) -> None:
        self.program = program
        self.sempe = sempe

    def observed_directions(self, secret_values: dict[str, int],
                            branch_pc: int) -> list[int]:
        """The attacker-visible next-PC direction at each execution of
        *branch_pc*: 1 if the fetch stream continued at the branch
        target, 0 if it fell through.

        The direction is read off the committed record stream itself —
        the PC of the next committed instruction after each execution
        of the branch — not off any machine-mode flag.  On the SeMPE
        machine the stream after an sJMP genuinely continues on the
        fall-through path for every key (the jump-back happens at the
        eosJMP inside a drain), so the observed direction carries no
        information; no special-casing is needed to model that.
        """
        executor = Executor(self.program, sempe=self.sempe)
        poke_secrets(executor.state.memory, self.program.symbols,
                     secret_values)
        target = self.program.instructions[branch_pc].target
        directions: list[int] = []
        pending = False
        for record in executor.run():
            if record.kind != "inst":
                continue          # drains are not fetch redirects
            if pending:
                directions.append(1 if record.pc == target else 0)
                pending = False
            if record.pc == branch_pc and record.taken is not None:
                pending = True
        if pending:
            # The branch was the last committed instruction: the fetch
            # stream ended, i.e. it did not continue at the target.
            directions.append(0)
        return directions

    def recover_key(self, secret_name: str, true_key: int, bits: int,
                    branch_pc: int) -> AttackResult:
        """Run the victim with *true_key* and read the bits back.

        Confidence comes from calibration, not from a machine flag: the
        attacker first runs two known keys (all-zeros and all-ones) and
        only claims ``exact`` recovery when the channel actually
        separates them.  On a SeMPE machine both calibration streams
        are identical, so the verdict is ``none`` regardless of what
        the direction stream happens to look like.
        """
        directions = self.observed_directions({secret_name: true_key},
                                              branch_pc)
        # The modexp loop tests bit i on its i-th execution of the
        # branch; codegen emits "branch-if-zero to skip", so a taken
        # branch means bit == 0.
        bits_seen = [1 - direction for direction in directions[:bits]]
        informative = self.channel_informative(secret_name, bits, branch_pc)
        return AttackResult(
            recovered_bits=bits_seen,
            confidence="exact" if informative else "none",
        )

    def channel_informative(self, secret_name: str, bits: int,
                            branch_pc: int) -> bool:
        """Whether the direction stream separates two known keys —
        the attacker's calibration step."""
        all_ones = (1 << bits) - 1
        return (self.observed_directions({secret_name: 0}, branch_pc)
                != self.observed_directions({secret_name: all_ones},
                                            branch_pc))


class NoisyBranchTraceAttack(BranchTraceAttack):
    """:class:`BranchTraceAttack` through an unreliable probe.

    A real contention probe misreads some rounds; each observed
    direction is flipped with probability *flip* per trial, and the
    adversary repeats the measurement *trials* times, recovering each
    key bit by majority vote.  With ``flip < 0.5`` the vote converges
    on the baseline machine; on SeMPE there is nothing to converge to.
    """

    def __init__(self, program: Program, sempe: bool,
                 flip: float = 0.2, trials: int = 15,
                 seed: int = 0) -> None:
        super().__init__(program, sempe)
        if not 0.0 <= flip < 0.5:
            raise ValueError("flip probability must be in [0, 0.5)")
        self.flip = flip
        self.trials = trials
        self.rng = random.Random(seed)

    def _corrupt(self, directions: list[int]) -> list[int]:
        """One noisy read of an observed direction stream."""
        return [direction ^ (1 if self.rng.random() < self.flip else 0)
                for direction in directions]

    def recover_key(self, secret_name: str, true_key: int, bits: int,
                    branch_pc: int) -> AttackResult:
        # The victim is deterministic, so one clean simulation suffices;
        # only the probe noise is resampled across the repeated trials.
        clean = self.observed_directions({secret_name: true_key}, branch_pc)
        rows = [[1 - d for d in self._corrupt(clean)[:bits]]
                for _ in range(self.trials)]
        voted = majority_vote_bits(rows, self.rng)
        informative = self.channel_informative(secret_name, bits, branch_pc)
        return AttackResult(recovered_bits=voted,
                            confidence="exact" if informative else "none")


class TimingAttack:
    """Recover the key's Hamming weight from end-to-end cycles.

    Calibrates on two known keys (all-zeros and all-ones) and inverts
    the linear time-vs-weight model.  Works whenever the per-bit work
    difference exceeds the noise — which it does on the baseline and
    does not under SeMPE (both paths always run).
    """

    def __init__(self, program: Program, sempe: bool,
                 secret_name: str, bits: int, config=None) -> None:
        self.program = program
        self.sempe = sempe
        self.secret_name = secret_name
        self.bits = bits
        self.config = config

    def _cycles(self, key: int) -> int:
        from repro.security.observer import collect_observation

        trace = collect_observation(
            self.program, sempe=self.sempe,
            secret_values={self.secret_name: key}, config=self.config,
        )
        return trace.cycles

    def estimate_weight(self, true_key: int) -> tuple[int | None, int]:
        """Return (estimated Hamming weight or None, actual weight)."""
        zero_cycles = self._cycles(0)
        ones_cycles = self._cycles((1 << self.bits) - 1)
        victim_cycles = self._cycles(true_key)
        actual = bin(true_key & ((1 << self.bits) - 1)).count("1")
        if ones_cycles == zero_cycles:
            return None, actual           # flat timing: attack defeated
        per_bit = (ones_cycles - zero_cycles) / self.bits
        estimate = round((victim_cycles - zero_cycles) / per_bit)
        return max(0, min(self.bits, estimate)), actual
