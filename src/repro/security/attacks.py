"""Concrete attacks against SDBCB — the adversary's side of the story.

The noninterference checker asks "do any two secrets look different?".
These classes go further and *recover* the secret from the observation,
demonstrating the §III threat model end-to-end:

* :class:`TimingAttack` — the classic attack on square-and-multiply
  (Fig. 1 of the paper): per-iteration execution time reveals each key
  bit; total time reveals the Hamming weight.
* :class:`BranchTraceAttack` — a stronger adversary who reconstructs
  the victim's committed control-flow trace (e.g. through a shared BTB
  or an execution port / fetch contention probe) and reads the branch
  outcomes directly.

Both attacks succeed against the baseline machine and fail against the
SeMPE machine (see ``tests/security/test_attacks.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.executor import Executor
from repro.isa.program import Program


@dataclass
class AttackResult:
    """What the adversary learned."""

    recovered_bits: list[int]
    confidence: str

    def as_int(self) -> int:
        value = 0
        for index, bit in enumerate(self.recovered_bits):
            value |= (bit & 1) << index
        return value


class BranchTraceAttack:
    """Recover secret key bits from the committed branch outcomes.

    The attacker knows the victim's code (per §III) and therefore which
    static branch tests each key bit.  Observing the per-instance
    outcome stream of that branch yields the key directly on a
    conventional machine.  On a SeMPE machine the sJMP always proceeds
    to the NT path first and both paths commit, so the *observable*
    direction sequence is the same for every key.
    """

    def __init__(self, program: Program, sempe: bool) -> None:
        self.program = program
        self.sempe = sempe

    def observed_directions(self, secret_values: dict[str, int],
                            branch_pc: int) -> list[int]:
        """The attacker-visible next-PC direction at each execution of
        *branch_pc*: 1 if the fetch stream continued at the branch
        target, 0 if it fell through.

        On the SeMPE machine the front end always falls through on an
        sJMP (the jump-back happens at the eosJMP inside a drain), so
        the observed direction carries no information.
        """
        executor = Executor(self.program, sempe=self.sempe)
        for name, value in secret_values.items():
            executor.state.memory.store(self.program.symbols[name], value)
        directions: list[int] = []
        instruction = self.program.instructions[branch_pc]
        for record in executor.run():
            if record.kind != "inst" or record.pc != branch_pc:
                continue
            if instruction.is_secure_branch and self.sempe:
                directions.append(0)          # front end falls through
            else:
                directions.append(int(record.taken))
        return directions

    def recover_key(self, secret_name: str, true_key: int, bits: int,
                    branch_pc: int) -> AttackResult:
        """Run the victim with *true_key* and read the bits back."""
        directions = self.observed_directions({secret_name: true_key},
                                              branch_pc)
        # The modexp loop tests bit i on its i-th execution of the
        # branch; codegen emits "branch-if-zero to skip", so a taken
        # branch means bit == 0.
        bits_seen = [1 - direction for direction in directions[:bits]]
        distinct = len(set(directions)) > 1 or (directions and
                                                directions[0] == 0)
        return AttackResult(
            recovered_bits=bits_seen,
            confidence="exact" if distinct else "none",
        )


class TimingAttack:
    """Recover the key's Hamming weight from end-to-end cycles.

    Calibrates on two known keys (all-zeros and all-ones) and inverts
    the linear time-vs-weight model.  Works whenever the per-bit work
    difference exceeds the noise — which it does on the baseline and
    does not under SeMPE (both paths always run).
    """

    def __init__(self, program: Program, sempe: bool,
                 secret_name: str, bits: int, config=None) -> None:
        self.program = program
        self.sempe = sempe
        self.secret_name = secret_name
        self.bits = bits
        self.config = config

    def _cycles(self, key: int) -> int:
        from repro.security.observer import collect_observation

        trace = collect_observation(
            self.program, sempe=self.sempe,
            secret_values={self.secret_name: key}, config=self.config,
        )
        return trace.cycles

    def estimate_weight(self, true_key: int) -> tuple[int | None, int]:
        """Return (estimated Hamming weight or None, actual weight)."""
        zero_cycles = self._cycles(0)
        ones_cycles = self._cycles((1 << self.bits) - 1)
        victim_cycles = self._cycles(true_key)
        actual = bin(true_key & ((1 << self.bits) - 1)).count("1")
        if ones_cycles == zero_cycles:
            return None, actual           # flat timing: attack defeated
        per_bit = (ones_cycles - zero_cycles) / self.bits
        estimate = round((victim_cycles - zero_cycles) / per_bit)
        return max(0, min(self.bits, estimate)), actual
