"""The statistical attack engine: noisy multi-trial adversaries.

PR 3 grew the victim side of the §III threat model to a registry of
workloads; this module grows the adversary to match.  Where
:mod:`repro.security.attacks` demonstrates two noiseless single-trace
recoveries, the attackers here play the game the side-channel
literature actually plays:

1. **Profile.**  The adversary knows the victim's code (§III) and can
   run it with secrets of its own choosing.  It collects one hermetic
   observation per representative secret value (the workload's declared
   leak values) and keeps the channel observable of each as a template.
2. **Choose a pair.**  From the profiled candidates it picks the two
   most distinguishable secrets — the fixed-vs-fixed classes of a
   TVLA-style test.  Each class encodes one key-bit value.
3. **Attack.**  A random ``key_bits``-wide key is drawn; for every key
   bit the victim runs with the corresponding class secret and the
   adversary takes ``reps`` *noisy* measurements — Gaussian timing
   jitter on scalar channels, probe corruption on categorical ones —
   classifies each against the templates, and majority-votes the bit.
4. **Decide.**  Welch's t-test (scalar) or a label-permutation test on
   the mutual-information statistic (categorical) from
   :mod:`repro.security.stats` says whether the channel distinguishes
   the classes at all; the recovered-bit fraction says how much of the
   key leaked.

On the baseline machine every applicable attacker recovers its
workload's key (success rate 1.0, vanishing p-value); under SeMPE the
observables are identical across secrets, classification degenerates to
coin flips, and the p-value sits inside the null — the paper's security
argument, measured end to end.

The victim simulations are deterministic and hermetic (see
:func:`repro.security.observer.collect_observation`), so one
observation per class is simulated and the trial noise — which models
the *adversary's measurement*, not the victim — is resampled per trial
from the attack's seed.  Attack runs are pure functions of their
:class:`AttackSpec`, which is what lets the harness cache
:class:`AttackReport` records in the result store and fan attack cells
out across the sweep pool.
"""

from __future__ import annotations

import copy
import dataclasses
import hashlib
import random
from dataclasses import dataclass, field

from repro.defenses.registry import DefenseSpec, get_defense
from repro.security.leakage import mutual_information_bits, observation_key
from repro.security.observer import (
    ObservationTrace,
    collect_observation,
    collect_observations_batch,
)
from repro.security.stats import (
    majority_vote,
    permutation_test,
    welch_t_test,
)
from repro.uarch.config import MachineConfig, fast_functional
from repro.workloads.registry import WorkloadSpec, get_workload

# Decision threshold shared by every distinguisher: reject the
# "channel is closed" null below it, report "chance" at or above it.
ALPHA = 0.01

# TVLA detection threshold for the Welch test: a scalar channel only
# counts as distinguishing when |t| clears this bar *and* p < ALPHA.
# The side-channel literature uses 4.5 precisely because a leakage
# assessment runs many tests — a bare p < 0.01 fires falsely about
# once per hundred closed channels, |t| >= 4.5 about once per ten
# thousand.  (Permutation tests on categorical channels need no such
# guard: under the SeMPE null every shuffle ties the observed
# statistic and the p-value is exactly 1.0.)
TVLA_THRESHOLD = 4.5

# Fraction of the key the attacker must recover to claim success.
RECOVERY_THRESHOLD = 0.9

# Smallest statistically meaningful campaign.  Below this the balanced
# distinguisher cannot reach ALPHA even on a fully leaking channel
# (with trials=8 the permutation null ties with probability
# 2/C(8,4) ~ 0.03 > ALPHA; Welch has the same small-n floor), so a
# too-small request fails loudly instead of reporting a false "chance".
MIN_TRIALS = 12


def attack_config() -> MachineConfig:
    """The machine attack runs use when none is given.

    The compact :func:`~repro.uarch.config.fast_functional` machine:
    leak verdicts are size-independent (the baseline leak and the SeMPE
    closure hold on any geometry) and the small structures keep a
    hundreds-of-trials matrix tractable.
    """
    return fast_functional()


@dataclass
class AttackSpec:
    """One attack configuration (a sweep-cell spec, like
    :class:`~repro.workloads.registry.WorkloadRunSpec`).

    ``dataclasses.asdict`` must stay JSON-safe: the spec is part of the
    cell descriptor that fingerprints cached :class:`AttackReport`
    records in the result store.
    """

    workload: str
    attacker: str
    trials: int = 32
    seed: int = 0
    jitter: float = 4.0          # stddev of scalar measurement noise
    flip: float = 0.02           # per-trial categorical corruption rate
    params: dict = field(default_factory=dict)   # workload overrides

    @property
    def name(self) -> str:
        tags = "-".join(f"{key}{self.params[key]}"
                        for key in sorted(self.params))
        base = f"{self.workload}+{self.attacker}-t{self.trials}-s{self.seed}"
        return f"{base}-{tags}" if tags else base


@dataclass
class AttackReport:
    """What one attack run learned (JSON-safe, store-cacheable)."""

    workload: str
    attacker: str
    channel: str
    mode: str                    # the defense the victim ran under
    engine: str
    trials: int
    seed: int
    key_bits: int
    reps: int
    candidates: int              # profiled secret values
    pair: list[str]              # reprs of the chosen class secrets
    success_rate: float          # recovered key bits / key_bits
    bits_total: int
    bits_recovered: int
    p_value: float
    statistic: float             # Welch t (scalar) or plug-in MI (categ.)
    stat_kind: str               # "welch-t" | "perm-mi"
    profiled_mi: float           # MI across all profiled candidates
    verdict: str                 # "recovered" | "chance" | "partial"

    @property
    def recovered(self) -> bool:
        return self.verdict == "recovered"

    @property
    def at_chance(self) -> bool:
        return self.verdict == "chance"

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "AttackReport":
        return cls(**data)

    def summary(self) -> str:
        return (
            f"{self.workload} vs {self.attacker} [{self.mode}/{self.engine}]"
            f": {self.bits_recovered}/{self.bits_total} key bits "
            f"({self.success_rate:.0%}), p={self.p_value:.2e} "
            f"({self.stat_kind}) -> {self.verdict}"
        )


class Attacker:
    """Base class: one microarchitectural adversary.

    Subclasses set ``name``, ``channel`` (which declared leak channel
    they exploit — an attacker applies to a workload iff the workload
    declares that channel), ``scalar`` (whether the observable is a
    real number measured with jitter, or a categorical value probed
    with a corruption rate), and implement :meth:`observable`.
    """

    name: str = ""
    channel: str = ""
    scalar: bool = False
    description: str = ""

    def observable(self, trace: ObservationTrace) -> object:
        raise NotImplementedError

    @classmethod
    def applies_to(cls, spec: WorkloadSpec) -> bool:
        return cls.channel in spec.channels

    # -- trial machinery -------------------------------------------------

    def _measure(self, true_value: object, rng: random.Random,
                 spec: AttackSpec) -> object:
        """One noisy measurement of the channel observable."""
        if self.scalar:
            return float(true_value) + rng.gauss(0.0, spec.jitter)
        if spec.flip > 0.0 and rng.random() < spec.flip:
            # A corrupted probe round: the observation matches nothing.
            return ("corrupted", rng.getrandbits(64))
        return true_value

    def _classify(self, measured: object, templates: tuple[object, object],
                  rng: random.Random,
                  keys: tuple[object, object] | None = None,
                  measured_key: object | None = None) -> int:
        """Which class (0/1) a measurement belongs to; ties are guessed.

        *keys* are the templates' precomputed observation keys and
        *measured_key* the measurement's (categorical attackers only) —
        callers running many trials against the same pair pass them in
        instead of re-canonicalizing a potentially long observable per
        trial.
        """
        if self.scalar:
            d0 = abs(measured - float(templates[0]))
            d1 = abs(measured - float(templates[1]))
            if d0 == d1:
                return rng.randrange(2)
            return 0 if d0 < d1 else 1
        if keys is None:
            keys = (observation_key(templates[0]),
                    observation_key(templates[1]))
        k = (observation_key(measured) if measured_key is None
             else measured_key)
        match0 = k == keys[0]
        match1 = k == keys[1]
        if match0 == match1:      # both (identical templates) or neither
            return rng.randrange(2)
        return 0 if match0 else 1

    def _measured_key(self, measured: object,
                      templates: tuple[object, object],
                      keys: tuple[object, object]) -> object:
        """Observation key of a measurement, reusing a template's
        precomputed key when the probe was clean (the uncorrupted
        measurement *is* the template object)."""
        if measured is templates[0]:
            return keys[0]
        if measured is templates[1]:
            return keys[1]
        return observation_key(measured)

    def trial(self, true_value: object, templates: tuple[object, object],
              rng: random.Random, spec: AttackSpec, retries: int = 2,
              keys: tuple[object, object] | None = None
              ) -> tuple[object, int]:
        """One measurement plus classification, with probe rejection.

        A categorical measurement that matches *neither* template is a
        detectably corrupted probe round (a real attacker sees its
        probe got preempted) and is re-measured up to *retries* times.
        An ambiguous round — the measurement matches *both* templates,
        which is what every round looks like under SeMPE — is not
        corruption and is never retried; it stays a coin flip.
        """
        measured = self._measure(true_value, rng, spec)
        if self.scalar:
            return measured, self._classify(measured, templates, rng)
        if keys is None:
            keys = (observation_key(templates[0]),
                    observation_key(templates[1]))
        k = self._measured_key(measured, templates, keys)
        for _ in range(retries):
            if (k == keys[0], k == keys[1]) != (False, False):
                break
            measured = self._measure(true_value, rng, spec)
            k = self._measured_key(measured, templates, keys)
        return measured, self._classify(measured, templates, rng, keys,
                                        measured_key=k)


def _trial_rng(spec: AttackSpec, mode: str, engine: str) -> random.Random:
    """Deterministic per-cell RNG, stable across processes and sweeps."""
    tag = f"{spec.seed}:{spec.workload}:{spec.attacker}:{mode}:{engine}"
    digest = hashlib.sha256(tag.encode()).digest()
    return random.Random(int.from_bytes(digest[:8], "little"))


def execute_attack(spec: AttackSpec, mode: str,
                   config: MachineConfig | None = None,
                   engine: str | None = None) -> AttackReport:
    """Run one attack cell and report.

    *mode* names the registered defense the victim runs under
    (``plain`` = unprotected baseline, ``sempe`` = the paper's machine,
    or any other scheme from ``repro defenses list``); *engine* the
    functional engine.  The run is a pure function of ``(spec, mode,
    config, engine)``.
    """
    from repro.core.engine import _resolve_engine

    defense = get_defense(mode)
    if spec.trials < MIN_TRIALS:
        raise ValueError(
            f"trials={spec.trials} is below the statistical floor "
            f"({MIN_TRIALS}): the balanced distinguisher could not reach "
            "significance even on a fully leaking channel")
    attacker = get_attacker(spec.attacker)
    workload = get_workload(spec.workload)
    if not attacker.applies_to(workload):
        raise ValueError(
            f"attacker {attacker.name!r} exploits the {attacker.channel!r} "
            f"channel, which workload {workload.name!r} does not declare; "
            f"applicable attackers: {applicable_attackers(workload)}")
    engine = _resolve_engine(engine)
    config = config or attack_config()
    if attacker.channel == "transient-memory" \
            and not config.speculation.enabled:
        # The transient adversary only exists on a machine with a
        # speculation window; enable it on a copy, like victim_report.
        config = copy.deepcopy(config)
        config.speculation.enabled = True
    # The batch engine produces byte-identical observations to the fast
    # engine, so it draws from the fast RNG stream too: a batch attack
    # cell is the same experiment as a fast one, only cheaper.
    rng = _trial_rng(spec, mode, "fast" if engine == "batch" else engine)

    # 1. Profile: one hermetic observation per candidate secret, with
    # the victim compiled and run under the attacked defense.  The batch
    # engine runs the whole candidate matrix as one vectorized execution
    # (one decode, all trials stepped together).
    params = workload.leak_resolve(spec.params)
    compiled = workload.compile(defense.compile_mode, **params)
    keep = attacker.channel == "memory-address"
    candidates = [tuple(v) if isinstance(v, list) else v
                  for v in workload.leak_values(params)]
    secret_sets = [{workload.secret: value} for value in candidates]
    if engine == "batch":
        traces = collect_observations_batch(
            compiled.program, secret_sets, defense=defense.name,
            config=config, keep_streams=keep)
    else:
        traces = [collect_observation(
            compiled.program, defense=defense.name, secret_values=secrets,
            config=config, keep_streams=keep, engine=engine)
            for secrets in secret_sets]
    observables = [attacker.observable(trace) for trace in traces]

    # 2. Choose the most distinguishable pair of class secrets.
    pair_idx = _choose_pair(attacker, observables)
    templates = (observables[pair_idx[0]], observables[pair_idx[1]])

    # 3. Distinguish: a balanced fixed-vs-fixed (TVLA-style) campaign
    # over the chosen class pair.  The attacker controls which secret
    # runs when, so it measures each class the same number of times —
    # the statistically optimal design.
    per_class = max(2, spec.trials // 2)
    class_samples: tuple[list, list] = ([], [])
    labelled_pairs: list[tuple[int, object]] = []
    template_keys = (None if attacker.scalar else
                     (observation_key(templates[0]),
                      observation_key(templates[1])))
    for label in (0, 1):
        for _ in range(per_class):
            measured, _ = attacker.trial(templates[label], templates,
                                         rng, spec, keys=template_keys)
            if attacker.scalar:
                class_samples[label].append(measured)
            else:
                labelled_pairs.append((label, observation_key(measured)))
    if attacker.scalar:
        ttest = welch_t_test(class_samples[0], class_samples[1])
        statistic, p_value, stat_kind = (
            ttest.statistic, ttest.p_value, "welch-t")
    else:
        statistic, p_value = permutation_test(labelled_pairs, rng)
        stat_kind = "perm-mi"

    # 4. Recover a random key, one majority-voted class decision per bit.
    key_bits = max(1, min(16, spec.trials))
    reps = max(1, spec.trials // key_bits)
    key = [rng.randrange(2) for _ in range(key_bits)]
    recovered_key: list[int] = []
    for bit in key:
        votes = [attacker.trial(templates[bit], templates, rng, spec,
                                keys=template_keys)[1]
                 for _ in range(reps)]
        recovered_key.append(majority_vote(votes, rng))
    bits_recovered = sum(1 for got, want in zip(recovered_key, key)
                         if got == want)
    success_rate = bits_recovered / key_bits

    significant = p_value < ALPHA
    if attacker.scalar:
        significant = significant and abs(statistic) >= TVLA_THRESHOLD
    if significant and success_rate >= RECOVERY_THRESHOLD:
        verdict = "recovered"
    elif not significant:
        verdict = "chance"
    else:
        verdict = "partial"

    return AttackReport(
        workload=workload.name,
        attacker=attacker.name,
        channel=attacker.channel,
        mode=mode,
        engine=engine,
        trials=spec.trials,
        seed=spec.seed,
        key_bits=key_bits,
        reps=reps,
        candidates=len(candidates),
        pair=[repr(candidates[pair_idx[0]]), repr(candidates[pair_idx[1]])],
        success_rate=success_rate,
        bits_total=key_bits,
        bits_recovered=bits_recovered,
        p_value=p_value,
        statistic=float(statistic),
        stat_kind=stat_kind,
        profiled_mi=mutual_information_bits(observables),
        verdict=verdict,
    )


def _choose_pair(attacker: Attacker, observables: list) -> tuple[int, int]:
    """Indices of the two most distinguishable profiled secrets.

    Scalar channels maximize the template separation; categorical
    channels take the first differing pair.  When nothing differs (the
    SeMPE machine) the first two candidates stand in — the attack
    proceeds and honestly degenerates to guessing.
    """
    n = len(observables)
    if n < 2:
        raise ValueError("attacks need at least two candidate secrets")
    if attacker.scalar:
        best, best_gap = (0, 1), -1.0
        for i in range(n):
            for j in range(i + 1, n):
                gap = abs(float(observables[i]) - float(observables[j]))
                if gap > best_gap:
                    best, best_gap = (i, j), gap
        return best
    for i in range(n):
        for j in range(i + 1, n):
            if observation_key(observables[i]) != observation_key(
                    observables[j]):
                return (i, j)
    return (0, 1)


# --------------------------------------------------------------------------
# Concrete adversaries
# --------------------------------------------------------------------------


class TimingAttacker(Attacker):
    """End-to-end execution time with Gaussian measurement jitter —
    the classic remote-timing adversary (Fig. 1's attack, made noisy)."""

    name = "timing"
    channel = "timing"
    scalar = True
    description = "end-to-end cycles, Gaussian jitter, Welch t-test"

    def observable(self, trace: ObservationTrace) -> object:
        return trace.cycles


class BranchTraceAttacker(Attacker):
    """Committed control-flow reconstruction (shared fetch engine /
    port-contention probe): the observable is the victim's PC stream."""

    name = "branch-trace"
    channel = "control-flow"
    scalar = False
    description = "committed PC-stream digest distinguisher"

    def observable(self, trace: ObservationTrace) -> object:
        return trace.pc_digest


class PrimeProbeAttacker(Attacker):
    """Prime-and-probe cache residue: the attacker primes every set,
    runs the victim, and probes how many of its primed ways each set
    evicted — exactly the per-set occupancy vector, a strictly weaker
    view than the full tag state the noninterference channel compares
    (the attacker cannot read the victim's tags, only count its own
    missing lines)."""

    name = "prime-probe"
    channel = "cache-state"
    scalar = False
    description = "post-run per-set cache occupancy (evicted primed ways)"

    def observable(self, trace: ObservationTrace) -> object:
        return trace.cache_occupancy


class FlushReloadAttacker(Attacker):
    """Flush-and-reload on the shared data lines: the attacker observes
    the victim's line-granular access stream."""

    name = "flush-reload"
    channel = "memory-address"
    scalar = False
    description = "line-granular data-access stream probe"

    def observable(self, trace: ObservationTrace) -> object:
        return tuple(trace.mem_addresses)


class PredictorProbeAttacker(Attacker):
    """Branch-predictor residue: the attacker measures its own branches
    after the victim ran, reading the trained predictor state."""

    name = "predictor-probe"
    channel = "branch-predictor"
    scalar = False
    description = "post-run branch-predictor state distinguisher"

    def observable(self, trace: ObservationTrace) -> object:
        return trace.predictor_digest


class MistrainReloadAttacker(Attacker):
    """Mistraining plus flush-reload on the wrong path: the adversary
    biases the predictor toward a bounds check's in-bounds direction
    (the spectre victim compiles the training schedule in), then
    flush-reloads the shared lines the *squashed* path touched.  The
    observable is the transient-access digest — the line-granular
    record of wrong-path loads and stores, which the squash does not
    undo.  Only defined on machines with a speculation window
    (:func:`execute_attack` enables one automatically)."""

    name = "mistrain-reload"
    channel = "transient-memory"
    scalar = False
    description = "predictor mistraining + wrong-path flush-reload probe"

    def observable(self, trace: ObservationTrace) -> object:
        return trace.transient_digest


ATTACKERS: dict[str, Attacker] = {
    attacker.name: attacker
    for attacker in (
        TimingAttacker(),
        BranchTraceAttacker(),
        PrimeProbeAttacker(),
        FlushReloadAttacker(),
        PredictorProbeAttacker(),
        MistrainReloadAttacker(),
    )
}


def attacker_names() -> list[str]:
    return sorted(ATTACKERS)


def get_attacker(name: str) -> Attacker:
    attacker = ATTACKERS.get(name)
    if attacker is None:
        raise ValueError(
            f"unknown attacker {name!r}; choose from {sorted(ATTACKERS)}")
    return attacker


def iter_attackers() -> list[Attacker]:
    return [ATTACKERS[name] for name in sorted(ATTACKERS)]


def applicable_attackers(spec: WorkloadSpec | str) -> list[str]:
    """Attacker names whose channel the workload declares."""
    if isinstance(spec, str):
        spec = get_workload(spec)
    return [attacker.name for attacker in iter_attackers()
            if attacker.applies_to(spec)]


def expected_verdict(attacker: "Attacker | str",
                     defense: DefenseSpec | str) -> str | None:
    """What the attack matrix expects from one (attacker, defense) cell.

    ``"recovered"`` on the unprotected baseline, ``"chance"`` when the
    defense declares the attacker's channel protected, and ``None``
    when the scheme makes no claim about that channel (the cell is
    informative, not a pass/fail gate).
    """
    if isinstance(attacker, str):
        attacker = get_attacker(attacker)
    if isinstance(defense, str):
        defense = get_defense(defense)
    if defense.name == "plain":
        return "recovered"
    if defense.protects_channel(attacker.channel):
        return "chance"
    return None
