"""Semantic checks: name resolution, shapes, arity.

mini-C restrictions enforced here (documented in the package docstring):

* local names are unique within a function (no shadowing) — this keeps
  the taint analysis and the SeMPE/CTE transforms simple and is easy to
  satisfy in generated code;
* arrays are used only as ``a[i]`` or passed whole as call arguments;
* scalars are never indexed;
* calls reference defined functions with matching arity and array-ness.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang import ast
from repro.lang.errors import CompileError


@dataclass
class FuncInfo:
    """Per-function symbol information collected by :func:`check`."""

    name: str
    params: list[ast.Param]
    locals_: dict[str, bool] = field(default_factory=dict)  # name -> is_array
    returns_value: bool = False


@dataclass
class ModuleInfo:
    """Module-level symbol information."""

    globals_: dict[str, bool] = field(default_factory=dict)  # name -> is_array
    secret_globals: set[str] = field(default_factory=set)
    funcs: dict[str, FuncInfo] = field(default_factory=dict)

    def is_array(self, func: FuncInfo, name: str) -> bool:
        if name in func.locals_:
            return func.locals_[name]
        if name in self.globals_:
            return self.globals_[name]
        raise KeyError(name)

    def is_defined(self, func: FuncInfo, name: str) -> bool:
        return name in func.locals_ or name in self.globals_


def check(module: ast.Module) -> ModuleInfo:
    """Validate *module*; returns symbol info or raises CompileError."""
    info = ModuleInfo()
    for decl in module.globals:
        if decl.name in info.globals_:
            raise CompileError(f"duplicate global {decl.name!r}", line=decl.line)
        info.globals_[decl.name] = decl.size is not None
        if decl.is_secret:
            info.secret_globals.add(decl.name)
        if decl.is_secret and decl.size is not None and not decl.init_values:
            # Secret arrays are fine; just note they default to zeros.
            pass

    for func in module.funcs:
        if func.name in info.funcs:
            raise CompileError(f"duplicate function {func.name!r}", line=func.line)
        if func.name in info.globals_:
            raise CompileError(
                f"function {func.name!r} collides with a global", line=func.line
            )
        func_info = FuncInfo(func.name, func.params,
                             returns_value=func.returns_value)
        for param in func.params:
            if param.name in func_info.locals_:
                raise CompileError(
                    f"duplicate parameter {param.name!r}", line=func.line
                )
            func_info.locals_[param.name] = param.is_array
        info.funcs[func.name] = func_info

    if "main" not in info.funcs:
        raise CompileError("no main() function")
    if info.funcs["main"].params:
        raise CompileError("main() must take no parameters")

    for func in module.funcs:
        _check_func(module, info, func)
    return info


def _check_func(module: ast.Module, info: ModuleInfo, func: ast.Func) -> None:
    func_info = info.funcs[func.name]

    # Collect locals first (uniqueness), then resolve uses.
    for stmt in ast.walk_stmts(func.body):
        if isinstance(stmt, ast.VarDeclStmt):
            if stmt.name in func_info.locals_:
                raise CompileError(
                    f"duplicate local {stmt.name!r} in {func.name!r} "
                    "(mini-C forbids shadowing)",
                    line=stmt.line,
                )
            func_info.locals_[stmt.name] = stmt.size is not None
        elif isinstance(stmt, ast.For) and stmt.declares:
            if stmt.var in func_info.locals_:
                raise CompileError(
                    f"duplicate loop counter {stmt.var!r} in {func.name!r}",
                    line=stmt.line,
                )
            func_info.locals_[stmt.var] = False

    for stmt in ast.walk_stmts(func.body):
        for expr in ast.stmt_exprs(stmt):
            _check_expr(info, func_info, expr)
        if isinstance(stmt, ast.Return):
            if stmt.value is not None and not func.returns_value:
                raise CompileError(
                    f"void function {func.name!r} returns a value", line=stmt.line
                )
            if stmt.value is None and func.returns_value:
                raise CompileError(
                    f"function {func.name!r} must return a value", line=stmt.line
                )
        if isinstance(stmt, ast.Assign):
            target = stmt.target
            if isinstance(target, ast.Var):
                if info.is_array(func_info, target.name):
                    raise CompileError(
                        f"cannot assign whole array {target.name!r}",
                        line=stmt.line,
                    )


def _check_expr(info: ModuleInfo, func_info: FuncInfo, expr: ast.Expr) -> None:
    for node in ast.walk_exprs(expr):
        if isinstance(node, ast.Var):
            if not info.is_defined(func_info, node.name):
                raise CompileError(f"undefined name {node.name!r}", line=node.line)
        elif isinstance(node, ast.Index):
            if not info.is_defined(func_info, node.name):
                raise CompileError(f"undefined name {node.name!r}", line=node.line)
            if not info.is_array(func_info, node.name):
                raise CompileError(
                    f"{node.name!r} is a scalar, cannot index", line=node.line
                )
        elif isinstance(node, ast.Call):
            callee = info.funcs.get(node.name)
            if callee is None:
                raise CompileError(
                    f"call to undefined function {node.name!r}", line=node.line
                )
            if len(node.args) != len(callee.params):
                raise CompileError(
                    f"{node.name!r} expects {len(callee.params)} args, "
                    f"got {len(node.args)}",
                    line=node.line,
                )
            for arg, param in zip(node.args, callee.params):
                arg_is_array = (
                    isinstance(arg, ast.Var)
                    and info.is_defined(func_info, arg.name)
                    and info.is_array(func_info, arg.name)
                )
                if param.is_array and not arg_is_array:
                    raise CompileError(
                        f"argument for array parameter {param.name!r} "
                        "must be an array name",
                        line=node.line,
                    )
                if not param.is_array and arg_is_array:
                    raise CompileError(
                        f"array {getattr(arg, 'name', '?')!r} passed to "
                        f"scalar parameter {param.name!r}",
                        line=node.line,
                    )

    # Whole-array Var references are only legal as call arguments.
    _check_bare_arrays(info, func_info, expr, allow=False)


def _check_bare_arrays(info: ModuleInfo, func_info: FuncInfo,
                       expr: ast.Expr, allow: bool) -> None:
    if isinstance(expr, ast.Var):
        if info.is_defined(func_info, expr.name) and \
                info.is_array(func_info, expr.name) and not allow:
            raise CompileError(
                f"array {expr.name!r} used as a scalar value", line=expr.line
            )
        return
    if isinstance(expr, ast.Call):
        for arg in expr.args:
            _check_bare_arrays(info, func_info, arg, allow=True)
        return
    if isinstance(expr, ast.Unary):
        _check_bare_arrays(info, func_info, expr.operand, allow=False)
    elif isinstance(expr, ast.Binary):
        _check_bare_arrays(info, func_info, expr.left, allow=False)
        _check_bare_arrays(info, func_info, expr.right, allow=False)
    elif isinstance(expr, ast.Index):
        _check_bare_arrays(info, func_info, expr.index, allow=False)
    elif isinstance(expr, ast.Cmov):
        _check_bare_arrays(info, func_info, expr.cond, allow=False)
        _check_bare_arrays(info, func_info, expr.if_true, allow=False)
        _check_bare_arrays(info, func_info, expr.if_false, allow=False)
