"""Compiler driver: source text -> sealed program."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.program import Program
from repro.lang import ast
from repro.lang.codegen import generate
from repro.lang.errors import CompileError
from repro.lang.parser import parse
from repro.lang.taint import TaintInfo, analyze_taint
from repro.lang.transform_cte import transform_cte
from repro.lang.transform_fence import transform_fence
from repro.lang.transform_sempe import transform_sempe

MODES = ("plain", "sempe", "cte", "fence")


@dataclass
class CompiledProgram:
    """A compiled unit plus the metadata experiments need."""

    program: Program
    module: ast.Module
    taint: TaintInfo
    mode: str
    secrets: dict[str, int] = field(default_factory=dict)  # name -> address

    @property
    def secret_names(self) -> list[str]:
        return sorted(self.secrets)


def compile_source(source: str, mode: str = "sempe",
                   name: str | None = None,
                   collapse_ifs: bool = False) -> CompiledProgram:
    """Compile mini-C *source* in the given *mode*.

    Modes: ``plain`` (insecure baseline), ``sempe`` (secure branches +
    ShadowMemory), ``cte`` (FaCT-like constant-time expressions),
    ``fence`` (secret branches marked with the SecPrefix for a
    serializing machine, otherwise identical to ``plain``).

    ``collapse_ifs=True`` enables the paper's §IV-E nesting-reduction
    optimization (``if (A) { if (B) ... }`` becomes ``if (A && B)``),
    lowering jbTable pressure and drain counts.
    """
    if mode not in MODES:
        raise CompileError(f"unknown mode {mode!r}; expected one of {MODES}")
    module = parse(source)
    if collapse_ifs:
        from repro.lang.optimize import collapse_nested_ifs

        module = collapse_nested_ifs(module)
    taint = analyze_taint(module, mode)
    if mode == "sempe":
        transformed = transform_sempe(module, taint)
    elif mode == "cte":
        transformed = transform_cte(module, taint)
    elif mode == "fence":
        transformed = transform_fence(module, taint)
    else:
        transformed = module
    program = generate(transformed, name=name or f"minic-{mode}")
    secrets = {
        decl.name: program.symbols[decl.name]
        for decl in module.globals
        if decl.is_secret
    }
    return CompiledProgram(
        program=program,
        module=transformed,
        taint=taint,
        mode=mode,
        secrets=secrets,
    )
