"""Code generation: mini-C AST -> repro ISA.

Conventions:

* stack frames: ``[saved ra][12 temp spill slots][locals...]``, 16-byte
  aligned, addressed sp-relative (no frame pointer — no dynamic allocas);
* arguments in ``a0..a5``, result in ``a0``; all temporaries are
  caller-saved (spilled around calls);
* expression evaluation uses a 12-register temporary pool
  (``t0..t5, x4..x9``) with dedicated spill slots;
* logical operators are compiled *branch-free* (normalised with SLTU and
  combined with AND/OR) so the compiler never reintroduces hidden
  secret-dependent branches — the pitfall the paper warns CTE code
  reviewers about;
* secure ``if`` statements (marked by the SeMPE pass) compile to a
  SecPrefix'ed branch with an ``eosJMP`` at the join point;
* ``Cmov`` expressions compile to the CMOV instruction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.builder import ProgramBuilder
from repro.isa.opcodes import Op
from repro.isa.program import Program
from repro.isa.registers import (
    A0, RA, SP, T0, T1, T2, T3, T4, T5, ZERO,
)
from repro.lang import ast
from repro.lang.errors import CompileError
from repro.lang.sema import ModuleInfo, check

_POOL_REGS = [T0, T1, T2, T3, T4, T5, 4, 5, 6, 7, 8, 9]
_ARG_REGS = [10, 11, 12, 13, 14, 15]   # a0..a5
_MAX_ARGS = len(_ARG_REGS)


class _RegPool:
    """Temporary-register allocator with dedicated spill slots."""

    def __init__(self) -> None:
        self.free = list(_POOL_REGS)
        self.in_use: list[int] = []

    def alloc(self) -> int:
        if not self.free:
            raise CompileError(
                "expression too complex (temporary register pool exhausted)"
            )
        reg = self.free.pop(0)
        self.in_use.append(reg)
        return reg

    def release(self, reg: int) -> None:
        if reg in self.in_use:
            self.in_use.remove(reg)
            self.free.insert(0, reg)

    def live(self) -> list[int]:
        return list(self.in_use)


@dataclass
class _Slot:
    offset: int
    is_array: bool
    size: int          # quads
    is_array_param: bool = False


class _FuncGen:
    """Code generator for one function."""

    def __init__(self, module_info: ModuleInfo, builder: ProgramBuilder,
                 func: ast.Func) -> None:
        self.info = module_info
        self.builder = builder
        self.func = func
        self.pool = _RegPool()
        self.slots: dict[str, _Slot] = {}
        self.frame_size = 0
        self.epilogue_label = builder.fresh_label(f"ret_{func.name}_")
        self._layout_frame()

    # -- frame layout -----------------------------------------------------------

    def _layout_frame(self) -> None:
        offset = 8  # 0 holds the saved ra
        self._spill_base = offset
        offset += 8 * len(_POOL_REGS)
        for param in self.func.params:
            self.slots[param.name] = _Slot(offset, param.is_array, 1,
                                           is_array_param=param.is_array)
            offset += 8
        for stmt in ast.walk_stmts(self.func.body):
            if isinstance(stmt, ast.VarDeclStmt):
                size = stmt.size if stmt.size is not None else 1
                self.slots[stmt.name] = _Slot(offset, stmt.size is not None,
                                              size)
                offset += 8 * size
            elif isinstance(stmt, ast.For) and stmt.declares:
                self.slots[stmt.var] = _Slot(offset, False, 1)
                offset += 8
        self.frame_size = (offset + 15) // 16 * 16

    def _spill_slot(self, reg: int) -> int:
        return self._spill_base + 8 * _POOL_REGS.index(reg)

    # -- entry ---------------------------------------------------------------------

    def generate(self) -> None:
        builder = self.builder
        builder.set_line(self.func.line)
        builder.label(self.func.name)
        builder.op(Op.ADDI, rd=SP, rs1=SP, imm=-self.frame_size,
                   comment=f"enter {self.func.name}")
        builder.op(Op.ST, rs1=SP, rs2=RA, imm=0)
        for index, param in enumerate(self.func.params):
            if index >= _MAX_ARGS:
                raise CompileError(
                    f"{self.func.name!r} has too many parameters",
                    line=self.func.line,
                )
            builder.op(Op.ST, rs1=SP, rs2=_ARG_REGS[index],
                       imm=self.slots[param.name].offset,
                       comment=f"param {param.name}")
        self.gen_stmt(self.func.body)
        builder.label(self.epilogue_label)
        if self.func.name == "main":
            builder.halt()
            return
        builder.op(Op.LD, rd=RA, rs1=SP, imm=0)
        builder.op(Op.ADDI, rd=SP, rs1=SP, imm=self.frame_size)
        builder.op(Op.JALR, rd=ZERO, rs1=RA, comment=f"return {self.func.name}")

    # -- statements -----------------------------------------------------------------

    def gen_stmt(self, stmt: ast.Stmt) -> None:
        builder = self.builder
        if stmt.line:
            # Debug map: stamp the emitted instructions with the source
            # line.  Synthesized nodes (line 0, e.g. defense-transform
            # scaffolding) inherit the enclosing statement's line.
            builder.set_line(stmt.line)
        if isinstance(stmt, ast.Block):
            for child in stmt.stmts:
                self.gen_stmt(child)
        elif isinstance(stmt, ast.VarDeclStmt):
            if stmt.init is not None:
                reg = self.gen_expr(stmt.init)
                self._store_scalar(stmt.name, reg)
                self.pool.release(reg)
        elif isinstance(stmt, ast.Assign):
            self.gen_assign(stmt)
        elif isinstance(stmt, ast.If):
            self.gen_if(stmt)
        elif isinstance(stmt, ast.While):
            head = builder.fresh_label("wh")
            end = builder.fresh_label("we")
            builder.label(head)
            cond = self.gen_expr(stmt.cond)
            builder.branch(Op.BEQ, cond, ZERO, end)
            self.pool.release(cond)
            self.gen_stmt(stmt.body)
            builder.jmp(head)
            builder.label(end)
        elif isinstance(stmt, ast.For):
            self.gen_for(stmt)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                reg = self.gen_expr(stmt.value)
                builder.op(Op.ADDI, rd=A0, rs1=reg, imm=0)
                self.pool.release(reg)
            builder.jmp(self.epilogue_label)
        elif isinstance(stmt, ast.ExprStmt):
            reg = self.gen_expr(stmt.expr)
            self.pool.release(reg)
        else:  # pragma: no cover - defensive
            raise CompileError(f"unhandled statement {type(stmt).__name__}")

    def gen_assign(self, stmt: ast.Assign) -> None:
        value = self.gen_expr(stmt.value)
        target = stmt.target
        if isinstance(target, ast.Var):
            self._store_scalar(target.name, value)
        else:
            addr = self._element_address(target)
            self.builder.op(Op.ST, rs1=addr, rs2=value, imm=0)
            self.pool.release(addr)
        self.pool.release(value)

    def gen_if(self, stmt: ast.If) -> None:
        builder = self.builder
        else_label = builder.fresh_label("ie")
        join_label = builder.fresh_label("ij")
        cond = self.gen_expr(stmt.cond)
        builder.branch(Op.BEQ, cond, ZERO, else_label, secure=stmt.secure)
        self.pool.release(cond)
        self.gen_stmt(stmt.then)
        builder.jmp(join_label)
        builder.label(else_label)
        if stmt.els is not None:
            self.gen_stmt(stmt.els)
        builder.label(join_label)
        if stmt.secure:
            builder.eosjmp(comment="join of secure region")

    def gen_for(self, stmt: ast.For) -> None:
        builder = self.builder
        head = builder.fresh_label("fh")
        end = builder.fresh_label("fe")
        init = self.gen_expr(stmt.init)
        self._store_scalar(stmt.var, init)
        self.pool.release(init)
        builder.label(head)
        cond = self.gen_expr(
            ast.Binary(stmt.bound_op, ast.Var(stmt.var), stmt.bound,
                       line=stmt.line)
        )
        builder.branch(Op.BEQ, cond, ZERO, end)
        self.pool.release(cond)
        self.gen_stmt(stmt.body)
        step = self.gen_expr(stmt.step)
        self._store_scalar(stmt.var, step)
        self.pool.release(step)
        builder.jmp(head)
        builder.label(end)

    # -- lvalues ---------------------------------------------------------------------

    def _store_scalar(self, name: str, reg: int) -> None:
        builder = self.builder
        slot = self.slots.get(name)
        if slot is not None:
            builder.op(Op.ST, rs1=SP, rs2=reg, imm=slot.offset,
                       comment=f"{name} =")
            return
        addr = self.pool.alloc()
        builder.la(addr, name)
        builder.op(Op.ST, rs1=addr, rs2=reg, imm=0, comment=f"{name} =")
        self.pool.release(addr)

    def _load_scalar(self, name: str) -> int:
        builder = self.builder
        reg = self.pool.alloc()
        slot = self.slots.get(name)
        if slot is not None:
            builder.op(Op.LD, rd=reg, rs1=SP, imm=slot.offset,
                       comment=f"read {name}")
            return reg
        builder.la(reg, name)
        builder.op(Op.LD, rd=reg, rs1=reg, imm=0, comment=f"read {name}")
        return reg

    def _array_base(self, name: str) -> int:
        """Register holding the byte address of array *name*'s element 0."""
        builder = self.builder
        reg = self.pool.alloc()
        slot = self.slots.get(name)
        if slot is None:
            builder.la(reg, name)
        elif slot.is_array_param:
            builder.op(Op.LD, rd=reg, rs1=SP, imm=slot.offset,
                       comment=f"array param {name}")
        else:
            builder.op(Op.ADDI, rd=reg, rs1=SP, imm=slot.offset,
                       comment=f"&{name}")
        return reg

    def _element_address(self, node: ast.Index) -> int:
        builder = self.builder
        index = self.gen_expr(node.index)
        builder.op(Op.SLLI, rd=index, rs1=index, imm=3)
        base = self._array_base(node.name)
        builder.op(Op.ADD, rd=index, rs1=index, rs2=base)
        self.pool.release(base)
        return index

    # -- expressions -----------------------------------------------------------------

    def gen_expr(self, expr: ast.Expr) -> int:
        builder = self.builder
        if expr.line:
            builder.set_line(expr.line)
        if isinstance(expr, ast.Num):
            reg = self.pool.alloc()
            value = expr.value
            if -(1 << 31) <= value < (1 << 31):
                builder.op(Op.ADDI, rd=reg, rs1=ZERO, imm=value)
            else:
                builder.op(Op.ADDI, rd=reg, rs1=ZERO, imm=value >> 32)
                builder.op(Op.SLLI, rd=reg, rs1=reg, imm=32)
                low = self.pool.alloc()
                builder.op(Op.ADDI, rd=low, rs1=ZERO,
                           imm=value & 0xFFFF_FFFF)
                builder.op(Op.OR, rd=reg, rs1=reg, rs2=low)
                self.pool.release(low)
            return reg
        if isinstance(expr, ast.Var):
            return self._load_scalar(expr.name)
        if isinstance(expr, ast.Index):
            addr = self._element_address(expr)
            builder.op(Op.LD, rd=addr, rs1=addr, imm=0,
                       comment=f"read {expr.name}[]")
            return addr
        if isinstance(expr, ast.Unary):
            return self.gen_unary(expr)
        if isinstance(expr, ast.Binary):
            return self.gen_binary(expr)
        if isinstance(expr, ast.Call):
            return self.gen_call(expr)
        if isinstance(expr, ast.Cmov):
            result = self.gen_expr(expr.if_false)
            if_true = self.gen_expr(expr.if_true)
            cond = self.gen_expr(expr.cond)
            builder.op(Op.CMOV, rd=result, rs1=if_true, rs2=cond,
                       comment="constant-time select")
            self.pool.release(if_true)
            self.pool.release(cond)
            return result
        raise CompileError(f"unhandled expression {type(expr).__name__}")

    def gen_unary(self, expr: ast.Unary) -> int:
        builder = self.builder
        operand = self.gen_expr(expr.operand)
        if expr.op == "-":
            builder.op(Op.SUB, rd=operand, rs1=ZERO, rs2=operand)
        elif expr.op == "~":
            builder.op(Op.XORI, rd=operand, rs1=operand, imm=-1)
        elif expr.op == "!":
            builder.op(Op.SLTU, rd=operand, rs1=ZERO, rs2=operand)
            builder.op(Op.XORI, rd=operand, rs1=operand, imm=1)
        else:  # pragma: no cover - parser restricts
            raise CompileError(f"unknown unary operator {expr.op!r}")
        return operand

    _SIMPLE_BINOPS = {
        "+": Op.ADD, "-": Op.SUB, "*": Op.MUL, "/": Op.DIV, "%": Op.REM,
        "&": Op.AND, "|": Op.OR, "^": Op.XOR, "<<": Op.SLL, ">>": Op.SRL,
    }

    def gen_binary(self, expr: ast.Binary) -> int:
        builder = self.builder
        op = expr.op
        left = self.gen_expr(expr.left)
        right = self.gen_expr(expr.right)
        if op in self._SIMPLE_BINOPS:
            builder.op(self._SIMPLE_BINOPS[op], rd=left, rs1=left, rs2=right)
        elif op == "<":
            builder.op(Op.SLT, rd=left, rs1=left, rs2=right)
        elif op == ">":
            builder.op(Op.SLT, rd=left, rs1=right, rs2=left)
        elif op == "<=":
            builder.op(Op.SLT, rd=left, rs1=right, rs2=left)
            builder.op(Op.XORI, rd=left, rs1=left, imm=1)
        elif op == ">=":
            builder.op(Op.SLT, rd=left, rs1=left, rs2=right)
            builder.op(Op.XORI, rd=left, rs1=left, imm=1)
        elif op == "==":
            builder.op(Op.XOR, rd=left, rs1=left, rs2=right)
            builder.op(Op.SLTU, rd=left, rs1=ZERO, rs2=left)
            builder.op(Op.XORI, rd=left, rs1=left, imm=1)
        elif op == "!=":
            builder.op(Op.XOR, rd=left, rs1=left, rs2=right)
            builder.op(Op.SLTU, rd=left, rs1=ZERO, rs2=left)
        elif op == "&&":
            # Branch-free logical and: (l != 0) & (r != 0).
            builder.op(Op.SLTU, rd=left, rs1=ZERO, rs2=left)
            builder.op(Op.SLTU, rd=right, rs1=ZERO, rs2=right)
            builder.op(Op.AND, rd=left, rs1=left, rs2=right)
        elif op == "||":
            builder.op(Op.OR, rd=left, rs1=left, rs2=right)
            builder.op(Op.SLTU, rd=left, rs1=ZERO, rs2=left)
        else:  # pragma: no cover - parser restricts
            raise CompileError(f"unknown binary operator {op!r}")
        self.pool.release(right)
        return left

    def gen_call(self, expr: ast.Call) -> int:
        builder = self.builder
        if len(expr.args) > _MAX_ARGS:
            raise CompileError(f"too many arguments to {expr.name!r}",
                               line=expr.line)
        callee = self.info.funcs[expr.name]
        arg_regs: list[int] = []
        for arg, param in zip(expr.args, callee.params):
            if param.is_array:
                arg_regs.append(self._array_base(arg.name))
            else:
                arg_regs.append(self.gen_expr(arg))

        # Spill every live temporary (caller-saved discipline).
        live = self.pool.live()
        for reg in live:
            builder.op(Op.ST, rs1=SP, rs2=reg, imm=self._spill_slot(reg),
                       comment="spill across call")
        for index, reg in enumerate(arg_regs):
            builder.op(Op.ADDI, rd=_ARG_REGS[index], rs1=reg, imm=0)
            self.pool.release(reg)
        builder.op(Op.JAL, rd=RA, label=expr.name, comment=f"call {expr.name}")
        # Restore the temporaries that remain live.
        for reg in self.pool.live():
            builder.op(Op.LD, rd=reg, rs1=SP, imm=self._spill_slot(reg),
                       comment="restore after call")
        result = self.pool.alloc()
        builder.op(Op.ADDI, rd=result, rs1=A0, imm=0)
        return result


def generate(module: ast.Module, name: str = "program") -> Program:
    """Generate a sealed :class:`Program` from a (transformed) module."""
    info = check(module)
    builder = ProgramBuilder(name=name)
    for decl in module.globals:
        values = list(decl.init_values)
        size = decl.size if decl.size is not None else 1
        if len(values) < size:
            values.extend([0] * (size - len(values)))
        builder.data_quads(decl.name, values)
    # main() first so the entry point is instruction 0 of the image.
    funcs = sorted(module.funcs, key=lambda f: f.name != "main")
    for func in funcs:
        _FuncGen(info, builder, func).generate()
    return builder.build(entry="main")
