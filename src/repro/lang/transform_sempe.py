"""The SeMPE compilation pass.

For every secret-dependent ``if`` (as labelled by the taint analysis):

1. the condition is normalised to a 0/1 temporary *before* the branch
   (the merge after the join needs it, and evaluating it once keeps the
   branch itself a single sJMP);
2. every scalar assigned in either path that is declared *outside* the
   paths is privatized: two shadow copies (``v__ntK`` and ``v__tK``,
   the paper's ShadowMemory) are initialised from ``v`` before the
   branch, and all reads/writes of ``v`` inside the NT/T path are
   redirected to the respective shadow;
3. the ``if`` itself is marked ``secure`` — the code generator emits the
   branch with the SecPrefix and places an ``eosJMP`` at the join;
4. after the join, each privatized scalar is merged back with a
   constant-time CMOV: ``v = cond ? v__tK : v__ntK``.

Nested secret ``if`` statements are handled by recursion: the inner
transform sees the outer shadows as ordinary outer-declared scalars and
creates second-level shadows for them.
"""

from __future__ import annotations

import itertools

from collections.abc import Iterator

from repro.lang import ast
from repro.lang.errors import TaintError
from repro.lang.taint import TaintInfo


def transform_sempe(module: ast.Module, taint: TaintInfo) -> ast.Module:
    """Return a new module with secret ifs lowered to secure regions."""
    counter = itertools.count()
    funcs = [
        ast.Func(
            name=func.name,
            params=func.params,
            body=_Transformer(taint, counter).block(func.body, {}),
            returns_value=func.returns_value,
            line=func.line,
        )
        for func in module.funcs
    ]
    return ast.Module(list(module.globals), funcs)


class _Transformer:
    def __init__(self, taint: TaintInfo,
                 counter: Iterator[int]) -> None:
        self.taint = taint
        self.counter = counter

    # -- statements -----------------------------------------------------------

    def block(self, block: ast.Block, subst: dict[str, str]) -> ast.Block:
        return ast.Block(
            [self.stmt(child, subst) for child in block.stmts],
            line=block.line,
        )

    def stmt(self, stmt: ast.Stmt, subst: dict[str, str]) -> ast.Stmt:
        if isinstance(stmt, ast.Block):
            return self.block(stmt, subst)
        if isinstance(stmt, ast.VarDeclStmt):
            return ast.VarDeclStmt(
                stmt.name, stmt.size,
                self.expr(stmt.init, subst) if stmt.init is not None else None,
                line=stmt.line,
            )
        if isinstance(stmt, ast.Assign):
            return ast.Assign(
                self.expr(stmt.target, subst),
                self.expr(stmt.value, subst),
                line=stmt.line,
            )
        if isinstance(stmt, ast.If):
            if self.taint.is_secret_if(stmt):
                return self.secret_if(stmt, subst)
            return ast.If(
                self.expr(stmt.cond, subst),
                self.stmt(stmt.then, subst),
                self.stmt(stmt.els, subst) if stmt.els is not None else None,
                line=stmt.line,
            )
        if isinstance(stmt, ast.While):
            return ast.While(
                self.expr(stmt.cond, subst),
                self.stmt(stmt.body, subst),
                line=stmt.line,
            )
        if isinstance(stmt, ast.For):
            return ast.For(
                var=subst.get(stmt.var, stmt.var),
                declares=stmt.declares,
                init=self.expr(stmt.init, subst),
                bound_op=stmt.bound_op,
                bound=self.expr(stmt.bound, subst),
                step=self.expr(stmt.step, subst),
                body=self.stmt(stmt.body, subst),
                line=stmt.line,
            )
        if isinstance(stmt, ast.Return):
            value = self.expr(stmt.value, subst) if stmt.value is not None else None
            return ast.Return(value, line=stmt.line)
        if isinstance(stmt, ast.ExprStmt):
            return ast.ExprStmt(self.expr(stmt.expr, subst), line=stmt.line)
        raise TaintError(f"unhandled statement {type(stmt).__name__}")

    # -- the secure-region lowering ----------------------------------------------

    def secret_if(self, stmt: ast.If, subst: dict[str, str]) -> ast.Stmt:
        tag = next(self.counter)
        cond_name = f"__sc{tag}"

        assigned = sorted(_assigned_outer_scalars(stmt))

        prologue: list[ast.Stmt] = [
            ast.VarDeclStmt(
                cond_name,
                init=ast.Binary("!=", self.expr(stmt.cond, subst),
                                ast.Num(0), line=stmt.line),
                line=stmt.line,
            )
        ]
        nt_subst = dict(subst)
        t_subst = dict(subst)
        merges: list[ast.Stmt] = []
        for original in assigned:
            # The name the enclosing regions currently map this scalar to
            # (e.g. acc -> acc__nt0 inside an outer NT path).  The new
            # shadows derive from that name, but the substitution must be
            # keyed by the *original* source name, because that is what
            # the path body refers to.
            name = subst.get(original, original)
            nt_name = f"{name}__nt{tag}"
            t_name = f"{name}__t{tag}"
            prologue.append(ast.VarDeclStmt(nt_name, init=ast.Var(name),
                                            line=stmt.line))
            prologue.append(ast.VarDeclStmt(t_name, init=ast.Var(name),
                                            line=stmt.line))
            nt_subst[original] = nt_name
            t_subst[original] = t_name
            # The then-branch is the fall-through (NT) path: a true
            # condition means the NT shadow holds the correct value.
            merges.append(ast.Assign(
                ast.Var(name),
                ast.Cmov(ast.Var(cond_name), ast.Var(nt_name), ast.Var(t_name)),
                line=stmt.line,
            ))

        then_body = self.stmt(stmt.then, nt_subst)
        else_body = (
            self.stmt(stmt.els, t_subst) if stmt.els is not None else None
        )
        secure = ast.If(ast.Var(cond_name), then_body, else_body,
                        secure=True, line=stmt.line)
        return ast.Block(prologue + [secure] + merges, line=stmt.line)

    # -- expressions ----------------------------------------------------------------

    def expr(self, expr: ast.Expr, subst: dict[str, str]) -> ast.Expr:
        if isinstance(expr, ast.Num):
            return expr
        if isinstance(expr, ast.Var):
            return ast.Var(subst.get(expr.name, expr.name), line=expr.line)
        if isinstance(expr, ast.Index):
            return ast.Index(subst.get(expr.name, expr.name),
                             self.expr(expr.index, subst), line=expr.line)
        if isinstance(expr, ast.Unary):
            return ast.Unary(expr.op, self.expr(expr.operand, subst),
                             line=expr.line)
        if isinstance(expr, ast.Binary):
            return ast.Binary(expr.op, self.expr(expr.left, subst),
                              self.expr(expr.right, subst), line=expr.line)
        if isinstance(expr, ast.Call):
            return ast.Call(expr.name,
                            [self.expr(arg, subst) for arg in expr.args],
                            line=expr.line)
        if isinstance(expr, ast.Cmov):
            return ast.Cmov(self.expr(expr.cond, subst),
                            self.expr(expr.if_true, subst),
                            self.expr(expr.if_false, subst), line=expr.line)
        raise TaintError(f"unhandled expression {type(expr).__name__}")


def _assigned_outer_scalars(stmt: ast.If) -> set[str]:
    """Scalars assigned in either path but declared outside the paths.

    Array writes to outer arrays were already rejected by the taint
    enforcement; path-local declarations (including for-loop counters)
    need no privatization because both paths always execute.
    """
    assigned: set[str] = set()
    declared: set[str] = set()
    for path in (stmt.then, stmt.els):
        if path is None:
            continue
        for child in ast.walk_stmts(path):
            if isinstance(child, ast.VarDeclStmt):
                declared.add(child.name)
            elif isinstance(child, ast.For) and child.declares:
                declared.add(child.var)
            elif isinstance(child, ast.Assign):
                if isinstance(child.target, ast.Var):
                    assigned.add(child.target.name)
                # Index targets: path-local arrays only (enforced), so no
                # shadow is needed.
    return assigned - declared
