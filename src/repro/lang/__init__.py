"""mini-C: the source language and compiler of the reproduction.

The paper compiles C with clang, hand-instrumenting SecBlocks with sJMP /
``eosJMP`` and manually privatizing local variables (ShadowMemory +
CMOV).  We reproduce the whole flow with a small C-like language and
three compilation modes:

* ``plain`` — ordinary code generation; secret-dependent branches remain
  normal conditional branches (the vulnerable baseline);
* ``sempe`` — secret-dependent ``if`` statements are compiled to secure
  branches (sJMP) with an ``eosJMP`` join, and scalars assigned inside
  the paths are privatized into per-path shadow copies merged with CMOV
  after the region (the paper's ShadowMemory discipline);
* ``cte`` — the FaCT-like Constant-Time-Expression transformation: every
  secret ``if`` becomes a predication context and every assignment under
  a secret context becomes a select over the full product of enclosing
  condition bits (Fig. 2b of the paper), with FaCT's restrictions (no
  calls / no while-loops / no returns under a secret context).

Example::

    from repro.lang import compile_source

    program = compile_source(SOURCE, mode="sempe")
"""

from repro.lang.errors import CompileError, TaintError
from repro.lang.lexer import tokenize, Token
from repro.lang.parser import parse
from repro.lang.compiler import compile_source, CompiledProgram
from repro.lang.taint import analyze_taint, TaintInfo

__all__ = [
    "CompileError",
    "TaintError",
    "tokenize",
    "Token",
    "parse",
    "compile_source",
    "CompiledProgram",
    "analyze_taint",
    "TaintInfo",
]
