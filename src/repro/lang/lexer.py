"""Tokenizer for mini-C."""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.lang.errors import CompileError

KEYWORDS = {
    "int", "void", "secret", "if", "else", "while", "for", "return",
}

_TOKEN_RE = re.compile(
    r"""
      (?P<ws>\s+)
    | (?P<comment>//[^\n]*|/\*.*?\*/)
    | (?P<num>0[xX][0-9a-fA-F]+|\d+)
    | (?P<name>[A-Za-z_]\w*)
    | (?P<op><<|>>|<=|>=|==|!=|&&|\|\||[-+*/%&|^~!<>=(){}\[\],;])
    """,
    re.VERBOSE | re.DOTALL,
)


@dataclass
class Token:
    kind: str       # 'num' | 'name' | 'keyword' | 'op' | 'eof'
    text: str
    line: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.text!r}, line={self.line})"


def tokenize(source: str) -> list[Token]:
    """Tokenize *source*, raising :class:`CompileError` on bad input."""
    tokens: list[Token] = []
    position = 0
    line = 1
    while position < len(source):
        match = _TOKEN_RE.match(source, position)
        if match is None:
            raise CompileError(
                f"unexpected character {source[position]!r}", line=line
            )
        text = match.group(0)
        kind = match.lastgroup
        if kind == "ws" or kind == "comment":
            line += text.count("\n")
            position = match.end()
            continue
        if kind == "name" and text in KEYWORDS:
            kind = "keyword"
        tokens.append(Token(kind, text, line))
        line += text.count("\n")
        position = match.end()
    tokens.append(Token("eof", "", line))
    return tokens
