"""The fence compilation pass (the classic software mitigation).

Where SeMPE restructures secret-dependent branches into dual-path
secure regions, the fence pass only *marks* them: every secret ``if``
(as labelled by the taint analysis) keeps its single-path lowering but
carries the SecPrefix, so the branch arrives at the timing model with
its ``secure`` bit set.  A fence-aware machine (see
:class:`repro.uarch.pipeline.OutOfOrderPipeline` with ``fence=True``)
serializes at those branches — no prediction, no speculation past the
unresolved condition — which is exactly the ``lfence``-style mitigation
deployed against transient-execution attacks.

The program is functionally identical to the ``plain`` build: on a
machine without the fence hook (or a legacy machine) the marked branch
behaves like an ordinary conditional and the join's ``eosJMP`` decodes
as a NOP, so fence binaries are backward compatible in the same sense
SeMPE binaries are.
"""

from __future__ import annotations

from repro.lang import ast
from repro.lang.taint import TaintInfo


def transform_fence(module: ast.Module, taint: TaintInfo) -> ast.Module:
    """Mark every secret-dependent ``if`` secure, restructuring nothing."""
    for func in module.funcs:
        for stmt in ast.walk_stmts(func.body):
            if isinstance(stmt, ast.If) and taint.is_secret_if(stmt):
                stmt.secure = True
    return module
