"""The fence compilation pass (the classic software mitigation).

Where SeMPE restructures secret-dependent branches into dual-path
secure regions, the fence pass only *marks* them: every secret ``if``
(as labelled by the taint analysis) keeps its single-path lowering but
carries the SecPrefix, so the branch arrives at the timing model with
its ``secure`` bit set.  A fence-aware machine (see
:class:`repro.uarch.pipeline.OutOfOrderPipeline` with ``fence=True``)
serializes at those branches — no prediction, no speculation past the
unresolved condition — which is exactly the ``lfence``-style mitigation
deployed against transient-execution attacks.

The program is functionally identical to the ``plain`` build: on a
machine without the fence hook (or a legacy machine) the marked branch
behaves like an ordinary conditional and the join's ``eosJMP`` decodes
as a NOP, so fence binaries are backward compatible in the same sense
SeMPE binaries are.
"""

from __future__ import annotations

from repro.lang import ast
from repro.lang.taint import TaintInfo


def _guards_double_fetch(stmt: ast.If) -> bool:
    """Whether *stmt* is the bounds check of a double-fetch gadget.

    The bounds-check-bypass pattern: the guarded body loads through a
    computed index and feeds the loaded value into a second array
    index.  On a machine with a speculation window a mistrained
    predictor runs that body transiently with the check's *failing*
    index, so the first load reads out of bounds and the second access
    encodes the stolen value in its data line.  Serializing the guard
    (marking it secure) keeps the wrong path from ever issuing the
    first load, which is exactly the deployed ``lfence`` placement.

    The criterion is syntactic but matches the IR-level detector
    (:mod:`repro.analysis.speculative`): a value loaded from an array
    inside the guarded subtree reaching another index inside it, or a
    directly nested index (``probe[table[i]]``).  Plain data-dependent
    ifs — compare-and-set bodies, accumulations — never trip it, so
    gadget-free programs compile byte-identically to before.
    """
    loaded: set[str] = set()
    for sub in ast.walk_stmts(stmt):
        for expr in ast.stmt_exprs(sub):
            if isinstance(sub, ast.Assign) and expr is sub.target:
                if isinstance(expr, ast.Var) and any(
                        isinstance(e, ast.Index)
                        for e in ast.walk_exprs(sub.value)):
                    loaded.add(expr.name)
                continue
            if isinstance(sub, ast.VarDeclStmt) and any(
                    isinstance(e, ast.Index)
                    for e in ast.walk_exprs(expr)):
                loaded.add(sub.name)
    for sub in ast.walk_stmts(stmt):
        for expr in ast.stmt_exprs(sub):
            for node in ast.walk_exprs(expr):
                if not isinstance(node, ast.Index):
                    continue
                for inner in ast.walk_exprs(node.index):
                    if isinstance(inner, ast.Index):
                        return True
                    if isinstance(inner, ast.Var) and inner.name in loaded:
                        return True
    return False


def transform_fence(module: ast.Module, taint: TaintInfo) -> ast.Module:
    """Mark secret ``if``s and double-fetch guards secure; restructure
    nothing."""
    for func in module.funcs:
        for stmt in ast.walk_stmts(func.body):
            if not isinstance(stmt, ast.If):
                continue
            if taint.is_secret_if(stmt) or _guards_double_fetch(stmt):
                stmt.secure = True
    return module
