"""The Constant-Time-Expression (FaCT-like) pass — the CTE baseline.

Secret ``if`` statements become *predication contexts*: a fresh 0/1
temporary ``b`` captures the condition, the then-branch is transformed
under the factor ``b`` and the else-branch under ``(1 - b)``, and both
are emitted unconditionally (straight-line).  Every assignment under a
secret context becomes a select over the **full product** of enclosing
factors, mirroring the paper's Fig. 2b where each statement spells out
the complete logical combination of the condition bits::

    x = e;      ==>      x = P * (e) + (1 - P) * x;

with ``P = f1 * f2 * ... * fd`` rebuilt inline per assignment.  This is
what makes CTE cost grow super-linearly with nesting depth: at depth
``d`` each original statement pays ``O(d)`` extra multiplies.

Public ``if`` statements inside a secret context remain real branches
(their conditions are public, so they do not leak), but the assignments
inside them still carry the secret product.

``for`` loops keep their public scaffolding (counter updates are not
predicated; FaCT-style public loops), so the loop body executes a
public number of times whatever the secret is.  ``while`` loops, calls
and ``return`` under a secret context were already rejected by the
taint enforcement (FaCT restrictions).
"""

from __future__ import annotations

import itertools

from collections.abc import Iterator

from repro.lang import ast
from repro.lang.errors import TaintError
from repro.lang.taint import TaintInfo


def transform_cte(module: ast.Module, taint: TaintInfo) -> ast.Module:
    """Return a new, straight-line-predicated module."""
    counter = itertools.count()
    funcs = [
        ast.Func(
            name=func.name,
            params=func.params,
            body=_CteTransformer(taint, counter).block(func.body, []),
            returns_value=func.returns_value,
            line=func.line,
        )
        for func in module.funcs
    ]
    return ast.Module(list(module.globals), funcs)


class _CteTransformer:
    def __init__(self, taint: TaintInfo,
                 counter: Iterator[int]) -> None:
        self.taint = taint
        self.counter = counter

    # -- factors -------------------------------------------------------------

    @staticmethod
    def _product(factors: list[ast.Expr]) -> ast.Expr:
        product = factors[0]
        for factor in factors[1:]:
            product = ast.Binary("*", product, _clone(factor))
        return product

    def _predicate(self, target_read: ast.Expr, value: ast.Expr,
                   factors: list[ast.Expr], line: int) -> ast.Expr:
        """Build ``P*(value) + (1-P)*target`` with P rebuilt inline."""
        product = self._product([_clone(f) for f in factors])
        complement = ast.Binary(
            "-", ast.Num(1), self._product([_clone(f) for f in factors])
        )
        return ast.Binary(
            "+",
            ast.Binary("*", product, value, line=line),
            ast.Binary("*", complement, target_read, line=line),
            line=line,
        )

    # -- statements ------------------------------------------------------------

    def block(self, block: ast.Block, factors: list[ast.Expr]) -> ast.Block:
        stmts: list[ast.Stmt] = []
        for child in block.stmts:
            result = self.stmt(child, factors)
            if isinstance(result, list):
                stmts.extend(result)
            else:
                stmts.append(result)
        return ast.Block(stmts, line=block.line)

    def stmt(self, stmt: ast.Stmt, factors: list[ast.Expr],
             ) -> ast.Stmt | list[ast.Stmt]:
        if isinstance(stmt, ast.Block):
            return self.block(stmt, factors)
        if isinstance(stmt, ast.VarDeclStmt):
            # Fresh declaration: the initializer may run unconditionally
            # (the variable did not exist when the predicate is false).
            return stmt
        if isinstance(stmt, ast.Assign):
            if not factors:
                return stmt
            target_read = _clone(stmt.target)
            value = self._predicate(target_read, stmt.value, factors,
                                    stmt.line)
            return ast.Assign(_clone(stmt.target), value, line=stmt.line)
        if isinstance(stmt, ast.If):
            if self.taint.is_secret_if(stmt):
                return self.secret_if(stmt, factors)
            return ast.If(
                stmt.cond,
                self._as_block(self.stmt(stmt.then, factors), stmt.line),
                self._as_block(self.stmt(stmt.els, factors), stmt.line)
                if stmt.els is not None else None,
                line=stmt.line,
            )
        if isinstance(stmt, ast.While):
            if factors:
                raise TaintError(
                    "while-loop inside a CTE secret context", line=stmt.line
                )
            return ast.While(stmt.cond, self._as_block(
                self.stmt(stmt.body, factors), stmt.line), line=stmt.line)
        if isinstance(stmt, ast.For):
            # Loop scaffolding is public: init/step stay unpredicated.
            return ast.For(
                var=stmt.var,
                declares=stmt.declares,
                init=stmt.init,
                bound_op=stmt.bound_op,
                bound=stmt.bound,
                step=stmt.step,
                body=self._as_block(self.stmt(stmt.body, factors), stmt.line),
                line=stmt.line,
            )
        if isinstance(stmt, ast.Return):
            if factors:
                raise TaintError("return inside a CTE secret context",
                                 line=stmt.line)
            return stmt
        if isinstance(stmt, ast.ExprStmt):
            if factors:
                raise TaintError(
                    "side-effecting expression inside a CTE secret context",
                    line=stmt.line,
                )
            return stmt
        raise TaintError(f"unhandled statement {type(stmt).__name__}")

    def secret_if(self, stmt: ast.If,
                  factors: list[ast.Expr]) -> list[ast.Stmt]:
        tag = next(self.counter)
        bit_name = f"__cb{tag}"
        decl = ast.VarDeclStmt(
            bit_name,
            init=ast.Binary("!=", stmt.cond, ast.Num(0), line=stmt.line),
            line=stmt.line,
        )
        then_factors = factors + [ast.Var(bit_name)]
        else_factors = factors + [
            ast.Binary("-", ast.Num(1), ast.Var(bit_name))
        ]
        out: list[ast.Stmt] = [decl]
        out.extend(self._flatten(self.stmt(stmt.then, then_factors)))
        if stmt.els is not None:
            out.extend(self._flatten(self.stmt(stmt.els, else_factors)))
        return out

    @staticmethod
    def _flatten(result: ast.Stmt | list[ast.Stmt]) -> list[ast.Stmt]:
        if isinstance(result, list):
            return result
        if isinstance(result, ast.Block):
            return result.stmts
        return [result]

    @staticmethod
    def _as_block(result: ast.Stmt | list[ast.Stmt],
                  line: int) -> ast.Block:
        if isinstance(result, ast.Block):
            return result
        if isinstance(result, list):
            return ast.Block(result, line=line)
        return ast.Block([result], line=line)


def _clone(expr: ast.Expr) -> ast.Expr:
    """Deep-copy an expression tree."""
    if isinstance(expr, ast.Num):
        return ast.Num(expr.value, line=expr.line)
    if isinstance(expr, ast.Var):
        return ast.Var(expr.name, line=expr.line)
    if isinstance(expr, ast.Index):
        return ast.Index(expr.name, _clone(expr.index), line=expr.line)
    if isinstance(expr, ast.Unary):
        return ast.Unary(expr.op, _clone(expr.operand), line=expr.line)
    if isinstance(expr, ast.Binary):
        return ast.Binary(expr.op, _clone(expr.left), _clone(expr.right),
                          line=expr.line)
    if isinstance(expr, ast.Call):
        return ast.Call(expr.name, [_clone(arg) for arg in expr.args],
                        line=expr.line)
    if isinstance(expr, ast.Cmov):
        return ast.Cmov(_clone(expr.cond), _clone(expr.if_true),
                        _clone(expr.if_false), line=expr.line)
    raise TaintError(f"cannot clone {type(expr).__name__}")
