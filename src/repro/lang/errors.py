"""Compiler diagnostics."""

from __future__ import annotations


class CompileError(Exception):
    """Any front-end or back-end compilation failure."""

    def __init__(self, message: str, line: int | None = None) -> None:
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)
        self.line = line


class TaintError(CompileError):
    """A secret reached a construct the mode cannot protect.

    Mirrors the paper's restrictions: secret-dependent loop bounds,
    returns escaping a secure region, calls inside CTE regions, writes
    to non-path-local arrays inside SeMPE regions, and recursion through
    secure regions deeper than the jbTable.
    """
