"""Secret-taint analysis.

Computes, to a fixpoint, which variables carry secret values and which
``if`` statements therefore have secret-dependent conditions (these are
the branches the SeMPE pass turns into sJMPs and the CTE pass turns into
predication contexts).

Taint rules:

* globals declared ``secret`` are tainted;
* explicit flow — an assignment whose RHS reads a tainted name taints
  the target;
* implicit flow — an assignment under a secret ``if`` taints the target
  *if the target outlives the region*:
  in **SeMPE mode** a variable declared inside the secret path is
  path-local (both paths always execute, so its value within the path
  does not depend on the secret) and is exempt; in **CTE mode** every
  predicated assignment literally mixes the condition bit into the
  value, so all targets are tainted (loop-counter scaffolding of
  ``for`` loops excepted);
* calls — tainted arguments taint parameters; a function whose return
  expression is tainted yields tainted call results.

Mode constraint enforcement (raises :class:`TaintError`):

* secret-dependent ``while`` conditions and ``for`` bounds (all modes
  except ``plain``) — the trip count would leak the secret;
* ``return`` under a secret context (control escape from the region);
* in CTE mode: calls and ``while`` loops under a secret context
  (FaCT's restrictions);
* in SeMPE mode: writes to arrays declared outside the secure path
  (ShadowMemory privatizes scalars; whole-array privatization is
  rejected rather than silently made expensive), array arguments that
  are not path-local, and calls to functions that write globals.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang import ast
from repro.lang.errors import TaintError
from repro.lang.sema import ModuleInfo, check


@dataclass
class TaintInfo:
    """Result of the analysis."""

    tainted: set[tuple[str, str]] = field(default_factory=set)
    secret_ifs: set[int] = field(default_factory=set)        # id(If)
    secret_if_lines: set[int] = field(default_factory=set)   # source lines
    func_return_tainted: set[str] = field(default_factory=set)
    global_writers: set[str] = field(default_factory=set)    # transitively
    module_info: ModuleInfo | None = None

    def is_secret_if(self, node: ast.If) -> bool:
        return id(node) in self.secret_ifs

    def is_tainted(self, func_name: str, name: str) -> bool:
        key = self._key(func_name, name)
        return key in self.tainted

    def _key(self, func_name: str, name: str) -> tuple[str, str]:
        func_info = self.module_info.funcs.get(func_name)
        if func_info is not None and name in func_info.locals_:
            return (func_name, name)
        return ("", name)   # global scope


def analyze_taint(module: ast.Module, mode: str = "sempe") -> TaintInfo:
    """Run the fixpoint analysis and (``sempe``/``cte`` only) the mode
    checks."""
    info = check(module)
    taint = TaintInfo(module_info=info)
    for name in info.secret_globals:
        taint.tainted.add(("", name))

    _compute_global_writers(module, taint)

    changed = True
    iterations = 0
    while changed:
        iterations += 1
        if iterations > 100:  # pragma: no cover - defensive
            raise TaintError("taint analysis failed to converge")
        changed = False
        for func in module.funcs:
            visitor = _FuncVisitor(module, info, taint, func.name, mode)
            visitor.visit_block(func.body, secret_depth=0)
            changed = changed or visitor.changed

    if mode not in ("plain", "fence"):
        # fence marks branches without restructuring, so it compiles
        # exactly what plain compiles: no mode constraints to enforce.
        _enforce(module, info, taint, mode)
        if mode == "sempe":
            _reject_recursive_secure_branches(module, taint)
    return taint


# --------------------------------------------------------------------------
# Fixpoint visitor
# --------------------------------------------------------------------------


class _FuncVisitor:
    def __init__(self, module: ast.Module, info: ModuleInfo, taint: TaintInfo,
                 func_name: str, mode: str) -> None:
        self.module = module
        self.info = info
        self.taint = taint
        self.func_name = func_name
        self.mode = mode
        self.changed = False
        # Names declared at each secret depth; used for the SeMPE
        # path-local exemption.
        self.decl_depth: dict[str, int] = {}
        func_info = info.funcs[func_name]
        for param in func_info.params:
            self.decl_depth[param.name] = 0

    # -- helpers -------------------------------------------------------------

    def _key(self, name: str) -> tuple[str, str]:
        return self.taint._key(self.func_name, name)

    def _is_tainted_name(self, name: str) -> bool:
        return self._key(name) in self.taint.tainted

    def _taint_name(self, name: str) -> None:
        key = self._key(name)
        if key not in self.taint.tainted:
            self.taint.tainted.add(key)
            self.changed = True

    def expr_tainted(self, expr: ast.Expr) -> bool:
        for node in ast.walk_exprs(expr):
            if isinstance(node, (ast.Var, ast.Index)):
                if self._is_tainted_name(node.name):
                    return True
            elif isinstance(node, ast.Call):
                self._propagate_call(node)
                if node.name in self.taint.func_return_tainted:
                    return True
        return False

    def _propagate_call(self, call: ast.Call) -> None:
        callee = self.info.funcs.get(call.name)
        if callee is None:
            return
        for arg, param in zip(call.args, callee.params):
            if self.expr_arg_tainted(arg):
                key = (call.name, param.name)
                if key not in self.taint.tainted:
                    self.taint.tainted.add(key)
                    self.changed = True

    def expr_arg_tainted(self, expr: ast.Expr) -> bool:
        # Like expr_tainted but without re-walking nested calls (they are
        # handled when walk_exprs reaches them via expr_tainted).
        return self.expr_tainted(expr)

    def _context_taints(self, name: str, secret_depth: int) -> bool:
        """Does implicit flow at *secret_depth* taint *name*?"""
        if secret_depth == 0:
            return False
        if self.mode == "cte":
            return True
        declared_at = self.decl_depth.get(name, 0)
        return declared_at < secret_depth

    # -- traversal ----------------------------------------------------------------

    def visit_block(self, block: ast.Block, secret_depth: int) -> None:
        for stmt in block.stmts:
            self.visit_stmt(stmt, secret_depth)

    def visit_stmt(self, stmt: ast.Stmt, secret_depth: int) -> None:
        if isinstance(stmt, ast.Block):
            self.visit_block(stmt, secret_depth)
        elif isinstance(stmt, ast.VarDeclStmt):
            self.decl_depth[stmt.name] = secret_depth
            if stmt.init is not None:
                if self.expr_tainted(stmt.init):
                    self._taint_name(stmt.name)
                elif self._context_taints(stmt.name, secret_depth):
                    # Declared at this depth, so exempt in SeMPE mode;
                    # CTE predication does not predicate fresh-decl inits.
                    pass
        elif isinstance(stmt, ast.Assign):
            target_name = stmt.target.name  # Var or Index both carry .name
            index_tainted = False
            if isinstance(stmt.target, ast.Index):
                # A secret-indexed write taints the whole array: *which*
                # element changed now encodes the secret, so any later
                # read may reveal it (found by the IR-level cross-check,
                # which taints the store's target region the same way).
                index_tainted = self.expr_tainted(stmt.target.index)
            if self.expr_tainted(stmt.value) or index_tainted\
                    or self._context_taints(target_name, secret_depth):
                self._taint_name(target_name)
        elif isinstance(stmt, ast.If):
            secret = self.expr_tainted(stmt.cond)
            if secret:
                self.taint.secret_if_lines.add(stmt.line)
                if id(stmt) not in self.taint.secret_ifs:
                    self.taint.secret_ifs.add(id(stmt))
                    self.changed = True
            depth = secret_depth + (1 if secret else 0)
            self.visit_stmt(stmt.then, depth)
            if stmt.els is not None:
                self.visit_stmt(stmt.els, depth)
        elif isinstance(stmt, ast.While):
            self.expr_tainted(stmt.cond)
            self.visit_stmt(stmt.body, secret_depth)
        elif isinstance(stmt, ast.For):
            if stmt.declares:
                self.decl_depth[stmt.var] = secret_depth
            self.expr_tainted(stmt.init)
            self.expr_tainted(stmt.bound)
            self.expr_tainted(stmt.step)
            self.visit_stmt(stmt.body, secret_depth)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None and self.expr_tainted(stmt.value):
                if self.func_name not in self.taint.func_return_tainted:
                    self.taint.func_return_tainted.add(self.func_name)
                    self.changed = True
        elif isinstance(stmt, ast.ExprStmt):
            self.expr_tainted(stmt.expr)


# --------------------------------------------------------------------------
# Transitive global writers (used by the SeMPE call restriction)
# --------------------------------------------------------------------------


def _compute_global_writers(module: ast.Module, taint: TaintInfo) -> None:
    info = taint.module_info
    direct: set[str] = set()
    calls: dict[str, set[str]] = {}
    for func in module.funcs:
        func_info = info.funcs[func.name]
        callees: set[str] = set()
        for stmt in ast.walk_stmts(func.body):
            if isinstance(stmt, ast.Assign):
                name = stmt.target.name
                if name not in func_info.locals_:
                    direct.add(func.name)
            for expr in ast.stmt_exprs(stmt):
                for node in ast.walk_exprs(expr):
                    if isinstance(node, ast.Call):
                        callees.add(node.name)
        calls[func.name] = callees

    writers = set(direct)
    changed = True
    while changed:
        changed = False
        for func_name, callees in calls.items():
            if func_name not in writers and callees & writers:
                writers.add(func_name)
                changed = True
    taint.global_writers = writers


# --------------------------------------------------------------------------
# Recursion through secure branches (§IV-E: reject at compile time)
# --------------------------------------------------------------------------


def _reject_recursive_secure_branches(module: ast.Module,
                                      taint: TaintInfo) -> None:
    """A recursive function containing a secret branch could nest sJMPs
    to an unbounded depth and overflow the jbTable; the paper's compiler
    rejects this case, and so do we."""
    calls: dict[str, set[str]] = {}
    has_secret_if: set[str] = set()
    for func in module.funcs:
        callees: set[str] = set()
        for stmt in ast.walk_stmts(func.body):
            if isinstance(stmt, ast.If) and taint.is_secret_if(stmt):
                has_secret_if.add(func.name)
            for expr in ast.stmt_exprs(stmt):
                for node in ast.walk_exprs(expr):
                    if isinstance(node, ast.Call):
                        callees.add(node.name)
        calls[func.name] = callees

    def reaches(start: str, goal: str) -> bool:
        seen: set[str] = set()
        frontier = [start]
        while frontier:
            name = frontier.pop()
            if name in seen:
                continue
            seen.add(name)
            for callee in calls.get(name, ()):
                if callee == goal:
                    return True
                frontier.append(callee)
        return False

    for func_name in has_secret_if:
        if reaches(func_name, func_name):
            raise TaintError(
                f"{func_name!r} contains a secret-dependent branch and is "
                "recursive: sJMP nesting would be unbounded (the paper "
                "rejects recursion through secure branches at compile time)"
            )


# --------------------------------------------------------------------------
# Mode constraint enforcement
# --------------------------------------------------------------------------


def _enforce(module: ast.Module, info: ModuleInfo, taint: TaintInfo,
             mode: str) -> None:
    for func in module.funcs:
        _Enforcer(module, info, taint, func.name, mode).run(func.body)


class _Enforcer:
    def __init__(self, module: ast.Module, info: ModuleInfo, taint: TaintInfo,
                 func_name: str, mode: str) -> None:
        self.module = module
        self.info = info
        self.taint = taint
        self.func_name = func_name
        self.mode = mode

    def _tainted_expr(self, expr: ast.Expr) -> bool:
        for node in ast.walk_exprs(expr):
            if isinstance(node, (ast.Var, ast.Index)):
                if self.taint.is_tainted(self.func_name, node.name):
                    return True
            elif isinstance(node, ast.Call):
                if node.name in self.taint.func_return_tainted:
                    return True
        return False

    def run(self, block: ast.Block) -> None:
        self._visit(block, secret_depth=0, path_locals=set())

    def _visit(self, stmt: ast.Stmt, secret_depth: int,
               path_locals: set[str]) -> None:
        in_region = secret_depth > 0
        if isinstance(stmt, ast.Block):
            for child in stmt.stmts:
                self._visit(child, secret_depth, path_locals)
        elif isinstance(stmt, ast.VarDeclStmt):
            if in_region:
                path_locals.add(stmt.name)
            if stmt.init is not None:
                self._check_calls(stmt.init, in_region, path_locals, stmt.line)
        elif isinstance(stmt, ast.Assign):
            self._check_calls(stmt.value, in_region, path_locals, stmt.line)
            if in_region and isinstance(stmt.target, ast.Index):
                if self.mode == "sempe" and stmt.target.name not in path_locals:
                    raise TaintError(
                        "write to non-path-local array "
                        f"{stmt.target.name!r} inside a secure region "
                        "(declare the array inside the path or hoist the "
                        "store out of the region)",
                        line=stmt.line,
                    )
        elif isinstance(stmt, ast.If):
            secret = self.taint.is_secret_if(stmt)
            depth = secret_depth + (1 if secret else 0)
            locals_for_paths = set() if secret else path_locals
            self._visit(stmt.then, depth, locals_for_paths)
            if stmt.els is not None:
                self._visit(stmt.els, depth,
                            set() if secret else path_locals)
        elif isinstance(stmt, ast.While):
            if self._tainted_expr(stmt.cond):
                raise TaintError(
                    "secret-dependent while-loop condition "
                    "(trip count would leak the secret)",
                    line=stmt.line,
                )
            if in_region and self.mode == "cte":
                raise TaintError(
                    "while-loop inside a secret context is not expressible "
                    "in CTE (FaCT requires public loop structure)",
                    line=stmt.line,
                )
            self._visit(stmt.body, secret_depth, path_locals)
        elif isinstance(stmt, ast.For):
            if self._tainted_expr(stmt.bound):
                raise TaintError(
                    "secret-dependent for-loop bound "
                    "(trip count would leak the secret)",
                    line=stmt.line,
                )
            if stmt.declares and in_region:
                path_locals.add(stmt.var)
            self._visit(stmt.body, secret_depth, path_locals)
        elif isinstance(stmt, ast.Return):
            if in_region:
                raise TaintError(
                    "return inside a secure region (control would escape "
                    "before the region's join point)",
                    line=stmt.line,
                )
            if stmt.value is not None:
                self._check_calls(stmt.value, in_region, path_locals, stmt.line)
        elif isinstance(stmt, ast.ExprStmt):
            self._check_calls(stmt.expr, in_region, path_locals, stmt.line)

    def _check_calls(self, expr: ast.Expr, in_region: bool,
                     path_locals: set[str], line: int) -> None:
        for node in ast.walk_exprs(expr):
            if not isinstance(node, ast.Call):
                continue
            if not in_region:
                continue
            if self.mode == "cte":
                raise TaintError(
                    f"call to {node.name!r} inside a secret context is not "
                    "expressible in CTE (FaCT forbids function calls)",
                    line=line,
                )
            if node.name in self.taint.global_writers:
                raise TaintError(
                    f"{node.name!r} writes globals and is called inside a "
                    "secure region (its stores cannot be privatized)",
                    line=line,
                )
            callee = self.info.funcs.get(node.name)
            if callee is None:
                continue
            for arg, param in zip(node.args, callee.params):
                if param.is_array and isinstance(arg, ast.Var):
                    if arg.name not in path_locals:
                        raise TaintError(
                            f"array {arg.name!r} passed into a secure region "
                            "call must be declared inside the path",
                            line=line,
                        )
