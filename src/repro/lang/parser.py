"""Recursive-descent parser for mini-C.

Grammar (see the package docstring for the language description)::

    module      := (global_decl | func)*
    global_decl := ['secret'] 'int' NAME ('[' NUM ']')?
                   ('=' (expr | '{' num_list '}'))? ';'
    func        := ('int' | 'void') NAME '(' params ')' block
    stmt        := block | decl | if | while | for | return
                 | assign | expr ';'
"""

from __future__ import annotations

from repro.lang import ast
from repro.lang.errors import CompileError
from repro.lang.lexer import Token, tokenize


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.position = 0

    # -- token plumbing ------------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        index = min(self.position + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def next(self) -> Token:
        token = self.peek()
        self.position += 1
        return token

    def accept(self, kind: str, text: str | None = None) -> Token | None:
        token = self.peek()
        if token.kind == kind and (text is None or token.text == text):
            return self.next()
        return None

    def expect(self, kind: str, text: str | None = None) -> Token:
        token = self.accept(kind, text)
        if token is None:
            actual = self.peek()
            wanted = text if text is not None else kind
            raise CompileError(
                f"expected {wanted!r}, found {actual.text!r}", line=actual.line
            )
        return token

    # -- top level ----------------------------------------------------------------

    def parse_module(self) -> ast.Module:
        globals_: list[ast.GlobalDecl] = []
        funcs: list[ast.Func] = []
        while self.peek().kind != "eof":
            if self.peek().text == "secret":
                globals_.append(self.parse_global())
            elif self.peek().text in ("int", "void"):
                # Distinguish function definitions from globals by the
                # token after the name.
                if self.peek(2).text == "(":
                    funcs.append(self.parse_func())
                else:
                    globals_.append(self.parse_global())
            else:
                token = self.peek()
                raise CompileError(
                    f"unexpected top-level token {token.text!r}", line=token.line
                )
        return ast.Module(globals_, funcs)

    def parse_global(self) -> ast.GlobalDecl:
        is_secret = self.accept("keyword", "secret") is not None
        self.expect("keyword", "int")
        name_token = self.expect("name")
        size: int | None = None
        init_values: list[int] = []
        if self.accept("op", "["):
            size = self._const_int()
            self.expect("op", "]")
        if self.accept("op", "="):
            if self.accept("op", "{"):
                init_values.append(self._const_int())
                while self.accept("op", ","):
                    init_values.append(self._const_int())
                self.expect("op", "}")
            else:
                init_values.append(self._const_int())
        self.expect("op", ";")
        if size is not None and len(init_values) > size:
            raise CompileError(
                f"too many initializers for {name_token.text!r}",
                line=name_token.line,
            )
        return ast.GlobalDecl(
            name=name_token.text,
            size=size,
            init_values=init_values,
            is_secret=is_secret,
            line=name_token.line,
        )

    def _const_int(self) -> int:
        negative = self.accept("op", "-") is not None
        token = self.expect("num")
        value = int(token.text, 0)
        return -value if negative else value

    def parse_func(self) -> ast.Func:
        ret_token = self.next()
        returns_value = ret_token.text == "int"
        name_token = self.expect("name")
        self.expect("op", "(")
        params: list[ast.Param] = []
        if self.peek().text != ")":
            while True:
                self.expect("keyword", "int")
                param_name = self.expect("name").text
                is_array = False
                if self.accept("op", "["):
                    self.expect("op", "]")
                    is_array = True
                params.append(ast.Param(param_name, is_array))
                if not self.accept("op", ","):
                    break
        self.expect("op", ")")
        body = self.parse_block()
        return ast.Func(
            name=name_token.text,
            params=params,
            body=body,
            returns_value=returns_value,
            line=name_token.line,
        )

    # -- statements --------------------------------------------------------------

    def parse_block(self) -> ast.Block:
        open_token = self.expect("op", "{")
        stmts: list[ast.Stmt] = []
        while self.peek().text != "}":
            if self.peek().kind == "eof":
                raise CompileError("unterminated block", line=open_token.line)
            stmts.append(self.parse_stmt())
        self.expect("op", "}")
        return ast.Block(stmts, line=open_token.line)

    def parse_stmt(self) -> ast.Stmt:
        token = self.peek()
        if token.text == "{":
            return self.parse_block()
        if token.text == "int":
            return self.parse_decl()
        if token.text == "if":
            return self.parse_if()
        if token.text == "while":
            return self.parse_while()
        if token.text == "for":
            return self.parse_for()
        if token.text == "return":
            self.next()
            value = None
            if self.peek().text != ";":
                value = self.parse_expr()
            self.expect("op", ";")
            return ast.Return(value, line=token.line)
        # assignment or expression statement
        expr = self.parse_expr()
        if self.accept("op", "="):
            if not isinstance(expr, (ast.Var, ast.Index)):
                raise CompileError("invalid assignment target", line=token.line)
            value = self.parse_expr()
            self.expect("op", ";")
            return ast.Assign(expr, value, line=token.line)
        self.expect("op", ";")
        return ast.ExprStmt(expr, line=token.line)

    def parse_decl(self) -> ast.VarDeclStmt:
        self.expect("keyword", "int")
        name_token = self.expect("name")
        size: int | None = None
        init: ast.Expr | None = None
        if self.accept("op", "["):
            size_token = self.expect("num")
            size = int(size_token.text, 0)
            self.expect("op", "]")
        if self.accept("op", "="):
            init = self.parse_expr()
        self.expect("op", ";")
        return ast.VarDeclStmt(name_token.text, size, init, line=name_token.line)

    def parse_if(self) -> ast.If:
        token = self.expect("keyword", "if")
        self.expect("op", "(")
        cond = self.parse_expr()
        self.expect("op", ")")
        then = self.parse_stmt()
        els = None
        if self.accept("keyword", "else"):
            els = self.parse_stmt()
        return ast.If(cond, then, els, line=token.line)

    def parse_while(self) -> ast.While:
        token = self.expect("keyword", "while")
        self.expect("op", "(")
        cond = self.parse_expr()
        self.expect("op", ")")
        body = self.parse_stmt()
        return ast.While(cond, body, line=token.line)

    def parse_for(self) -> ast.For:
        """``for ([int] var = init; var OP bound; var = step) body``."""
        token = self.expect("keyword", "for")
        self.expect("op", "(")
        declares = self.accept("keyword", "int") is not None
        var_token = self.expect("name")
        self.expect("op", "=")
        init = self.parse_expr()
        self.expect("op", ";")
        cond_var = self.expect("name")
        if cond_var.text != var_token.text:
            raise CompileError(
                "for-loop condition must test the loop counter",
                line=cond_var.line,
            )
        op_token = self.next()
        if op_token.text not in ("<", "<=", ">", ">=", "!="):
            raise CompileError(
                f"unsupported for-loop comparison {op_token.text!r}",
                line=op_token.line,
            )
        bound = self.parse_expr()
        self.expect("op", ";")
        step_var = self.expect("name")
        if step_var.text != var_token.text:
            raise CompileError(
                "for-loop step must assign the loop counter",
                line=step_var.line,
            )
        self.expect("op", "=")
        step = self.parse_expr()
        self.expect("op", ")")
        body = self.parse_stmt()
        return ast.For(
            var=var_token.text,
            declares=declares,
            init=init,
            bound_op=op_token.text,
            bound=bound,
            step=step,
            body=body,
            line=token.line,
        )

    # -- expressions (precedence climbing) ----------------------------------------

    _PRECEDENCE = [
        ("||",),
        ("&&",),
        ("|",),
        ("^",),
        ("&",),
        ("==", "!="),
        ("<", "<=", ">", ">="),
        ("<<", ">>"),
        ("+", "-"),
        ("*", "/", "%"),
    ]

    def parse_expr(self, level: int = 0) -> ast.Expr:
        if level >= len(self._PRECEDENCE):
            return self.parse_unary()
        ops = self._PRECEDENCE[level]
        left = self.parse_expr(level + 1)
        while self.peek().kind == "op" and self.peek().text in ops:
            op_token = self.next()
            right = self.parse_expr(level + 1)
            left = ast.Binary(op_token.text, left, right, line=op_token.line)
        return left

    def parse_unary(self) -> ast.Expr:
        token = self.peek()
        if token.kind == "op" and token.text in ("-", "!", "~"):
            self.next()
            operand = self.parse_unary()
            return ast.Unary(token.text, operand, line=token.line)
        return self.parse_primary()

    def parse_primary(self) -> ast.Expr:
        token = self.next()
        if token.kind == "num":
            return ast.Num(int(token.text, 0), line=token.line)
        if token.kind == "name":
            if self.peek().text == "(":
                self.next()
                args: list[ast.Expr] = []
                if self.peek().text != ")":
                    args.append(self.parse_expr())
                    while self.accept("op", ","):
                        args.append(self.parse_expr())
                self.expect("op", ")")
                return ast.Call(token.text, args, line=token.line)
            if self.peek().text == "[":
                self.next()
                index = self.parse_expr()
                self.expect("op", "]")
                return ast.Index(token.text, index, line=token.line)
            return ast.Var(token.text, line=token.line)
        if token.text == "(":
            expr = self.parse_expr()
            self.expect("op", ")")
            return expr
        raise CompileError(f"unexpected token {token.text!r}", line=token.line)


def parse(source: str) -> ast.Module:
    """Parse mini-C *source* into a :class:`repro.lang.ast.Module`."""
    return _Parser(tokenize(source)).parse_module()
