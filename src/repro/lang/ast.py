"""Abstract syntax tree for mini-C."""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, field


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------

@dataclass
class Expr:
    line: int = field(default=0, kw_only=True)


@dataclass
class Num(Expr):
    value: int = 0

    def __init__(self, value: int, line: int = 0) -> None:
        self.value = value
        self.line = line


@dataclass
class Var(Expr):
    name: str = ""

    def __init__(self, name: str, line: int = 0) -> None:
        self.name = name
        self.line = line


@dataclass
class Index(Expr):
    """Array element reference ``name[index]``."""

    name: str = ""
    index: Expr | None = None

    def __init__(self, name: str, index: Expr, line: int = 0) -> None:
        self.name = name
        self.index = index
        self.line = line


@dataclass
class Unary(Expr):
    op: str = ""
    operand: Expr | None = None

    def __init__(self, op: str, operand: Expr, line: int = 0) -> None:
        self.op = op
        self.operand = operand
        self.line = line


@dataclass
class Binary(Expr):
    op: str = ""
    left: Expr | None = None
    right: Expr | None = None

    def __init__(self, op: str, left: Expr, right: Expr, line: int = 0) -> None:
        self.op = op
        self.left = left
        self.right = right
        self.line = line


@dataclass
class Call(Expr):
    name: str = ""
    args: list[Expr] = field(default_factory=list)

    def __init__(self, name: str, args: list[Expr], line: int = 0) -> None:
        self.name = name
        self.args = args
        self.line = line


@dataclass
class Cmov(Expr):
    """Internal: constant-time select ``cond ? if_true : if_false``."""

    cond: Expr | None = None
    if_true: Expr | None = None
    if_false: Expr | None = None

    def __init__(self, cond: Expr, if_true: Expr, if_false: Expr,
                 line: int = 0) -> None:
        self.cond = cond
        self.if_true = if_true
        self.if_false = if_false
        self.line = line


# --------------------------------------------------------------------------
# Statements
# --------------------------------------------------------------------------

@dataclass
class Stmt:
    line: int = field(default=0, kw_only=True)


@dataclass
class Block(Stmt):
    stmts: list[Stmt] = field(default_factory=list)

    def __init__(self, stmts: list[Stmt], line: int = 0) -> None:
        self.stmts = stmts
        self.line = line


@dataclass
class VarDeclStmt(Stmt):
    """``int name;`` / ``int name = init;`` / ``int name[size];``."""

    name: str = ""
    size: int | None = None     # None for scalars
    init: Expr | None = None

    def __init__(self, name: str, size: int | None = None,
                 init: Expr | None = None, line: int = 0) -> None:
        self.name = name
        self.size = size
        self.init = init
        self.line = line


@dataclass
class Assign(Stmt):
    target: Expr | None = None   # Var or Index
    value: Expr | None = None

    def __init__(self, target: Expr, value: Expr, line: int = 0) -> None:
        self.target = target
        self.value = value
        self.line = line


@dataclass
class If(Stmt):
    cond: Expr | None = None
    then: Stmt | None = None
    els: Stmt | None = None
    secure: bool = False         # set by the SeMPE transform

    def __init__(self, cond: Expr, then: Stmt, els: Stmt | None = None,
                 secure: bool = False, line: int = 0) -> None:
        self.cond = cond
        self.then = then
        self.els = els
        self.secure = secure
        self.line = line


@dataclass
class While(Stmt):
    cond: Expr | None = None
    body: Stmt | None = None

    def __init__(self, cond: Expr, body: Stmt, line: int = 0) -> None:
        self.cond = cond
        self.body = body
        self.line = line


@dataclass
class For(Stmt):
    """Normalized counting loop: ``for (var = init; var OP bound; var = step)``.

    The counter is loop *scaffolding*: the CTE transform leaves its
    updates unpredicated (FaCT-style public loops), so the loop executes
    a public number of iterations regardless of secrets.
    """

    var: str = ""
    declares: bool = False       # ``for (int i = ...`` declares the counter
    init: Expr | None = None
    bound_op: str = "<"
    bound: Expr | None = None
    step: Expr | None = None     # full RHS of ``var = step``
    body: Stmt | None = None

    def __init__(self, var: str, declares: bool, init: Expr, bound_op: str,
                 bound: Expr, step: Expr, body: Stmt, line: int = 0) -> None:
        self.var = var
        self.declares = declares
        self.init = init
        self.bound_op = bound_op
        self.bound = bound
        self.step = step
        self.body = body
        self.line = line


@dataclass
class Return(Stmt):
    value: Expr | None = None

    def __init__(self, value: Expr | None, line: int = 0) -> None:
        self.value = value
        self.line = line


@dataclass
class ExprStmt(Stmt):
    expr: Expr | None = None

    def __init__(self, expr: Expr, line: int = 0) -> None:
        self.expr = expr
        self.line = line


# --------------------------------------------------------------------------
# Top level
# --------------------------------------------------------------------------

@dataclass
class Param:
    name: str
    is_array: bool = False


@dataclass
class Func:
    name: str
    params: list[Param]
    body: Block
    returns_value: bool
    line: int = 0


@dataclass
class GlobalDecl:
    name: str
    size: int | None          # None for scalars
    init_values: list[int]
    is_secret: bool
    line: int = 0


@dataclass
class Module:
    globals: list[GlobalDecl]
    funcs: list[Func]

    def func(self, name: str) -> Func:
        for func in self.funcs:
            if func.name == name:
                return func
        raise KeyError(name)


def walk_stmts(stmt: Stmt) -> Iterator[Stmt]:
    """Yield *stmt* and every statement nested inside it."""
    yield stmt
    if isinstance(stmt, Block):
        for child in stmt.stmts:
            yield from walk_stmts(child)
    elif isinstance(stmt, If):
        yield from walk_stmts(stmt.then)
        if stmt.els is not None:
            yield from walk_stmts(stmt.els)
    elif isinstance(stmt, (While, For)):
        yield from walk_stmts(stmt.body)


def walk_exprs(expr: Expr) -> Iterator[Expr]:
    """Yield *expr* and every sub-expression."""
    yield expr
    if isinstance(expr, Unary):
        yield from walk_exprs(expr.operand)
    elif isinstance(expr, Binary):
        yield from walk_exprs(expr.left)
        yield from walk_exprs(expr.right)
    elif isinstance(expr, Index):
        yield from walk_exprs(expr.index)
    elif isinstance(expr, Call):
        for arg in expr.args:
            yield from walk_exprs(arg)
    elif isinstance(expr, Cmov):
        yield from walk_exprs(expr.cond)
        yield from walk_exprs(expr.if_true)
        yield from walk_exprs(expr.if_false)


def stmt_exprs(stmt: Stmt) -> Iterator[Expr]:
    """Yield the expressions directly attached to *stmt* (not nested stmts)."""
    if isinstance(stmt, VarDeclStmt) and stmt.init is not None:
        yield stmt.init
    elif isinstance(stmt, Assign):
        yield stmt.target
        yield stmt.value
    elif isinstance(stmt, If):
        yield stmt.cond
    elif isinstance(stmt, While):
        yield stmt.cond
    elif isinstance(stmt, For):
        yield stmt.init
        yield stmt.bound
        yield stmt.step
    elif isinstance(stmt, Return) and stmt.value is not None:
        yield stmt.value
    elif isinstance(stmt, ExprStmt):
        yield stmt.expr
