"""Optional compiler optimizations.

§IV-E of the paper: *"the compiler can reduce the nesting degree by
collapsing multiple conditionals into a single one with larger
expression.  For example, if (A) {if (B) ...} can be converted into
if (A and B) {...}"*.  :func:`collapse_nested_ifs` implements exactly
that pattern:

* the outer ``if`` has no else-branch;
* its body is (after unwrapping blocks) a single ``if`` with no
  else-branch;
* both conditions are combined with the branch-free ``&&``.

Collapsing lowers the sJMP count per region (fewer jbTable entries,
fewer drains, fewer shadow copies) at the cost of always evaluating
the inner condition — which is secret-safe, since condition evaluation
is branch-free and both conditions are evaluated on both machines.

The pass runs on the source AST *before* taint analysis, so the
collapsed conditionals are labelled and lowered as one secure branch.
"""

from __future__ import annotations

from repro.lang import ast


def collapse_nested_ifs(module: ast.Module) -> ast.Module:
    """Return a new module with collapsible nested ifs merged."""
    funcs = [
        ast.Func(
            name=func.name,
            params=func.params,
            body=_collapse_block(func.body),
            returns_value=func.returns_value,
            line=func.line,
        )
        for func in module.funcs
    ]
    return ast.Module(list(module.globals), funcs)


def count_collapsible(module: ast.Module) -> int:
    """How many collapses the pass would perform (for diagnostics)."""
    count = 0
    for func in module.funcs:
        for stmt in ast.walk_stmts(func.body):
            if isinstance(stmt, ast.If) and _collapsible_inner(stmt):
                count += 1
    return count


def _collapse_block(block: ast.Block) -> ast.Block:
    return ast.Block([_collapse_stmt(child) for child in block.stmts],
                     line=block.line)


def _collapse_stmt(stmt: ast.Stmt) -> ast.Stmt:
    if isinstance(stmt, ast.Block):
        return _collapse_block(stmt)
    if isinstance(stmt, ast.If):
        collapsed = stmt
        inner = _collapsible_inner(collapsed)
        while inner is not None:
            collapsed = ast.If(
                cond=ast.Binary("&&", collapsed.cond, inner.cond,
                                line=collapsed.line),
                then=inner.then,
                els=None,
                line=collapsed.line,
            )
            inner = _collapsible_inner(collapsed)
        return ast.If(
            cond=collapsed.cond,
            then=_collapse_stmt(collapsed.then),
            els=_collapse_stmt(collapsed.els)
            if collapsed.els is not None else None,
            secure=collapsed.secure,
            line=collapsed.line,
        )
    if isinstance(stmt, ast.While):
        return ast.While(stmt.cond, _collapse_stmt(stmt.body),
                         line=stmt.line)
    if isinstance(stmt, ast.For):
        return ast.For(
            var=stmt.var, declares=stmt.declares, init=stmt.init,
            bound_op=stmt.bound_op, bound=stmt.bound, step=stmt.step,
            body=_collapse_stmt(stmt.body), line=stmt.line,
        )
    return stmt


def _collapsible_inner(stmt: ast.If) -> ast.If | None:
    """The single inner if this outer if can merge with, if any."""
    if stmt.els is not None:
        return None
    body = stmt.then
    while isinstance(body, ast.Block):
        meaningful = [child for child in body.stmts]
        if len(meaningful) != 1:
            return None
        body = meaningful[0]
    if isinstance(body, ast.If) and body.els is None:
        return body
    return None
