"""Declarative sweep orchestration.

The paper's whole evaluation is a grid: workloads × nesting depths (or
image sizes) × compiler modes × machine configs × engines.  This module
makes that grid a first-class object:

* :class:`SweepCell` — one point of the grid, self-describing (it can
  produce its own structural fingerprint, and run itself through the
  two-level run cache);
* :class:`SweepSpec` — a named, deduplicated set of cells, built
  directly or via the :meth:`SweepSpec.grid` cross-product constructor;
* :func:`run_sweep` — evaluate a spec: partition cells into already-
  cached / on-disk / to-compute, fan the remainder out across a worker
  pool (:mod:`repro.harness.parallel`), and install results in
  submission-independent order;
* :func:`ensure_cells` — the hook the experiment functions call before
  assembling their tables, so every table/figure pulls from the same
  orchestrated path (serial and parallel runs are bit-identical).

``set_default_jobs`` lets the CLI (``repro sweep --jobs N`` or
``repro experiments --jobs N``) parallelize the experiment functions
without changing their signatures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.engine import ENGINES, get_default_engine
from repro.defenses.registry import get_defense
from repro.harness import parallel
from repro.harness.failures import (
    CellFailure,
    ExecutionPolicy,
    RunOutcome,
    SweepInterrupted,
)
from repro.harness.runner import (
    RunResult,
    cell_descriptor,
    get_store,
    probe,
    run_attack,
    run_djpeg,
    run_microbench,
    run_verify,
    run_workload,
)
from repro.harness.store import fingerprint
from repro.analysis.differential import VerifySpec
from repro.security.attackers import AttackSpec
from repro.uarch.config import MachineConfig
from repro.workloads.djpeg import DjpegSpec
from repro.workloads.microbench import MicrobenchSpec
from repro.workloads.registry import WorkloadRunSpec

# Iteration counts used by the paper sweeps (sized so the pure-Python
# timing model finishes in benchmark-friendly time; see DESIGN.md).
MICRO_ITERS = {
    "fibonacci": 12,
    "ones": 10,
    "quicksort": 4,
    "queens": 3,
}

def _variant_for(mode: str) -> str:
    """Microbench source variant for a defense: CTE compiles the
    FaCT-style oblivious rewrite, everything else the natural source.
    Unknown defense names raise here, failing a sweep before any
    simulation starts."""
    return ("oblivious" if get_defense(mode).compile_mode == "cte"
            else "natural")


@dataclass
class SweepCell:
    """One grid point: a workload spec on a machine, mode, and engine.

    ``kind`` is ``"micro"``, ``"djpeg"``, ``"workload"``, ``"attack"``
    (a statistical attack run instead of a bare simulation — same
    caching, same pool, an
    :class:`~repro.security.attackers.AttackReport` as the result) or
    ``"verify"`` (a static-vs-dynamic differential cell producing a
    :class:`~repro.analysis.differential.VerifyReport`).
    """

    kind: str
    spec: MicrobenchSpec | DjpegSpec | WorkloadRunSpec | AttackSpec \
        | VerifySpec
    mode: str                                  # registered defense name
    config: MachineConfig | None = None
    engine: str | None = None                  # None = session default

    def resolved_engine(self) -> str:
        return self.engine or get_default_engine()

    def descriptor(self) -> dict:
        """The cell's structural identity (the cache/store key).

        Computed once and memoized — a sweep touches each cell's
        identity several times (dedupe, partition, dispatch, install),
        and each computation walks the whole config recursively.  Treat
        cells as frozen once built: mutating spec/config afterwards
        would desynchronize the memo from the contents.
        """
        cached = self.__dict__.get("_descriptor")
        if cached is None:
            cached = cell_descriptor(self.kind, self.spec, self.mode,
                                     self.config, self.resolved_engine())
            self.__dict__["_descriptor"] = cached
        return cached

    def fingerprint(self) -> str:
        cached = self.__dict__.get("_fingerprint")
        if cached is None:
            cached = fingerprint(self.descriptor())
            self.__dict__["_fingerprint"] = cached
        return cached

    def run(self) -> RunResult:
        """Evaluate through the run cache (L1 → store → simulate).

        Runs on the engine frozen into the memoized descriptor, so the
        result always matches what :meth:`fingerprint` claims even if
        the session default engine changed since the cell was built.
        """
        engine = self.descriptor()["engine"]
        if self.kind == "micro":
            return run_microbench(self.spec, self.mode,
                                  config=self.config, engine=engine)
        if self.kind == "workload":
            return run_workload(self.spec, self.mode,
                                config=self.config, engine=engine)
        if self.kind == "attack":
            return run_attack(self.spec, self.mode,
                              config=self.config, engine=engine)
        if self.kind == "verify":
            return run_verify(self.spec, self.mode,
                              config=self.config, engine=engine)
        return run_djpeg(self.spec, self.mode,
                         config=self.config, engine=engine)


@dataclass
class SweepSpec:
    """A named, deduplicated collection of sweep cells."""

    name: str
    cells: list[SweepCell] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.cells = _dedupe(self.cells)

    def __len__(self) -> int:
        return len(self.cells)

    def extend(self, cells: list[SweepCell]) -> "SweepSpec":
        """Add *cells* (deduplicated against the existing grid)."""
        self.cells = _dedupe(self.cells + list(cells))
        return self

    @classmethod
    def grid(cls, name: str, *,
             workloads: tuple[str, ...] = (),
             w_sweep: tuple[int, ...] = (),
             iters: dict[str, int] | None = None,
             djpeg_formats: tuple[str, ...] = (),
             djpeg_sizes: tuple[int, ...] = (),
             modes: tuple[str, ...] = ("plain", "sempe"),
             configs: tuple[MachineConfig | None, ...] = (None,),
             engines: tuple[str | None, ...] = (None,)) -> "SweepSpec":
        """Cross-product constructor.

        Builds ``workloads × w_sweep × modes × configs × engines``
        microbenchmark cells plus ``djpeg_formats × djpeg_sizes × modes
        × configs × engines`` djpeg cells.  ``modes`` are registered
        defense names; the source variant follows the defense's
        compiler transform (``cte`` compiles the oblivious rewrite).
        Unknown defenses/engines are rejected up front so a typo fails
        the sweep before any simulation starts.
        """
        iters = iters or MICRO_ITERS
        variants = {mode: _variant_for(mode) for mode in modes}
        for engine in engines:
            if engine is not None and engine not in ENGINES:
                raise ValueError(
                    f"unknown engine {engine!r}; choose from {ENGINES}")
        cells: list[SweepCell] = []
        for config in configs:
            for engine in engines:
                for workload in workloads:
                    for w in w_sweep:
                        for mode in modes:
                            spec = MicrobenchSpec(
                                workload, w=w,
                                iters=iters.get(workload, 1),
                                variant=variants[mode])
                            cells.append(SweepCell(
                                "micro", spec, mode, config, engine))
                for fmt in djpeg_formats:
                    for size in djpeg_sizes:
                        for mode in modes:
                            if variants[mode] == "oblivious":
                                raise ValueError(
                                    "djpeg has no oblivious rewrite; "
                                    "use non-CTE defenses")
                            cells.append(SweepCell(
                                "djpeg", DjpegSpec(fmt, size), mode,
                                config, engine))
        return cls(name, cells)


def _dedupe(cells: list[SweepCell]) -> list[SweepCell]:
    unique: dict[str, SweepCell] = {}
    for cell in cells:
        unique.setdefault(cell.fingerprint(), cell)
    return list(unique.values())


# --------------------------------------------------------------------------
# Execution
# --------------------------------------------------------------------------

@dataclass
class SweepStats:
    """Where each cell of one sweep came from — and how the rest died."""

    sweep: str
    cells: int = 0          # unique grid points
    cached: int = 0         # already in the in-process cache
    from_store: int = 0     # loaded from the on-disk store
    computed: int = 0       # simulated this run
    quarantined: int = 0    # skipped: a poison record marked them failed
    fellback: int = 0       # installed via the reference-engine fallback
    aborted: bool = False   # the failure budget stopped the sweep early
    interrupted: bool = False   # Ctrl-C stopped the sweep
    failures: list[CellFailure] = field(default_factory=list)

    @property
    def failed(self) -> int:
        """Permanent failures this run (quarantine skips included)."""
        return len(self.failures)

    @property
    def remaining(self) -> int:
        """Cells with neither a result nor a failure record."""
        return (self.cells - self.cached - self.from_store
                - self.computed - self.failed)

    @property
    def ok(self) -> bool:
        return not (self.failures or self.aborted or self.interrupted)

    def summary(self) -> str:
        line = (f"sweep {self.sweep}: {self.cells} cells — "
                f"{self.cached} cached, {self.from_store} from store, "
                f"{self.computed} computed")
        if not self.ok or self.fellback:
            extras = [f"{self.failed} failed"]
            if self.quarantined:
                extras.append(f"{self.quarantined} quarantined")
            if self.fellback:
                extras.append(f"{self.fellback} fell back to reference")
            if self.remaining:
                extras.append(f"{self.remaining} not run")
            if self.aborted:
                extras.append("ABORTED (failure budget exceeded)")
            if self.interrupted:
                extras.append("INTERRUPTED")
            line += ", " + ", ".join(extras)
        return line

    def adopt(self, outcome: RunOutcome) -> None:
        """Fold one ``run_cells`` outcome into the sweep totals."""
        self.computed += outcome.computed
        self.failures.extend(outcome.failures)
        self.fellback += len(outcome.fellback)
        self.aborted = self.aborted or outcome.aborted
        self.interrupted = self.interrupted or outcome.interrupted


_DEFAULT_JOBS = 1


def set_default_jobs(jobs: int) -> None:
    """Worker-pool width used when ``ensure_cells`` isn't given one."""
    global _DEFAULT_JOBS
    _DEFAULT_JOBS = max(1, int(jobs))


def get_default_jobs() -> int:
    return _DEFAULT_JOBS


def run_sweep(spec: SweepSpec, jobs: int | None = None,
              progress: parallel.ProgressFn | None = None,
              policy: ExecutionPolicy | None = None) -> SweepStats:
    """Evaluate every cell of *spec*; afterwards all cells are L1 hits.

    Cells already in the in-process cache are skipped; cells present in
    the configured store are loaded (a store hit); cells the store has
    *quarantined* (a persisted failure record from an earlier run) are
    skipped as known-failed unless ``policy.retry_quarantined`` clears
    them; the remainder is simulated — serially for ``jobs=1``, else
    across a fault-tolerant worker pool — and installed into the cache
    and store in fingerprint order, so the resulting state is
    bit-identical for any ``jobs``.  Failures are collected into
    ``stats.failures`` (see :class:`~repro.harness.failures.CellFailure`)
    rather than raised; a healthy sweep has ``stats.ok``.
    """
    jobs = _DEFAULT_JOBS if jobs is None else max(1, int(jobs))
    policy = policy or ExecutionPolicy()
    stats = SweepStats(sweep=spec.name, cells=len(spec.cells))
    store = get_store()
    to_compute: list[SweepCell] = []
    for cell in spec.cells:
        descriptor = cell.descriptor()
        where = probe(descriptor)
        if where == "cache":
            stats.cached += 1
            continue
        if where == "store":
            stats.from_store += 1
            continue
        if store is not None:
            fp = cell.fingerprint()
            if store.contains_failure(fp):
                if policy.retry_quarantined:
                    store.clear_failure(fp)
                else:
                    record = store.get_failure(fp, descriptor)
                    if record is not None:
                        failure = CellFailure.from_dict(record)
                        failure.quarantined = True
                        stats.failures.append(failure)
                        stats.quarantined += 1
                        continue
                    # The record was stale/corrupt and has been
                    # dropped; fall through and recompute the cell.
        to_compute.append(cell)
    try:
        outcome = parallel.run_cells(to_compute, jobs=jobs,
                                     progress=progress, policy=policy)
    except SweepInterrupted as stop:
        stats.adopt(stop.outcome)
        stop.stats = stats   # the CLI summarizes the partial sweep
        raise
    stats.adopt(outcome)
    return stats


def ensure_cells(name: str, cells: list[SweepCell],
                 jobs: int | None = None) -> SweepStats:
    """Materialize *cells* through the sweep layer (experiments hook)."""
    return run_sweep(SweepSpec(name, cells), jobs=jobs)
