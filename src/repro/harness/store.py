"""Content-addressed on-disk result store.

PR 1's run cache memoizes simulations within one process; this module
persists the same records across runs.  Each record is keyed by the
*structural fingerprint* of the cell that produced it — the SHA-256 of
the canonical JSON of a descriptor dict covering the workload spec,
compiler mode, full machine configuration, engine, and the report
schema version — so two processes (or two machines) that simulate the
same configuration address the same object, and any change to any
field of the configuration addresses a different one.

Layout (``ResultStore(root)``)::

    root/
      STORE_FORMAT            # format marker, for forward compatibility
      objects/ab/abcdef....json     # one record per fingerprint
      quarantine/ab/abcdef....json  # one failure record per poisoned cell

Records are written atomically (temp file + ``fsync`` + ``os.replace``)
so concurrent writers — e.g. two sweep processes sharing a store —
cannot corrupt each other, and a process killed mid-``put`` (a worker
OOM, Ctrl-C, a machine crash) can never leave a truncated record: the
old bytes survive until the new bytes are durably on disk.

The ``quarantine/`` tree holds :class:`~repro.harness.failures.CellFailure`
records for cells that failed permanently: resume skips them instead of
re-running a known-poisonous cell endlessly, until the caller clears
them (``repro sweep --retry-quarantined``).  A successful run of a
quarantined cell clears its record automatically.

A record stores its own descriptor next to the report, which lets
:meth:`ResultStore.get` *verify* the match instead of trusting the
file name: a schema bump, a hash collision, or a hand-edited file is
detected, counted as an invalidation, and dropped from disk so it is
recomputed rather than silently served stale.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field

# Bump whenever SimulationReport (or anything feeding it) changes shape
# or semantics: old records become invalidations, not wrong answers.
#
# v2: cell descriptors carry the defense name and the defense's
# structural fingerprint (the protection-scheme registry).  Pre-refactor
# records address different fingerprints entirely, so they age out as
# clean misses; a v1 record that somehow lands on a v2 fingerprint is
# invalidated by the schema check below.
#
# v3: the machine configuration grew the ``speculation`` sub-config
# (the transient-execution window), so every descriptor with a config
# changed shape — and cells whose reports can now *depend* on the
# window (observation traces carry a transient digest, verify cells a
# speculative site class) must not be served from pre-speculation
# records even where the descriptor happened to stay stable
# (``config: None`` cells).  The version bump rekeys everything.
SCHEMA_VERSION = 3

STORE_FORMAT = "repro-result-store-v1"


def canonical_json(data: dict) -> str:
    """Deterministic JSON encoding (sorted keys, no whitespace)."""
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def fingerprint(descriptor: dict) -> str:
    """SHA-256 content address of a cell descriptor."""
    return hashlib.sha256(canonical_json(descriptor).encode()).hexdigest()


@dataclass
class StoreStats:
    """Counters for one store instance's lifetime."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    invalidations: int = 0
    quarantines: int = 0      # failure records written
    quarantine_hits: int = 0  # cells skipped because a record existed

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "invalidations": self.invalidations,
            "quarantines": self.quarantines,
            "quarantine_hits": self.quarantine_hits,
        }


@dataclass
class ResultStore:
    """A directory of simulation reports keyed by config fingerprint."""

    root: str
    stats: StoreStats = field(default_factory=StoreStats)

    def __post_init__(self) -> None:
        # Validate before mutating: a directory claiming another format
        # is rejected untouched.
        self.root = os.path.abspath(self.root)
        marker = os.path.join(self.root, "STORE_FORMAT")
        if os.path.exists(marker):
            with open(marker, "r", encoding="utf-8") as handle:
                found = handle.read().strip()
            if found != STORE_FORMAT:
                raise ValueError(
                    f"{self.root} is a {found or 'unrecognized'} store, "
                    f"not {STORE_FORMAT}; point --store elsewhere or "
                    "delete the directory")
            os.makedirs(self._objects_dir, exist_ok=True)
        else:
            os.makedirs(self._objects_dir, exist_ok=True)
            self._atomic_write(marker, STORE_FORMAT + "\n")

    # -- paths ------------------------------------------------------------

    @property
    def _objects_dir(self) -> str:
        return os.path.join(self.root, "objects")

    @property
    def _quarantine_dir(self) -> str:
        return os.path.join(self.root, "quarantine")

    def path_for(self, fp: str) -> str:
        """On-disk location of the record for fingerprint *fp*."""
        return os.path.join(self._objects_dir, fp[:2], fp + ".json")

    def failure_path_for(self, fp: str) -> str:
        """On-disk location of the quarantine record for *fp*."""
        return os.path.join(self._quarantine_dir, fp[:2], fp + ".json")

    # -- record access ----------------------------------------------------

    def contains(self, fp: str) -> bool:
        """Whether a record file exists (no validation, no stat change)."""
        return os.path.exists(self.path_for(fp))

    def get(self, fp: str, descriptor: dict) -> dict | None:
        """Load the report for *fp*, or ``None`` on miss/invalidation.

        The stored descriptor must equal *descriptor* and the stored
        schema must match :data:`SCHEMA_VERSION`.  Any unreadable record
        — truncated JSON, binary garbage, a non-object top level, an
        undecodable file — and any mismatch is treated as a *miss* and
        an *invalidation*: the file is removed so the caller recomputes
        and re-stores it.  ``get`` never raises on record content; a
        corrupt store degrades to recomputation, not a crashed sweep.
        """
        path = self.path_for(fp)
        try:
            with open(path, "rb") as handle:
                record = json.loads(handle.read().decode("utf-8"))
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, ValueError):
            # ValueError covers json.JSONDecodeError and
            # UnicodeDecodeError (truncated or binary records).
            self._invalidate(path)
            return None
        if (not isinstance(record, dict)
                or record.get("schema") != SCHEMA_VERSION
                or record.get("key") != descriptor
                or "report" not in record):
            self._invalidate(path)
            return None
        self.stats.hits += 1
        return record["report"]

    def put(self, fp: str, descriptor: dict, report: dict) -> None:
        """Persist *report* under *fp* (atomic, last-writer-wins)."""
        record = {
            "schema": SCHEMA_VERSION,
            "fingerprint": fp,
            "key": descriptor,
            "report": report,
        }
        path = self.path_for(fp)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        self._atomic_write(path, canonical_json(record) + "\n")
        self.stats.stores += 1

    # -- quarantine records -----------------------------------------------

    def contains_failure(self, fp: str) -> bool:
        """Whether a quarantine record exists (no validation)."""
        return os.path.exists(self.failure_path_for(fp))

    def get_failure(self, fp: str, descriptor: dict) -> dict | None:
        """Load the quarantine record for *fp*, or ``None``.

        Validated like :meth:`get`: a corrupt record, a schema bump, or
        a descriptor mismatch removes the file and reports no record —
        a stale poison marker degrades to re-running the cell, never to
        skipping a cell it doesn't actually describe.
        """
        path = self.failure_path_for(fp)
        try:
            with open(path, "rb") as handle:
                record = json.loads(handle.read().decode("utf-8"))
        except FileNotFoundError:
            return None
        except (OSError, ValueError):
            self._remove(path)
            return None
        if (not isinstance(record, dict)
                or record.get("schema") != SCHEMA_VERSION
                or record.get("key") != descriptor
                or not isinstance(record.get("failure"), dict)):
            self._remove(path)
            return None
        self.stats.quarantine_hits += 1
        return record["failure"]

    def put_failure(self, fp: str, descriptor: dict,
                    failure: dict) -> None:
        """Quarantine *fp*: persist its failure record (atomic)."""
        record = {
            "schema": SCHEMA_VERSION,
            "fingerprint": fp,
            "key": descriptor,
            "failure": failure,
        }
        path = self.failure_path_for(fp)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        self._atomic_write(path, canonical_json(record) + "\n")
        self.stats.quarantines += 1

    def clear_failure(self, fp: str) -> bool:
        """Remove *fp*'s quarantine record; True if one existed."""
        try:
            os.remove(self.failure_path_for(fp))
            return True
        except OSError:
            return False

    def failure_count(self) -> int:
        """Number of quarantine records on disk."""
        count = 0
        for _dirpath, _dirnames, filenames in os.walk(self._quarantine_dir):
            count += sum(1 for name in filenames if name.endswith(".json"))
        return count

    def _remove(self, path: str) -> None:
        try:
            os.remove(path)
        except OSError:
            pass

    def _invalidate(self, path: str) -> None:
        # An invalidated record is also a miss: the caller recomputes,
        # so hit/miss totals keep accounting for every lookup.
        self.stats.misses += 1
        self.stats.invalidations += 1
        try:
            os.remove(path)
        except OSError:
            pass

    # -- maintenance ------------------------------------------------------

    def __len__(self) -> int:
        """Number of records on disk (walks the objects directory)."""
        count = 0
        for _dirpath, _dirnames, filenames in os.walk(self._objects_dir):
            count += sum(1 for name in filenames if name.endswith(".json"))
        return count

    def _atomic_write(self, path: str, text: str) -> None:
        # Write-to-temp + fsync + replace: a reader never sees partial
        # bytes (replace is atomic), and a crash at any point leaves
        # either the old record or the new one — fsync before replace
        # keeps the rename from being durably ordered ahead of the data.
        handle = tempfile.NamedTemporaryFile(
            "w", encoding="utf-8", dir=os.path.dirname(path),
            prefix=".tmp-", delete=False)
        try:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
            handle.close()
            os.replace(handle.name, path)
        except BaseException:
            handle.close()
            try:
                os.remove(handle.name)
            except OSError:
                pass
            raise
